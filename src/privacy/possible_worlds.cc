#include "privacy/possible_worlds.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <numeric>
#include <unordered_set>

#include "common/combinatorics.h"
#include "common/interner.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "privacy/feasible_sets.h"
#include "workflow/execution_supplier.h"

namespace provview {

namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

// Positions (within `attrs`) of the attributes visible under `visible`.
std::vector<int> VisiblePositions(const std::vector<AttrId>& attrs,
                                  const Bitset64& visible) {
  std::vector<int> pos;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] < visible.size() && visible.Test(attrs[i])) {
      pos.push_back(static_cast<int>(i));
    }
  }
  return pos;
}

// ----------------------------------------------------------------------------
// Pruned incremental engine.
//
// The target view is interned to dense ids 0..T-1. For each input slot i only
// the output codes whose visible projection occurs in the target are feasible
// (any other choice makes the projected relation a strict non-subset of the
// view, so no world uses it). A world is then consistent iff the T target
// ids are all covered by the current digit choices, which we track with a
// count-per-id multiset updated incrementally on every odometer step.
// ----------------------------------------------------------------------------

// Read-only description of the pruned candidate space, shared by all shards.
struct PrunedInstance {
  int n = 0;            // input slots
  int32_t num_targets = 0;
  // codes[i] = feasible output codes of slot i; tids[i][j] = target id of
  // the visible projection induced by choosing codes[i][j] for slot i.
  std::vector<std::vector<int32_t>> codes;
  std::vector<std::vector<int32_t>> tids;
};

// Union view of which (slot, feasible-index) pairs appeared in a consistent
// world, shared across shards so the Γ short-circuit can fire on the global
// OUT sets. Marks are rare (bounded by Σ_i |feasible_i| per shard), so a
// single mutex is fine.
struct SeenUnion {
  explicit SeenUnion(const PrunedInstance& inst, int64_t gamma_target) {
    seen.reserve(inst.codes.size());
    for (const auto& c : inst.codes) seen.emplace_back(c.size(), 0);
    if (gamma_target > 0) {
      remaining.assign(inst.codes.size(), gamma_target);
      slots_below = static_cast<int>(inst.codes.size());
    }
  }

  // Records (slot, j); when a Γ target is set and every slot's distinct
  // count reaches it, flips `stop`.
  void Mark(int slot, int32_t j, std::atomic<bool>* stop) {
    std::lock_guard<std::mutex> lock(mu);
    uint8_t& s = seen[static_cast<size_t>(slot)][static_cast<size_t>(j)];
    if (s) return;
    s = 1;
    if (!remaining.empty() &&
        --remaining[static_cast<size_t>(slot)] == 0 &&
        --slots_below == 0) {
      stop->store(true, std::memory_order_relaxed);
    }
  }

  std::mutex mu;
  std::vector<std::vector<uint8_t>> seen;
  std::vector<int64_t> remaining;  // per slot: marks left to reach Γ
  int slots_below = 0;             // slots still short of Γ
};

struct ShardResult {
  int64_t num_worlds = 0;
};

// Walks the sub-space where slot 0's feasible index runs over [begin, end)
// and every other slot runs over its full feasible list. Slot 0 is the
// most-significant digit, so shards are contiguous ranges of the global
// walk. The covered-target multiset is maintained incrementally: one digit
// changes per step (amortized O(1) updates).
void WalkShard(const PrunedInstance& inst, int64_t begin, int64_t end,
               SeenUnion* seen_union, std::atomic<bool>* stop,
               const ExecControl* control, ShardResult* out) {
  if (begin >= end) return;
  const int n = inst.n;
  std::vector<int32_t> idx(static_cast<size_t>(n), 0);
  idx[0] = static_cast<int32_t>(begin);

  std::vector<int32_t> counts(static_cast<size_t>(inst.num_targets), 0);
  int32_t uncovered = inst.num_targets;
  auto cover = [&](int32_t tid) {
    if (counts[static_cast<size_t>(tid)]++ == 0) --uncovered;
  };
  auto uncover = [&](int32_t tid) {
    if (--counts[static_cast<size_t>(tid)] == 0) ++uncovered;
  };
  for (int i = 0; i < n; ++i) {
    cover(inst.tids[static_cast<size_t>(i)][static_cast<size_t>(idx[i])]);
  }

  // Shard-local first-seen flags: avoid re-locking the union for pairs this
  // shard already reported. Once every pair is seen the marking loop is
  // skipped entirely.
  std::vector<std::vector<uint8_t>> local_seen;
  int64_t unseen_pairs = 0;
  local_seen.reserve(static_cast<size_t>(n));
  for (const auto& c : inst.codes) {
    local_seen.emplace_back(c.size(), 0);
    unseen_pairs += static_cast<int64_t>(c.size());
  }

  for (;;) {
    if (stop->load(std::memory_order_relaxed)) return;
    if (control != nullptr && control->Expired()) {
      stop->store(true, std::memory_order_relaxed);
      return;
    }
    if (uncovered == 0) {
      ++out->num_worlds;
      if (unseen_pairs > 0) {
        for (int i = 0; i < n; ++i) {
          uint8_t& s =
              local_seen[static_cast<size_t>(i)][static_cast<size_t>(idx[i])];
          if (!s) {
            s = 1;
            --unseen_pairs;
            seen_union->Mark(i, idx[static_cast<size_t>(i)], stop);
          }
        }
      }
    }
    // Advance one digit: slots 1..n-1 cycle fastest, slot 0 last (within
    // this shard's [begin, end) range).
    int d = n > 1 ? 1 : 0;
    for (;;) {
      const auto& tids_d = inst.tids[static_cast<size_t>(d)];
      uncover(tids_d[static_cast<size_t>(idx[static_cast<size_t>(d)])]);
      if (d == 0) {
        if (++idx[0] == end) return;  // shard exhausted
        cover(tids_d[static_cast<size_t>(idx[0])]);
        break;
      }
      if (++idx[static_cast<size_t>(d)] <
          static_cast<int32_t>(inst.codes[static_cast<size_t>(d)].size())) {
        cover(tids_d[static_cast<size_t>(idx[static_cast<size_t>(d)])]);
        break;
      }
      idx[static_cast<size_t>(d)] = 0;
      cover(tids_d[0]);
      if (++d == n) d = 0;  // carry into the next digit, slot 0 last
    }
  }
}

}  // namespace

int64_t StandaloneWorlds::MinOutSize() const {
  int64_t min_out = kMax;
  for (const auto& [x, outs] : out_sets) {
    (void)x;
    min_out = std::min(min_out, static_cast<int64_t>(outs.size()));
  }
  return min_out;
}

StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           const EnumerationOptions& opts) {
  MaterializedRowSupplier rows(rel);
  return EnumerateStandaloneWorlds(&rows, inputs, outputs, visible, opts);
}

StandaloneWorlds EnumerateStandaloneWorlds(RowSupplier* rows,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           const EnumerationOptions& opts) {
  StandaloneWorlds result;
  const ExecControl* control = opts.control;
  if (control != nullptr && control->ExpiredNow()) {
    result.status = control->Check();
    return result;
  }
  const Schema& row_schema = rows->schema();
  const AttributeCatalog& catalog = *row_schema.catalog();

  const std::vector<int> vis_in_pos = VisiblePositions(inputs, visible);
  const std::vector<int> vis_out_pos = VisiblePositions(outputs, visible);

  // Row positions of the module attributes within the supplier's schema.
  std::vector<int> in_pos, out_pos;
  for (AttrId id : inputs) {
    const int p = row_schema.PositionOf(id);
    PV_CHECK_MSG(p >= 0, "supplier schema misses input attr " << id);
    in_pos.push_back(p);
  }
  for (AttrId id : outputs) {
    const int p = row_schema.PositionOf(id);
    PV_CHECK_MSG(p >= 0, "supplier schema misses output attr " << id);
    out_pos.push_back(p);
  }

  // One streaming pass interning (a) the distinct inputs of R — slot i owns
  // input TupleOf(i) — and (b) the target view: every distinct
  // (vis_in ++ vis_out) projection, as dense target ids.
  TupleInterner input_interner;
  TupleInterner target_interner;
  {
    std::vector<Value> block;
    const size_t arity = static_cast<size_t>(row_schema.arity());
    Tuple x(inputs.size()), v;
    rows->Reset();
    int64_t got;
    while ((got = rows->NextBlock(&block)) > 0) {
      if (control != nullptr && control->ExpiredNow()) {
        result.status = control->Check();
        return result;
      }
      for (int64_t r = 0; r < got; ++r) {
        const Value* row = &block[static_cast<size_t>(r) * arity];
        for (size_t j = 0; j < in_pos.size(); ++j) {
          x[j] = row[in_pos[j]];
        }
        input_interner.Intern(x);
        v.clear();
        for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
        for (int p : vis_out_pos) {
          v.push_back(row[out_pos[static_cast<size_t>(p)]]);
        }
        target_interner.Intern(v);
      }
    }
  }
  const int n = input_interner.size();
  if (n == 0) return result;

  std::vector<int> out_radices;
  for (AttrId id : outputs) out_radices.push_back(catalog.DomainSize(id));
  int64_t range = 1;
  for (int r : out_radices) range = SaturatingMul(range, r);
  // Candidate-space guards: library callers keep the historical
  // PV_CHECK-abort (a programming error in a batch script), but in service
  // mode (an ExecControl is attached) an oversized request is external
  // input and must come back as a typed RESOURCE_EXHAUSTED status.
  if (range > std::numeric_limits<int>::max() || range > opts.max_candidates) {
    if (control != nullptr) {
      result.status = Status::ResourceExhausted(
          "standalone world space too large: output range " +
          std::to_string(range));
      return result;
    }
    // The per-slot feasibility scan materializes O(|Range|) tuples and walks
    // n*|Range| codes; since the pruned space satisfies ∏|feasible_i| ≤ ...
    // only after the scan, bound the scan itself by the caller's budget
    // (|Range| ≤ |Range|^N, so this rejects nothing the naive guard allowed).
    PV_CHECK_MSG(range <= std::numeric_limits<int>::max(),
                 "output range too large for world enumeration");
    PV_CHECK_MSG(range <= opts.max_candidates,
                 "standalone world space too large: output range " << range);
  }
  result.naive_candidates = SaturatingPow(range, n);

  // Visible-output fragment of every output code, computed once and shared
  // by all slots' feasibility scans.
  std::vector<Tuple> vis_out_of_code(static_cast<size_t>(range));
  for (int64_t code = 0; code < range; ++code) {
    Tuple y = DecodeMixedRadix(code, out_radices);
    Tuple& v = vis_out_of_code[static_cast<size_t>(code)];
    v.reserve(vis_out_pos.size());
    for (int p : vis_out_pos) v.push_back(y[static_cast<size_t>(p)]);
  }

  // Per-slot pruning: keep only codes whose visible projection occurs in
  // the target. Everything else can never appear in a consistent world.
  PrunedInstance inst;
  inst.n = n;
  inst.num_targets = target_interner.size();
  inst.codes.resize(static_cast<size_t>(n));
  inst.tids.resize(static_cast<size_t>(n));
  result.pruned_candidates = 1;
  for (int i = 0; i < n; ++i) {
    if (control != nullptr && control->ExpiredNow()) {
      result.status = control->Check();
      return result;
    }
    const Tuple& x = input_interner.TupleOf(i);
    Tuple v;
    v.reserve(vis_in_pos.size() + vis_out_pos.size());
    for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
    const size_t prefix = v.size();
    for (int64_t code = 0; code < range; ++code) {
      v.resize(prefix);
      const Tuple& tail = vis_out_of_code[static_cast<size_t>(code)];
      v.insert(v.end(), tail.begin(), tail.end());
      int32_t tid = target_interner.Find(v);
      if (tid < 0) continue;
      inst.codes[static_cast<size_t>(i)].push_back(static_cast<int32_t>(code));
      inst.tids[static_cast<size_t>(i)].push_back(tid);
    }
    result.pruned_candidates = SaturatingMul(
        result.pruned_candidates,
        static_cast<int64_t>(inst.codes[static_cast<size_t>(i)].size()));
  }
  if (result.pruned_candidates > opts.max_candidates) {
    if (control != nullptr) {
      result.status = Status::ResourceExhausted(
          "standalone world space too large after pruning: " +
          std::to_string(result.pruned_candidates));
      return result;
    }
    PV_CHECK_MSG(result.pruned_candidates <= opts.max_candidates,
                 "standalone world space too large after pruning: "
                     << result.pruned_candidates);
  }
  if (result.pruned_candidates == 0) return result;  // some slot infeasible

  // Shard the walk over slot 0's feasible codes.
  const int64_t slot0 = static_cast<int64_t>(inst.codes[0].size());
  int threads = ThreadPool::Resolve(opts.num_threads);
  if (result.pruned_candidates <= opts.min_parallel_candidates) threads = 1;
  const int shards = static_cast<int>(std::min<int64_t>(threads, slot0));

  SeenUnion seen_union(inst, opts.gamma);
  std::atomic<bool> stop(false);
  std::vector<ShardResult> partials(static_cast<size_t>(shards));
  if (shards <= 1) {
    WalkShard(inst, 0, slot0, &seen_union, &stop, control, &partials[0]);
  } else {
    ThreadPool pool(shards);
    pool.ShardedFor(slot0, shards,
                    [&](int shard, int64_t begin, int64_t end) {
                      WalkShard(inst, begin, end, &seen_union, &stop, control,
                                &partials[static_cast<size_t>(shard)]);
                    });
  }
  for (const ShardResult& p : partials) result.num_worlds += p.num_worlds;
  result.early_stopped = stop.load();
  if (control != nullptr) result.status = control->Check();

  // Materialize OUT sets from the union of seen (slot, code) pairs.
  for (int i = 0; i < n; ++i) {
    const Tuple& x = input_interner.TupleOf(i);
    const auto& seen = seen_union.seen[static_cast<size_t>(i)];
    for (size_t j = 0; j < seen.size(); ++j) {
      if (!seen[j]) continue;
      result.out_sets[x].insert(DecodeMixedRadix(
          inst.codes[static_cast<size_t>(i)][j], out_radices));
    }
  }
  return result;
}

StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           int64_t max_candidates) {
  EnumerationOptions opts;
  opts.max_candidates = max_candidates;
  return EnumerateStandaloneWorlds(rel, inputs, outputs, visible, opts);
}

StandaloneWorlds EnumerateStandaloneWorldsNaive(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, const Bitset64& visible,
    int64_t max_candidates) {
  StandaloneWorlds result;
  const AttributeCatalog& catalog = *rel.schema().catalog();

  // Distinct inputs of R, in a fixed order.
  std::set<Tuple> input_set;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    input_set.insert(rel.ProjectRow(row, inputs));
  }
  std::vector<Tuple> xs(input_set.begin(), input_set.end());
  const int n = static_cast<int>(xs.size());
  if (n == 0) return result;

  std::vector<int> out_radices;
  for (AttrId id : outputs) out_radices.push_back(catalog.DomainSize(id));
  int64_t range = 1;
  for (int r : out_radices) range = SaturatingMul(range, r);
  PV_CHECK_MSG(range <= std::numeric_limits<int>::max(),
               "output range too large for world enumeration");

  int64_t candidates = SaturatingPow(range, n);
  result.naive_candidates = candidates;
  result.pruned_candidates = candidates;
  PV_CHECK_MSG(candidates <= max_candidates,
               "standalone world space too large: " << candidates);

  // Target visible projection of R, as a set of (vis_in ++ vis_out) tuples.
  std::vector<int> vis_in_pos = VisiblePositions(inputs, visible);
  std::vector<int> vis_out_pos = VisiblePositions(outputs, visible);
  auto visible_of = [&](const Tuple& x, const Tuple& y) {
    Tuple v;
    v.reserve(vis_in_pos.size() + vis_out_pos.size());
    for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
    for (int p : vis_out_pos) v.push_back(y[static_cast<size_t>(p)]);
    return v;
  };

  std::set<Tuple> target;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    target.insert(visible_of(rel.ProjectRow(row, inputs),
                             rel.ProjectRow(row, outputs)));
  }

  // Pre-decode all possible outputs.
  std::vector<Tuple> decoded(static_cast<size_t>(range));
  for (int64_t code = 0; code < range; ++code) {
    decoded[static_cast<size_t>(code)] = DecodeMixedRadix(code, out_radices);
  }

  // Odometer over the N function slots, each with `range` choices.
  std::vector<int> slots(static_cast<size_t>(n), static_cast<int>(range));
  MixedRadixCounter counter(slots);
  do {
    std::set<Tuple> projected;
    for (int i = 0; i < n; ++i) {
      projected.insert(
          visible_of(xs[static_cast<size_t>(i)],
                     decoded[static_cast<size_t>(counter.values()[i])]));
    }
    if (projected == target) {
      ++result.num_worlds;
      for (int i = 0; i < n; ++i) {
        result.out_sets[xs[static_cast<size_t>(i)]].insert(
            decoded[static_cast<size_t>(counter.values()[i])]);
      }
    }
  } while (counter.Advance());
  return result;
}

bool IsStandaloneSafeByEnumeration(const Relation& rel,
                                   const std::vector<AttrId>& inputs,
                                   const std::vector<AttrId>& outputs,
                                   const Bitset64& visible, int64_t gamma,
                                   EnumerationOptions opts) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  opts.gamma = gamma;
  StandaloneWorlds worlds =
      EnumerateStandaloneWorlds(rel, inputs, outputs, visible, opts);
  if (worlds.early_stopped) return true;  // every OUT set reached Γ
  return worlds.MinOutSize() >= gamma;
}

int64_t WorkflowWorlds::MinOutSize(int module_index) const {
  PV_CHECK(module_index >= 0 &&
           module_index < static_cast<int>(out_sets.size()));
  int64_t min_out = kMax;
  for (const auto& [x, outs] : out_sets[static_cast<size_t>(module_index)]) {
    (void)x;
    min_out = std::min(min_out, static_cast<int64_t>(outs.size()));
  }
  return min_out;
}

// ----------------------------------------------------------------------------
// Workflow tables: the per-workflow precomputation shared across enumerations.
// ----------------------------------------------------------------------------

std::shared_ptr<const WorkflowTables> BuildWorkflowTables(
    const Workflow& workflow, int64_t max_executions) {
  WorkflowTablesOptions opts;
  opts.max_executions = max_executions;
  opts.materialize_threshold = max_executions;
  return BuildWorkflowTables(workflow, opts);
}

std::shared_ptr<const WorkflowTables> BuildWorkflowTables(
    const Workflow& workflow, const WorkflowTablesOptions& opts) {
  auto t = std::make_shared<WorkflowTables>();
  const ExecControl* control = opts.control;
  if (control != nullptr && control->ExpiredNow()) {
    t->status = control->Check();
    return t;
  }
  t->workflow = &workflow;
  const AttributeCatalog& catalog = *workflow.catalog();
  t->num_attrs = catalog.size();
  const int n = workflow.num_modules();
  t->num_modules = n;

  t->in_attrs.resize(static_cast<size_t>(n));
  t->out_attrs.resize(static_cast<size_t>(n));
  t->in_radices.resize(static_cast<size_t>(n));
  t->out_radices.resize(static_cast<size_t>(n));
  t->in_strides.resize(static_cast<size_t>(n));
  t->out_strides.resize(static_cast<size_t>(n));
  t->dom_size.assign(static_cast<size_t>(n), 1);
  t->range_size.assign(static_cast<size_t>(n), 1);
  t->original_fn.resize(static_cast<size_t>(n));
  t->orig_input_codes.resize(static_cast<size_t>(n));
  t->out_values.resize(static_cast<size_t>(n));
  // One shared execution plan for the whole build. The cheap per-module
  // metadata (attrs, radices, strides, size guards, budget charges) is
  // computed inline in module order — deterministic trip points — while
  // the two table fills (the plan's function sweep and the output-decode
  // table) are deferred: the task-graph mode runs them as per-module tasks
  // overlapping the streamed scan.
  std::shared_ptr<ExecutionPlan> plan =
      ExecutionSupplier::MakePlanShell(workflow);
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    const Module& m = workflow.module(i);
    t->in_attrs[si].assign(m.inputs().begin(), m.inputs().end());
    t->out_attrs[si].assign(m.outputs().begin(), m.outputs().end());
    int64_t dom = 1, range = 1;
    for (AttrId id : m.inputs()) {
      t->in_strides[si].push_back(dom);
      const int r = catalog.DomainSize(id);
      t->in_radices[si].push_back(r);
      dom = SaturatingMul(dom, r);
    }
    for (AttrId id : m.outputs()) {
      t->out_strides[si].push_back(range);
      const int r = catalog.DomainSize(id);
      t->out_radices[si].push_back(r);
      range = SaturatingMul(range, r);
    }
    t->dom_size[si] = dom;
    t->range_size[si] = range;
    if (dom > (1 << 20) || range > std::numeric_limits<int>::max()) {
      if (control != nullptr) {
        t->status = Status::ResourceExhausted(
            "module " + m.name() + " too large for world enumeration");
        return t;
      }
      PV_CHECK_MSG(
          dom <= (1 << 20) && range <= std::numeric_limits<int>::max(),
          "module " << m.name() << " too large for world enumeration");
    }
    const size_t n_out = t->out_attrs[si].size();
    if (control != nullptr &&
        !control->TryCharge(range * static_cast<int64_t>(n_out) *
                            static_cast<int64_t>(sizeof(int32_t)))) {
      t->status = control->Check();
      return t;
    }
  }
  // The fills, shared verbatim by both modes. The execution plan sweeps the
  // module's domain in the same odometer order / little-endian output
  // encoding original_fn needs, so one sweep serves both tables.
  auto fill_fn = [&, plan](int i) {
    const size_t si = static_cast<size_t>(i);
    ExecutionSupplier::TabulateModule(plan.get(), i);
    PV_CHECK(static_cast<int64_t>(plan->modules[si].fn.size()) ==
             t->dom_size[si]);
    t->original_fn[si] = plan->modules[si].fn;
  };
  auto fill_out_values = [&](int i) {
    const size_t si = static_cast<size_t>(i);
    const size_t n_out = t->out_attrs[si].size();
    const int64_t range = t->range_size[si];
    t->out_values[si].resize(static_cast<size_t>(range) * n_out);
    for (int64_t c = 0; c < range; ++c) {
      for (size_t j = 0; j < n_out; ++j) {
        t->out_values[si][static_cast<size_t>(c) * n_out + j] =
            static_cast<int32_t>((c / t->out_strides[si][j]) %
                                 t->out_radices[si][j]);
      }
    }
  };

  for (AttrId id : workflow.initial_input_ids()) {
    t->init_radices.push_back(catalog.DomainSize(id));
  }
  int64_t execs = 1;
  for (int r : t->init_radices) execs = SaturatingMul(execs, r);
  if (execs > opts.max_executions) {
    if (control != nullptr) {
      t->status = Status::ResourceExhausted(
          "initial-input space too large for world enumeration: " +
          std::to_string(execs));
      return t;
    }
    PV_CHECK_MSG(execs <= opts.max_executions,
                 "initial-input space too large for world enumeration: "
                     << execs);
  }
  t->num_execs = execs;
  t->prov_ids = workflow.ProvenanceAttrIds();
  t->log_materialized = execs <= opts.materialize_threshold;

  // The original run, streamed from the initial-input odometer in
  // chunk-sized blocks of provenance rows. At or below the materialization
  // threshold the per-execution arrays (provenance row, per-module input
  // code, initial values) are kept for the world walkers; beyond it only
  // the per-module distinct input codes survive the scan. Shards own
  // disjoint execution ranges (and disjoint slices of the per-execution
  // arrays), so the parallel scan needs no synchronization beyond the
  // final aggregate merge.
  const size_t prov_arity = t->prov_ids.size();
  const std::vector<AttrId>& init_ids = workflow.initial_input_ids();
  const size_t num_init = init_ids.size();
  if (t->log_materialized) {
    // The per-execution arrays are the dominant footprint of a materialized
    // build; charge them against the request's budget before allocating so
    // an oversized request trips RESOURCE_EXHAUSTED instead of OOM-ing the
    // daemon. The charge lives as long as the tables (request scope).
    if (control != nullptr &&
        !control->TryCharge(
            execs *
            static_cast<int64_t>((prov_arity + static_cast<size_t>(n) +
                                  num_init) *
                                 sizeof(int32_t)))) {
      t->status = control->Check();
      return t;
    }
    t->orig_rows.resize(static_cast<size_t>(execs) * prov_arity);
    t->orig_in_code.resize(static_cast<size_t>(execs) *
                           static_cast<size_t>(n));
    t->init_values.resize(static_cast<size_t>(execs) * num_init);
  }
  std::vector<int> init_pos;  // initial-input positions in the prov row
  {
    const Schema prov_schema = workflow.ProvenanceSchema();
    for (AttrId id : init_ids) init_pos.push_back(prov_schema.PositionOf(id));
  }

  const int64_t chunk = std::max<int64_t>(1, opts.chunk_executions);
  int threads = ThreadPool::Resolve(opts.num_threads);
  const int shards = static_cast<int>(
      std::min<int64_t>(threads, std::max<int64_t>(1, execs / chunk)));
  std::vector<std::vector<std::set<int32_t>>> shard_codes(
      static_cast<size_t>(shards),
      std::vector<std::set<int32_t>>(static_cast<size_t>(n)));
  auto scan = [&](int shard, int64_t begin, int64_t end) {
    ExecutionSupplier supplier(plan, begin, end);
    std::vector<std::set<int32_t>>& codes =
        shard_codes[static_cast<size_t>(shard)];
    std::vector<Value> block;
    int64_t e = begin;
    int64_t got;
    while ((got = supplier.NextBlock(&block, chunk)) > 0) {
      if (control != nullptr && control->Expired()) return;
      for (int64_t r = 0; r < got; ++r, ++e) {
        const Value* row = &block[static_cast<size_t>(r) * prov_arity];
        for (int i = 0; i < n; ++i) {
          const int32_t in_code =
              static_cast<int32_t>(supplier.InputCodeOf(row, i));
          codes[static_cast<size_t>(i)].insert(in_code);
          if (t->log_materialized) {
            t->orig_in_code[static_cast<size_t>(e) * static_cast<size_t>(n) +
                            static_cast<size_t>(i)] = in_code;
          }
        }
        if (t->log_materialized) {
          std::copy(row, row + prov_arity,
                    &t->orig_rows[static_cast<size_t>(e) * prov_arity]);
          for (size_t k = 0; k < num_init; ++k) {
            t->init_values[static_cast<size_t>(e) * num_init + k] =
                row[init_pos[k]];
          }
        }
      }
    }
  };
  if (!opts.use_task_graph || threads <= 1) {
    // Barrier mode: sweep every module, decode every output table, then
    // scan — three strictly ordered phases.
    for (int i = 0; i < n; ++i) {
      fill_fn(i);
      fill_out_values(i);
    }
    if (shards <= 1) {
      scan(0, 0, execs);
    } else {
      ThreadPool pool(shards);
      pool.ShardedFor(execs, shards, scan);
    }
  } else {
    // Task-graph mode: per-module sweeps run as independent tasks, the
    // scan shards depend only on the sweeps (which the streamed supplier
    // reads), and the output-decode tables overlap the scan. Tables are
    // identical to the barrier mode's — only the schedule changes.
    TaskGraph graph;
    std::vector<TaskGraph::TaskId> fn_tasks;
    fn_tasks.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const TaskGraph::TaskId fi = graph.Add([&fill_fn, i] { fill_fn(i); });
      fn_tasks.push_back(fi);
      graph.Add([&fill_out_values, i] { fill_out_values(i); }, {fi});
    }
    const int64_t shard_chunk = (execs + shards - 1) / shards;
    for (int s = 0; s < shards; ++s) {
      const int64_t begin = static_cast<int64_t>(s) * shard_chunk;
      const int64_t end = std::min<int64_t>(execs, begin + shard_chunk);
      if (begin >= end) break;
      graph.Add([&scan, s, begin, end] { scan(s, begin, end); }, fn_tasks);
    }
    std::unique_ptr<TaskGraphExecutor> local_executor;
    TaskGraphExecutor* executor = opts.executor;
    if (executor == nullptr) {
      // threads-1 workers: the calling thread helps, so `threads` run.
      local_executor = std::make_unique<TaskGraphExecutor>(threads - 1);
      executor = local_executor.get();
    }
    Status run = graph.Run(executor, control);
    if (control == nullptr) {
      PV_CHECK_MSG(run.ok(), "table build failed: " << run.message());
    }
  }
  if (control != nullptr) {
    t->status = control->Check();
    if (!t->status.ok()) return t;  // partially-scanned tables are unusable
  }
  for (int i = 0; i < n; ++i) {
    std::set<int32_t> merged;
    for (int s = 0; s < shards; ++s) {
      merged.merge(shard_codes[static_cast<size_t>(s)][static_cast<size_t>(i)]);
    }
    t->orig_input_codes[static_cast<size_t>(i)].assign(merged.begin(),
                                                       merged.end());
  }
  return t;
}

// ----------------------------------------------------------------------------
// Pruned incremental workflow engine.
//
// One walked slot per (free module, reachable domain point). Modules whose
// inputs are determined in every world (fed by initial inputs through fixed
// modules only) always receive their original input codes, so their
// unreached slots are factored out of the walk (every value is consistent
// whenever the rest is) and their reached slots are pruned to the output
// codes whose determined-visible row fragment occurs in the target view.
// Executions are re-run incrementally: an odometer step re-executes only the
// executions whose trace crosses a changed slot, from the changed module
// onward, while a count-per-target-id multiset plus an invalid-row counter
// give an O(1) consistency test per step.
// ----------------------------------------------------------------------------

namespace {

struct WfInstance {
  const WorkflowTables* tables = nullptr;
  int num_free = 0;
  std::vector<int> free_modules;  // module index per free order
  std::vector<int> free_index;    // module -> free order, -1 if fixed
  std::vector<int> topo;          // module evaluation order
  std::vector<int> topo_pos;      // module -> position in topo

  struct Slot {
    int module = 0;
    int32_t in_code = 0;
    const std::vector<int32_t>* codes = nullptr;  // feasible output codes
  };
  std::vector<Slot> slots;
  // Per module (free only): input code -> walked slot index. -1 marks a
  // factored slot, which no execution can ever query.
  std::vector<std::vector<int32_t>> slot_of;

  std::vector<int> visible_pos;  // visible positions in the prov row
  const TupleInterner* target = nullptr;

  // Fast row -> target-id lookup. An execution's candidate row always keeps
  // its determined visible values, so its target id is a function of the
  // non-determined visible fragment alone. Executions sharing a determined
  // prefix share one flat table indexed by the encoded fragment; -1 marks
  // "not in the target". Falls back to interner lookups (use_nd = false)
  // when the fragment space is too large to materialize.
  bool use_nd = false;
  std::vector<AttrId> nd_attr_ids;  // visible non-determined prov attrs
  std::vector<int64_t> nd_strides;
  std::vector<int32_t> group_of_exec;
  std::vector<std::vector<int32_t>> tid_tables;  // per group, nd-space wide

  // Hot-loop structure-of-arrays mirrors, filled by FinalizeSlots().
  std::vector<const int32_t*> slot_codes;  // raw feasible-code arrays
  std::vector<int32_t> slot_len;
  std::vector<int32_t> slot_in_code;
  std::vector<int> slot_fi;    // free index of the owning module
  std::vector<int> slot_topo;  // topo position of the owning module
  int64_t nd_space = 1;
  std::vector<int32_t> tid_flat;        // concatenated tid tables
  std::vector<int64_t> exec_tid_base;   // per exec: offset into tid_flat

  void FinalizeSlots() {
    for (const Slot& s : slots) {
      slot_codes.push_back(s.codes->data());
      slot_len.push_back(static_cast<int32_t>(s.codes->size()));
      slot_in_code.push_back(s.in_code);
      slot_fi.push_back(free_index[static_cast<size_t>(s.module)]);
      slot_topo.push_back(topo_pos[static_cast<size_t>(s.module)]);
    }
    if (use_nd) {
      tid_flat.reserve(tid_tables.size() * static_cast<size_t>(nd_space));
      for (const auto& table : tid_tables) {
        tid_flat.insert(tid_flat.end(), table.begin(), table.end());
      }
      exec_tid_base.reserve(group_of_exec.size());
      for (int32_t g : group_of_exec) {
        exec_tid_base.push_back(static_cast<int64_t>(g) * nd_space);
      }
    }
  }

  // Flattened (free module, original input) pairs whose OUT sets are
  // recorded; Γ counters only on the gamma-tracked ones.
  struct TrackedInput {
    int module = 0;
    int32_t in_code = 0;
    int32_t slot = 0;
    bool gamma_tracked = false;
  };
  std::vector<TrackedInput> inputs;
  bool collect_distinct = true;
};

// Union of seen (pair, feasible-index) marks shared across shards, with the
// Γ short-circuit counters (mirrors the standalone SeenUnion).
struct WfSeenUnion {
  WfSeenUnion(const WfInstance& inst, int64_t gamma_target) {
    seen.reserve(inst.inputs.size());
    int tracked = 0;
    for (const auto& ti : inst.inputs) {
      seen.emplace_back(
          inst.slots[static_cast<size_t>(ti.slot)].codes->size(), 0);
      if (gamma_target > 0 && ti.gamma_tracked) ++tracked;
    }
    if (gamma_target > 0) {
      remaining.assign(inst.inputs.size(), 0);
      for (size_t p = 0; p < inst.inputs.size(); ++p) {
        if (inst.inputs[p].gamma_tracked) remaining[p] = gamma_target;
      }
      pairs_below = tracked;
    }
  }

  void Mark(size_t pair, int32_t j, std::atomic<bool>* stop) {
    std::lock_guard<std::mutex> lock(mu);
    uint8_t& s = seen[pair][static_cast<size_t>(j)];
    if (s) return;
    s = 1;
    if (!remaining.empty() && remaining[pair] > 0 &&
        --remaining[pair] == 0 && --pairs_below == 0) {
      stop->store(true, std::memory_order_relaxed);
    }
  }

  std::mutex mu;
  std::vector<std::vector<uint8_t>> seen;
  std::vector<int64_t> remaining;  // per pair: marks left to reach Γ
  int pairs_below = 0;             // Γ-tracked pairs still short
};

struct WfShardResult {
  int64_t num_function_choices = 0;
  // Sorted-deduplicated candidate relations, rows flattened back to back.
  std::unordered_set<std::vector<int32_t>, TupleVectorHasher>
      distinct_relations;
};

// Walks the sub-space where slot 0's feasible index runs over [begin, end)
// and every other slot runs over its full feasible list (slot 0 is the
// most-significant digit, so shards are contiguous ranges of the walk).
void WfWalkShard(const WfInstance& inst, int64_t begin, int64_t end,
                 WfSeenUnion* seen_union, std::atomic<bool>* stop,
                 const ExecControl* control, WfShardResult* out) {
  const WorkflowTables& t = *inst.tables;
  const int m = static_cast<int>(inst.slots.size());
  const int64_t num_execs = t.num_execs;
  const size_t prov_arity = t.prov_ids.size();
  const size_t num_attrs = static_cast<size_t>(t.num_attrs);
  const size_t trace_width = static_cast<size_t>(std::max(inst.num_free, 1));

  std::vector<int32_t> idx(static_cast<size_t>(std::max(m, 1)), 0);
  if (m > 0) idx[0] = static_cast<int32_t>(begin);

  // Per-execution state: attribute values, per-free-module input codes, and
  // the interned target id of the visible row projection (-1 = not in the
  // target, i.e. the row alone disproves consistency).
  std::vector<int32_t> values(static_cast<size_t>(num_execs) * num_attrs, -1);
  std::vector<int32_t> trace(static_cast<size_t>(num_execs) * trace_width, -1);
  std::vector<int32_t> row_tid(static_cast<size_t>(num_execs), -1);
  std::vector<int32_t> counts(static_cast<size_t>(inst.target->size()), 0);
  int32_t uncovered = inst.target->size();
  int64_t invalid = 0;

  auto cover = [&](int32_t tid) {
    if (tid < 0) {
      ++invalid;
    } else if (counts[static_cast<size_t>(tid)]++ == 0) {
      --uncovered;
    }
  };
  auto uncover = [&](int32_t tid) {
    if (tid < 0) {
      --invalid;
    } else if (--counts[static_cast<size_t>(tid)] == 0) {
      ++uncovered;
    }
  };

  Tuple vis_buf(inst.visible_pos.size());
  const std::vector<AttrId>& init_ids = t.workflow->initial_input_ids();
  const size_t num_init = init_ids.size();

  // (Re-)executes execution e from topo position `from` on; updates values
  // and trace and returns the new row target id.
  auto run_exec = [&](int64_t e, size_t from) {
    int32_t* vals = &values[static_cast<size_t>(e) * num_attrs];
    if (from == 0) {
      const int32_t* init =
          &t.init_values[static_cast<size_t>(e) * num_init];
      for (size_t k = 0; k < num_init; ++k) {
        vals[static_cast<size_t>(init_ids[k])] = init[k];
      }
    }
    for (size_t p = from; p < inst.topo.size(); ++p) {
      const int mi = inst.topo[p];
      const size_t smi = static_cast<size_t>(mi);
      int64_t in_code = 0;
      const auto& ins = t.in_attrs[smi];
      for (size_t j = 0; j < ins.size(); ++j) {
        in_code += static_cast<int64_t>(vals[static_cast<size_t>(ins[j])]) *
                   t.in_strides[smi][j];
      }
      int32_t out_code;
      const int fi = inst.free_index[smi];
      if (fi < 0) {
        out_code = t.original_fn[smi][static_cast<size_t>(in_code)];
      } else {
        trace[static_cast<size_t>(e) * trace_width +
              static_cast<size_t>(fi)] = static_cast<int32_t>(in_code);
        const int32_t s = inst.slot_of[smi][static_cast<size_t>(in_code)];
        out_code = inst.slot_codes[static_cast<size_t>(s)]
                                  [static_cast<size_t>(
                                      idx[static_cast<size_t>(s)])];
      }
      const auto& outs = t.out_attrs[smi];
      const int32_t* out_vals =
          &t.out_values[smi][static_cast<size_t>(out_code) * outs.size()];
      for (size_t j = 0; j < outs.size(); ++j) {
        vals[static_cast<size_t>(outs[j])] = out_vals[j];
      }
    }
    if (inst.use_nd) {
      int64_t code = inst.exec_tid_base[static_cast<size_t>(e)];
      for (size_t j = 0; j < inst.nd_attr_ids.size(); ++j) {
        code += static_cast<int64_t>(
                    vals[static_cast<size_t>(inst.nd_attr_ids[j])]) *
                inst.nd_strides[j];
      }
      return inst.tid_flat[static_cast<size_t>(code)];
    }
    for (size_t p = 0; p < inst.visible_pos.size(); ++p) {
      vis_buf[p] = vals[static_cast<size_t>(
          t.prov_ids[static_cast<size_t>(inst.visible_pos[p])])];
    }
    return inst.target->Find(vis_buf);
  };

  for (int64_t e = 0; e < num_execs; ++e) {
    if (control != nullptr && control->Expired()) {
      stop->store(true, std::memory_order_relaxed);
      return;
    }
    row_tid[static_cast<size_t>(e)] = run_exec(e, 0);
    cover(row_tid[static_cast<size_t>(e)]);
  }

  // Shard-local first-seen flags: avoid re-locking the union for pairs this
  // shard already reported.
  std::vector<std::vector<uint8_t>> local_seen;
  int64_t unseen_pairs = 0;
  local_seen.reserve(inst.inputs.size());
  for (const auto& ti : inst.inputs) {
    const size_t width =
        inst.slots[static_cast<size_t>(ti.slot)].codes->size();
    local_seen.emplace_back(width, 0);
    unseen_pairs += static_cast<int64_t>(width);
  }

  std::vector<int> changed;
  // Scratch for distinct-relation capture: rows flattened back to back plus
  // a row-index permutation, reused across consistent worlds.
  std::vector<int32_t> rows_flat(static_cast<size_t>(num_execs) * prov_arity);
  std::vector<int32_t> row_order(static_cast<size_t>(num_execs));
  std::vector<int32_t> rel_key;
  auto row_less = [&](int32_t a, int32_t b) {
    const int32_t* ra = &rows_flat[static_cast<size_t>(a) * prov_arity];
    const int32_t* rb = &rows_flat[static_cast<size_t>(b) * prov_arity];
    return std::lexicographical_compare(ra, ra + prov_arity, rb,
                                        rb + prov_arity);
  };
  for (;;) {
    if (stop->load(std::memory_order_relaxed)) return;
    // Deadline/cancel poll: Expired() amortizes the clock read over a
    // thread-local stride, so this costs one relaxed load per step.
    if (control != nullptr && control->Expired()) {
      stop->store(true, std::memory_order_relaxed);
      return;
    }
    if (invalid == 0 && uncovered == 0) {
      ++out->num_function_choices;
      if (inst.collect_distinct) {
        for (int64_t e = 0; e < num_execs; ++e) {
          const int32_t* vals = &values[static_cast<size_t>(e) * num_attrs];
          int32_t* row = &rows_flat[static_cast<size_t>(e) * prov_arity];
          for (size_t p = 0; p < prov_arity; ++p) {
            row[p] = vals[static_cast<size_t>(t.prov_ids[p])];
          }
          row_order[static_cast<size_t>(e)] = static_cast<int32_t>(e);
        }
        std::sort(row_order.begin(), row_order.end(), row_less);
        rel_key.clear();
        for (size_t r = 0; r < row_order.size(); ++r) {
          const int32_t* row =
              &rows_flat[static_cast<size_t>(row_order[r]) * prov_arity];
          if (r > 0) {  // drop duplicate rows (set semantics)
            const int32_t* prev =
                &rows_flat[static_cast<size_t>(row_order[r - 1]) * prov_arity];
            if (std::equal(row, row + prov_arity, prev)) continue;
          }
          rel_key.insert(rel_key.end(), row, row + prov_arity);
        }
        out->distinct_relations.insert(rel_key);
      }
      if (unseen_pairs > 0) {
        for (size_t p = 0; p < inst.inputs.size(); ++p) {
          const int32_t j = idx[static_cast<size_t>(inst.inputs[p].slot)];
          uint8_t& s = local_seen[p][static_cast<size_t>(j)];
          if (!s) {
            s = 1;
            --unseen_pairs;
            seen_union->Mark(p, j, stop);
          }
        }
      }
    }
    if (m == 0) return;  // all modules fixed: a single joint state
    // Advance one step (slot 1 cycles fastest, slot 0 last within this
    // shard's range), collecting every digit the carry chain changed.
    changed.clear();
    {
      int d = m > 1 ? 1 : 0;
      bool exhausted = false;
      for (;;) {
        if (d == 0) {
          if (++idx[0] == end) {
            exhausted = true;
          } else {
            changed.push_back(0);
          }
          break;
        }
        if (++idx[static_cast<size_t>(d)] <
            inst.slot_len[static_cast<size_t>(d)]) {
          changed.push_back(d);
          break;
        }
        idx[static_cast<size_t>(d)] = 0;
        changed.push_back(d);
        if (++d == m) d = 0;
      }
      if (exhausted) return;
    }
    // Re-run the executions whose trace crosses a changed slot, from the
    // earliest changed module onward. The one-digit step is by far the most
    // common shape, so it gets a branch-light fast path.
    if (changed.size() == 1) {
      const size_t s = static_cast<size_t>(changed[0]);
      const size_t fi = static_cast<size_t>(inst.slot_fi[s]);
      const int32_t in_code = inst.slot_in_code[s];
      const size_t tp = static_cast<size_t>(inst.slot_topo[s]);
      for (int64_t e = 0; e < num_execs; ++e) {
        if (trace[static_cast<size_t>(e) * trace_width + fi] != in_code) {
          continue;
        }
        uncover(row_tid[static_cast<size_t>(e)]);
        row_tid[static_cast<size_t>(e)] = run_exec(e, tp);
        cover(row_tid[static_cast<size_t>(e)]);
      }
      continue;
    }
    for (int64_t e = 0; e < num_execs; ++e) {
      size_t from = std::numeric_limits<size_t>::max();
      for (int s : changed) {
        const size_t ss = static_cast<size_t>(s);
        if (trace[static_cast<size_t>(e) * trace_width +
                  static_cast<size_t>(inst.slot_fi[ss])] ==
            inst.slot_in_code[ss]) {
          from = std::min(from, static_cast<size_t>(inst.slot_topo[ss]));
        }
      }
      if (from == std::numeric_limits<size_t>::max()) continue;
      uncover(row_tid[static_cast<size_t>(e)]);
      row_tid[static_cast<size_t>(e)] = run_exec(e, from);
      cover(row_tid[static_cast<size_t>(e)]);
    }
  }
}

}  // namespace

WorkflowWorlds EnumerateWorkflowWorlds(const WorkflowTables& tables,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       const WorkflowEnumerationOptions& opts) {
  WorkflowWorlds result;
  const ExecControl* control = opts.control;
  if (!tables.status.ok()) {
    // Tables from an aborted service-mode build carry their trip status;
    // never walk them.
    result.status = tables.status;
    return result;
  }
  if (control != nullptr && control->ExpiredNow()) {
    result.status = control->Check();
    return result;
  }
  if (!tables.log_materialized) {
    if (control != nullptr) {
      result.status = Status::InvalidArgument(
          "world enumeration needs a materialized execution log; "
          "rebuild the tables with materialize_threshold >= num_execs");
      return result;
    }
    PV_CHECK_MSG(tables.log_materialized,
                 "world enumeration needs a materialized execution log; "
                 "rebuild the tables with materialize_threshold >= num_execs");
  }
  const Workflow& workflow = *tables.workflow;
  const int n = tables.num_modules;
  result.out_sets.resize(static_cast<size_t>(n));

  std::vector<bool> fixed(static_cast<size_t>(n), false);
  for (int i : fixed_modules) {
    PV_CHECK(i >= 0 && i < n);
    fixed[static_cast<size_t>(i)] = true;
  }

  WfInstance inst;
  inst.tables = &tables;
  inst.free_index.assign(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (!fixed[static_cast<size_t>(i)]) {
      inst.free_index[static_cast<size_t>(i)] = inst.num_free++;
      inst.free_modules.push_back(i);
    }
  }
  inst.topo = workflow.topo_order();
  inst.topo_pos.assign(static_cast<size_t>(n), -1);
  for (size_t p = 0; p < inst.topo.size(); ++p) {
    inst.topo_pos[static_cast<size_t>(inst.topo[p])] = static_cast<int>(p);
  }
  inst.collect_distinct = opts.collect_distinct_relations;

  result.naive_candidates = 1;
  for (int i : inst.free_modules) {
    result.naive_candidates = SaturatingMul(
        result.naive_candidates,
        SaturatingPow(tables.range_size[static_cast<size_t>(i)],
                      static_cast<int>(tables.dom_size[static_cast<size_t>(i)])));
  }

  // Target view: interned visible projections of the original rows.
  const size_t prov_arity = tables.prov_ids.size();
  for (size_t p = 0; p < prov_arity; ++p) {
    const AttrId id = tables.prov_ids[p];
    if (id < visible.size() && visible.Test(id)) {
      inst.visible_pos.push_back(static_cast<int>(p));
    }
  }
  TupleInterner target;
  std::vector<int32_t> orig_row_tid(static_cast<size_t>(tables.num_execs));
  {
    Tuple vis(inst.visible_pos.size());
    for (int64_t e = 0; e < tables.num_execs; ++e) {
      if (control != nullptr && control->Expired()) {
        result.status = control->Check();
        return result;
      }
      const int32_t* row = &tables.orig_rows[static_cast<size_t>(e) * prov_arity];
      for (size_t p = 0; p < inst.visible_pos.size(); ++p) {
        vis[p] = row[static_cast<size_t>(inst.visible_pos[p])];
      }
      orig_row_tid[static_cast<size_t>(e)] = target.Intern(vis);
    }
  }
  inst.target = &target;

  // Modules whose input is the same in every world. The base rule: every
  // input attribute is an initial input or produced by a fixed module that
  // is itself determined. With the feasible-set pass on, the fixpoint's
  // pinned set extends this through forced free modules and supplies the
  // per-slot candidate lists and unreachable-domain-point factoring below.
  std::unique_ptr<FeasibleSetAnalysis> analysis;
  if (opts.use_feasible_sets) {
    analysis = std::make_unique<FeasibleSetAnalysis>(
        AnalyzeFeasibleSets(tables, visible, fixed_modules));
  }
  std::vector<bool> det_attr(static_cast<size_t>(tables.num_attrs), false);
  std::vector<bool> determined(static_cast<size_t>(n), false);
  if (analysis != nullptr) {
    det_attr.assign(analysis->pinned_attr.begin(), analysis->pinned_attr.end());
    determined.assign(analysis->determined.begin(),
                      analysis->determined.end());
  } else {
    for (AttrId id : workflow.initial_input_ids()) {
      det_attr[static_cast<size_t>(id)] = true;
    }
    for (int mi : inst.topo) {
      const size_t smi = static_cast<size_t>(mi);
      bool det = true;
      for (AttrId id : tables.in_attrs[smi]) {
        det = det && det_attr[static_cast<size_t>(id)];
      }
      determined[smi] = det;
      if (det && fixed[smi]) {
        for (AttrId id : tables.out_attrs[smi]) {
          det_attr[static_cast<size_t>(id)] = true;
        }
      }
    }
  }
  // Positions (in the prov row) of visible determined attributes: the part
  // of every execution's row no world can change.
  std::vector<int> det_vis_pos;
  std::vector<int> pos_of_attr(static_cast<size_t>(tables.num_attrs), -1);
  for (size_t p = 0; p < prov_arity; ++p) {
    const AttrId id = tables.prov_ids[p];
    pos_of_attr[static_cast<size_t>(id)] = static_cast<int>(p);
    if (det_attr[static_cast<size_t>(id)] && id < visible.size() &&
        visible.Test(id)) {
      det_vis_pos.push_back(static_cast<int>(p));
    }
  }

  // Fast row -> target-id lookup tables (see WfInstance): the visible
  // non-determined fragment indexes a per-determined-prefix-group table.
  {
    const AttributeCatalog& catalog = *workflow.catalog();
    std::vector<int> nd_pos;  // prov positions of the fragment
    int64_t space = 1;
    for (int p : inst.visible_pos) {
      const AttrId id = tables.prov_ids[static_cast<size_t>(p)];
      if (det_attr[static_cast<size_t>(id)]) continue;
      nd_pos.push_back(p);
      inst.nd_attr_ids.push_back(id);
      inst.nd_strides.push_back(space);
      space = SaturatingMul(space, catalog.DomainSize(id));
    }
    std::map<Tuple, int32_t> group_ids;
    Tuple prefix(det_vis_pos.size());
    if (space <= (1 << 16)) {
      inst.group_of_exec.resize(static_cast<size_t>(tables.num_execs));
      for (int64_t e = 0; e < tables.num_execs; ++e) {
        const int32_t* row =
            &tables.orig_rows[static_cast<size_t>(e) * prov_arity];
        for (size_t q = 0; q < det_vis_pos.size(); ++q) {
          prefix[q] = row[static_cast<size_t>(det_vis_pos[q])];
        }
        auto [it, inserted] = group_ids.try_emplace(
            prefix, static_cast<int32_t>(group_ids.size()));
        (void)inserted;
        inst.group_of_exec[static_cast<size_t>(e)] = it->second;
      }
      if (SaturatingMul(static_cast<int64_t>(group_ids.size()), space) <=
          (1 << 22)) {
        inst.tid_tables.assign(
            group_ids.size(),
            std::vector<int32_t>(static_cast<size_t>(space), -1));
        for (int64_t e = 0; e < tables.num_execs; ++e) {
          const int32_t* row =
              &tables.orig_rows[static_cast<size_t>(e) * prov_arity];
          int64_t code = 0;
          for (size_t j = 0; j < nd_pos.size(); ++j) {
            code += static_cast<int64_t>(
                        row[static_cast<size_t>(nd_pos[j])]) *
                    inst.nd_strides[j];
          }
          inst.tid_tables[static_cast<size_t>(
              inst.group_of_exec[static_cast<size_t>(e)])]
              [static_cast<size_t>(code)] =
                  orig_row_tid[static_cast<size_t>(e)];
        }
        inst.nd_space = space;
        inst.use_nd = true;
      }
    }
    if (!inst.use_nd) {
      inst.nd_attr_ids.clear();
      inst.nd_strides.clear();
      inst.group_of_exec.clear();
    }
  }

  // Build the walked slots, grouped by free module in reverse topological
  // order: digit 1 cycles fastest, so the most frequent odometer steps hit
  // the topologically last module and re-execute the shortest suffix.
  // Non-determined modules keep the full output range on every slot (their
  // reachedness varies across worlds, so no code can be excluded soundly);
  // determined modules are pruned against the visible provenance view and
  // their unreached slots are factored out.
  std::vector<int> slot_module_order = inst.free_modules;
  std::sort(slot_module_order.begin(), slot_module_order.end(),
            [&](int a, int b) {
              return inst.topo_pos[static_cast<size_t>(a)] >
                     inst.topo_pos[static_cast<size_t>(b)];
            });
  std::vector<std::vector<int32_t>> all_codes(static_cast<size_t>(n));
  std::vector<std::vector<std::vector<int32_t>>> det_codes(
      static_cast<size_t>(n));
  // Singleton lists for domain points of free modules the fixpoint proved
  // unreachable in every consistent world: walked pinned to the original
  // code (so inconsistent mid-walk states that still route an execution
  // there stay well-defined) while the factored multiplier accounts for
  // their |Range| free choices.
  std::vector<std::vector<std::vector<int32_t>>> nd_pinned(
      static_cast<size_t>(n));
  int64_t factored_multiplier = 1;
  inst.slot_of.assign(static_cast<size_t>(n), {});
  result.pruned_candidates = 1;
  for (int i : slot_module_order) {
    const size_t si = static_cast<size_t>(i);
    const int64_t range = tables.range_size[si];
    inst.slot_of[si].assign(static_cast<size_t>(tables.dom_size[si]), -1);
    if (!determined[si]) {
      all_codes[si].resize(static_cast<size_t>(range));
      std::iota(all_codes[si].begin(), all_codes[si].end(), 0);
      const std::vector<int32_t>* din =
          analysis != nullptr ? &analysis->feasible_in_codes[si] : nullptr;
      if (din != nullptr) {
        // Exact-size reserve keeps the singleton lists' addresses stable
        // while slots still point at them.
        nd_pinned[si].reserve(static_cast<size_t>(tables.dom_size[si]) -
                              din->size());
      }
      size_t fit = 0;
      for (int64_t d = 0; d < tables.dom_size[si]; ++d) {
        bool reachable = true;
        if (din != nullptr) {
          if (fit < din->size() &&
              (*din)[fit] == static_cast<int32_t>(d)) {
            ++fit;
          } else {
            reachable = false;
          }
        }
        inst.slot_of[si][static_cast<size_t>(d)] =
            static_cast<int32_t>(inst.slots.size());
        if (reachable) {
          inst.slots.push_back(WfInstance::Slot{
              i, static_cast<int32_t>(d), &all_codes[si]});
          result.pruned_candidates =
              SaturatingMul(result.pruned_candidates, range);
        } else {
          nd_pinned[si].push_back(
              {tables.original_fn[si][static_cast<size_t>(d)]});
          inst.slots.push_back(WfInstance::Slot{
              i, static_cast<int32_t>(d), &nd_pinned[si].back()});
          factored_multiplier = SaturatingMul(factored_multiplier, range);
        }
      }
      continue;
    }
    if (analysis != nullptr) {
      // The fixpoint already ran the visible-projection pruning (with the
      // extended pinned set) and the feasible-value narrowing; consume its
      // per-reached-slot lists and factor the unreached domain points.
      const auto& lists = analysis->det_slot_codes[si];
      const auto& reached = tables.orig_input_codes[si];
      PV_CHECK(lists.size() == reached.size());
      for (int64_t u = static_cast<int64_t>(reached.size());
           u < tables.dom_size[si]; ++u) {
        factored_multiplier = SaturatingMul(factored_multiplier, range);
      }
      for (size_t k = 0; k < reached.size(); ++k) {
        inst.slot_of[si][static_cast<size_t>(reached[k])] =
            static_cast<int32_t>(inst.slots.size());
        inst.slots.push_back(WfInstance::Slot{i, reached[k], &lists[k]});
        result.pruned_candidates = SaturatingMul(
            result.pruned_candidates, static_cast<int64_t>(lists[k].size()));
      }
      continue;
    }
    // Shared pruning core (privacy/feasible_sets.h): allowed
    // (determined-visible prefix, visible-output fragment) pairs are the
    // target view's projection onto those positions — a slot code whose
    // fragment never co-occurs with one of its executions' prefixes forces
    // that execution's row out of the view in every world. The fixpoint
    // engine runs the identical core with its extended pinned set and a
    // feasible-value filter.
    DeterminedSlotPruner pruner(tables, i, visible);
    pruner.RescanLog(det_attr);
    det_codes[si] = pruner.CandidateLists(/*value_ok=*/nullptr);
    const auto& reached = tables.orig_input_codes[si];
    PV_CHECK(det_codes[si].size() == reached.size());
    // Slots reached by no execution multiply the world count without
    // changing any candidate relation: factor them out of the walk.
    for (int64_t u = static_cast<int64_t>(reached.size());
         u < tables.dom_size[si]; ++u) {
      factored_multiplier = SaturatingMul(factored_multiplier, range);
    }
    for (size_t k = 0; k < reached.size(); ++k) {
      inst.slot_of[si][static_cast<size_t>(reached[k])] =
          static_cast<int32_t>(inst.slots.size());
      inst.slots.push_back(WfInstance::Slot{i, reached[k], &det_codes[si][k]});
      result.pruned_candidates = SaturatingMul(
          result.pruned_candidates,
          static_cast<int64_t>(det_codes[si][k].size()));
    }
  }
  if (result.pruned_candidates > opts.max_candidates) {
    if (control != nullptr) {
      result.status = Status::ResourceExhausted(
          "workflow world space too large after pruning: " +
          std::to_string(result.pruned_candidates));
      return result;
    }
    PV_CHECK_MSG(result.pruned_candidates <= opts.max_candidates,
                 "workflow world space too large after pruning: "
                     << result.pruned_candidates);
  }
  if (result.pruned_candidates == 0) return result;  // some slot infeasible

  // Sharding splits slot 0's candidate list across the pool, but the
  // feasible-set pass can leave slot 0 a singleton (forced, or a factored
  // unreachable point) — which would silently serialize the whole walk.
  // Swap the first multi-candidate slot into position 0 (before tracked
  // inputs capture slot indices): the walker carries every slot's
  // module/topo metadata with it, so slot order is a pure performance
  // choice — digit 1 stays the fastest-cycling digit.
  if (!inst.slots.empty() && inst.slots[0].codes->size() <= 1) {
    for (size_t j = 1; j < inst.slots.size(); ++j) {
      if (inst.slots[j].codes->size() > 1) {
        std::swap(inst.slots[0], inst.slots[j]);
        inst.slot_of[static_cast<size_t>(inst.slots[0].module)]
                    [static_cast<size_t>(inst.slots[0].in_code)] = 0;
        inst.slot_of[static_cast<size_t>(inst.slots[j].module)]
                    [static_cast<size_t>(inst.slots[j].in_code)] =
            static_cast<int32_t>(j);
        break;
      }
    }
  }

  // OUT-set marks: one pair per (free module, original input code).
  std::vector<bool> gamma_tracked(static_cast<size_t>(n), false);
  if (opts.gamma > 0) {
    if (opts.gamma_modules.empty()) {
      for (int i : inst.free_modules) {
        if (!workflow.module(i).is_public()) {
          gamma_tracked[static_cast<size_t>(i)] = true;
        }
      }
    } else {
      for (int i : opts.gamma_modules) {
        PV_CHECK(i >= 0 && i < n);
        // A fixed module's OUT sets are singletons: it can never reach
        // Γ > 1, and silently dropping it would turn into a vacuous
        // early-stop success below.
        PV_CHECK_MSG(!fixed[static_cast<size_t>(i)],
                     "gamma_modules must not contain fixed module " << i);
        gamma_tracked[static_cast<size_t>(i)] = true;
      }
    }
  }
  int64_t tracked_pairs = 0;
  for (int i : inst.free_modules) {
    const size_t si = static_cast<size_t>(i);
    for (int32_t d : tables.orig_input_codes[si]) {
      const int32_t s = inst.slot_of[si][static_cast<size_t>(d)];
      PV_CHECK(s >= 0);
      inst.inputs.push_back(
          WfInstance::TrackedInput{i, d, s, gamma_tracked[si]});
      if (gamma_tracked[si]) ++tracked_pairs;
    }
  }
  if (opts.gamma > 0 && tracked_pairs == 0) {
    // No tracked free-module input to protect: Γ is vacuously satisfied.
    result.early_stopped = true;
    return result;
  }

  inst.FinalizeSlots();

  // Shard the walk over the first walked slot's feasible codes.
  const int64_t slot0 =
      inst.slots.empty()
          ? 1
          : static_cast<int64_t>(inst.slots[0].codes->size());
  int threads = ThreadPool::Resolve(opts.num_threads);
  if (result.pruned_candidates <= opts.min_parallel_candidates) threads = 1;
  const int shards = static_cast<int>(std::min<int64_t>(threads, slot0));

  WfSeenUnion seen_union(inst, opts.gamma);
  std::atomic<bool> stop(false);
  std::vector<WfShardResult> partials(static_cast<size_t>(shards));
  // Each shard keeps per-execution values/trace/row_tid arrays; charge the
  // whole fleet against the request budget up front (released after the
  // walk — the charge covers peak transient footprint, not retained state).
  const int64_t walk_bytes =
      static_cast<int64_t>(shards) * tables.num_execs *
      static_cast<int64_t>((static_cast<size_t>(tables.num_attrs) +
                            static_cast<size_t>(std::max(inst.num_free, 1)) +
                            1) *
                           sizeof(int32_t));
  if (control != nullptr && !control->TryCharge(walk_bytes)) {
    result.status = control->Check();
    return result;
  }
  if (shards <= 1) {
    WfWalkShard(inst, 0, slot0, &seen_union, &stop, control, &partials[0]);
  } else {
    ThreadPool pool(shards);
    pool.ShardedFor(slot0, shards,
                    [&](int shard, int64_t begin, int64_t end) {
                      WfWalkShard(inst, begin, end, &seen_union, &stop,
                                  control,
                                  &partials[static_cast<size_t>(shard)]);
                    });
  }
  if (control != nullptr) {
    control->Release(walk_bytes);
    result.status = control->Check();
  }
  result.early_stopped = stop.load();
  std::unordered_set<std::vector<int32_t>, TupleVectorHasher> distinct;
  for (WfShardResult& p : partials) {
    result.num_function_choices += p.num_function_choices;
    if (opts.collect_distinct_relations) {
      distinct.merge(std::move(p.distinct_relations));
    }
  }
  result.num_distinct_relations = static_cast<int64_t>(distinct.size());
  result.num_function_choices =
      SaturatingMul(result.num_function_choices, factored_multiplier);

  // Materialize OUT sets: free modules from the union of seen marks, fixed
  // modules keep their original function on every consistent world.
  for (size_t p = 0; p < inst.inputs.size(); ++p) {
    const auto& ti = inst.inputs[p];
    const size_t si = static_cast<size_t>(ti.module);
    const auto& codes = *inst.slots[static_cast<size_t>(ti.slot)].codes;
    const auto& seen = seen_union.seen[p];
    const Tuple x = DecodeMixedRadix(ti.in_code, tables.in_radices[si]);
    for (size_t j = 0; j < seen.size(); ++j) {
      if (!seen[j]) continue;
      result.out_sets[si][x].insert(
          DecodeMixedRadix(codes[j], tables.out_radices[si]));
    }
  }
  if (result.num_function_choices > 0 || result.early_stopped) {
    for (int i = 0; i < n; ++i) {
      const size_t si = static_cast<size_t>(i);
      if (!fixed[si]) continue;
      for (int32_t d : tables.orig_input_codes[si]) {
        result.out_sets[si][DecodeMixedRadix(d, tables.in_radices[si])]
            .insert(DecodeMixedRadix(
                tables.original_fn[si][static_cast<size_t>(d)],
                tables.out_radices[si]));
      }
    }
  }
  return result;
}

WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       const WorkflowEnumerationOptions& opts) {
  WorkflowTablesOptions topts;
  topts.control = opts.control;  // the build shares the request's deadline
  return EnumerateWorkflowWorlds(*BuildWorkflowTables(workflow, topts),
                                 visible, fixed_modules, opts);
}

WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       int64_t max_candidates) {
  WorkflowEnumerationOptions opts;
  opts.max_candidates = max_candidates;
  return EnumerateWorkflowWorlds(workflow, visible, fixed_modules, opts);
}

WorkflowWorlds EnumerateWorkflowWorldsNaive(const Workflow& workflow,
                                            const Bitset64& visible,
                                            const std::vector<int>& fixed_modules,
                                            int64_t max_candidates) {
  WorkflowWorlds result;
  const int n = workflow.num_modules();
  result.out_sets.resize(static_cast<size_t>(n));
  const AttributeCatalog& catalog = *workflow.catalog();

  std::vector<bool> fixed(static_cast<size_t>(n), false);
  for (int i : fixed_modules) {
    PV_CHECK(i >= 0 && i < n);
    fixed[static_cast<size_t>(i)] = true;
  }

  // Per-module input/output radices, domain sizes and original tables.
  std::vector<std::vector<int>> in_radices(static_cast<size_t>(n));
  std::vector<std::vector<int>> out_radices(static_cast<size_t>(n));
  std::vector<int64_t> dom_size(static_cast<size_t>(n));
  std::vector<int64_t> range_size(static_cast<size_t>(n));
  // original_fn[i][input_code] = output_code.
  std::vector<std::vector<int>> original_fn(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Module& m = workflow.module(i);
    for (AttrId id : m.inputs()) {
      in_radices[static_cast<size_t>(i)].push_back(catalog.DomainSize(id));
    }
    for (AttrId id : m.outputs()) {
      out_radices[static_cast<size_t>(i)].push_back(catalog.DomainSize(id));
    }
    dom_size[static_cast<size_t>(i)] = 1;
    for (int r : in_radices[static_cast<size_t>(i)]) {
      dom_size[static_cast<size_t>(i)] =
          SaturatingMul(dom_size[static_cast<size_t>(i)], r);
    }
    range_size[static_cast<size_t>(i)] = 1;
    for (int r : out_radices[static_cast<size_t>(i)]) {
      range_size[static_cast<size_t>(i)] =
          SaturatingMul(range_size[static_cast<size_t>(i)], r);
    }
    PV_CHECK_MSG(dom_size[static_cast<size_t>(i)] <= (1 << 20) &&
                     range_size[static_cast<size_t>(i)] <=
                         std::numeric_limits<int>::max(),
                 "module " << m.name() << " too large for world enumeration");
    original_fn[static_cast<size_t>(i)].resize(
        static_cast<size_t>(dom_size[static_cast<size_t>(i)]));
    MixedRadixCounter dom_counter(in_radices[static_cast<size_t>(i)]);
    int64_t code = 0;
    do {
      Tuple out = m.Eval(dom_counter.values());
      original_fn[static_cast<size_t>(i)][static_cast<size_t>(code)] =
          static_cast<int>(
              EncodeMixedRadix(out, out_radices[static_cast<size_t>(i)]));
      ++code;
    } while (dom_counter.Advance());
  }

  // Joint candidate space: one slot per (free module, domain point).
  std::vector<int> slots;
  // slot_owner[s] = module index; slot_input[s] = domain code.
  std::vector<int> slot_owner, slot_input;
  int64_t joint = 1;
  for (int i = 0; i < n; ++i) {
    if (fixed[static_cast<size_t>(i)]) continue;
    for (int64_t d = 0; d < dom_size[static_cast<size_t>(i)]; ++d) {
      slots.push_back(static_cast<int>(range_size[static_cast<size_t>(i)]));
      slot_owner.push_back(i);
      slot_input.push_back(static_cast<int>(d));
      joint = SaturatingMul(joint, range_size[static_cast<size_t>(i)]);
    }
  }
  PV_CHECK_MSG(joint <= max_candidates,
               "workflow world space too large: " << joint);
  result.naive_candidates = joint;
  result.pruned_candidates = joint;

  // slot_of[i][d] = slot index for free module i, domain code d.
  std::vector<std::vector<int>> slot_of(static_cast<size_t>(n));
  for (size_t s = 0; s < slot_owner.size(); ++s) {
    auto& v = slot_of[static_cast<size_t>(slot_owner[s])];
    if (v.empty()) {
      v.resize(static_cast<size_t>(
          dom_size[static_cast<size_t>(slot_owner[s])]));
    }
    v[static_cast<size_t>(slot_input[s])] = static_cast<int>(s);
  }

  // Original provenance relation, target visible projection, and the set of
  // original inputs per module (the x's whose OUT sets Definition 5 tracks).
  Relation prov = workflow.ProvenanceRelation();
  std::vector<AttrId> prov_ids = workflow.ProvenanceAttrIds();
  std::vector<int> visible_pos;  // positions of visible attrs in prov rows
  for (size_t p = 0; p < prov_ids.size(); ++p) {
    if (prov_ids[p] < visible.size() && visible.Test(prov_ids[p])) {
      visible_pos.push_back(static_cast<int>(p));
    }
  }
  auto project_visible = [&](const Tuple& row) {
    Tuple v;
    v.reserve(visible_pos.size());
    for (int p : visible_pos) v.push_back(row[static_cast<size_t>(p)]);
    return v;
  };
  std::set<Tuple> target;
  for (const Tuple& row : prov.rows()) target.insert(project_visible(row));

  std::vector<std::set<Tuple>> original_inputs(static_cast<size_t>(n));
  for (const Tuple& row : prov.rows()) {
    for (int i = 0; i < n; ++i) {
      original_inputs[static_cast<size_t>(i)].insert(
          prov.ProjectRow(row, workflow.module(i).inputs()));
    }
  }

  // Initial inputs of the original relation (all combinations — the
  // provenance relation above is total).
  std::vector<int> init_radices;
  for (AttrId id : workflow.initial_input_ids()) {
    init_radices.push_back(catalog.DomainSize(id));
  }

  // Attribute id -> position in the provenance row.
  std::vector<int> pos_of_attr(static_cast<size_t>(catalog.size()), -1);
  for (size_t p = 0; p < prov_ids.size(); ++p) {
    pos_of_attr[static_cast<size_t>(prov_ids[p])] = static_cast<int>(p);
  }

  std::set<std::vector<Tuple>> distinct_relations;

  MixedRadixCounter fn_counter(slots);
  do {
    // Execute the workflow under the current joint function choice on every
    // initial input; build the candidate relation.
    std::vector<Tuple> candidate_rows;
    MixedRadixCounter init_counter(init_radices);
    do {
      std::vector<Value> values(static_cast<size_t>(catalog.size()), -1);
      const auto& init_ids = workflow.initial_input_ids();
      for (size_t i = 0; i < init_ids.size(); ++i) {
        values[static_cast<size_t>(init_ids[i])] = init_counter.values()[i];
      }
      for (int mi : workflow.topo_order()) {
        const Module& m = workflow.module(mi);
        Tuple in;
        in.reserve(m.inputs().size());
        for (AttrId id : m.inputs()) in.push_back(values[static_cast<size_t>(id)]);
        int64_t in_code =
            EncodeMixedRadix(in, in_radices[static_cast<size_t>(mi)]);
        int out_code;
        if (fixed[static_cast<size_t>(mi)]) {
          out_code =
              original_fn[static_cast<size_t>(mi)][static_cast<size_t>(in_code)];
        } else {
          int slot = slot_of[static_cast<size_t>(mi)]
                            [static_cast<size_t>(in_code)];
          out_code = fn_counter.values()[static_cast<size_t>(slot)];
        }
        Tuple out = DecodeMixedRadix(out_code,
                                     out_radices[static_cast<size_t>(mi)]);
        for (size_t oi = 0; oi < m.outputs().size(); ++oi) {
          values[static_cast<size_t>(m.outputs()[oi])] = out[oi];
        }
      }
      Tuple row;
      row.reserve(prov_ids.size());
      for (AttrId id : prov_ids) row.push_back(values[static_cast<size_t>(id)]);
      candidate_rows.push_back(std::move(row));
    } while (init_counter.Advance());

    std::set<Tuple> projected;
    for (const Tuple& row : candidate_rows) projected.insert(project_visible(row));
    if (projected != target) continue;

    ++result.num_function_choices;
    std::sort(candidate_rows.begin(), candidate_rows.end());
    candidate_rows.erase(
        std::unique(candidate_rows.begin(), candidate_rows.end()),
        candidate_rows.end());
    distinct_relations.insert(candidate_rows);

    // Record OUT sets: the world asserts g_i(x) for every original input x.
    for (int i = 0; i < n; ++i) {
      for (const Tuple& x : original_inputs[static_cast<size_t>(i)]) {
        int64_t in_code =
            EncodeMixedRadix(x, in_radices[static_cast<size_t>(i)]);
        int out_code;
        if (fixed[static_cast<size_t>(i)]) {
          out_code =
              original_fn[static_cast<size_t>(i)][static_cast<size_t>(in_code)];
        } else {
          int slot =
              slot_of[static_cast<size_t>(i)][static_cast<size_t>(in_code)];
          out_code = fn_counter.values()[static_cast<size_t>(slot)];
        }
        result.out_sets[static_cast<size_t>(i)][x].insert(
            DecodeMixedRadix(out_code, out_radices[static_cast<size_t>(i)]));
      }
    }
  } while (fn_counter.Advance());

  result.num_distinct_relations =
      static_cast<int64_t>(distinct_relations.size());
  return result;
}

}  // namespace provview
