#include "privacy/possible_worlds.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "common/combinatorics.h"
#include "common/interner.h"
#include "common/thread_pool.h"

namespace provview {

namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

// Positions (within `attrs`) of the attributes visible under `visible`.
std::vector<int> VisiblePositions(const std::vector<AttrId>& attrs,
                                  const Bitset64& visible) {
  std::vector<int> pos;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] < visible.size() && visible.Test(attrs[i])) {
      pos.push_back(static_cast<int>(i));
    }
  }
  return pos;
}

// ----------------------------------------------------------------------------
// Pruned incremental engine.
//
// The target view is interned to dense ids 0..T-1. For each input slot i only
// the output codes whose visible projection occurs in the target are feasible
// (any other choice makes the projected relation a strict non-subset of the
// view, so no world uses it). A world is then consistent iff the T target
// ids are all covered by the current digit choices, which we track with a
// count-per-id multiset updated incrementally on every odometer step.
// ----------------------------------------------------------------------------

// Read-only description of the pruned candidate space, shared by all shards.
struct PrunedInstance {
  int n = 0;            // input slots
  int32_t num_targets = 0;
  // codes[i] = feasible output codes of slot i; tids[i][j] = target id of
  // the visible projection induced by choosing codes[i][j] for slot i.
  std::vector<std::vector<int32_t>> codes;
  std::vector<std::vector<int32_t>> tids;
};

// Union view of which (slot, feasible-index) pairs appeared in a consistent
// world, shared across shards so the Γ short-circuit can fire on the global
// OUT sets. Marks are rare (bounded by Σ_i |feasible_i| per shard), so a
// single mutex is fine.
struct SeenUnion {
  explicit SeenUnion(const PrunedInstance& inst, int64_t gamma_target) {
    seen.reserve(inst.codes.size());
    for (const auto& c : inst.codes) seen.emplace_back(c.size(), 0);
    if (gamma_target > 0) {
      remaining.assign(inst.codes.size(), gamma_target);
      slots_below = static_cast<int>(inst.codes.size());
    }
  }

  // Records (slot, j); when a Γ target is set and every slot's distinct
  // count reaches it, flips `stop`.
  void Mark(int slot, int32_t j, std::atomic<bool>* stop) {
    std::lock_guard<std::mutex> lock(mu);
    uint8_t& s = seen[static_cast<size_t>(slot)][static_cast<size_t>(j)];
    if (s) return;
    s = 1;
    if (!remaining.empty() &&
        --remaining[static_cast<size_t>(slot)] == 0 &&
        --slots_below == 0) {
      stop->store(true, std::memory_order_relaxed);
    }
  }

  std::mutex mu;
  std::vector<std::vector<uint8_t>> seen;
  std::vector<int64_t> remaining;  // per slot: marks left to reach Γ
  int slots_below = 0;             // slots still short of Γ
};

struct ShardResult {
  int64_t num_worlds = 0;
};

// Walks the sub-space where slot 0's feasible index runs over [begin, end)
// and every other slot runs over its full feasible list. Slot 0 is the
// most-significant digit, so shards are contiguous ranges of the global
// walk. The covered-target multiset is maintained incrementally: one digit
// changes per step (amortized O(1) updates).
void WalkShard(const PrunedInstance& inst, int64_t begin, int64_t end,
               SeenUnion* seen_union, std::atomic<bool>* stop,
               ShardResult* out) {
  if (begin >= end) return;
  const int n = inst.n;
  std::vector<int32_t> idx(static_cast<size_t>(n), 0);
  idx[0] = static_cast<int32_t>(begin);

  std::vector<int32_t> counts(static_cast<size_t>(inst.num_targets), 0);
  int32_t uncovered = inst.num_targets;
  auto cover = [&](int32_t tid) {
    if (counts[static_cast<size_t>(tid)]++ == 0) --uncovered;
  };
  auto uncover = [&](int32_t tid) {
    if (--counts[static_cast<size_t>(tid)] == 0) ++uncovered;
  };
  for (int i = 0; i < n; ++i) {
    cover(inst.tids[static_cast<size_t>(i)][static_cast<size_t>(idx[i])]);
  }

  // Shard-local first-seen flags: avoid re-locking the union for pairs this
  // shard already reported. Once every pair is seen the marking loop is
  // skipped entirely.
  std::vector<std::vector<uint8_t>> local_seen;
  int64_t unseen_pairs = 0;
  local_seen.reserve(static_cast<size_t>(n));
  for (const auto& c : inst.codes) {
    local_seen.emplace_back(c.size(), 0);
    unseen_pairs += static_cast<int64_t>(c.size());
  }

  for (;;) {
    if (stop->load(std::memory_order_relaxed)) return;
    if (uncovered == 0) {
      ++out->num_worlds;
      if (unseen_pairs > 0) {
        for (int i = 0; i < n; ++i) {
          uint8_t& s =
              local_seen[static_cast<size_t>(i)][static_cast<size_t>(idx[i])];
          if (!s) {
            s = 1;
            --unseen_pairs;
            seen_union->Mark(i, idx[static_cast<size_t>(i)], stop);
          }
        }
      }
    }
    // Advance one digit: slots 1..n-1 cycle fastest, slot 0 last (within
    // this shard's [begin, end) range).
    int d = n > 1 ? 1 : 0;
    for (;;) {
      const auto& tids_d = inst.tids[static_cast<size_t>(d)];
      uncover(tids_d[static_cast<size_t>(idx[static_cast<size_t>(d)])]);
      if (d == 0) {
        if (++idx[0] == end) return;  // shard exhausted
        cover(tids_d[static_cast<size_t>(idx[0])]);
        break;
      }
      if (++idx[static_cast<size_t>(d)] <
          static_cast<int32_t>(inst.codes[static_cast<size_t>(d)].size())) {
        cover(tids_d[static_cast<size_t>(idx[static_cast<size_t>(d)])]);
        break;
      }
      idx[static_cast<size_t>(d)] = 0;
      cover(tids_d[0]);
      if (++d == n) d = 0;  // carry into the next digit, slot 0 last
    }
  }
}

}  // namespace

int64_t StandaloneWorlds::MinOutSize() const {
  int64_t min_out = kMax;
  for (const auto& [x, outs] : out_sets) {
    (void)x;
    min_out = std::min(min_out, static_cast<int64_t>(outs.size()));
  }
  return min_out;
}

StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           const EnumerationOptions& opts) {
  StandaloneWorlds result;
  const AttributeCatalog& catalog = *rel.schema().catalog();

  // Distinct inputs of R as dense ids (the relation interning hook); slot i
  // owns input xs[i].
  TupleInterner input_interner;
  rel.InternProjectedRows(inputs, &input_interner);
  const int n = input_interner.size();
  if (n == 0) return result;

  std::vector<int> out_radices;
  for (AttrId id : outputs) out_radices.push_back(catalog.DomainSize(id));
  int64_t range = 1;
  for (int r : out_radices) range = SaturatingMul(range, r);
  PV_CHECK_MSG(range <= std::numeric_limits<int>::max(),
               "output range too large for world enumeration");
  // The per-slot feasibility scan materializes O(|Range|) tuples and walks
  // n*|Range| codes; since the pruned space satisfies ∏|feasible_i| ≤ ...
  // only after the scan, bound the scan itself by the caller's budget
  // (|Range| ≤ |Range|^N, so this rejects nothing the naive guard allowed).
  PV_CHECK_MSG(range <= opts.max_candidates,
               "standalone world space too large: output range " << range);
  result.naive_candidates = SaturatingPow(range, n);

  const std::vector<int> vis_in_pos = VisiblePositions(inputs, visible);
  const std::vector<int> vis_out_pos = VisiblePositions(outputs, visible);

  // Target view: every distinct (vis_in ++ vis_out) projection of R,
  // interned to dense target ids.
  TupleInterner target_interner;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    Tuple x = rel.ProjectRow(row, inputs);
    Tuple y = rel.ProjectRow(row, outputs);
    Tuple v;
    v.reserve(vis_in_pos.size() + vis_out_pos.size());
    for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
    for (int p : vis_out_pos) v.push_back(y[static_cast<size_t>(p)]);
    target_interner.Intern(v);
  }

  // Visible-output fragment of every output code, computed once and shared
  // by all slots' feasibility scans.
  std::vector<Tuple> vis_out_of_code(static_cast<size_t>(range));
  for (int64_t code = 0; code < range; ++code) {
    Tuple y = DecodeMixedRadix(code, out_radices);
    Tuple& v = vis_out_of_code[static_cast<size_t>(code)];
    v.reserve(vis_out_pos.size());
    for (int p : vis_out_pos) v.push_back(y[static_cast<size_t>(p)]);
  }

  // Per-slot pruning: keep only codes whose visible projection occurs in
  // the target. Everything else can never appear in a consistent world.
  PrunedInstance inst;
  inst.n = n;
  inst.num_targets = target_interner.size();
  inst.codes.resize(static_cast<size_t>(n));
  inst.tids.resize(static_cast<size_t>(n));
  result.pruned_candidates = 1;
  for (int i = 0; i < n; ++i) {
    const Tuple& x = input_interner.TupleOf(i);
    Tuple v;
    v.reserve(vis_in_pos.size() + vis_out_pos.size());
    for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
    const size_t prefix = v.size();
    for (int64_t code = 0; code < range; ++code) {
      v.resize(prefix);
      const Tuple& tail = vis_out_of_code[static_cast<size_t>(code)];
      v.insert(v.end(), tail.begin(), tail.end());
      int32_t tid = target_interner.Find(v);
      if (tid < 0) continue;
      inst.codes[static_cast<size_t>(i)].push_back(static_cast<int32_t>(code));
      inst.tids[static_cast<size_t>(i)].push_back(tid);
    }
    result.pruned_candidates = SaturatingMul(
        result.pruned_candidates,
        static_cast<int64_t>(inst.codes[static_cast<size_t>(i)].size()));
  }
  PV_CHECK_MSG(result.pruned_candidates <= opts.max_candidates,
               "standalone world space too large after pruning: "
                   << result.pruned_candidates);
  if (result.pruned_candidates == 0) return result;  // some slot infeasible

  // Shard the walk over slot 0's feasible codes.
  const int64_t slot0 = static_cast<int64_t>(inst.codes[0].size());
  int threads = std::max(1, opts.num_threads == 0 ? ThreadPool::DefaultThreads()
                                                  : opts.num_threads);
  if (result.pruned_candidates <= opts.min_parallel_candidates) threads = 1;
  const int shards = static_cast<int>(std::min<int64_t>(threads, slot0));

  SeenUnion seen_union(inst, opts.gamma);
  std::atomic<bool> stop(false);
  std::vector<ShardResult> partials(static_cast<size_t>(shards));
  if (shards <= 1) {
    WalkShard(inst, 0, slot0, &seen_union, &stop, &partials[0]);
  } else {
    ThreadPool pool(shards);
    pool.ShardedFor(slot0, shards,
                    [&](int shard, int64_t begin, int64_t end) {
                      WalkShard(inst, begin, end, &seen_union, &stop,
                                &partials[static_cast<size_t>(shard)]);
                    });
  }
  for (const ShardResult& p : partials) result.num_worlds += p.num_worlds;
  result.early_stopped = stop.load();

  // Materialize OUT sets from the union of seen (slot, code) pairs.
  for (int i = 0; i < n; ++i) {
    const Tuple& x = input_interner.TupleOf(i);
    const auto& seen = seen_union.seen[static_cast<size_t>(i)];
    for (size_t j = 0; j < seen.size(); ++j) {
      if (!seen[j]) continue;
      result.out_sets[x].insert(DecodeMixedRadix(
          inst.codes[static_cast<size_t>(i)][j], out_radices));
    }
  }
  return result;
}

StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           int64_t max_candidates) {
  EnumerationOptions opts;
  opts.max_candidates = max_candidates;
  return EnumerateStandaloneWorlds(rel, inputs, outputs, visible, opts);
}

StandaloneWorlds EnumerateStandaloneWorldsNaive(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, const Bitset64& visible,
    int64_t max_candidates) {
  StandaloneWorlds result;
  const AttributeCatalog& catalog = *rel.schema().catalog();

  // Distinct inputs of R, in a fixed order.
  std::set<Tuple> input_set;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    input_set.insert(rel.ProjectRow(row, inputs));
  }
  std::vector<Tuple> xs(input_set.begin(), input_set.end());
  const int n = static_cast<int>(xs.size());
  if (n == 0) return result;

  std::vector<int> out_radices;
  for (AttrId id : outputs) out_radices.push_back(catalog.DomainSize(id));
  int64_t range = 1;
  for (int r : out_radices) range = SaturatingMul(range, r);
  PV_CHECK_MSG(range <= std::numeric_limits<int>::max(),
               "output range too large for world enumeration");

  int64_t candidates = SaturatingPow(range, n);
  result.naive_candidates = candidates;
  result.pruned_candidates = candidates;
  PV_CHECK_MSG(candidates <= max_candidates,
               "standalone world space too large: " << candidates);

  // Target visible projection of R, as a set of (vis_in ++ vis_out) tuples.
  std::vector<int> vis_in_pos = VisiblePositions(inputs, visible);
  std::vector<int> vis_out_pos = VisiblePositions(outputs, visible);
  auto visible_of = [&](const Tuple& x, const Tuple& y) {
    Tuple v;
    v.reserve(vis_in_pos.size() + vis_out_pos.size());
    for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
    for (int p : vis_out_pos) v.push_back(y[static_cast<size_t>(p)]);
    return v;
  };

  std::set<Tuple> target;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    target.insert(visible_of(rel.ProjectRow(row, inputs),
                             rel.ProjectRow(row, outputs)));
  }

  // Pre-decode all possible outputs.
  std::vector<Tuple> decoded(static_cast<size_t>(range));
  for (int64_t code = 0; code < range; ++code) {
    decoded[static_cast<size_t>(code)] = DecodeMixedRadix(code, out_radices);
  }

  // Odometer over the N function slots, each with `range` choices.
  std::vector<int> slots(static_cast<size_t>(n), static_cast<int>(range));
  MixedRadixCounter counter(slots);
  do {
    std::set<Tuple> projected;
    for (int i = 0; i < n; ++i) {
      projected.insert(
          visible_of(xs[static_cast<size_t>(i)],
                     decoded[static_cast<size_t>(counter.values()[i])]));
    }
    if (projected == target) {
      ++result.num_worlds;
      for (int i = 0; i < n; ++i) {
        result.out_sets[xs[static_cast<size_t>(i)]].insert(
            decoded[static_cast<size_t>(counter.values()[i])]);
      }
    }
  } while (counter.Advance());
  return result;
}

bool IsStandaloneSafeByEnumeration(const Relation& rel,
                                   const std::vector<AttrId>& inputs,
                                   const std::vector<AttrId>& outputs,
                                   const Bitset64& visible, int64_t gamma,
                                   EnumerationOptions opts) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  opts.gamma = gamma;
  StandaloneWorlds worlds =
      EnumerateStandaloneWorlds(rel, inputs, outputs, visible, opts);
  if (worlds.early_stopped) return true;  // every OUT set reached Γ
  return worlds.MinOutSize() >= gamma;
}

int64_t WorkflowWorlds::MinOutSize(int module_index) const {
  PV_CHECK(module_index >= 0 &&
           module_index < static_cast<int>(out_sets.size()));
  int64_t min_out = kMax;
  for (const auto& [x, outs] : out_sets[static_cast<size_t>(module_index)]) {
    (void)x;
    min_out = std::min(min_out, static_cast<int64_t>(outs.size()));
  }
  return min_out;
}

WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       int64_t max_candidates) {
  WorkflowWorlds result;
  const int n = workflow.num_modules();
  result.out_sets.resize(static_cast<size_t>(n));
  const AttributeCatalog& catalog = *workflow.catalog();

  std::vector<bool> fixed(static_cast<size_t>(n), false);
  for (int i : fixed_modules) {
    PV_CHECK(i >= 0 && i < n);
    fixed[static_cast<size_t>(i)] = true;
  }

  // Per-module input/output radices, domain sizes and original tables.
  std::vector<std::vector<int>> in_radices(static_cast<size_t>(n));
  std::vector<std::vector<int>> out_radices(static_cast<size_t>(n));
  std::vector<int64_t> dom_size(static_cast<size_t>(n));
  std::vector<int64_t> range_size(static_cast<size_t>(n));
  // original_fn[i][input_code] = output_code.
  std::vector<std::vector<int>> original_fn(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Module& m = workflow.module(i);
    for (AttrId id : m.inputs()) {
      in_radices[static_cast<size_t>(i)].push_back(catalog.DomainSize(id));
    }
    for (AttrId id : m.outputs()) {
      out_radices[static_cast<size_t>(i)].push_back(catalog.DomainSize(id));
    }
    dom_size[static_cast<size_t>(i)] = 1;
    for (int r : in_radices[static_cast<size_t>(i)]) {
      dom_size[static_cast<size_t>(i)] =
          SaturatingMul(dom_size[static_cast<size_t>(i)], r);
    }
    range_size[static_cast<size_t>(i)] = 1;
    for (int r : out_radices[static_cast<size_t>(i)]) {
      range_size[static_cast<size_t>(i)] =
          SaturatingMul(range_size[static_cast<size_t>(i)], r);
    }
    PV_CHECK_MSG(dom_size[static_cast<size_t>(i)] <= (1 << 20) &&
                     range_size[static_cast<size_t>(i)] <=
                         std::numeric_limits<int>::max(),
                 "module " << m.name() << " too large for world enumeration");
    original_fn[static_cast<size_t>(i)].resize(
        static_cast<size_t>(dom_size[static_cast<size_t>(i)]));
    MixedRadixCounter dom_counter(in_radices[static_cast<size_t>(i)]);
    int64_t code = 0;
    do {
      Tuple out = m.Eval(dom_counter.values());
      original_fn[static_cast<size_t>(i)][static_cast<size_t>(code)] =
          static_cast<int>(
              EncodeMixedRadix(out, out_radices[static_cast<size_t>(i)]));
      ++code;
    } while (dom_counter.Advance());
  }

  // Joint candidate space: one slot per (free module, domain point).
  std::vector<int> slots;
  // slot_owner[s] = module index; slot_input[s] = domain code.
  std::vector<int> slot_owner, slot_input;
  int64_t joint = 1;
  for (int i = 0; i < n; ++i) {
    if (fixed[static_cast<size_t>(i)]) continue;
    for (int64_t d = 0; d < dom_size[static_cast<size_t>(i)]; ++d) {
      slots.push_back(static_cast<int>(range_size[static_cast<size_t>(i)]));
      slot_owner.push_back(i);
      slot_input.push_back(static_cast<int>(d));
      joint = SaturatingMul(joint, range_size[static_cast<size_t>(i)]);
    }
  }
  PV_CHECK_MSG(joint <= max_candidates,
               "workflow world space too large: " << joint);

  // slot_of[i][d] = slot index for free module i, domain code d.
  std::vector<std::vector<int>> slot_of(static_cast<size_t>(n));
  for (size_t s = 0; s < slot_owner.size(); ++s) {
    auto& v = slot_of[static_cast<size_t>(slot_owner[s])];
    if (v.empty()) {
      v.resize(static_cast<size_t>(
          dom_size[static_cast<size_t>(slot_owner[s])]));
    }
    v[static_cast<size_t>(slot_input[s])] = static_cast<int>(s);
  }

  // Original provenance relation, target visible projection, and the set of
  // original inputs per module (the x's whose OUT sets Definition 5 tracks).
  Relation prov = workflow.ProvenanceRelation();
  std::vector<AttrId> prov_ids = workflow.ProvenanceAttrIds();
  std::vector<int> visible_pos;  // positions of visible attrs in prov rows
  for (size_t p = 0; p < prov_ids.size(); ++p) {
    if (prov_ids[p] < visible.size() && visible.Test(prov_ids[p])) {
      visible_pos.push_back(static_cast<int>(p));
    }
  }
  auto project_visible = [&](const Tuple& row) {
    Tuple v;
    v.reserve(visible_pos.size());
    for (int p : visible_pos) v.push_back(row[static_cast<size_t>(p)]);
    return v;
  };
  std::set<Tuple> target;
  for (const Tuple& row : prov.rows()) target.insert(project_visible(row));

  std::vector<std::set<Tuple>> original_inputs(static_cast<size_t>(n));
  for (const Tuple& row : prov.rows()) {
    for (int i = 0; i < n; ++i) {
      original_inputs[static_cast<size_t>(i)].insert(
          prov.ProjectRow(row, workflow.module(i).inputs()));
    }
  }

  // Initial inputs of the original relation (all combinations — the
  // provenance relation above is total).
  std::vector<int> init_radices;
  for (AttrId id : workflow.initial_input_ids()) {
    init_radices.push_back(catalog.DomainSize(id));
  }

  // Attribute id -> position in the provenance row.
  std::vector<int> pos_of_attr(static_cast<size_t>(catalog.size()), -1);
  for (size_t p = 0; p < prov_ids.size(); ++p) {
    pos_of_attr[static_cast<size_t>(prov_ids[p])] = static_cast<int>(p);
  }

  std::set<std::vector<Tuple>> distinct_relations;

  MixedRadixCounter fn_counter(slots);
  do {
    // Execute the workflow under the current joint function choice on every
    // initial input; build the candidate relation.
    std::vector<Tuple> candidate_rows;
    MixedRadixCounter init_counter(init_radices);
    do {
      std::vector<Value> values(static_cast<size_t>(catalog.size()), -1);
      const auto& init_ids = workflow.initial_input_ids();
      for (size_t i = 0; i < init_ids.size(); ++i) {
        values[static_cast<size_t>(init_ids[i])] = init_counter.values()[i];
      }
      for (int mi : workflow.topo_order()) {
        const Module& m = workflow.module(mi);
        Tuple in;
        in.reserve(m.inputs().size());
        for (AttrId id : m.inputs()) in.push_back(values[static_cast<size_t>(id)]);
        int64_t in_code =
            EncodeMixedRadix(in, in_radices[static_cast<size_t>(mi)]);
        int out_code;
        if (fixed[static_cast<size_t>(mi)]) {
          out_code =
              original_fn[static_cast<size_t>(mi)][static_cast<size_t>(in_code)];
        } else {
          int slot = slot_of[static_cast<size_t>(mi)]
                            [static_cast<size_t>(in_code)];
          out_code = fn_counter.values()[static_cast<size_t>(slot)];
        }
        Tuple out = DecodeMixedRadix(out_code,
                                     out_radices[static_cast<size_t>(mi)]);
        for (size_t oi = 0; oi < m.outputs().size(); ++oi) {
          values[static_cast<size_t>(m.outputs()[oi])] = out[oi];
        }
      }
      Tuple row;
      row.reserve(prov_ids.size());
      for (AttrId id : prov_ids) row.push_back(values[static_cast<size_t>(id)]);
      candidate_rows.push_back(std::move(row));
    } while (init_counter.Advance());

    std::set<Tuple> projected;
    for (const Tuple& row : candidate_rows) projected.insert(project_visible(row));
    if (projected != target) continue;

    ++result.num_function_choices;
    std::sort(candidate_rows.begin(), candidate_rows.end());
    candidate_rows.erase(
        std::unique(candidate_rows.begin(), candidate_rows.end()),
        candidate_rows.end());
    distinct_relations.insert(candidate_rows);

    // Record OUT sets: the world asserts g_i(x) for every original input x.
    for (int i = 0; i < n; ++i) {
      for (const Tuple& x : original_inputs[static_cast<size_t>(i)]) {
        int64_t in_code =
            EncodeMixedRadix(x, in_radices[static_cast<size_t>(i)]);
        int out_code;
        if (fixed[static_cast<size_t>(i)]) {
          out_code =
              original_fn[static_cast<size_t>(i)][static_cast<size_t>(in_code)];
        } else {
          int slot =
              slot_of[static_cast<size_t>(i)][static_cast<size_t>(in_code)];
          out_code = fn_counter.values()[static_cast<size_t>(slot)];
        }
        result.out_sets[static_cast<size_t>(i)][x].insert(
            DecodeMixedRadix(out_code, out_radices[static_cast<size_t>(i)]));
      }
    }
  } while (fn_counter.Advance());

  result.num_distinct_relations =
      static_cast<int64_t>(distinct_relations.size());
  return result;
}

}  // namespace provview
