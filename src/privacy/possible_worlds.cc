#include "privacy/possible_worlds.h"

#include <algorithm>
#include <limits>

#include "common/combinatorics.h"

namespace provview {

namespace {
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kMax / b) return kMax;
  return a * b;
}

// Visible attribute ids of `attrs`, order preserved.
std::vector<AttrId> VisibleOf(const std::vector<AttrId>& attrs,
                              const Bitset64& visible) {
  std::vector<AttrId> out;
  for (AttrId id : attrs) {
    if (id < visible.size() && visible.Test(id)) out.push_back(id);
  }
  return out;
}

}  // namespace

int64_t StandaloneWorlds::MinOutSize() const {
  int64_t min_out = kMax;
  for (const auto& [x, outs] : out_sets) {
    (void)x;
    min_out = std::min(min_out, static_cast<int64_t>(outs.size()));
  }
  return min_out;
}

StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           int64_t max_candidates) {
  StandaloneWorlds result;
  const AttributeCatalog& catalog = *rel.schema().catalog();

  // Distinct inputs of R, in a fixed order.
  std::set<Tuple> input_set;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    input_set.insert(rel.ProjectRow(row, inputs));
  }
  std::vector<Tuple> xs(input_set.begin(), input_set.end());
  const int n = static_cast<int>(xs.size());
  if (n == 0) return result;

  std::vector<int> out_radices;
  for (AttrId id : outputs) out_radices.push_back(catalog.DomainSize(id));
  int64_t range = 1;
  for (int r : out_radices) range = SatMul(range, r);
  PV_CHECK_MSG(range <= std::numeric_limits<int>::max(),
               "output range too large for world enumeration");

  int64_t candidates = 1;
  for (int i = 0; i < n; ++i) candidates = SatMul(candidates, range);
  PV_CHECK_MSG(candidates <= max_candidates,
               "standalone world space too large: " << candidates);

  // Target visible projection of R, as a set of (vis_in ++ vis_out) tuples.
  std::vector<AttrId> vis_in = VisibleOf(inputs, visible);
  std::vector<AttrId> vis_out = VisibleOf(outputs, visible);
  // Positions of visible attrs inside the local input/output orderings.
  std::vector<int> vis_in_pos, vis_out_pos;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] < visible.size() && visible.Test(inputs[i])) {
      vis_in_pos.push_back(static_cast<int>(i));
    }
  }
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i] < visible.size() && visible.Test(outputs[i])) {
      vis_out_pos.push_back(static_cast<int>(i));
    }
  }
  auto visible_of = [&](const Tuple& x, const Tuple& y) {
    Tuple v;
    v.reserve(vis_in_pos.size() + vis_out_pos.size());
    for (int p : vis_in_pos) v.push_back(x[static_cast<size_t>(p)]);
    for (int p : vis_out_pos) v.push_back(y[static_cast<size_t>(p)]);
    return v;
  };

  std::set<Tuple> target;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    target.insert(visible_of(rel.ProjectRow(row, inputs),
                             rel.ProjectRow(row, outputs)));
  }

  // Pre-decode all possible outputs.
  std::vector<Tuple> decoded(static_cast<size_t>(range));
  for (int64_t code = 0; code < range; ++code) {
    decoded[static_cast<size_t>(code)] = DecodeMixedRadix(code, out_radices);
  }

  // Odometer over the N function slots, each with `range` choices.
  std::vector<int> slots(static_cast<size_t>(n), static_cast<int>(range));
  MixedRadixCounter counter(slots);
  do {
    std::set<Tuple> projected;
    for (int i = 0; i < n; ++i) {
      projected.insert(
          visible_of(xs[static_cast<size_t>(i)],
                     decoded[static_cast<size_t>(counter.values()[i])]));
    }
    if (projected == target) {
      ++result.num_worlds;
      for (int i = 0; i < n; ++i) {
        result.out_sets[xs[static_cast<size_t>(i)]].insert(
            decoded[static_cast<size_t>(counter.values()[i])]);
      }
    }
  } while (counter.Advance());
  return result;
}

int64_t WorkflowWorlds::MinOutSize(int module_index) const {
  PV_CHECK(module_index >= 0 &&
           module_index < static_cast<int>(out_sets.size()));
  int64_t min_out = kMax;
  for (const auto& [x, outs] : out_sets[static_cast<size_t>(module_index)]) {
    (void)x;
    min_out = std::min(min_out, static_cast<int64_t>(outs.size()));
  }
  return min_out;
}

WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       int64_t max_candidates) {
  WorkflowWorlds result;
  const int n = workflow.num_modules();
  result.out_sets.resize(static_cast<size_t>(n));
  const AttributeCatalog& catalog = *workflow.catalog();

  std::vector<bool> fixed(static_cast<size_t>(n), false);
  for (int i : fixed_modules) {
    PV_CHECK(i >= 0 && i < n);
    fixed[static_cast<size_t>(i)] = true;
  }

  // Per-module input/output radices, domain sizes and original tables.
  std::vector<std::vector<int>> in_radices(static_cast<size_t>(n));
  std::vector<std::vector<int>> out_radices(static_cast<size_t>(n));
  std::vector<int64_t> dom_size(static_cast<size_t>(n));
  std::vector<int64_t> range_size(static_cast<size_t>(n));
  // original_fn[i][input_code] = output_code.
  std::vector<std::vector<int>> original_fn(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Module& m = workflow.module(i);
    for (AttrId id : m.inputs()) {
      in_radices[static_cast<size_t>(i)].push_back(catalog.DomainSize(id));
    }
    for (AttrId id : m.outputs()) {
      out_radices[static_cast<size_t>(i)].push_back(catalog.DomainSize(id));
    }
    dom_size[static_cast<size_t>(i)] = 1;
    for (int r : in_radices[static_cast<size_t>(i)]) {
      dom_size[static_cast<size_t>(i)] =
          SatMul(dom_size[static_cast<size_t>(i)], r);
    }
    range_size[static_cast<size_t>(i)] = 1;
    for (int r : out_radices[static_cast<size_t>(i)]) {
      range_size[static_cast<size_t>(i)] =
          SatMul(range_size[static_cast<size_t>(i)], r);
    }
    PV_CHECK_MSG(dom_size[static_cast<size_t>(i)] <= (1 << 20) &&
                     range_size[static_cast<size_t>(i)] <=
                         std::numeric_limits<int>::max(),
                 "module " << m.name() << " too large for world enumeration");
    original_fn[static_cast<size_t>(i)].resize(
        static_cast<size_t>(dom_size[static_cast<size_t>(i)]));
    MixedRadixCounter dom_counter(in_radices[static_cast<size_t>(i)]);
    int64_t code = 0;
    do {
      Tuple out = m.Eval(dom_counter.values());
      original_fn[static_cast<size_t>(i)][static_cast<size_t>(code)] =
          static_cast<int>(
              EncodeMixedRadix(out, out_radices[static_cast<size_t>(i)]));
      ++code;
    } while (dom_counter.Advance());
  }

  // Joint candidate space: one slot per (free module, domain point).
  std::vector<int> slots;
  // slot_owner[s] = module index; slot_input[s] = domain code.
  std::vector<int> slot_owner, slot_input;
  int64_t joint = 1;
  for (int i = 0; i < n; ++i) {
    if (fixed[static_cast<size_t>(i)]) continue;
    for (int64_t d = 0; d < dom_size[static_cast<size_t>(i)]; ++d) {
      slots.push_back(static_cast<int>(range_size[static_cast<size_t>(i)]));
      slot_owner.push_back(i);
      slot_input.push_back(static_cast<int>(d));
      joint = SatMul(joint, range_size[static_cast<size_t>(i)]);
    }
  }
  PV_CHECK_MSG(joint <= max_candidates,
               "workflow world space too large: " << joint);

  // slot_of[i][d] = slot index for free module i, domain code d.
  std::vector<std::vector<int>> slot_of(static_cast<size_t>(n));
  for (size_t s = 0; s < slot_owner.size(); ++s) {
    auto& v = slot_of[static_cast<size_t>(slot_owner[s])];
    if (v.empty()) {
      v.resize(static_cast<size_t>(
          dom_size[static_cast<size_t>(slot_owner[s])]));
    }
    v[static_cast<size_t>(slot_input[s])] = static_cast<int>(s);
  }

  // Original provenance relation, target visible projection, and the set of
  // original inputs per module (the x's whose OUT sets Definition 5 tracks).
  Relation prov = workflow.ProvenanceRelation();
  std::vector<AttrId> prov_ids = workflow.ProvenanceAttrIds();
  std::vector<int> visible_pos;  // positions of visible attrs in prov rows
  for (size_t p = 0; p < prov_ids.size(); ++p) {
    if (prov_ids[p] < visible.size() && visible.Test(prov_ids[p])) {
      visible_pos.push_back(static_cast<int>(p));
    }
  }
  auto project_visible = [&](const Tuple& row) {
    Tuple v;
    v.reserve(visible_pos.size());
    for (int p : visible_pos) v.push_back(row[static_cast<size_t>(p)]);
    return v;
  };
  std::set<Tuple> target;
  for (const Tuple& row : prov.rows()) target.insert(project_visible(row));

  std::vector<std::set<Tuple>> original_inputs(static_cast<size_t>(n));
  for (const Tuple& row : prov.rows()) {
    for (int i = 0; i < n; ++i) {
      original_inputs[static_cast<size_t>(i)].insert(
          prov.ProjectRow(row, workflow.module(i).inputs()));
    }
  }

  // Initial inputs of the original relation (all combinations — the
  // provenance relation above is total).
  std::vector<int> init_radices;
  for (AttrId id : workflow.initial_input_ids()) {
    init_radices.push_back(catalog.DomainSize(id));
  }

  // Attribute id -> position in the provenance row.
  std::vector<int> pos_of_attr(static_cast<size_t>(catalog.size()), -1);
  for (size_t p = 0; p < prov_ids.size(); ++p) {
    pos_of_attr[static_cast<size_t>(prov_ids[p])] = static_cast<int>(p);
  }

  std::set<std::vector<Tuple>> distinct_relations;

  MixedRadixCounter fn_counter(slots);
  do {
    // Execute the workflow under the current joint function choice on every
    // initial input; build the candidate relation.
    std::vector<Tuple> candidate_rows;
    MixedRadixCounter init_counter(init_radices);
    do {
      std::vector<Value> values(static_cast<size_t>(catalog.size()), -1);
      const auto& init_ids = workflow.initial_input_ids();
      for (size_t i = 0; i < init_ids.size(); ++i) {
        values[static_cast<size_t>(init_ids[i])] = init_counter.values()[i];
      }
      for (int mi : workflow.topo_order()) {
        const Module& m = workflow.module(mi);
        Tuple in;
        in.reserve(m.inputs().size());
        for (AttrId id : m.inputs()) in.push_back(values[static_cast<size_t>(id)]);
        int64_t in_code =
            EncodeMixedRadix(in, in_radices[static_cast<size_t>(mi)]);
        int out_code;
        if (fixed[static_cast<size_t>(mi)]) {
          out_code =
              original_fn[static_cast<size_t>(mi)][static_cast<size_t>(in_code)];
        } else {
          int slot = slot_of[static_cast<size_t>(mi)]
                            [static_cast<size_t>(in_code)];
          out_code = fn_counter.values()[static_cast<size_t>(slot)];
        }
        Tuple out = DecodeMixedRadix(out_code,
                                     out_radices[static_cast<size_t>(mi)]);
        for (size_t oi = 0; oi < m.outputs().size(); ++oi) {
          values[static_cast<size_t>(m.outputs()[oi])] = out[oi];
        }
      }
      Tuple row;
      row.reserve(prov_ids.size());
      for (AttrId id : prov_ids) row.push_back(values[static_cast<size_t>(id)]);
      candidate_rows.push_back(std::move(row));
    } while (init_counter.Advance());

    std::set<Tuple> projected;
    for (const Tuple& row : candidate_rows) projected.insert(project_visible(row));
    if (projected != target) continue;

    ++result.num_function_choices;
    std::sort(candidate_rows.begin(), candidate_rows.end());
    candidate_rows.erase(
        std::unique(candidate_rows.begin(), candidate_rows.end()),
        candidate_rows.end());
    distinct_relations.insert(candidate_rows);

    // Record OUT sets: the world asserts g_i(x) for every original input x.
    for (int i = 0; i < n; ++i) {
      for (const Tuple& x : original_inputs[static_cast<size_t>(i)]) {
        int64_t in_code =
            EncodeMixedRadix(x, in_radices[static_cast<size_t>(i)]);
        int out_code;
        if (fixed[static_cast<size_t>(i)]) {
          out_code =
              original_fn[static_cast<size_t>(i)][static_cast<size_t>(in_code)];
        } else {
          int slot =
              slot_of[static_cast<size_t>(i)][static_cast<size_t>(in_code)];
          out_code = fn_counter.values()[static_cast<size_t>(slot)];
        }
        result.out_sets[static_cast<size_t>(i)][x].insert(
            DecodeMixedRadix(out_code, out_radices[static_cast<size_t>(i)]));
      }
    }
  } while (fn_counter.Advance());

  result.num_distinct_relations =
      static_cast<int64_t>(distinct_relations.size());
  return result;
}

}  // namespace provview
