#include "privacy/workflow_privacy.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "privacy/possible_worlds.h"
#include "privacy/standalone_privacy.h"

namespace provview {

ComposedSolution ComposeStandaloneSolutions(
    const Workflow& workflow,
    const std::vector<Bitset64>& hidden_per_private_module) {
  std::vector<int> private_modules = workflow.PrivateModuleIndices();
  PV_CHECK_MSG(hidden_per_private_module.size() == private_modules.size(),
               "one hidden set per private module expected");
  ComposedSolution out;
  out.hidden = Bitset64(workflow.catalog()->size());
  for (size_t i = 0; i < private_modules.size(); ++i) {
    const Module& m = workflow.module(private_modules[i]);
    PV_CHECK_MSG(hidden_per_private_module[i].IsSubsetOf(m.AttrSet()),
                 "hidden set for " << m.name()
                                   << " must stay within its attributes");
    out.hidden |= hidden_per_private_module[i];
  }
  out.attr_cost = workflow.AttrCost(out.hidden);
  for (int pi : workflow.PublicModuleIndices()) {
    const Module& m = workflow.module(pi);
    if (m.AttrSet().Intersects(out.hidden)) {
      out.privatized_modules.push_back(pi);
      out.privatization_cost += m.privatization_cost();
    }
  }
  return out;
}

std::vector<int64_t> PerModuleStandaloneGamma(const Workflow& workflow,
                                              const Bitset64& hidden) {
  std::vector<int64_t> gammas;
  gammas.reserve(static_cast<size_t>(workflow.num_modules()));
  Bitset64 visible = hidden.Complement();
  for (int i = 0; i < workflow.num_modules(); ++i) {
    const Module& m = workflow.module(i);
    if (m.is_public()) {
      gammas.push_back(std::numeric_limits<int64_t>::max());
    } else {
      gammas.push_back(MaxStandaloneGamma(m, visible));
    }
  }
  return gammas;
}

PrivacyCertificate CertifyWorkflowPrivacy(const Workflow& workflow,
                                          const Bitset64& hidden,
                                          int64_t gamma) {
  WorkflowBatchOptions opts;
  opts.num_threads = 1;  // a single certificate has nothing to fan out
  WorkflowBatchResult batch =
      CertifyWorkflowBatch(workflow, {{hidden, gamma}}, opts);
  return std::move(batch.entries.front().certificate);
}

WorkflowCacheNamespace::WorkflowCacheNamespace(
    const Workflow& workflow, std::shared_ptr<VerdictCache> cache,
    const std::string& label)
    : workflow_(&workflow), cache_(std::move(cache)) {
  if (cache_ == nullptr) {
    // Single-owner store, unbounded: the historical memo-bank behavior.
    cache_ = std::make_shared<VerdictCache>();
  }
  for (int m_index : workflow.PrivateModuleIndices()) {
    const uint32_t ns =
        cache_->RegisterNamespace(label + "/m" + std::to_string(m_index));
    memos_.push_back(std::make_unique<SafetyMemo>(
        workflow.module(m_index), Module::kDefaultMaterializeRows, cache_,
        ns));
  }
}

WorkflowBatchResult CertifyWorkflowBatch(
    const Workflow& workflow,
    const std::vector<WorkflowCertificationRequest>& requests,
    const WorkflowBatchOptions& opts) {
  return CertifyWorkflowBatch(workflow, requests, opts, /*verdicts=*/nullptr);
}

WorkflowBatchResult CertifyWorkflowBatch(
    const Workflow& workflow,
    const std::vector<WorkflowCertificationRequest>& requests,
    const WorkflowBatchOptions& opts, WorkflowCacheNamespace* verdicts) {
  WorkflowBatchResult result;
  const int n = workflow.num_modules();
  result.entries.resize(requests.size());
  const std::vector<int> private_modules = workflow.PrivateModuleIndices();
  const ExecControl* control = opts.control;
  PV_CHECK_MSG(verdicts == nullptr || verdicts->workflow() == &workflow,
               "cache namespace was built for a different workflow");
  if (control != nullptr) {
    // Service mode: structurally invalid requests come back as a typed
    // status instead of tripping a PV_CHECK deeper in the engines.
    for (const WorkflowCertificationRequest& req : requests) {
      if (req.gamma < 1) {
        result.status =
            Status::InvalidArgument("gamma must be >= 1, got " +
                                    std::to_string(req.gamma));
        return result;
      }
    }
    if (control->ExpiredNow()) {
      result.status = control->Check();
      return result;
    }
  }
  const int max_threads = opts.num_threads == 0 ? ThreadPool::DefaultThreads()
                                                : std::max(1, opts.num_threads);

  // Per-request per-module standalone Γ; public modules carry no
  // requirement and report INT64_MAX (as PerModuleStandaloneGamma does).
  std::vector<std::vector<int64_t>> gammas(
      requests.size(),
      std::vector<int64_t>(static_cast<size_t>(n),
                           std::numeric_limits<int64_t>::max()));
  std::vector<SafeSearchStats> task_module_stats(private_modules.size());

  if (opts.use_task_graph && max_threads > 1) {
    // Task-graph mode. Each private module is a chain of per-request
    // MaxGamma tasks (the memo is sequential per module); each request gets
    // a verdict task gated on every module's answer for it; ground truth is
    // a tables task (overlapping the memo chains — no phase barrier)
    // feeding per-request enumeration tasks. Per-module stats and gammas
    // are written by exactly the same call sequence as the historical
    // driver, so the batch result is field-identical.
    if (opts.with_ground_truth) {
      for (int i : opts.visible_public_modules) {
        if (control != nullptr && (i < 0 || i >= n)) {
          result.status = Status::InvalidArgument(
              "visible public module index out of range: " +
              std::to_string(i));
          return result;
        }
        if (control != nullptr && !workflow.module(i).is_public()) {
          result.status = Status::InvalidArgument(
              "module " + std::to_string(i) + " is not public");
          return result;
        }
        PV_CHECK_MSG(workflow.module(i).is_public(),
                     "module " << i << " is not public");
      }
    }
    std::unique_ptr<TaskGraphExecutor> local_executor;
    TaskGraphExecutor* executor = opts.executor;
    if (executor == nullptr) {
      // max_threads-1 workers: the calling thread helps during Run(), so
      // max_threads runners total — parity with the fork-join driver.
      local_executor = std::make_unique<TaskGraphExecutor>(max_threads - 1);
      executor = local_executor.get();
    }
    std::vector<std::unique_ptr<SafetyMemo>> local_memos;
    if (verdicts == nullptr) {
      for (int m_index : private_modules) {
        local_memos.push_back(
            std::make_unique<SafetyMemo>(workflow.module(m_index)));
      }
    }

    TaskGraph graph;
    // cert_tasks[r] = the per-module tasks answering request r.
    std::vector<std::vector<TaskGraph::TaskId>> cert_tasks(requests.size());
    for (size_t mi = 0; mi < private_modules.size(); ++mi) {
      TaskGraph::TaskId prev = -1;
      for (size_t r = 0; r < requests.size(); ++r) {
        auto body = [&, mi, r] {
          const size_t m_index =
              static_cast<size_t>(private_modules[mi]);
          // Cache-backed memos are concurrent-read safe, so a shared
          // namespace needs no lock — concurrent batches interleave on the
          // cache's striped shards at lookup granularity.
          SafetyMemo* memo = verdicts != nullptr ? verdicts->memo(mi)
                                                 : local_memos[mi].get();
          gammas[r][m_index] = memo->MaxGamma(
              requests[r].hidden, &task_module_stats[mi], nullptr, control);
        };
        prev = prev < 0 ? graph.Add(std::move(body))
                        : graph.Add(std::move(body), {prev});
        cert_tasks[r].push_back(prev);
      }
    }
    for (size_t r = 0; r < requests.size(); ++r) {
      graph.Add(
          [&, r] {
            PrivacyCertificate& cert = result.entries[r].certificate;
            cert.module_gammas = std::move(gammas[r]);
            cert.certified = true;
            for (int i = 0; i < n; ++i) {
              const Module& m = workflow.module(i);
              if (!m.is_public() && cert.module_gammas[static_cast<size_t>(
                                        i)] < requests[r].gamma) {
                cert.certified = false;
              }
              if (m.is_public() &&
                  m.AttrSet().Intersects(requests[r].hidden)) {
                cert.required_privatizations.push_back(i);
              }
            }
          },
          cert_tasks[r]);
    }

    std::shared_ptr<const WorkflowTables> tables;
    std::mutex status_mu;
    Status worlds_status;
    if (opts.with_ground_truth) {
      const TaskGraph::TaskId tables_task = graph.Add([&] {
        WorkflowTablesOptions topts;
        topts.control = control;
        topts.num_threads = max_threads;
        topts.executor = executor;  // nested Run helps on this executor
        tables = BuildWorkflowTables(workflow, topts);
      });
      for (size_t r = 0; r < requests.size(); ++r) {
        graph.Add(
            [&, r] {
              if (!tables->status.ok()) {
                std::lock_guard<std::mutex> g(status_mu);
                if (worlds_status.ok()) worlds_status = tables->status;
                return;
              }
              WorkflowEnumerationOptions wopts;
              wopts.max_candidates = opts.max_candidates;
              wopts.gamma = requests[r].gamma;
              wopts.collect_distinct_relations = false;
              wopts.num_threads = 1;
              wopts.control = control;
              WorkflowWorlds worlds = EnumerateWorkflowWorlds(
                  *tables, requests[r].hidden.Complement(),
                  opts.visible_public_modules, wopts);
              if (!worlds.status.ok()) {
                std::lock_guard<std::mutex> g(status_mu);
                if (worlds_status.ok()) worlds_status = worlds.status;
                return;
              }
              bool is_private = true;
              if (!worlds.early_stopped) {
                for (int i : private_modules) {
                  is_private = is_private &&
                               worlds.MinOutSize(i) >= requests[r].gamma;
                }
              }
              result.entries[r].ground_truth_private = is_private;
            },
            {tables_task});
      }
    }

    Status run = graph.Run(executor, control);
    (void)run;  // control trips surface below; exceptions were rethrown
    for (const SafeSearchStats& s : task_module_stats) {
      result.stats.Accumulate(s);
    }
    if (control != nullptr && !control->Check().ok()) {
      // A trip skips remaining task bodies, so some entries may hold
      // half-assembled verdicts; reset them all — the documented contract
      // is partial stats, no verdicts.
      result.status = control->Check();
      result.entries.assign(requests.size(), WorkflowBatchEntry{});
      return result;
    }
    if (!worlds_status.ok()) result.status = worlds_status;
    return result;
  }

  // One worker per private module: materialize its relation once and share
  // one SafetyMemo across every request, so hidden sets inducing the same
  // projection on the module answer from the cache.
  std::vector<SafeSearchStats> module_stats(private_modules.size());
  auto run_module = [&](size_t mi) {
    const int m_index = private_modules[mi];
    // With a shared namespace, answer from (and settle into) the
    // cache-backed per-module memo — concurrent-read safe, so no lock.
    // Without one, a batch-local memo (the historical behavior).
    std::unique_ptr<SafetyMemo> local;
    SafetyMemo* memo;
    if (verdicts != nullptr) {
      memo = verdicts->memo(mi);
    } else {
      local = std::make_unique<SafetyMemo>(workflow.module(m_index));
      memo = local.get();
    }
    for (size_t r = 0; r < requests.size(); ++r) {
      if (control != nullptr && control->ExpiredNow()) return;
      gammas[r][static_cast<size_t>(m_index)] = memo->MaxGamma(
          requests[r].hidden, &module_stats[mi], nullptr, control);
    }
  };
  const int module_threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(max_threads), private_modules.size()));
  if (module_threads <= 1) {
    for (size_t mi = 0; mi < private_modules.size(); ++mi) run_module(mi);
  } else {
    ThreadPool pool(module_threads);
    for (size_t mi = 0; mi < private_modules.size(); ++mi) {
      pool.Submit([&run_module, mi] { run_module(mi); });
    }
    pool.Wait();
  }
  for (const SafeSearchStats& s : module_stats) result.stats.Accumulate(s);
  if (control != nullptr && !control->Check().ok()) {
    // Deadline/budget tripped mid-batch: surface the typed status with the
    // partial stats; entries keep their default (uncertified) state so a
    // half-computed Γ can never read as a verdict.
    result.status = control->Check();
    return result;
  }

  for (size_t r = 0; r < requests.size(); ++r) {
    PrivacyCertificate& cert = result.entries[r].certificate;
    cert.module_gammas = std::move(gammas[r]);
    cert.certified = true;
    for (int i = 0; i < n; ++i) {
      const Module& m = workflow.module(i);
      if (!m.is_public() &&
          cert.module_gammas[static_cast<size_t>(i)] < requests[r].gamma) {
        cert.certified = false;
      }
      if (m.is_public() && m.AttrSet().Intersects(requests[r].hidden)) {
        cert.required_privatizations.push_back(i);
      }
    }
  }

  if (opts.with_ground_truth) {
    for (int i : opts.visible_public_modules) {
      if (control != nullptr && (i < 0 || i >= n)) {
        result.status = Status::InvalidArgument(
            "visible public module index out of range: " +
            std::to_string(i));
        return result;
      }
      if (control != nullptr && !workflow.module(i).is_public()) {
        result.status = Status::InvalidArgument(
            "module " + std::to_string(i) + " is not public");
        return result;
      }
      PV_CHECK_MSG(workflow.module(i).is_public(),
                   "module " << i << " is not public");
    }
    // One tables build for the whole batch; each request runs the pruned
    // engine with the Γ short-circuit, sequentially inside its worker (the
    // batch layer already owns the parallelism).
    WorkflowTablesOptions topts;
    topts.control = control;
    topts.use_task_graph = opts.use_task_graph;
    std::shared_ptr<const WorkflowTables> tables =
        BuildWorkflowTables(workflow, topts);
    if (!tables->status.ok()) {
      result.status = tables->status;
      return result;
    }
    // First non-OK enumeration status across the fanned-out requests (all
    // derive from the shared control or from a per-request space blowup).
    std::mutex status_mu;
    Status worlds_status;
    auto run_request = [&](size_t r) {
      WorkflowEnumerationOptions wopts;
      wopts.max_candidates = opts.max_candidates;
      wopts.gamma = requests[r].gamma;
      wopts.collect_distinct_relations = false;
      wopts.num_threads = 1;
      wopts.control = control;
      WorkflowWorlds worlds = EnumerateWorkflowWorlds(
          *tables, requests[r].hidden.Complement(),
          opts.visible_public_modules, wopts);
      if (!worlds.status.ok()) {
        std::lock_guard<std::mutex> g(status_mu);
        if (worlds_status.ok()) worlds_status = worlds.status;
        return;  // leave ground_truth_private at its default (false)
      }
      bool is_private = true;
      if (!worlds.early_stopped) {
        for (int i : private_modules) {
          is_private = is_private && worlds.MinOutSize(i) >= requests[r].gamma;
        }
      }
      result.entries[r].ground_truth_private = is_private;
    };
    const int request_threads = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(max_threads), requests.size()));
    if (request_threads <= 1) {
      for (size_t r = 0; r < requests.size(); ++r) run_request(r);
    } else {
      ThreadPool pool(request_threads);
      for (size_t r = 0; r < requests.size(); ++r) {
        pool.Submit([&run_request, r] { run_request(r); });
      }
      pool.Wait();
    }
    if (!worlds_status.ok()) result.status = worlds_status;
  }
  return result;
}

int64_t GroundTruthWorkflowGamma(const Workflow& workflow,
                                 const Bitset64& hidden,
                                 const std::vector<int>& visible_public_modules,
                                 int64_t max_candidates) {
  for (int i : visible_public_modules) {
    PV_CHECK_MSG(workflow.module(i).is_public(),
                 "module " << i << " is not public");
  }
  WorkflowWorlds worlds = EnumerateWorkflowWorlds(
      workflow, hidden.Complement(), visible_public_modules, max_candidates);
  int64_t min_gamma = std::numeric_limits<int64_t>::max();
  for (int i : workflow.PrivateModuleIndices()) {
    min_gamma = std::min(min_gamma, worlds.MinOutSize(i));
  }
  return min_gamma;
}

}  // namespace provview
