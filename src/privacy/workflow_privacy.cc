#include "privacy/workflow_privacy.h"

#include <algorithm>
#include <limits>

#include "privacy/possible_worlds.h"
#include "privacy/standalone_privacy.h"

namespace provview {

ComposedSolution ComposeStandaloneSolutions(
    const Workflow& workflow,
    const std::vector<Bitset64>& hidden_per_private_module) {
  std::vector<int> private_modules = workflow.PrivateModuleIndices();
  PV_CHECK_MSG(hidden_per_private_module.size() == private_modules.size(),
               "one hidden set per private module expected");
  ComposedSolution out;
  out.hidden = Bitset64(workflow.catalog()->size());
  for (size_t i = 0; i < private_modules.size(); ++i) {
    const Module& m = workflow.module(private_modules[i]);
    PV_CHECK_MSG(hidden_per_private_module[i].IsSubsetOf(m.AttrSet()),
                 "hidden set for " << m.name()
                                   << " must stay within its attributes");
    out.hidden |= hidden_per_private_module[i];
  }
  out.attr_cost = workflow.AttrCost(out.hidden);
  for (int pi : workflow.PublicModuleIndices()) {
    const Module& m = workflow.module(pi);
    if (m.AttrSet().Intersects(out.hidden)) {
      out.privatized_modules.push_back(pi);
      out.privatization_cost += m.privatization_cost();
    }
  }
  return out;
}

std::vector<int64_t> PerModuleStandaloneGamma(const Workflow& workflow,
                                              const Bitset64& hidden) {
  std::vector<int64_t> gammas;
  gammas.reserve(static_cast<size_t>(workflow.num_modules()));
  Bitset64 visible = hidden.Complement();
  for (int i = 0; i < workflow.num_modules(); ++i) {
    const Module& m = workflow.module(i);
    if (m.is_public()) {
      gammas.push_back(std::numeric_limits<int64_t>::max());
    } else {
      gammas.push_back(MaxStandaloneGamma(m, visible));
    }
  }
  return gammas;
}

PrivacyCertificate CertifyWorkflowPrivacy(const Workflow& workflow,
                                          const Bitset64& hidden,
                                          int64_t gamma) {
  PrivacyCertificate cert;
  cert.module_gammas = PerModuleStandaloneGamma(workflow, hidden);
  cert.certified = true;
  for (int i = 0; i < workflow.num_modules(); ++i) {
    const Module& m = workflow.module(i);
    if (!m.is_public() &&
        cert.module_gammas[static_cast<size_t>(i)] < gamma) {
      cert.certified = false;
    }
    if (m.is_public() && m.AttrSet().Intersects(hidden)) {
      cert.required_privatizations.push_back(i);
    }
  }
  return cert;
}

int64_t GroundTruthWorkflowGamma(const Workflow& workflow,
                                 const Bitset64& hidden,
                                 const std::vector<int>& visible_public_modules,
                                 int64_t max_candidates) {
  for (int i : visible_public_modules) {
    PV_CHECK_MSG(workflow.module(i).is_public(),
                 "module " << i << " is not public");
  }
  WorkflowWorlds worlds = EnumerateWorkflowWorlds(
      workflow, hidden.Complement(), visible_public_modules, max_candidates);
  int64_t min_gamma = std::numeric_limits<int64_t>::max();
  for (int i : workflow.PrivateModuleIndices()) {
    min_gamma = std::min(min_gamma, worlds.MinOutSize(i));
  }
  return min_gamma;
}

}  // namespace provview
