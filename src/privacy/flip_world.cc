#include "privacy/flip_world.h"

#include "common/combinatorics.h"

namespace provview {

Tuple FlipTuple(const Tuple& t, const std::vector<AttrId>& t_attrs,
                const std::vector<AttrId>& pq_attrs, const Tuple& p,
                const Tuple& q) {
  PV_CHECK(t.size() == t_attrs.size());
  PV_CHECK(p.size() == pq_attrs.size() && q.size() == pq_attrs.size());
  Tuple out = t;
  for (size_t i = 0; i < t_attrs.size(); ++i) {
    for (size_t j = 0; j < pq_attrs.size(); ++j) {
      if (t_attrs[i] != pq_attrs[j]) continue;
      if (out[i] == p[j]) {
        out[i] = q[j];
      } else if (out[i] == q[j]) {
        out[i] = p[j];
      }
      break;
    }
  }
  return out;
}

WorkflowPtr BuildFlipWorkflow(const Workflow& base,
                              const std::vector<AttrId>& pq_attrs,
                              const Tuple& p, const Tuple& q) {
  auto flipped = std::make_unique<Workflow>(base.catalog());
  for (int i = 0; i < base.num_modules(); ++i) {
    const Module* m = &base.module(i);
    std::vector<AttrId> in_attrs = m->inputs();
    std::vector<AttrId> out_attrs = m->outputs();
    auto fn = [m, in_attrs, out_attrs, pq_attrs, p, q](const Tuple& in) {
      Tuple flipped_in = FlipTuple(in, in_attrs, pq_attrs, p, q);
      Tuple out = m->Eval(flipped_in);
      return FlipTuple(out, out_attrs, pq_attrs, p, q);
    };
    auto g = std::make_unique<LambdaModule>("g_" + m->name(), base.catalog(),
                                            in_attrs, out_attrs, std::move(fn));
    g->set_public(m->is_public());
    g->set_privatization_cost(m->privatization_cost());
    flipped->AddModule(std::move(g));
  }
  Status st = flipped->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return flipped;
}

std::vector<int> ModulesChangedByFlip(const Workflow& base,
                                      const std::vector<AttrId>& pq_attrs,
                                      const Tuple& p, const Tuple& q,
                                      int64_t max_domain) {
  std::vector<int> changed;
  for (int i = 0; i < base.num_modules(); ++i) {
    const Module& m = base.module(i);
    PV_CHECK_MSG(m.DomainSize() <= max_domain,
                 "module too large for flip comparison");
    MixedRadixCounter counter(m.InputSchema().DomainSizes());
    bool differs = false;
    do {
      Tuple in = counter.values();
      Tuple flipped_in = FlipTuple(in, m.inputs(), pq_attrs, p, q);
      Tuple g_out = FlipTuple(m.Eval(flipped_in), m.outputs(), pq_attrs, p, q);
      if (g_out != m.Eval(in)) {
        differs = true;
        break;
      }
    } while (counter.Advance());
    if (differs) changed.push_back(i);
  }
  return changed;
}

}  // namespace provview
