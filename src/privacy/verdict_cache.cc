#include "privacy/verdict_cache.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/exec_control.h"
#include "common/status.h"

namespace provview {

namespace {

// Container overhead the admission probe assumes per entry on top of the
// key and Entry bytes (list node links, index node, bucket share). The
// probe only gates admission against the request budget; the cache's own
// ceiling uses the exact allocator-measured counter.
constexpr int64_t kInsertOverheadEstimate = 96;

// splitmix64 finalizer over an FNV-1a accumulation: cheap, well-mixed
// shard + bucket hashing for short binary keys.
uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001B3ull;
  }
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

int RoundUpPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Minimal STL allocator that charges every allocated byte to a shard's
// atomic byte counter — the memcached-style "measured, not guessed" hook.
// Every container a shard owns (entry lists, key vectors, the index map
// with its bucket arrays) runs on one of these, so the shard's counter IS
// its heap footprint.
template <typename T>
class CountingAllocator {
 public:
  using value_type = T;

  CountingAllocator() = default;
  explicit CountingAllocator(std::atomic<int64_t>* counter)
      : counter_(counter) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& other)  // NOLINT(runtime/explicit)
      : counter_(other.counter()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    counter_->fetch_add(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, size_t n) {
    counter_->fetch_sub(static_cast<int64_t>(n * sizeof(T)),
                        std::memory_order_relaxed);
    ::operator delete(p);
  }

  std::atomic<int64_t>* counter() const { return counter_; }

  template <typename U>
  bool operator==(const CountingAllocator<U>& other) const {
    return counter_ == other.counter();
  }
  template <typename U>
  bool operator!=(const CountingAllocator<U>& other) const {
    return counter_ != other.counter();
  }

 private:
  std::atomic<int64_t>* counter_ = nullptr;
};

struct KeyHash {
  size_t operator()(std::string_view key) const {
    return static_cast<size_t>(HashBytes(key));
  }
};

// Stack-first buffer for the serialized [ns | class | key] lookup key;
// verdict keys are tens of bytes, so lookups never touch the heap.
class SmallKey {
 public:
  SmallKey(uint32_t ns, VerdictKeyClass klass, std::string_view key) {
    const size_t total = kPrefix + key.size();
    char* out = buf_;
    if (total > sizeof(buf_)) {
      overflow_.resize(total);
      out = overflow_.data();
    }
    out[0] = static_cast<char>(ns & 0xFF);
    out[1] = static_cast<char>((ns >> 8) & 0xFF);
    out[2] = static_cast<char>((ns >> 16) & 0xFF);
    out[3] = static_cast<char>((ns >> 24) & 0xFF);
    out[4] = static_cast<char>(klass);
    std::memcpy(out + kPrefix, key.data(), key.size());
    view_ = std::string_view(out, total);
  }

  std::string_view view() const { return view_; }

 private:
  static constexpr size_t kPrefix = 5;
  char buf_[160];
  std::string overflow_;
  std::string_view view_;
};

}  // namespace

struct VerdictCache::Shard {
  struct Entry {
    explicit Entry(const CountingAllocator<char>& alloc) : key(alloc) {}
    std::vector<char, CountingAllocator<char>> key;
    int64_t gamma = 0;
    // Measured byte delta this entry's insertion caused (list node, key
    // heap, index node, any bucket growth it triggered) — the unit the
    // SLRU segments and per-class byte tallies are attributed in. The
    // budget itself is enforced on the live `bytes` counter, so attribution
    // coarseness never loosens the ceiling.
    int64_t charged = 0;
    VerdictKeyClass klass = VerdictKeyClass::kSignature;
    bool in_protected = false;
  };
  using EntryList = std::list<Entry, CountingAllocator<Entry>>;
  using IndexMap =
      std::unordered_map<std::string_view, EntryList::iterator, KeyHash,
                         std::equal_to<std::string_view>,
                         CountingAllocator<std::pair<
                             const std::string_view, EntryList::iterator>>>;

  Shard()
      : probation(CountingAllocator<Entry>(&bytes)),
        protected_seg(CountingAllocator<Entry>(&bytes)),
        index(0, KeyHash{}, std::equal_to<std::string_view>{},
              IndexMap::allocator_type(&bytes)) {}

  // All measured bytes this shard's containers hold; written by the
  // allocator (under mu for this shard's containers), read lock-free by
  // bytes_in_use().
  std::atomic<int64_t> bytes{0};

  std::mutex mu;
  EntryList probation;      // new entries, evicted first (LRU at back)
  EntryList protected_seg;  // re-referenced entries (LRU at back)
  IndexMap index;           // full key bytes -> list entry

  int64_t probation_bytes = 0;
  int64_t protected_bytes = 0;
  int64_t peak_bytes = 0;

  struct ClassTally {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    int64_t bytes = 0;
    int64_t entries = 0;
  };
  ClassTally tally[2];

  ClassTally& TallyFor(VerdictKeyClass klass) {
    return tally[static_cast<size_t>(klass)];
  }

  // Move a hit entry up: probation -> protected front (SLRU promotion) or
  // protected -> its own front. Promotions that overflow the protected
  // budget demote that segment's LRU tail back to probation, keeping
  // one-shot scans from pinning the whole shard.
  void Touch(EntryList::iterator it, int64_t protected_budget) {
    if (it->in_protected) {
      protected_seg.splice(protected_seg.begin(), protected_seg, it);
      return;
    }
    protected_seg.splice(protected_seg.begin(), probation, it);
    it->in_protected = true;
    probation_bytes -= it->charged;
    protected_bytes += it->charged;
    while (protected_bytes > protected_budget && protected_seg.size() > 1) {
      EntryList::iterator tail = std::prev(protected_seg.end());
      tail->in_protected = false;
      protected_bytes -= tail->charged;
      probation_bytes += tail->charged;
      probation.splice(probation.begin(), protected_seg, tail);
    }
  }

  void EvictOne() {
    EntryList* from = !probation.empty() ? &probation : &protected_seg;
    EntryList::iterator victim = std::prev(from->end());
    ClassTally& t = TallyFor(victim->klass);
    ++t.evictions;
    t.bytes -= victim->charged;
    --t.entries;
    (victim->in_protected ? protected_bytes : probation_bytes) -=
        victim->charged;
    index.erase(std::string_view(victim->key.data(), victim->key.size()));
    from->erase(victim);
  }

  // Enforce the per-shard budget on the measured counter. Erasing map
  // nodes does not shrink the bucket array, so shrink it when occupancy
  // drops far below capacity — and when the shard drains entirely, swap in
  // a fresh map so even the bucket array's bytes return to ~0.
  void EnforceBudget(int64_t budget) {
    while (bytes.load(std::memory_order_relaxed) > budget) {
      if (probation.empty() && protected_seg.empty()) {
        IndexMap fresh(0, KeyHash{}, std::equal_to<std::string_view>{},
                       index.get_allocator());
        index.swap(fresh);
        break;
      }
      EvictOne();
      if (index.bucket_count() > 64 &&
          index.size() * 4 < index.bucket_count()) {
        index.rehash(index.size() * 2);
      }
    }
  }
};

VerdictCache::VerdictCache(const VerdictCacheConfig& config)
    : config_(config) {
  config_.num_shards = RoundUpPow2(std::max(1, config_.num_shards));
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = config_.byte_budget == std::numeric_limits<int64_t>::max()
                      ? config_.byte_budget
                      : config_.byte_budget / config_.num_shards;
  const double fraction =
      std::min(1.0, std::max(0.0, config_.protected_fraction));
  protected_budget_ =
      shard_budget_ == std::numeric_limits<int64_t>::max()
          ? shard_budget_
          : static_cast<int64_t>(static_cast<double>(shard_budget_) *
                                 fraction);
}

VerdictCache::~VerdictCache() = default;

VerdictCache::Shard* VerdictCache::ShardFor(std::string_view full_key) const {
  const uint64_t h = HashBytes(full_key);
  return shards_[static_cast<size_t>(
                     h & static_cast<uint64_t>(config_.num_shards - 1))]
      .get();
}

uint32_t VerdictCache::RegisterNamespace(std::string label) {
  std::lock_guard<std::mutex> g(ns_mu_);
  namespace_labels_.push_back(std::move(label));
  return static_cast<uint32_t>(namespace_labels_.size() - 1);
}

bool VerdictCache::Lookup(uint32_t ns, VerdictKeyClass klass,
                          std::string_view key, int64_t* gamma) {
  const SmallKey full(ns, klass, key);
  Shard* shard = ShardFor(full.view());
  std::lock_guard<std::mutex> g(shard->mu);
  auto it = shard->index.find(full.view());
  if (it == shard->index.end()) {
    ++shard->TallyFor(klass).misses;
    return false;
  }
  ++shard->TallyFor(klass).hits;
  *gamma = it->second->gamma;
  shard->Touch(it->second, protected_budget_);
  return true;
}

bool VerdictCache::Insert(uint32_t ns, VerdictKeyClass klass,
                          std::string_view key, int64_t gamma,
                          const ExecControl* control) {
  const SmallKey full(ns, klass, key);
  // Admission probe against the *request's* budget: a request that cannot
  // afford the entry's bytes must not grow the service-wide cache. The
  // charge is transient (the entry outlives the request); an over-budget
  // probe trips the control with RESOURCE_EXHAUSTED, which the engines
  // surface as the request's typed status.
  if (control != nullptr) {
    const int64_t probe =
        static_cast<int64_t>(full.view().size() + sizeof(Shard::Entry)) +
        kInsertOverheadEstimate;
    if (!control->TryCharge(probe)) return false;
    control->Release(probe);
  }
  Shard* shard = ShardFor(full.view());
  std::lock_guard<std::mutex> g(shard->mu);
  if (shard->index.find(full.view()) != shard->index.end()) {
    return false;  // first-wins: verdicts are deterministic
  }
  const int64_t before = shard->bytes.load(std::memory_order_relaxed);
  shard->probation.emplace_front(CountingAllocator<char>(&shard->bytes));
  Shard::Entry& entry = shard->probation.front();
  entry.key.assign(full.view().begin(), full.view().end());
  entry.gamma = gamma;
  entry.klass = klass;
  shard->index.emplace(
      std::string_view(entry.key.data(), entry.key.size()),
      shard->probation.begin());
  const int64_t delta =
      shard->bytes.load(std::memory_order_relaxed) - before;
  entry.charged = delta;
  shard->probation_bytes += delta;
  Shard::ClassTally& t = shard->TallyFor(klass);
  ++t.inserts;
  t.bytes += delta;
  ++t.entries;
  shard->peak_bytes = std::max(
      shard->peak_bytes, shard->bytes.load(std::memory_order_relaxed));
  shard->EnforceBudget(shard_budget_);
  return true;
}

VerdictCacheStats VerdictCache::Stats() const {
  VerdictCacheStats out;
  out.byte_budget = config_.byte_budget;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> g(shard->mu);
    out.bytes_in_use += shard->bytes.load(std::memory_order_relaxed);
    out.peak_bytes += shard->peak_bytes;
    VerdictCacheStats::PerClass* per[2] = {&out.signature, &out.projection};
    for (int k = 0; k < 2; ++k) {
      const Shard::ClassTally& t = shard->tally[k];
      per[k]->hits += t.hits;
      per[k]->misses += t.misses;
      per[k]->inserts += t.inserts;
      per[k]->evictions += t.evictions;
      per[k]->bytes += t.bytes;
      per[k]->entries += t.entries;
    }
  }
  {
    std::lock_guard<std::mutex> g(ns_mu_);
    out.namespaces = namespace_labels_.size();
  }
  return out;
}

int64_t VerdictCache::bytes_in_use() const {
  int64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace provview
