#include "privacy/feasible_sets.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/combinatorics.h"
#include "common/interner.h"
#include "workflow/workflow.h"

namespace provview {

namespace {

// Dense value-set representation: one byte per domain value. Domains here
// are attribute domains (small by construction), so bitmaps beat sorted
// vectors for the repeated intersect-and-test pattern of the fixpoint.
using ValueSet = std::vector<uint8_t>;

// Intersects `dst` with `other`; returns true when dst shrank.
bool IntersectInto(ValueSet* dst, const ValueSet& other) {
  bool shrank = false;
  for (size_t v = 0; v < dst->size(); ++v) {
    if ((*dst)[v] && !other[v]) {
      (*dst)[v] = 0;
      shrank = true;
    }
  }
  return shrank;
}

std::vector<int32_t> ToSortedValues(const ValueSet& s) {
  std::vector<int32_t> out;
  for (size_t v = 0; v < s.size(); ++v) {
    if (s[v]) out.push_back(static_cast<int32_t>(v));
  }
  return out;
}

}  // namespace

DeterminedSlotPruner::DeterminedSlotPruner(const WorkflowTables& tables,
                                           int module,
                                           const Bitset64& visible)
    : tables_(&tables), module_(module) {
  const size_t smi = static_cast<size_t>(module);
  vis_attr_.assign(static_cast<size_t>(tables.num_attrs), false);
  for (int a = 0; a < tables.num_attrs; ++a) {
    vis_attr_[static_cast<size_t>(a)] =
        a < visible.size() && visible.Test(a);
  }
  std::vector<int> pos_of_attr(static_cast<size_t>(tables.num_attrs), -1);
  for (size_t p = 0; p < tables.prov_ids.size(); ++p) {
    pos_of_attr[static_cast<size_t>(tables.prov_ids[p])] =
        static_cast<int>(p);
  }
  for (size_t j = 0; j < tables.out_attrs[smi].size(); ++j) {
    const AttrId id = tables.out_attrs[smi][j];
    if (vis_attr_[static_cast<size_t>(id)]) {
      vis_out_pos_.push_back(pos_of_attr[static_cast<size_t>(id)]);
      vis_out_local_.push_back(j);
    }
  }
}

void DeterminedSlotPruner::RescanLog(const std::vector<bool>& det_attr) {
  const WorkflowTables& tables = *tables_;
  const size_t smi = static_cast<size_t>(module_);
  const size_t prov_arity = tables.prov_ids.size();
  const int n = tables.num_modules;

  det_vis_pos_.clear();
  for (size_t p = 0; p < prov_arity; ++p) {
    const AttrId id = tables.prov_ids[p];
    if (det_attr[static_cast<size_t>(id)] &&
        vis_attr_[static_cast<size_t>(id)]) {
      det_vis_pos_.push_back(static_cast<int>(p));
    }
  }
  allowed_ = TupleInterner();
  prefixes_.clear();
  Tuple key(det_vis_pos_.size() + vis_out_pos_.size());
  Tuple prefix(det_vis_pos_.size());
  for (int64_t e = 0; e < tables.num_execs; ++e) {
    const int32_t* row =
        &tables.orig_rows[static_cast<size_t>(e) * prov_arity];
    size_t q = 0;
    for (int p : det_vis_pos_) key[q++] = row[static_cast<size_t>(p)];
    for (size_t j = 0; j < det_vis_pos_.size(); ++j) prefix[j] = key[j];
    for (int p : vis_out_pos_) key[q++] = row[static_cast<size_t>(p)];
    allowed_.Intern(key);
    prefixes_[tables.orig_in_code[static_cast<size_t>(e) *
                                      static_cast<size_t>(n) +
                                  smi]]
        .insert(prefix);
  }
  scanned_ = true;
}

std::vector<std::vector<int32_t>> DeterminedSlotPruner::CandidateLists(
    const ValueFilter& value_ok) const {
  PV_CHECK_MSG(scanned_, "call RescanLog before CandidateLists");
  const WorkflowTables& tables = *tables_;
  const size_t smi = static_cast<size_t>(module_);
  const int64_t range = tables.range_size[smi];
  const size_t n_out = tables.out_attrs[smi].size();

  std::vector<std::vector<int32_t>> lists;
  lists.reserve(prefixes_.size());
  Tuple key;
  for (const auto& [d, prefix_set] : prefixes_) {
    (void)d;
    std::vector<int32_t> codes;
    for (int64_t c = 0; c < range; ++c) {
      const int32_t* vals =
          &tables.out_values[smi][static_cast<size_t>(c) * n_out];
      bool ok = true;
      if (value_ok) {
        for (size_t j = 0; ok && j < n_out; ++j) ok = value_ok(j, vals[j]);
      }
      for (auto it = prefix_set.begin(); ok && it != prefix_set.end(); ++it) {
        key.assign(it->begin(), it->end());
        for (size_t j : vis_out_local_) key.push_back(vals[j]);
        ok = allowed_.Find(key) >= 0;
      }
      if (ok) codes.push_back(static_cast<int32_t>(c));
    }
    lists.push_back(std::move(codes));
  }
  return lists;
}

FeasibleSetAnalysis AnalyzeFeasibleSets(const WorkflowTables& tables,
                                        const Bitset64& visible,
                                        const std::vector<int>& fixed_modules) {
  PV_CHECK_MSG(tables.log_materialized,
               "feasible-set analysis replays the original execution log; "
               "rebuild the tables with materialize_threshold >= num_execs");
  const Workflow& workflow = *tables.workflow;
  const AttributeCatalog& catalog = *workflow.catalog();
  const int n = tables.num_modules;
  const int num_attrs = tables.num_attrs;
  const size_t prov_arity = tables.prov_ids.size();

  FeasibleSetAnalysis result;
  result.pinned_attr.assign(static_cast<size_t>(num_attrs), false);
  result.determined.assign(static_cast<size_t>(n), false);
  result.forced.assign(static_cast<size_t>(n), false);
  result.det_slot_codes.resize(static_cast<size_t>(n));
  result.feasible_in_codes.resize(static_cast<size_t>(n));
  result.feasible_out_codes.resize(static_cast<size_t>(n));

  std::vector<bool> fixed(static_cast<size_t>(n), false);
  for (int i : fixed_modules) {
    PV_CHECK(i >= 0 && i < n);
    fixed[static_cast<size_t>(i)] = true;
  }

  std::vector<bool> vis_attr(static_cast<size_t>(num_attrs), false);
  for (int a = 0; a < num_attrs; ++a) {
    vis_attr[static_cast<size_t>(a)] = a < visible.size() && visible.Test(a);
  }
  std::vector<int> pos_of_attr(static_cast<size_t>(num_attrs), -1);
  for (size_t p = 0; p < prov_arity; ++p) {
    pos_of_attr[static_cast<size_t>(tables.prov_ids[p])] = static_cast<int>(p);
  }

  // Distinct original values per provenance attribute: the narrowing applied
  // to visible attributes (their view column) and to attributes that become
  // pinned (only original values can then occur).
  std::vector<ValueSet> orig_vals(static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    orig_vals[static_cast<size_t>(a)].assign(
        static_cast<size_t>(catalog.DomainSize(a)), 0);
  }
  for (int64_t e = 0; e < tables.num_execs; ++e) {
    const int32_t* row = &tables.orig_rows[static_cast<size_t>(e) * prov_arity];
    for (size_t p = 0; p < prov_arity; ++p) {
      orig_vals[static_cast<size_t>(tables.prov_ids[p])]
               [static_cast<size_t>(row[p])] = 1;
    }
  }

  // feasible_values as bitmaps; start at the full domain, then apply the
  // visible-column narrowing for attributes the provenance view exposes.
  std::vector<ValueSet> feas(static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    feas[static_cast<size_t>(a)].assign(
        static_cast<size_t>(catalog.DomainSize(a)), 1);
    if (pos_of_attr[static_cast<size_t>(a)] >= 0 &&
        vis_attr[static_cast<size_t>(a)]) {
      IntersectInto(&feas[static_cast<size_t>(a)],
                    orig_vals[static_cast<size_t>(a)]);
    }
  }

  // Monotone-state versions. `state_version` bumps on every pin and every
  // feasible-set shrink: a determined module's candidate lists are a pure
  // function of that state, so recomputation is skipped while the version a
  // module last computed against still matches (in particular the whole
  // confirming final sweep recomputes nothing). `pin_version` bumps on pins
  // only — the log-scan structures depend on nothing else.
  int64_t state_version = 0;
  int64_t pin_version = 0;

  auto pin = [&](AttrId a, bool* changed) {
    if (result.pinned_attr[static_cast<size_t>(a)]) return;
    result.pinned_attr[static_cast<size_t>(a)] = true;
    if (pos_of_attr[static_cast<size_t>(a)] >= 0) {
      IntersectInto(&feas[static_cast<size_t>(a)],
                    orig_vals[static_cast<size_t>(a)]);
    }
    ++state_version;
    ++pin_version;
    *changed = true;
  };
  {
    bool ignored = false;
    for (AttrId a : workflow.initial_input_ids()) pin(a, &ignored);
  }

  // Input-attribute value of domain code d (little-endian strides).
  auto in_value = [&](int mi, int64_t d, size_t j) {
    const size_t smi = static_cast<size_t>(mi);
    return static_cast<int32_t>((d / tables.in_strides[smi][j]) %
                                tables.in_radices[smi][j]);
  };

  // Recomputes module mi's per-reached-slot candidate lists (mi determined
  // and free) through the shared DeterminedSlotPruner — the same
  // visible-projection test the use_feasible_sets=false engine runs, here
  // with the extended pinned set and intersected with the per-attribute
  // feasible sets of ALL outputs (hidden ones included: that is where
  // downstream narrowing bites). The O(num_execs) log scan depends only on
  // the pinned-visible set, so it is cached per module and redone only
  // when a pin landed since the module's last scan; feasible-set shrinks
  // alone rerun just the per-code filter.
  std::vector<std::unique_ptr<DeterminedSlotPruner>> pruners(
      static_cast<size_t>(n));
  std::vector<int64_t> scan_pin_version(static_cast<size_t>(n), -1);
  auto compute_det_lists = [&](int mi) {
    const size_t smi = static_cast<size_t>(mi);
    if (pruners[smi] == nullptr) {
      pruners[smi] =
          std::make_unique<DeterminedSlotPruner>(tables, mi, visible);
    }
    if (scan_pin_version[smi] != pin_version) {
      pruners[smi]->RescanLog(result.pinned_attr);
      scan_pin_version[smi] = pin_version;
    }
    std::vector<std::vector<int32_t>> lists =
        pruners[smi]->CandidateLists([&](size_t j, int32_t v) {
          const AttrId id = tables.out_attrs[smi][j];
          return feas[static_cast<size_t>(id)][static_cast<size_t>(v)] != 0;
        });
    bool all_singleton = true;
    for (const auto& codes : lists) {
      PV_CHECK_MSG(!codes.empty(),
                   "feasible-set analysis emptied a reached slot of module "
                       << workflow.module(mi).name()
                       << " (the original code must always survive)");
      if (codes.size() != 1) all_singleton = false;
    }
    result.det_slot_codes[smi] = std::move(lists);
    return all_singleton;
  };

  // The fixpoint loop. Every component is monotone (pinned bits set, value
  // sets and candidate lists shrink), so the sweep count is finite; see the
  // header's termination argument.
  std::vector<ValueSet> out_feasible(static_cast<size_t>(n));
  std::vector<int64_t> lists_version(static_cast<size_t>(n), -1);
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;

    // (1) Determinedness, candidate lists, forcing — in topological order so
    // pinnedness crosses a whole chain of forced stages in one sweep.
    for (int mi : workflow.topo_order()) {
      const size_t smi = static_cast<size_t>(mi);
      bool det = true;
      for (AttrId id : tables.in_attrs[smi]) {
        det = det && result.pinned_attr[static_cast<size_t>(id)];
      }
      if (det && !result.determined[smi]) changed = true;
      result.determined[smi] = det;
      if (!det) continue;
      if (fixed[smi]) {
        for (AttrId id : tables.out_attrs[smi]) pin(id, &changed);
        continue;
      }
      // Once forced, every list is the {original code} singleton — minimal
      // under any further narrowing — so the (full-log) recomputation can
      // be skipped on later sweeps; only re-pin the outputs.
      if (result.forced[smi]) {
        for (AttrId id : tables.out_attrs[smi]) pin(id, &changed);
        continue;
      }
      if (lists_version[smi] == state_version) continue;  // inputs unchanged
      result.forced[smi] = compute_det_lists(mi);
      lists_version[smi] = state_version;
      if (result.forced[smi]) {
        changed = true;
        for (AttrId id : tables.out_attrs[smi]) pin(id, &changed);
      }
    }

    // (2) Forward value propagation: image of the feasible input-code set
    // under the module (fixed: its function; free: every output code whose
    // attribute values are feasible — for determined free modules, the
    // union of the per-slot candidate lists).
    for (int mi : workflow.topo_order()) {
      const size_t smi = static_cast<size_t>(mi);
      const int64_t range = tables.range_size[smi];
      const size_t n_out = tables.out_attrs[smi].size();
      ValueSet& out_ok = out_feasible[smi];
      out_ok.assign(static_cast<size_t>(range), 0);
      if (fixed[smi]) {
        if (result.determined[smi]) {
          for (int32_t d : tables.orig_input_codes[smi]) {
            out_ok[static_cast<size_t>(
                tables.original_fn[smi][static_cast<size_t>(d)])] = 1;
          }
        } else {
          for (int64_t d = 0; d < tables.dom_size[smi]; ++d) {
            bool ok = true;
            for (size_t j = 0; ok && j < tables.in_attrs[smi].size(); ++j) {
              const AttrId id = tables.in_attrs[smi][j];
              ok = feas[static_cast<size_t>(id)]
                       [static_cast<size_t>(in_value(mi, d, j))];
            }
            if (ok) {
              out_ok[static_cast<size_t>(
                  tables.original_fn[smi][static_cast<size_t>(d)])] = 1;
            }
          }
        }
      } else if (result.determined[smi]) {
        for (const auto& codes : result.det_slot_codes[smi]) {
          for (int32_t c : codes) out_ok[static_cast<size_t>(c)] = 1;
        }
      } else {
        for (int64_t c = 0; c < range; ++c) {
          const int32_t* vals =
              &tables.out_values[smi][static_cast<size_t>(c) * n_out];
          bool ok = true;
          for (size_t j = 0; ok && j < n_out; ++j) {
            const AttrId id = tables.out_attrs[smi][j];
            ok = feas[static_cast<size_t>(id)][static_cast<size_t>(vals[j])];
          }
          if (ok) out_ok[static_cast<size_t>(c)] = 1;
        }
      }
      // Narrow each output attribute to the projection of the surviving
      // codes.
      for (size_t j = 0; j < n_out; ++j) {
        const AttrId id = tables.out_attrs[smi][j];
        ValueSet proj(feas[static_cast<size_t>(id)].size(), 0);
        for (int64_t c = 0; c < range; ++c) {
          if (!out_ok[static_cast<size_t>(c)]) continue;
          proj[static_cast<size_t>(
              tables.out_values[smi][static_cast<size_t>(c) * n_out + j])] = 1;
        }
        if (IntersectInto(&feas[static_cast<size_t>(id)], proj)) {
          ++state_version;
          changed = true;
        }
      }
    }

    // (3) Backward narrowing through fixed modules: drop input codes whose
    // image left the feasible output-code set, then narrow the input
    // attributes to the survivors' projections. Free modules transmit no
    // constraint backward (any input can map to any feasible output).
    const std::vector<int>& topo = workflow.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const int mi = *it;
      const size_t smi = static_cast<size_t>(mi);
      if (!fixed[smi] || result.determined[smi]) continue;
      const size_t n_in = tables.in_attrs[smi].size();
      const size_t n_out = tables.out_attrs[smi].size();
      // Feasible output codes under the current per-attribute sets.
      std::vector<ValueSet> in_proj(n_in);
      for (size_t j = 0; j < n_in; ++j) {
        in_proj[j].assign(
            feas[static_cast<size_t>(tables.in_attrs[smi][j])].size(), 0);
      }
      for (int64_t d = 0; d < tables.dom_size[smi]; ++d) {
        bool ok = true;
        for (size_t j = 0; ok && j < n_in; ++j) {
          const AttrId id = tables.in_attrs[smi][j];
          ok = feas[static_cast<size_t>(id)]
                   [static_cast<size_t>(in_value(mi, d, j))];
        }
        const int32_t c = tables.original_fn[smi][static_cast<size_t>(d)];
        const int32_t* vals =
            &tables.out_values[smi][static_cast<size_t>(c) * n_out];
        for (size_t j = 0; ok && j < n_out; ++j) {
          const AttrId id = tables.out_attrs[smi][j];
          ok = feas[static_cast<size_t>(id)][static_cast<size_t>(vals[j])];
        }
        if (!ok) continue;
        for (size_t j = 0; j < n_in; ++j) {
          in_proj[j][static_cast<size_t>(in_value(mi, d, j))] = 1;
        }
      }
      for (size_t j = 0; j < n_in; ++j) {
        const AttrId id = tables.in_attrs[smi][j];
        if (IntersectInto(&feas[static_cast<size_t>(id)], in_proj[j])) {
          ++state_version;
          changed = true;
        }
      }
    }
  }

  // Finalize the exported sets.
  result.feasible_values.resize(static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    result.feasible_values[static_cast<size_t>(a)] =
        ToSortedValues(feas[static_cast<size_t>(a)]);
  }
  for (int mi = 0; mi < n; ++mi) {
    const size_t smi = static_cast<size_t>(mi);
    result.feasible_out_codes[smi] = ToSortedValues(out_feasible[smi]);
    if (result.determined[smi]) continue;
    std::vector<int32_t>& din = result.feasible_in_codes[smi];
    for (int64_t d = 0; d < tables.dom_size[smi]; ++d) {
      bool ok = true;
      for (size_t j = 0; ok && j < tables.in_attrs[smi].size(); ++j) {
        const AttrId id = tables.in_attrs[smi][j];
        ok = feas[static_cast<size_t>(id)]
                 [static_cast<size_t>(in_value(mi, d, j))];
      }
      if (ok) din.push_back(static_cast<int32_t>(d));
    }
    result.factored_free_slots +=
        tables.dom_size[smi] - static_cast<int64_t>(din.size());
    // Tracked OUT-set inputs are original codes and must never be factored.
    PV_CHECK(std::includes(din.begin(), din.end(),
                           tables.orig_input_codes[smi].begin(),
                           tables.orig_input_codes[smi].end()));
  }
  return result;
}

}  // namespace provview
