#include "privacy/safe_subset_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/combinatorics.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "privacy/standalone_privacy.h"

namespace provview {

namespace {

// Local view of the module's attributes: inputs followed by outputs.
std::vector<AttrId> LocalAttrs(const std::vector<AttrId>& inputs,
                               const std::vector<AttrId>& outputs) {
  std::vector<AttrId> attrs = inputs;
  attrs.insert(attrs.end(), outputs.begin(), outputs.end());
  return attrs;
}

// Fills `result` with the cheapest of `minimal` under the catalog's
// attribute costs (with non-negative costs the optimum over all safe sets
// is attained at a minimal one).
void PickMinCost(const std::vector<Bitset64>& minimal,
                 const AttributeCatalog& catalog, MinCostSafeResult* result) {
  double best = std::numeric_limits<double>::infinity();
  for (const Bitset64& hidden : minimal) {
    double cost = 0.0;
    for (AttrId id : hidden.ToVector()) cost += catalog.Cost(id);
    if (cost < best) {
      best = cost;
      result->hidden = hidden;
      result->found = true;
    }
  }
  if (result->found) result->cost = best;
}

// Task count for one lattice level (or cell grid) on the task-graph path:
// oversubscribe threads so work stealing can balance skewed rank ranges,
// bounded so per-task overlay/log overhead stays negligible. Results and
// stats do not depend on the count (rank-order absorb + log replay), only
// wall-clock does.
int LatticeTaskCount(int64_t total, int threads, int64_t min_parallel) {
  if (threads <= 1 || total <= min_parallel) return 1;
  const int64_t grain = std::max<int64_t>(int64_t{1}, min_parallel);
  constexpr int64_t kOversubscription = 4;
  constexpr int64_t kMaxTasks = 64;
  return static_cast<int>(
      std::min({(total + grain - 1) / grain,
                static_cast<int64_t>(threads) * kOversubscription, kMaxTasks,
                total}));
}

// Contiguous [begin, end) rank ranges, ceil-divided like
// ThreadPool::ShardedFor so the two modes cut levels identically.
std::pair<int64_t, int64_t> TaskRange(int64_t total, int tasks, int index) {
  const int64_t chunk = (total + tasks - 1) / tasks;
  const int64_t begin = std::min<int64_t>(total, chunk * index);
  const int64_t end = std::min<int64_t>(total, begin + chunk);
  return {begin, end};
}

// The explicit materialize_threshold parameter of the Module convenience
// overloads wins when the caller moved it off the default; otherwise the
// EngineConfig field applies.
int64_t ResolveThreshold(int64_t param, const SubsetSearchOptions& opts) {
  return param != Module::kDefaultMaterializeRows
             ? param
             : opts.materialize_threshold;
}

}  // namespace

std::vector<Bitset64> MinimalSafeHiddenSets(SafetyMemo* memo,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int universe, int64_t gamma,
                                            SafeSearchStats* stats,
                                            const SubsetSearchOptions& opts) {
  const std::vector<AttrId> attrs = LocalAttrs(inputs, outputs);
  const int k = static_cast<int>(attrs.size());
  PV_CHECK_MSG(k <= kMaxSubsetSearchAttrs,
               "subset search limited to k <= " << kMaxSubsetSearchAttrs
                                                << ", got " << k);
  const int threads = ThreadPool::Resolve(opts.num_threads);
  const ExecControl* control = opts.control;

  std::vector<Bitset64> minimal;
  if (control != nullptr && control->ExpiredNow()) return minimal;

  // One combo of the current level: examined, dominance-tested against the
  // minimal sets of the completed levels (same-size sets are incomparable,
  // so the in-flight level never has to see its own discoveries), then
  // safety-tested through a memo.
  auto visit = [&](const Bitset64& combo, SafetyMemo* m, SafeSearchStats* s,
                   std::vector<Bitset64>* safe) {
    ++s->subsets_examined;
    Bitset64 hidden(universe);
    for (int local : combo.ToVector()) {
      hidden.Set(attrs[static_cast<size_t>(local)]);
    }
    for (const Bitset64& mset : minimal) {
      if (mset.IsSubsetOf(hidden)) return;  // safe but not minimal (Prop. 1)
    }
    if (m->IsSafe(hidden, gamma, s)) safe->push_back(hidden);
  };

  // Fully sequential walk — the reference semantics every parallel mode
  // must match byte-for-byte, and the resolved-1-thread fast path: no
  // shard bookkeeping, no memo overlays, no executor.
  if (threads <= 1) {
    for (int size = 0; size <= k; ++size) {
      const int64_t total = BinomialCoefficient(k, size);
      std::vector<Bitset64> safe;
      ForEachSubsetOfSizeRangeWhile(k, size, 0, total,
                                    [&](const Bitset64& combo) {
                                      visit(combo, memo, stats, &safe);
                                      return control == nullptr ||
                                             !control->Expired();
                                    });
      // A level cut short by the deadline may have missed minimal sets, so
      // its partial discoveries cannot be merged (they would masquerade as
      // the complete antichain). Return the completed levels only.
      if (control != nullptr && control->ExpiredNow()) return minimal;
      minimal.insert(minimal.end(), safe.begin(), safe.end());
    }
    return minimal;
  }

  if (opts.use_task_graph) {
    // Task-graph walk. Per level: `prep` folds the previous level's staged
    // results into the shared memo and `minimal`, then rank-range shard
    // tasks walk their slice on O(1) overlays of the (now frozen) memo,
    // each releasing an absorb task the moment it finishes. The absorb
    // chain runs in rank order, replaying shard lookup logs into a staging
    // overlay while later shards still compute — the barrier the fork-join
    // path pays per level becomes a pipeline. Discoveries concatenate in
    // rank order and log replay reproduces sequential accounting, so
    // results, their order, and SafeSearchStats are all byte-identical to
    // the sequential walk at any thread count.
    TaskGraphExecutor* executor = opts.executor;
    std::unique_ptr<TaskGraphExecutor> local_executor;
    if (executor == nullptr) {
      // The caller helps, so threads runners total — parity with the
      // barrier path's pool of `threads` workers (whose caller blocks).
      local_executor = std::make_unique<TaskGraphExecutor>(threads - 1);
      executor = local_executor.get();
    }

    struct Shard {
      std::unique_ptr<SafetyMemo> memo;  // overlay, frozen base
      SafetyMemo::LookupLog log;
      std::vector<Bitset64> safe;
      int64_t examined = 0;
      int64_t begin = 0;
      int64_t end = 0;
    };
    struct Level {
      int64_t total = 0;
      std::unique_ptr<SafetyMemo> staging;  // absorb target, overlay of memo
      std::vector<Shard> shards;
      std::vector<Bitset64> discoveries;  // rank-order concatenation
    };
    std::vector<Level> levels(static_cast<size_t>(k) + 1);

    TaskGraph graph;
    TaskGraph::TaskId chain = -1;  // last absorb of the previous level
    for (int size = 0; size <= k; ++size) {
      Level* level = &levels[static_cast<size_t>(size)];
      level->total = BinomialCoefficient(k, size);
      const int tasks =
          LatticeTaskCount(level->total, threads, opts.min_parallel_subsets);
      level->shards.resize(static_cast<size_t>(tasks));
      for (int s = 0; s < tasks; ++s) {
        const auto [begin, end] = TaskRange(level->total, tasks, s);
        level->shards[static_cast<size_t>(s)].begin = begin;
        level->shards[static_cast<size_t>(s)].end = end;
      }
      Level* prev = size > 0 ? &levels[static_cast<size_t>(size) - 1] : nullptr;
      const TaskGraph::TaskId prep = graph.Add(
          [&, level, prev] {
            if (prev != nullptr) {
              memo->Absorb(*prev->staging);
              minimal.insert(minimal.end(), prev->discoveries.begin(),
                             prev->discoveries.end());
            }
            level->staging = memo->NewOverlay();
            for (Shard& sh : level->shards) sh.memo = memo->NewOverlay();
          },
          chain >= 0 ? std::vector<TaskGraph::TaskId>{chain}
                     : std::vector<TaskGraph::TaskId>{});
      chain = prep;
      for (int s = 0; s < tasks; ++s) {
        Shard* sh = &level->shards[static_cast<size_t>(s)];
        const TaskGraph::TaskId work = graph.Add(
            [&, sh, size] {
              ForEachSubsetOfSizeRangeWhile(
                  k, size, sh->begin, sh->end, [&](const Bitset64& combo) {
                    ++sh->examined;
                    Bitset64 hidden(universe);
                    for (int local : combo.ToVector()) {
                      hidden.Set(attrs[static_cast<size_t>(local)]);
                    }
                    bool dominated = false;
                    for (const Bitset64& mset : minimal) {
                      if (mset.IsSubsetOf(hidden)) {
                        dominated = true;
                        break;
                      }
                    }
                    if (!dominated &&
                        sh->memo->IsSafe(hidden, gamma, nullptr, &sh->log)) {
                      sh->safe.push_back(hidden);
                    }
                    return control == nullptr || !control->Expired();
                  });
            },
            {prep});
        chain = graph.Add(
            [&, sh, level] {
              stats->subsets_examined += sh->examined;
              level->staging->AbsorbLog(sh->log, stats);
              level->discoveries.insert(level->discoveries.end(),
                                        sh->safe.begin(), sh->safe.end());
              sh->memo.reset();  // drop shard scratch as the chain advances
              sh->log = SafetyMemo::LookupLog{};
            },
            {work, chain});
      }
    }
    graph.Add(
        [&] {
          Level* last = &levels[static_cast<size_t>(k)];
          memo->Absorb(*last->staging);
          minimal.insert(minimal.end(), last->discoveries.begin(),
                         last->discoveries.end());
        },
        {chain});
    // A tripped control skips all remaining bodies, so fold tasks stop
    // merging at the first incomplete level: `minimal` holds exactly the
    // completed levels, same contract as the walks above. The Status comes
    // out of control->Check(); discard it here like the barrier path does.
    (void)graph.Run(executor, control);
    return minimal;
  }

  // Historical barrier fork-join walk (use_task_graph = false), kept for
  // A/B equivalence and bench races. Enumerates by increasing cardinality;
  // every level is an antichain, so its contiguous rank shards are
  // independent given the completed levels. Shards work on O(1) overlays
  // of the level-start memo with lookup logs (the retired Clone() path
  // copied whole caches per shard per level); the level barrier replays
  // the logs in shard (= lexicographic) order, so discoveries, their
  // order, and SafeSearchStats are byte-identical to the sequential walk.
  std::unique_ptr<ThreadPool> pool;
  for (int size = 0; size <= k; ++size) {
    const int64_t total = BinomialCoefficient(k, size);
    const int shards = static_cast<int>(std::min<int64_t>(
        total <= opts.min_parallel_subsets ? 1 : threads, total));
    if (shards <= 1) {
      std::vector<Bitset64> safe;
      ForEachSubsetOfSizeRangeWhile(k, size, 0, total,
                                    [&](const Bitset64& combo) {
                                      visit(combo, memo, stats, &safe);
                                      return control == nullptr ||
                                             !control->Expired();
                                    });
      if (control != nullptr && control->ExpiredNow()) return minimal;
      minimal.insert(minimal.end(), safe.begin(), safe.end());
      continue;
    }
    struct ShardOut {
      std::unique_ptr<SafetyMemo> memo;  // overlay, frozen base
      SafetyMemo::LookupLog log;
      std::vector<Bitset64> safe;
      int64_t examined = 0;
    };
    std::vector<ShardOut> outs(static_cast<size_t>(shards));
    for (ShardOut& o : outs) o.memo = memo->NewOverlay();
    if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
    pool->ShardedFor(
        total, shards, [&](int shard, int64_t begin, int64_t end) {
          ShardOut& o = outs[static_cast<size_t>(shard)];
          ForEachSubsetOfSizeRangeWhile(
              k, size, begin, end, [&](const Bitset64& combo) {
                ++o.examined;
                Bitset64 hidden(universe);
                for (int local : combo.ToVector()) {
                  hidden.Set(attrs[static_cast<size_t>(local)]);
                }
                bool dominated = false;
                for (const Bitset64& mset : minimal) {
                  if (mset.IsSubsetOf(hidden)) {
                    dominated = true;
                    break;
                  }
                }
                if (!dominated &&
                    o.memo->IsSafe(hidden, gamma, nullptr, &o.log)) {
                  o.safe.push_back(hidden);
                }
                return control == nullptr || !control->Expired();
              });
        });
    // Level barrier: replay shard logs into the memo in shard order —
    // sequential-exact accounting. Settled verdicts are still absorbed on
    // a tripped level (they are correct and reusable), but its incomplete
    // discoveries are dropped — see the sequential branch above.
    const bool level_tripped =
        control != nullptr && control->ExpiredNow();
    for (ShardOut& o : outs) {
      stats->subsets_examined += o.examined;
      memo->AbsorbLog(o.log, stats);
      if (!level_tripped) {
        minimal.insert(minimal.end(), o.safe.begin(), o.safe.end());
      }
    }
    if (level_tripped) return minimal;
  }
  return minimal;
}

std::vector<Bitset64> MinimalSafeHiddenSets(SafetyMemo* memo,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int universe, int64_t gamma,
                                            SafeSearchStats* stats) {
  return MinimalSafeHiddenSets(memo, inputs, outputs, universe, gamma, stats,
                               SubsetSearchOptions{});
}

std::vector<Bitset64> MinimalSafeHiddenSets(const Relation& rel,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int64_t gamma,
                                            SafeSearchStats* stats) {
  SafeSearchStats local_stats;
  SafetyMemo memo(rel, inputs, outputs);
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(&memo, inputs, outputs,
                            rel.schema().catalog()->size(), gamma,
                            &local_stats);
  if (stats != nullptr) *stats = local_stats;
  return minimal;
}

MinCostSafeResult MinCostSafeHiddenSet(const Relation& rel,
                                       const std::vector<AttrId>& inputs,
                                       const std::vector<AttrId>& outputs,
                                       int64_t gamma) {
  MinCostSafeResult result;
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(rel, inputs, outputs, gamma, &result.stats);
  PickMinCost(minimal, *rel.schema().catalog(), &result);
  return result;
}

std::vector<Bitset64> MinimalSafeHiddenSets(const Module& module,
                                            int64_t gamma,
                                            SafeSearchStats* stats,
                                            int64_t materialize_threshold,
                                            const SubsetSearchOptions& opts) {
  SafeSearchStats local_stats;
  SafetyMemo memo(module, ResolveThreshold(materialize_threshold, opts));
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(&memo, module.inputs(), module.outputs(),
                            module.catalog()->size(), gamma, &local_stats,
                            opts);
  if (stats != nullptr) *stats = local_stats;
  return minimal;
}

MinCostSafeResult MinCostSafeHiddenSet(const Module& module, int64_t gamma,
                                       int64_t materialize_threshold,
                                       const SubsetSearchOptions& opts) {
  MinCostSafeResult result;
  SafetyMemo memo(module, ResolveThreshold(materialize_threshold, opts));
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(&memo, module.inputs(), module.outputs(),
                            module.catalog()->size(), gamma, &result.stats,
                            opts);
  PickMinCost(minimal, *module.catalog(), &result);
  return result;
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int64_t gamma) {
  SafetyMemo memo(rel, inputs, outputs);
  return MinimalSafeCardinalityPairs(&memo, inputs, outputs,
                                     rel.schema().catalog()->size(), gamma);
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    SafetyMemo* memo, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int universe, int64_t gamma,
    const SubsetSearchOptions& opts, SafeSearchStats* stats) {
  const int ni = static_cast<int>(inputs.size());
  const int no = static_cast<int>(outputs.size());
  const ExecControl* control = opts.control;
  PV_CHECK_MSG(ni + no <= kMaxSubsetSearchAttrs,
               "cardinality search limited to k <= "
                   << kMaxSubsetSearchAttrs);

  // Verdict of one grid cell: EVERY subset hiding exactly a inputs and b
  // outputs is safe. Identical to the sequential evaluation's fixpoint for
  // the cell (an early unsafe subset just short-circuits the AND sooner).
  // With a non-null `log` the lookups are recorded instead of counted —
  // the task-graph mode's replay-exact accounting.
  auto cell_safe = [&](int a, int b, SafetyMemo* m, SafeSearchStats* s,
                       SafetyMemo::LookupLog* log, int64_t* examined) {
    bool all_safe = true;
    ForEachSubsetOfSizeRangeWhile(
        ni, a, 0, BinomialCoefficient(ni, a), [&](const Bitset64& in_combo) {
          ForEachSubsetOfSizeRangeWhile(
              no, b, 0, BinomialCoefficient(no, b),
              [&](const Bitset64& out_combo) {
                Bitset64 hidden(universe);
                for (int local : in_combo.ToVector()) {
                  hidden.Set(inputs[static_cast<size_t>(local)]);
                }
                for (int local : out_combo.ToVector()) {
                  hidden.Set(outputs[static_cast<size_t>(local)]);
                }
                ++*examined;
                const bool safe = m->IsSafe(hidden, gamma, s, log);
                if (!safe) all_safe = false;
                // First unsafe subset — or a tripped control — stops the
                // cell. A deadline-cut cell leaves a stale verdict in the
                // grid; the caller must discard the frontier whenever
                // control->Check() is non-OK afterwards.
                return all_safe &&
                       (control == nullptr || !control->Expired());
              });
          return all_safe && (control == nullptr || !control->Expired());
        });
    return all_safe;
  };

  // safe_all[a][b]: every cell verdict is independent given a verdict
  // cache, so cells shard (row-major ranges) across either parallel mode;
  // the grid — and the frontier below — is identical to the sequential
  // walk for every thread count.
  SafeSearchStats local_stats;
  // One byte per cell (not vector<bool>: shards write adjacent cells, and
  // distinct bytes are distinct memory locations while bits are not).
  const int64_t cells = static_cast<int64_t>(ni + 1) * (no + 1);
  std::vector<uint8_t> safe_all(static_cast<size_t>(cells), 1);
  auto cell_at = [no](int a, int b) {
    return static_cast<size_t>(a) * static_cast<size_t>(no + 1) +
           static_cast<size_t>(b);
  };
  const int64_t lattice = int64_t{1} << (ni + no);
  const int threads = ThreadPool::Resolve(opts.num_threads);
  const bool parallel =
      threads > 1 && lattice > opts.min_parallel_subsets && cells > 1;
  if (!parallel) {
    for (int a = 0; a <= ni; ++a) {
      for (int b = 0; b <= no; ++b) {
        if (control != nullptr && control->ExpiredNow()) break;
        safe_all[cell_at(a, b)] =
            cell_safe(a, b, memo, &local_stats, nullptr,
                      &local_stats.subsets_examined)
                ? 1
                : 0;
      }
    }
  } else if (opts.use_task_graph) {
    // Cell-range tasks on overlays of the frozen memo; the absorb chain
    // replays lookup logs in range (= row-major) order into a staging
    // overlay, folded into the memo by the final task. Same grid, same
    // stats as the sequential loop.
    struct CellShard {
      std::unique_ptr<SafetyMemo> memo;
      SafetyMemo::LookupLog log;
      int64_t examined = 0;
      int64_t begin = 0;
      int64_t end = 0;
    };
    const int tasks = LatticeTaskCount(cells, threads, 1);
    std::vector<CellShard> cell_shards(static_cast<size_t>(tasks));
    std::unique_ptr<SafetyMemo> staging = memo->NewOverlay();
    TaskGraph graph;
    TaskGraph::TaskId chain = -1;
    for (int s = 0; s < tasks; ++s) {
      CellShard* sh = &cell_shards[static_cast<size_t>(s)];
      std::tie(sh->begin, sh->end) = TaskRange(cells, tasks, s);
      sh->memo = memo->NewOverlay();
      const TaskGraph::TaskId work = graph.Add([&, sh] {
        for (int64_t cell = sh->begin; cell < sh->end; ++cell) {
          if (control != nullptr && control->ExpiredNow()) return;
          const int a = static_cast<int>(cell / (no + 1));
          const int b = static_cast<int>(cell % (no + 1));
          safe_all[cell_at(a, b)] =
              cell_safe(a, b, sh->memo.get(), nullptr, &sh->log,
                        &sh->examined)
                  ? 1
                  : 0;
        }
      });
      chain = graph.Add(
          [&, sh] {
            local_stats.subsets_examined += sh->examined;
            staging->AbsorbLog(sh->log, &local_stats);
            sh->memo.reset();
            sh->log = SafetyMemo::LookupLog{};
          },
          chain >= 0 ? std::vector<TaskGraph::TaskId>{work, chain}
                     : std::vector<TaskGraph::TaskId>{work});
    }
    graph.Add([&] { memo->Absorb(*staging); }, {chain});
    TaskGraphExecutor* executor = opts.executor;
    std::unique_ptr<TaskGraphExecutor> local_executor;
    if (executor == nullptr) {
      local_executor = std::make_unique<TaskGraphExecutor>(threads - 1);
      executor = local_executor.get();
    }
    (void)graph.Run(executor, control);
  } else {
    // Barrier mode: cell-range shards on overlays of the frozen memo; the
    // barrier replays the lookup logs in shard (= row-major) order — same
    // grid, same sequential-exact stats as the task-graph schedule.
    const int shards = static_cast<int>(std::min<int64_t>(threads, cells));
    struct ShardOut {
      std::unique_ptr<SafetyMemo> memo;  // overlay, frozen base
      SafetyMemo::LookupLog log;
      int64_t examined = 0;
    };
    std::vector<ShardOut> outs(static_cast<size_t>(shards));
    for (ShardOut& o : outs) o.memo = memo->NewOverlay();
    ThreadPool pool(shards);
    pool.ShardedFor(cells, shards, [&](int shard, int64_t begin, int64_t end) {
      ShardOut& o = outs[static_cast<size_t>(shard)];
      for (int64_t cell = begin; cell < end; ++cell) {
        if (control != nullptr && control->ExpiredNow()) return;
        const int a = static_cast<int>(cell / (no + 1));
        const int b = static_cast<int>(cell % (no + 1));
        safe_all[cell_at(a, b)] =
            cell_safe(a, b, o.memo.get(), nullptr, &o.log, &o.examined)
                ? 1
                : 0;
      }
    });
    for (ShardOut& o : outs) {
      local_stats.subsets_examined += o.examined;
      memo->AbsorbLog(o.log, &local_stats);
    }
  }
  if (stats != nullptr) stats->Accumulate(local_stats);

  // Safety of every subset at (a,b) implies it at (a+1,b) and (a,b+1) by
  // Prop. 1, so the computed table is automatically upward closed; extract
  // the minimal frontier.
  std::vector<CardinalityPair> frontier;
  for (int a = 0; a <= ni; ++a) {
    for (int b = 0; b <= no; ++b) {
      if (!safe_all[cell_at(a, b)]) continue;
      bool minimal = true;
      if (a > 0 && safe_all[cell_at(a - 1, b)]) minimal = false;
      if (b > 0 && safe_all[cell_at(a, b - 1)]) minimal = false;
      if (minimal) frontier.push_back(CardinalityPair{a, b});
    }
  }
  return frontier;
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    SafetyMemo* memo, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int universe, int64_t gamma) {
  return MinimalSafeCardinalityPairs(memo, inputs, outputs, universe, gamma,
                                     SubsetSearchOptions{});
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Module& module, int64_t gamma, int64_t materialize_threshold,
    const SubsetSearchOptions& opts) {
  SafetyMemo memo(module, ResolveThreshold(materialize_threshold, opts));
  return MinimalSafeCardinalityPairs(&memo, module.inputs(), module.outputs(),
                                     module.catalog()->size(), gamma, opts);
}

}  // namespace provview
