#include "privacy/safe_subset_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/combinatorics.h"
#include "privacy/standalone_privacy.h"

namespace provview {

namespace {

// Local view of the module's attributes: inputs followed by outputs.
std::vector<AttrId> LocalAttrs(const std::vector<AttrId>& inputs,
                               const std::vector<AttrId>& outputs) {
  std::vector<AttrId> attrs = inputs;
  attrs.insert(attrs.end(), outputs.begin(), outputs.end());
  return attrs;
}

// Memoizing wrapper around MaxStandaloneGamma for a fixed (rel, I, O).
//
// Algorithm 2's verdict is a function of the projection the hidden set
// induces, not of the hidden set itself: it depends only on (a) which
// *effective* attributes are visible — an attribute is ineffective if its
// domain has one value or it is constant across R, since then its presence
// changes neither the visible-input grouping nor the visible-output distinct
// counts — and (b) ∏|Δ_a| over the hidden outputs (the Lemma-2 extension
// factor). Candidates are therefore canonicalized to that signature and
// distinct hidden sets inducing the same projection reuse one cached Γ.
class SafetyMemo {
 public:
  SafetyMemo(const Relation& rel, const std::vector<AttrId>& inputs,
             const std::vector<AttrId>& outputs)
      : rel_(rel), inputs_(inputs), outputs_(outputs) {
    const AttributeCatalog& catalog = *rel.schema().catalog();
    const int universe = catalog.size();
    effective_ = Bitset64(universe);
    for (AttrId id : LocalAttrs(inputs, outputs)) {
      if (catalog.DomainSize(id) > 1 && !ConstantInRel(id)) {
        effective_.Set(id);
      }
    }
  }

  /// MaxStandaloneGamma(rel, I, O, hidden.Complement()), memoized on the
  /// effective visible signature. Bumps checker_calls on a miss and
  /// cache_hits on a hit.
  int64_t MaxGamma(const Bitset64& hidden, SafeSearchStats* stats) {
    const AttributeCatalog& catalog = *rel_.schema().catalog();
    int64_t hidden_ext = 1;
    for (AttrId id : outputs_) {
      if (id < hidden.size() && hidden.Test(id)) {
        hidden_ext = SaturatingMul(hidden_ext, catalog.DomainSize(id));
      }
    }
    Key key(Difference(effective_, hidden), hidden_ext);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats->cache_hits;
      return it->second;
    }
    ++stats->checker_calls;
    int64_t gamma =
        MaxStandaloneGamma(rel_, inputs_, outputs_, hidden.Complement());
    cache_.emplace(std::move(key), gamma);
    return gamma;
  }

  bool IsSafe(const Bitset64& hidden, int64_t gamma, SafeSearchStats* stats) {
    PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
    return MaxGamma(hidden, stats) >= gamma;
  }

 private:
  using Key = std::pair<Bitset64, int64_t>;

  bool ConstantInRel(AttrId id) const {
    if (rel_.empty()) return true;
    const Value first = rel_.At(rel_.rows().front(), id);
    for (const Tuple& row : rel_.rows()) {
      if (rel_.At(row, id) != first) return false;
    }
    return true;
  }

  const Relation& rel_;
  const std::vector<AttrId>& inputs_;
  const std::vector<AttrId>& outputs_;
  Bitset64 effective_;  // attrs whose visibility can change the verdict
  std::map<Key, int64_t> cache_;
};

}  // namespace

std::vector<Bitset64> MinimalSafeHiddenSets(const Relation& rel,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int64_t gamma,
                                            SafeSearchStats* stats) {
  const std::vector<AttrId> attrs = LocalAttrs(inputs, outputs);
  const int k = static_cast<int>(attrs.size());
  PV_CHECK_MSG(k <= 20, "subset search limited to k <= 20, got " << k);
  const int universe = rel.schema().catalog()->size();

  SafeSearchStats local_stats;
  SafetyMemo memo(rel, inputs, outputs);
  std::vector<Bitset64> minimal;
  // Enumerate by increasing cardinality; a candidate containing a known
  // minimal safe set is safe-but-not-minimal and is skipped (Prop. 1).
  for (int size = 0; size <= k; ++size) {
    for (const Bitset64& combo : SubsetsOfSize(k, size)) {
      ++local_stats.subsets_examined;
      Bitset64 hidden(universe);
      for (int local : combo.ToVector()) {
        hidden.Set(attrs[static_cast<size_t>(local)]);
      }
      bool dominated = false;
      for (const Bitset64& m : minimal) {
        if (m.IsSubsetOf(hidden)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      if (memo.IsSafe(hidden, gamma, &local_stats)) {
        minimal.push_back(hidden);
      }
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return minimal;
}

MinCostSafeResult MinCostSafeHiddenSet(const Relation& rel,
                                       const std::vector<AttrId>& inputs,
                                       const std::vector<AttrId>& outputs,
                                       int64_t gamma) {
  MinCostSafeResult result;
  const AttributeCatalog& catalog = *rel.schema().catalog();
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(rel, inputs, outputs, gamma, &result.stats);
  double best = std::numeric_limits<double>::infinity();
  for (const Bitset64& hidden : minimal) {
    double cost = 0.0;
    for (AttrId id : hidden.ToVector()) cost += catalog.Cost(id);
    if (cost < best) {
      best = cost;
      result.hidden = hidden;
      result.found = true;
    }
  }
  if (result.found) result.cost = best;
  return result;
}

std::vector<Bitset64> MinimalSafeHiddenSets(const Module& module,
                                            int64_t gamma,
                                            SafeSearchStats* stats) {
  return MinimalSafeHiddenSets(module.FullRelation(), module.inputs(),
                               module.outputs(), gamma, stats);
}

MinCostSafeResult MinCostSafeHiddenSet(const Module& module, int64_t gamma) {
  return MinCostSafeHiddenSet(module.FullRelation(), module.inputs(),
                              module.outputs(), gamma);
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int64_t gamma) {
  const int ni = static_cast<int>(inputs.size());
  const int no = static_cast<int>(outputs.size());
  PV_CHECK_MSG(ni + no <= 20, "cardinality search limited to k <= 20");
  const int universe = rel.schema().catalog()->size();

  // safe_all[a][b] = every subset hiding exactly a inputs and b outputs is
  // safe. Initialize to true and AND over all subsets.
  SafetyMemo memo(rel, inputs, outputs);
  SafeSearchStats memo_stats;
  std::vector<std::vector<bool>> safe_all(
      static_cast<size_t>(ni + 1),
      std::vector<bool>(static_cast<size_t>(no + 1), true));
  for (int a = 0; a <= ni; ++a) {
    for (const Bitset64& in_combo : SubsetsOfSize(ni, a)) {
      for (int b = 0; b <= no; ++b) {
        if (!safe_all[static_cast<size_t>(a)][static_cast<size_t>(b)]) {
          continue;
        }
        for (const Bitset64& out_combo : SubsetsOfSize(no, b)) {
          Bitset64 hidden(universe);
          for (int local : in_combo.ToVector()) {
            hidden.Set(inputs[static_cast<size_t>(local)]);
          }
          for (int local : out_combo.ToVector()) {
            hidden.Set(outputs[static_cast<size_t>(local)]);
          }
          if (!memo.IsSafe(hidden, gamma, &memo_stats)) {
            safe_all[static_cast<size_t>(a)][static_cast<size_t>(b)] = false;
            break;
          }
        }
      }
    }
  }
  // Monotonicity cleanup: (a,b) safe requires... note safety of every
  // subset at (a,b) implies it at (a+1,b) and (a,b+1) by Prop. 1, so the
  // computed table is automatically upward closed; extract the minimal
  // frontier.
  std::vector<CardinalityPair> frontier;
  for (int a = 0; a <= ni; ++a) {
    for (int b = 0; b <= no; ++b) {
      if (!safe_all[static_cast<size_t>(a)][static_cast<size_t>(b)]) continue;
      bool minimal = true;
      if (a > 0 && safe_all[static_cast<size_t>(a - 1)][static_cast<size_t>(b)]) {
        minimal = false;
      }
      if (b > 0 && safe_all[static_cast<size_t>(a)][static_cast<size_t>(b - 1)]) {
        minimal = false;
      }
      if (minimal) frontier.push_back(CardinalityPair{a, b});
    }
  }
  return frontier;
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(const Module& module,
                                                         int64_t gamma) {
  return MinimalSafeCardinalityPairs(module.FullRelation(), module.inputs(),
                                     module.outputs(), gamma);
}

}  // namespace provview
