#include "privacy/safe_subset_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "common/combinatorics.h"
#include "privacy/standalone_privacy.h"

namespace provview {

namespace {

// Local view of the module's attributes: inputs followed by outputs.
std::vector<AttrId> LocalAttrs(const std::vector<AttrId>& inputs,
                               const std::vector<AttrId>& outputs) {
  std::vector<AttrId> attrs = inputs;
  attrs.insert(attrs.end(), outputs.begin(), outputs.end());
  return attrs;
}

// Fills `result` with the cheapest of `minimal` under the catalog's
// attribute costs (with non-negative costs the optimum over all safe sets
// is attained at a minimal one).
void PickMinCost(const std::vector<Bitset64>& minimal,
                 const AttributeCatalog& catalog, MinCostSafeResult* result) {
  double best = std::numeric_limits<double>::infinity();
  for (const Bitset64& hidden : minimal) {
    double cost = 0.0;
    for (AttrId id : hidden.ToVector()) cost += catalog.Cost(id);
    if (cost < best) {
      best = cost;
      result->hidden = hidden;
      result->found = true;
    }
  }
  if (result->found) result->cost = best;
}

}  // namespace

std::vector<Bitset64> MinimalSafeHiddenSets(SafetyMemo* memo,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int universe, int64_t gamma,
                                            SafeSearchStats* stats) {
  const std::vector<AttrId> attrs = LocalAttrs(inputs, outputs);
  const int k = static_cast<int>(attrs.size());
  PV_CHECK_MSG(k <= 20, "subset search limited to k <= 20, got " << k);

  std::vector<Bitset64> minimal;
  // Enumerate by increasing cardinality; a candidate containing a known
  // minimal safe set is safe-but-not-minimal and is skipped (Prop. 1).
  for (int size = 0; size <= k; ++size) {
    for (const Bitset64& combo : SubsetsOfSize(k, size)) {
      ++stats->subsets_examined;
      Bitset64 hidden(universe);
      for (int local : combo.ToVector()) {
        hidden.Set(attrs[static_cast<size_t>(local)]);
      }
      bool dominated = false;
      for (const Bitset64& m : minimal) {
        if (m.IsSubsetOf(hidden)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      if (memo->IsSafe(hidden, gamma, stats)) {
        minimal.push_back(hidden);
      }
    }
  }
  return minimal;
}

std::vector<Bitset64> MinimalSafeHiddenSets(const Relation& rel,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int64_t gamma,
                                            SafeSearchStats* stats) {
  SafeSearchStats local_stats;
  SafetyMemo memo(rel, inputs, outputs);
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(&memo, inputs, outputs,
                            rel.schema().catalog()->size(), gamma,
                            &local_stats);
  if (stats != nullptr) *stats = local_stats;
  return minimal;
}

MinCostSafeResult MinCostSafeHiddenSet(const Relation& rel,
                                       const std::vector<AttrId>& inputs,
                                       const std::vector<AttrId>& outputs,
                                       int64_t gamma) {
  MinCostSafeResult result;
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(rel, inputs, outputs, gamma, &result.stats);
  PickMinCost(minimal, *rel.schema().catalog(), &result);
  return result;
}

std::vector<Bitset64> MinimalSafeHiddenSets(const Module& module,
                                            int64_t gamma,
                                            SafeSearchStats* stats,
                                            int64_t materialize_threshold) {
  SafeSearchStats local_stats;
  SafetyMemo memo(module, materialize_threshold);
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(&memo, module.inputs(), module.outputs(),
                            module.catalog()->size(), gamma, &local_stats);
  if (stats != nullptr) *stats = local_stats;
  return minimal;
}

MinCostSafeResult MinCostSafeHiddenSet(const Module& module, int64_t gamma,
                                       int64_t materialize_threshold) {
  MinCostSafeResult result;
  SafetyMemo memo(module, materialize_threshold);
  std::vector<Bitset64> minimal =
      MinimalSafeHiddenSets(&memo, module.inputs(), module.outputs(),
                            module.catalog()->size(), gamma, &result.stats);
  PickMinCost(minimal, *module.catalog(), &result);
  return result;
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int64_t gamma) {
  SafetyMemo memo(rel, inputs, outputs);
  return MinimalSafeCardinalityPairs(&memo, inputs, outputs,
                                     rel.schema().catalog()->size(), gamma);
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    SafetyMemo* memo, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int universe, int64_t gamma) {
  const int ni = static_cast<int>(inputs.size());
  const int no = static_cast<int>(outputs.size());
  PV_CHECK_MSG(ni + no <= 20, "cardinality search limited to k <= 20");

  // safe_all[a][b] = every subset hiding exactly a inputs and b outputs is
  // safe. Initialize to true and AND over all subsets.
  SafeSearchStats memo_stats;
  std::vector<std::vector<bool>> safe_all(
      static_cast<size_t>(ni + 1),
      std::vector<bool>(static_cast<size_t>(no + 1), true));
  for (int a = 0; a <= ni; ++a) {
    for (const Bitset64& in_combo : SubsetsOfSize(ni, a)) {
      for (int b = 0; b <= no; ++b) {
        if (!safe_all[static_cast<size_t>(a)][static_cast<size_t>(b)]) {
          continue;
        }
        for (const Bitset64& out_combo : SubsetsOfSize(no, b)) {
          Bitset64 hidden(universe);
          for (int local : in_combo.ToVector()) {
            hidden.Set(inputs[static_cast<size_t>(local)]);
          }
          for (int local : out_combo.ToVector()) {
            hidden.Set(outputs[static_cast<size_t>(local)]);
          }
          if (!memo->IsSafe(hidden, gamma, &memo_stats)) {
            safe_all[static_cast<size_t>(a)][static_cast<size_t>(b)] = false;
            break;
          }
        }
      }
    }
  }
  // Monotonicity cleanup: (a,b) safe requires... note safety of every
  // subset at (a,b) implies it at (a+1,b) and (a,b+1) by Prop. 1, so the
  // computed table is automatically upward closed; extract the minimal
  // frontier.
  std::vector<CardinalityPair> frontier;
  for (int a = 0; a <= ni; ++a) {
    for (int b = 0; b <= no; ++b) {
      if (!safe_all[static_cast<size_t>(a)][static_cast<size_t>(b)]) continue;
      bool minimal = true;
      if (a > 0 && safe_all[static_cast<size_t>(a - 1)][static_cast<size_t>(b)]) {
        minimal = false;
      }
      if (b > 0 && safe_all[static_cast<size_t>(a)][static_cast<size_t>(b - 1)]) {
        minimal = false;
      }
      if (minimal) frontier.push_back(CardinalityPair{a, b});
    }
  }
  return frontier;
}

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Module& module, int64_t gamma, int64_t materialize_threshold) {
  SafetyMemo memo(module, materialize_threshold);
  return MinimalSafeCardinalityPairs(&memo, module.inputs(), module.outputs(),
                                     module.catalog()->size(), gamma);
}

}  // namespace provview
