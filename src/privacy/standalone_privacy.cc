#include "privacy/standalone_privacy.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/combinatorics.h"
#include "common/interner.h"

namespace provview {

namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

// Splits `attrs` into (visible, hidden) sublists preserving order.
void SplitByVisibility(const std::vector<AttrId>& attrs,
                       const Bitset64& visible, std::vector<AttrId>* vis,
                       std::vector<AttrId>* hid) {
  for (AttrId id : attrs) {
    bool v = id < visible.size() && visible.Test(id);
    (v ? vis : hid)->push_back(id);
  }
}

// ∏ |Δ_a| over `attrs` (saturating).
int64_t DomainProduct(const AttributeCatalog& catalog,
                      const std::vector<AttrId>& attrs) {
  int64_t prod = 1;
  for (AttrId id : attrs) prod = SaturatingMul(prod, catalog.DomainSize(id));
  return prod;
}

}  // namespace

int64_t MaxStandaloneGamma(const Relation& rel,
                           const std::vector<AttrId>& inputs,
                           const std::vector<AttrId>& outputs,
                           const Bitset64& visible) {
  if (rel.empty()) return kMax;
  const AttributeCatalog& catalog = *rel.schema().catalog();
  std::vector<AttrId> vis_in, hid_in, vis_out, hid_out;
  SplitByVisibility(inputs, visible, &vis_in, &hid_in);
  SplitByVisibility(outputs, visible, &vis_out, &hid_out);
  const int64_t hidden_ext = DomainProduct(catalog, hid_out);

  // Distinct visible-output values per visible-input group, on interned ids:
  // each row becomes a (group id, output id) int pair, so the grouping is a
  // sort of integer pairs instead of a map of tuple sets. Duplicate rows
  // collapse with the duplicate pairs, so no up-front row dedup is needed.
  TupleInterner in_interner, out_interner;
  std::vector<std::pair<int32_t, int32_t>> pairs;
  pairs.reserve(rel.rows().size());
  for (const Tuple& row : rel.rows()) {
    pairs.emplace_back(in_interner.Intern(rel.ProjectRow(row, vis_in)),
                       out_interner.Intern(rel.ProjectRow(row, vis_out)));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  int64_t min_out = kMax;
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    min_out = std::min(
        min_out, SaturatingMul(static_cast<int64_t>(j - i), hidden_ext));
    i = j;
  }
  return min_out;
}

bool IsStandaloneSafe(const Relation& rel, const std::vector<AttrId>& inputs,
                      const std::vector<AttrId>& outputs,
                      const Bitset64& visible, int64_t gamma) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxStandaloneGamma(rel, inputs, outputs, visible) >= gamma;
}

int64_t ScanVisibleGroups(RowSupplier* rows, const std::vector<int>& in_pos,
                          const std::vector<int>& out_pos,
                          const std::function<void(uint64_t)>& on_new_pair) {
  // Intern each row's group and output projections to dense ids,
  // deduplicate the packed pairs, and count distinct outputs per group.
  TupleInterner in_interner, out_interner;
  std::unordered_set<uint64_t> seen_pairs;
  std::vector<int64_t> group_count;
  Tuple in_buf, out_buf;
  std::vector<Value> block;
  const size_t arity = static_cast<size_t>(rows->schema().arity());
  rows->Reset();
  int64_t n;
  while ((n = rows->NextBlock(&block)) > 0) {
    for (int64_t r = 0; r < n; ++r) {
      const Value* row = &block[static_cast<size_t>(r) * arity];
      in_buf.clear();
      for (int p : in_pos) in_buf.push_back(row[p]);
      out_buf.clear();
      for (int p : out_pos) out_buf.push_back(row[p]);
      const int32_t gid = in_interner.Intern(in_buf);
      const int32_t oid = out_interner.Intern(out_buf);
      const uint64_t pair =
          (static_cast<uint64_t>(static_cast<uint32_t>(gid)) << 32) |
          static_cast<uint32_t>(oid);
      if (!seen_pairs.insert(pair).second) continue;
      if (on_new_pair) on_new_pair(pair);
      if (static_cast<size_t>(gid) >= group_count.size()) {
        group_count.resize(static_cast<size_t>(gid) + 1, 0);
      }
      ++group_count[static_cast<size_t>(gid)];
    }
  }
  int64_t min_count = kMax;  // no rows: stays INT64_MAX
  for (int64_t c : group_count) min_count = std::min(min_count, c);
  return min_count;
}

int64_t MaxStandaloneGamma(RowSupplier* rows, const std::vector<AttrId>& inputs,
                           const std::vector<AttrId>& outputs,
                           const Bitset64& visible) {
  const Schema& schema = rows->schema();
  const AttributeCatalog& catalog = *schema.catalog();
  std::vector<AttrId> vis_in, hid_in, vis_out, hid_out;
  SplitByVisibility(inputs, visible, &vis_in, &hid_in);
  SplitByVisibility(outputs, visible, &vis_out, &hid_out);
  const int64_t hidden_ext = DomainProduct(catalog, hid_out);

  // Row positions of the visible attributes within the supplier's schema.
  std::vector<int> vis_in_pos, vis_out_pos;
  for (AttrId id : vis_in) {
    const int p = schema.PositionOf(id);
    PV_CHECK_MSG(p >= 0, "supplier schema misses input attr " << id);
    vis_in_pos.push_back(p);
  }
  for (AttrId id : vis_out) {
    const int p = schema.PositionOf(id);
    PV_CHECK_MSG(p >= 0, "supplier schema misses output attr " << id);
    vis_out_pos.push_back(p);
  }

  const int64_t min_count =
      ScanVisibleGroups(rows, vis_in_pos, vis_out_pos, nullptr);
  if (min_count == kMax) return kMax;  // empty relation
  // min over groups of count * hidden_ext = hidden_ext * the minimum count.
  return SaturatingMul(min_count, hidden_ext);
}

bool IsStandaloneSafe(RowSupplier* rows, const std::vector<AttrId>& inputs,
                      const std::vector<AttrId>& outputs,
                      const Bitset64& visible, int64_t gamma) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxStandaloneGamma(rows, inputs, outputs, visible) >= gamma;
}

int64_t MaxStandaloneGamma(const Module& module, const Bitset64& visible,
                           int64_t materialize_threshold) {
  RelationView view = module.View(materialize_threshold);
  if (view.materialized()) {
    return MaxStandaloneGamma(*view.relation(), module.inputs(),
                              module.outputs(), visible);
  }
  std::unique_ptr<RowSupplier> rows = view.NewSupplier();
  return MaxStandaloneGamma(rows.get(), module.inputs(), module.outputs(),
                            visible);
}

bool IsStandaloneSafe(const Module& module, const Bitset64& visible,
                      int64_t gamma, int64_t materialize_threshold) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxStandaloneGamma(module, visible, materialize_threshold) >= gamma;
}

int64_t OutSetSize(const Relation& rel, const std::vector<AttrId>& inputs,
                   const std::vector<AttrId>& outputs, const Bitset64& visible,
                   const Tuple& x) {
  PV_CHECK_MSG(x.size() == inputs.size(), "input arity mismatch");
  const AttributeCatalog& catalog = *rel.schema().catalog();
  std::vector<AttrId> vis_in, hid_in, vis_out, hid_out;
  SplitByVisibility(inputs, visible, &vis_in, &hid_in);
  SplitByVisibility(outputs, visible, &vis_out, &hid_out);
  const int64_t hidden_ext = DomainProduct(catalog, hid_out);

  // Visible part of x: project by position within `inputs`.
  Tuple x_vis;
  for (size_t i = 0; i < inputs.size(); ++i) {
    AttrId id = inputs[i];
    if (id < visible.size() && visible.Test(id)) x_vis.push_back(x[i]);
  }
  std::set<Tuple> vis_outputs;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    if (rel.ProjectRow(row, vis_in) == x_vis) {
      vis_outputs.insert(rel.ProjectRow(row, vis_out));
    }
  }
  return SaturatingMul(static_cast<int64_t>(vis_outputs.size()), hidden_ext);
}

std::vector<Tuple> OutSet(const Relation& rel,
                          const std::vector<AttrId>& inputs,
                          const std::vector<AttrId>& outputs,
                          const Bitset64& visible, const Tuple& x,
                          int64_t max_results) {
  PV_CHECK_MSG(OutSetSize(rel, inputs, outputs, visible, x) <= max_results,
               "OUT set too large to materialize");
  const AttributeCatalog& catalog = *rel.schema().catalog();
  std::vector<AttrId> vis_in, hid_in, vis_out, hid_out;
  SplitByVisibility(inputs, visible, &vis_in, &hid_in);
  SplitByVisibility(outputs, visible, &vis_out, &hid_out);

  Tuple x_vis;
  for (size_t i = 0; i < inputs.size(); ++i) {
    AttrId id = inputs[i];
    if (id < visible.size() && visible.Test(id)) x_vis.push_back(x[i]);
  }
  // Distinct visible-output stubs compatible with x.
  std::set<Tuple> stubs;
  for (const Tuple& row : rel.SortedDistinctRows()) {
    if (rel.ProjectRow(row, vis_in) == x_vis) {
      stubs.insert(rel.ProjectRow(row, vis_out));
    }
  }
  // Extend each stub over the hidden outputs in every possible way,
  // assembling full outputs aligned with `outputs`.
  std::vector<int> hidden_radices;
  for (AttrId id : hid_out) hidden_radices.push_back(catalog.DomainSize(id));

  std::set<Tuple> result;
  for (const Tuple& stub : stubs) {
    MixedRadixCounter counter(hidden_radices);
    do {
      Tuple y(outputs.size());
      size_t vi = 0, hi = 0;
      for (size_t oi = 0; oi < outputs.size(); ++oi) {
        AttrId id = outputs[oi];
        if (id < visible.size() && visible.Test(id)) {
          y[oi] = stub[vi++];
        } else {
          y[oi] = counter.values()[hi++];
        }
      }
      result.insert(std::move(y));
    } while (counter.Advance());
  }
  return std::vector<Tuple>(result.begin(), result.end());
}

}  // namespace provview
