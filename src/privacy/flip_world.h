// The flip construction of Lemma 1 / Definition 7: given two tuples p, q
// over a target module's attributes I_i ∪ O_i, every module m_j of the
// workflow is rewritten to g_j = FLIP_{p,q} ∘ m_j ∘ FLIP_{p,q}. When p and
// q agree on all visible attributes, the rewritten workflow's provenance
// relation is a possible world of the original view (the heart of Theorem 4
// / Theorem 8), and the target module maps x = π_I(p) to y = π_O(p).
//
// This module makes the construction executable so Theorem 4 can be
// verified constructively: build the flip workflow, run it, and check the
// visible projection matches.
#ifndef PROVVIEW_PRIVACY_FLIP_WORLD_H_
#define PROVVIEW_PRIVACY_FLIP_WORLD_H_

#include <vector>

#include "workflow/workflow.h"

namespace provview {

/// FLIP_{p,q}(t): for each attribute shared between `t_attrs` and
/// `pq_attrs`, swaps the value p[a] ↔ q[a]; all other values are unchanged.
/// p and q are aligned with `pq_attrs`; t with `t_attrs`. Involution.
Tuple FlipTuple(const Tuple& t, const std::vector<AttrId>& t_attrs,
                const std::vector<AttrId>& pq_attrs, const Tuple& p,
                const Tuple& q);

/// Builds the flipped workflow ⟨g_1, ..., g_n⟩ with g_j = FLIP ∘ m_j ∘ FLIP.
/// The returned workflow references `base`'s modules — `base` must outlive
/// it. Public/private flags and privatization costs are preserved.
WorkflowPtr BuildFlipWorkflow(const Workflow& base,
                              const std::vector<AttrId>& pq_attrs,
                              const Tuple& p, const Tuple& q);

/// Indices of base modules whose flipped version g_j differs from m_j
/// (Lemma 7: these are exactly the modules touching hidden attributes of
/// p/q where p and q disagree; public ones among them must be privatized).
std::vector<int> ModulesChangedByFlip(const Workflow& base,
                                      const std::vector<AttrId>& pq_attrs,
                                      const Tuple& p, const Tuple& q,
                                      int64_t max_domain = 1 << 16);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_FLIP_WORLD_H_
