// Standalone module privacy (§2.2, §3): Γ-standalone-privacy of a module m
// w.r.t. a visible attribute set V requires |OUT_{x,m}| ≥ Γ for every input
// x ∈ π_I(R), where OUT_{x,m} are the outputs y consistent with some
// possible world of the view π_V(R).
//
// This header implements the paper's Algorithm 2 test: V is safe iff every
// visible-input group of R contains at least Γ / ∏_{a∈O\V}|Δ_a| distinct
// visible-output values — each such value extends to ∏_{a∈O\V}|Δ_a| full
// outputs by Lemma 2 + the flip construction. The test is exact (necessary
// and sufficient; §3.2, Appendix A.4) and runs in O(N log N) per call after
// materializing R.
#ifndef PROVVIEW_PRIVACY_STANDALONE_PRIVACY_H_
#define PROVVIEW_PRIVACY_STANDALONE_PRIVACY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "module/module.h"
#include "relation/relation.h"
#include "relation/row_supplier.h"

namespace provview {

/// The largest Γ for which `visible` is safe for the module relation `rel`
/// (schema: `inputs` then `outputs`; rows deduplicated internally):
///   min over inputs x of |OUT_{x,m}|  (saturating at INT64_MAX).
/// `visible` is a set over the catalog universe; attributes of the module
/// outside `visible` are hidden. An empty relation yields INT64_MAX.
int64_t MaxStandaloneGamma(const Relation& rel,
                           const std::vector<AttrId>& inputs,
                           const std::vector<AttrId>& outputs,
                           const Bitset64& visible);

/// Algorithm-2 safety test: true iff m is Γ-standalone-private w.r.t.
/// `visible` (Definition 2).
bool IsStandaloneSafe(const Relation& rel, const std::vector<AttrId>& inputs,
                      const std::vector<AttrId>& outputs,
                      const Bitset64& visible, int64_t gamma);

/// One streaming pass over `rows` grouping each row by its projection onto
/// the `in_pos` row positions and counting the distinct `out_pos`
/// projections per group (both interned to dense first-seen ids). Invokes
/// `on_new_pair((gid << 32) | oid)`, when non-null, for every first-seen
/// pair in first-seen order. Returns the minimum distinct-output count over
/// the groups, or INT64_MAX when the supplier yields no rows. The shared
/// core of the streaming Algorithm-2 checker below and SafetyMemo's
/// projection scan — state is bounded by the distinct projections, not the
/// row count.
int64_t ScanVisibleGroups(RowSupplier* rows, const std::vector<int>& in_pos,
                          const std::vector<int>& out_pos,
                          const std::function<void(uint64_t)>& on_new_pair);

/// Streaming Algorithm-2 test: one pass over `rows` (any RowSupplier whose
/// schema covers the module attributes), never materializing the relation.
/// Memory scales with the number of distinct visible projections — the view
/// the adversary actually sees — not with |Dom|, which is what lets modules
/// past the 2^22 materialization wall certify. Identical verdicts to the
/// Relation overload on every input.
int64_t MaxStandaloneGamma(RowSupplier* rows, const std::vector<AttrId>& inputs,
                           const std::vector<AttrId>& outputs,
                           const Bitset64& visible);
bool IsStandaloneSafe(RowSupplier* rows, const std::vector<AttrId>& inputs,
                      const std::vector<AttrId>& outputs,
                      const Bitset64& visible, int64_t gamma);

/// Convenience overloads over the module relation. Domains of at most
/// `materialize_threshold` rows use the materialized fast path; larger
/// domains stream rows straight from the module's function (Module::View).
int64_t MaxStandaloneGamma(
    const Module& module, const Bitset64& visible,
    int64_t materialize_threshold = Module::kDefaultMaterializeRows);
bool IsStandaloneSafe(
    const Module& module, const Bitset64& visible, int64_t gamma,
    int64_t materialize_threshold = Module::kDefaultMaterializeRows);

/// |OUT_{x,m}| for one specific input x (x aligned with `inputs`).
int64_t OutSetSize(const Relation& rel, const std::vector<AttrId>& inputs,
                   const std::vector<AttrId>& outputs, const Bitset64& visible,
                   const Tuple& x);

/// Materializes OUT_{x,m} explicitly (outputs aligned with `outputs`).
/// Intended for small hidden-output spaces; guarded by `max_results`.
std::vector<Tuple> OutSet(const Relation& rel,
                          const std::vector<AttrId>& inputs,
                          const std::vector<AttrId>& outputs,
                          const Bitset64& visible, const Tuple& x,
                          int64_t max_results = 1 << 20);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_STANDALONE_PRIVACY_H_
