// Standalone module privacy (§2.2, §3): Γ-standalone-privacy of a module m
// w.r.t. a visible attribute set V requires |OUT_{x,m}| ≥ Γ for every input
// x ∈ π_I(R), where OUT_{x,m} are the outputs y consistent with some
// possible world of the view π_V(R).
//
// This header implements the paper's Algorithm 2 test: V is safe iff every
// visible-input group of R contains at least Γ / ∏_{a∈O\V}|Δ_a| distinct
// visible-output values — each such value extends to ∏_{a∈O\V}|Δ_a| full
// outputs by Lemma 2 + the flip construction. The test is exact (necessary
// and sufficient; §3.2, Appendix A.4) and runs in O(N log N) per call after
// materializing R.
#ifndef PROVVIEW_PRIVACY_STANDALONE_PRIVACY_H_
#define PROVVIEW_PRIVACY_STANDALONE_PRIVACY_H_

#include <cstdint>
#include <vector>

#include "module/module.h"
#include "relation/relation.h"

namespace provview {

/// The largest Γ for which `visible` is safe for the module relation `rel`
/// (schema: `inputs` then `outputs`; rows deduplicated internally):
///   min over inputs x of |OUT_{x,m}|  (saturating at INT64_MAX).
/// `visible` is a set over the catalog universe; attributes of the module
/// outside `visible` are hidden. An empty relation yields INT64_MAX.
int64_t MaxStandaloneGamma(const Relation& rel,
                           const std::vector<AttrId>& inputs,
                           const std::vector<AttrId>& outputs,
                           const Bitset64& visible);

/// Algorithm-2 safety test: true iff m is Γ-standalone-private w.r.t.
/// `visible` (Definition 2).
bool IsStandaloneSafe(const Relation& rel, const std::vector<AttrId>& inputs,
                      const std::vector<AttrId>& outputs,
                      const Bitset64& visible, int64_t gamma);

/// Convenience overloads materializing the module's full relation.
int64_t MaxStandaloneGamma(const Module& module, const Bitset64& visible);
bool IsStandaloneSafe(const Module& module, const Bitset64& visible,
                      int64_t gamma);

/// |OUT_{x,m}| for one specific input x (x aligned with `inputs`).
int64_t OutSetSize(const Relation& rel, const std::vector<AttrId>& inputs,
                   const std::vector<AttrId>& outputs, const Bitset64& visible,
                   const Tuple& x);

/// Materializes OUT_{x,m} explicitly (outputs aligned with `outputs`).
/// Intended for small hidden-output spaces; guarded by `max_results`.
std::vector<Tuple> OutSet(const Relation& rel,
                          const std::vector<AttrId>& inputs,
                          const std::vector<AttrId>& outputs,
                          const Bitset64& visible, const Tuple& x,
                          int64_t max_results = 1 << 20);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_STANDALONE_PRIVACY_H_
