// Feasible-set fixpoint analysis over the workflow DAG: an abstract
// interpretation run once per (workflow tables, visible set, fixed set)
// before world enumeration, so the enumerator can shrink candidate lists of
// slots the determined-input pruning of the base engine cannot touch.
//
// Abstract domain (one element per attribute / module, all finite):
//
//   feasible_values[a] ⊆ Dom(a)   — values attribute a can take in ANY
//       execution of ANY consistent world (over-approximation; ordered by ⊇,
//       transfer functions only shrink it).
//   pinned_attr[a] ∈ {false,true} — a's value in EVERY execution is the same
//       across all consistent worlds, namely the original run's value
//       (under-approximation; ordered by ⇒, only flips false→true).
//   determined[i], forced[i]      — derived module facts: all of module i's
//       inputs pinned; determined AND every reached slot's candidate list is
//       a singleton (which must then be the original code, because the
//       original world is consistent and survives every sound narrowing).
//
// Transfer functions, iterated to a fixpoint:
//   - initial inputs are pinned; visible attributes narrow to the values in
//     their column of the visible provenance view; pinned attributes narrow
//     to their distinct original values;
//   - forward, in topological order: a fixed module maps the feasible
//     input-code set through its function; a free module's reached output
//     codes are those whose per-attribute values are all feasible (for a
//     determined free module, additionally those surviving the per-slot
//     visible-projection test of the base engine); output attributes then
//     narrow to the projections of the surviving codes;
//   - backward, in reverse topological order, through FIXED modules only
//     (a free module can map any input to any feasible output, so its
//     outputs never constrain its inputs): input codes whose image left the
//     feasible output-code set are dropped and the input attributes narrow
//     to the projections of the survivors;
//   - pinnedness propagates through fixed modules AND through forced free
//     modules — the generalization that lets determinedness (and hence
//     per-slot pruning) cross fully-visible free stages of a deep chain.
//
// Termination: the product lattice is finite and every transfer function is
// monotone — feasible_values / candidate lists only ever shrink and
// pinned_attr bits only ever set, so each sweep either changes at least one
// of finitely many monotone components or reaches the (unique least) fixpoint
// and stops. The iteration count is bounded by the total number of values
// plus attributes, and in practice is ≤ depth(DAG) + 2.
//
// Soundness (what the enumerator may rely on):
//   - a slot of a determined module is reached by the same executions in
//     every walked joint state (pinned inputs depend only on singleton or
//     fixed upstream choices, so this holds mid-walk for inconsistent states
//     too), and in every consistent world its output code is in its
//     candidate list;
//   - a domain point of a non-determined module outside feasible_in_codes is
//     reached in NO consistent world, so its slot's choice multiplies the
//     world count by |Range| without changing any candidate relation or any
//     tracked OUT set (tracked inputs are original codes, which are always
//     feasible) — the enumerator walks it as a singleton pinned to the
//     original code and multiplies the factored count instead.
#ifndef PROVVIEW_PRIVACY_FEASIBLE_SETS_H_
#define PROVVIEW_PRIVACY_FEASIBLE_SETS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/bitset64.h"
#include "common/interner.h"
#include "privacy/possible_worlds.h"

namespace provview {

/// The determined-module visible-projection pruning core, shared verbatim by
/// the use_feasible_sets=false engine (plain determined-attribute rule, no
/// value filter) and the fixpoint (extended pinned set plus feasible-value
/// filtering) — one implementation, so the two engines cannot drift.
///
/// For a determined free module every execution reaches its original input
/// code, so a candidate output code c is allowed on a reached slot iff for
/// every determined-visible row prefix of an execution reaching that slot,
/// (prefix, visible output fragment of c) occurs in the target view's
/// projection onto those positions. RescanLog() builds the projection
/// interner and the per-slot prefix sets for a given determined set (one
/// pass over the materialized log — callers cache it while the determined
/// set is unchanged); CandidateLists() filters the range against it.
class DeterminedSlotPruner {
 public:
  /// Filter on decoded output values: (output index within the module's
  /// output list, value) -> keep. Empty function = no extra filter.
  using ValueFilter = std::function<bool(size_t, int32_t)>;

  DeterminedSlotPruner(const WorkflowTables& tables, int module,
                       const Bitset64& visible);

  /// (Re)builds the log-scan structures for the given determined set.
  void RescanLog(const std::vector<bool>& det_attr);

  /// Candidate output-code lists per reached slot, aligned with
  /// WorkflowTables::orig_input_codes[module]. Requires a prior RescanLog.
  std::vector<std::vector<int32_t>> CandidateLists(
      const ValueFilter& value_ok) const;

 private:
  const WorkflowTables* tables_;
  int module_;
  std::vector<bool> vis_attr_;      // per attribute id
  std::vector<int> vis_out_pos_;    // prov positions of visible outputs
  std::vector<size_t> vis_out_local_;
  bool scanned_ = false;
  std::vector<int> det_vis_pos_;    // prov positions of det+visible attrs
  TupleInterner allowed_;
  std::map<int32_t, std::set<Tuple>> prefixes_;  // per reached input code
};

/// Result of the feasible-set fixpoint for one (tables, visible, fixed) key.
struct FeasibleSetAnalysis {
  /// Sweeps until the fixpoint was reached (≥ 1).
  int iterations = 0;

  // Per attribute id (catalog-aligned).
  /// Sorted feasible values; never empty for attributes the workflow uses
  /// (the original run keeps every set inhabited).
  std::vector<std::vector<int32_t>> feasible_values;
  /// Extended determinedness: value per execution equals the original run's
  /// in every consistent world (and in every walked joint state).
  std::vector<bool> pinned_attr;

  // Per module index.
  std::vector<bool> determined;  ///< every input attribute pinned
  std::vector<bool> forced;      ///< determined free module, all lists singleton
  /// Determined free modules: candidate output codes per reached slot,
  /// aligned with WorkflowTables::orig_input_codes[i]; empty for other
  /// modules. Lists are sorted and never empty (the original code survives).
  std::vector<std::vector<std::vector<int32_t>>> det_slot_codes;
  /// Non-determined modules: sorted feasible input codes D_i (always a
  /// superset of orig_input_codes[i]); slots outside it can be factored out
  /// of the walk. Empty for determined modules (their reached set is exactly
  /// orig_input_codes).
  std::vector<std::vector<int32_t>> feasible_in_codes;
  /// All modules: sorted feasible output codes C_i of reached slots.
  std::vector<std::vector<int32_t>> feasible_out_codes;

  /// Σ over non-determined modules of dom points proven unreachable — the
  /// slots the enumerator factors that the base engine walks at full range.
  int64_t factored_free_slots = 0;
};

/// Runs the fixpoint. Requires a materialized execution log (the analysis
/// replays the original rows), i.e. tables.log_materialized.
FeasibleSetAnalysis AnalyzeFeasibleSets(const WorkflowTables& tables,
                                        const Bitset64& visible,
                                        const std::vector<int>& fixed_modules);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_FEASIBLE_SETS_H_
