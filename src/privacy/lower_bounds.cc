#include "privacy/lower_bounds.h"

#include <algorithm>

#include "common/combinatorics.h"
#include "module/table_module.h"
#include "privacy/standalone_privacy.h"

namespace provview {

bool CnfFormula::Eval(const std::vector<int32_t>& assignment) const {
  PV_CHECK(static_cast<int>(assignment.size()) == num_vars);
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (int literal : clause) {
      PV_CHECK(literal != 0);
      int var = std::abs(literal) - 1;
      PV_CHECK(var < num_vars);
      bool value = assignment[static_cast<size_t>(var)] != 0;
      if ((literal > 0) == value) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

bool CnfFormula::IsSatisfiable() const {
  PV_CHECK_MSG(num_vars <= 20, "exhaustive SAT limited to 20 variables");
  MixedRadixCounter counter(std::vector<int>(static_cast<size_t>(num_vars), 2));
  do {
    if (Eval(counter.values())) return true;
  } while (counter.Advance());
  return false;
}

DisjointnessGadget MakeDisjointnessGadget(int universe,
                                          const std::vector<int>& a,
                                          const std::vector<int>& b) {
  PV_CHECK(universe >= 1);
  DisjointnessGadget g;
  g.catalog = std::make_shared<AttributeCatalog>();
  AttrId attr_a = g.catalog->Add("a", 2, 1.0);
  AttrId attr_b = g.catalog->Add("b", 2, 1.0);
  AttrId attr_id = g.catalog->Add("id", universe + 1, 1.0);
  AttrId attr_y = g.catalog->Add("y", 2, 1.0);

  auto contains = [](const std::vector<int>& s, int e) {
    return std::find(s.begin(), s.end(), e) != s.end();
  };
  std::vector<std::pair<Tuple, Tuple>> entries;
  for (int i = 0; i < universe; ++i) {
    Value va = contains(a, i) ? 1 : 0;
    Value vb = contains(b, i) ? 1 : 0;
    entries.push_back({{va, vb, static_cast<Value>(i)},
                       {static_cast<Value>(va & vb)}});
  }
  // Sentinel row: a = 1, b = 0 → y = 0 (always present; ensures y = 0
  // occurs in the view).
  entries.push_back({{1, 0, static_cast<Value>(universe)}, {0}});

  g.module = std::make_unique<TableModule>(
      "disjointness", g.catalog, std::vector<AttrId>{attr_a, attr_b, attr_id},
      std::vector<AttrId>{attr_y}, entries);
  g.relation = g.module->RelationOn([&] {
    std::vector<Tuple> inputs;
    for (const auto& [in, out] : entries) {
      (void)out;
      inputs.push_back(in);
    }
    return inputs;
  }());
  // NOTE on the view: the paper's prose fixes V = {id, y}, but with `id`
  // visible every row's output is pinned by its (unique, visible) id and
  // no view of this partial relation reaches Γ = 2. The reduction's actual
  // argument ("every input can be mapped either to 0 or 1" iff both output
  // values occur) is the Γ = 2 test for V = {y}, which is what we encode;
  // the Ω(N)-reads consequence is identical, since deciding whether both
  // values occur still requires scanning the table.
  g.view = Bitset64::Of(g.catalog->size(), {attr_y});
  return g;
}

UnsatGadget MakeUnsatGadget(const CnfFormula& g) {
  PV_CHECK_MSG(g.num_vars >= 1 && g.num_vars <= 16,
               "UNSAT gadget limited to 16 variables");
  UnsatGadget out;
  out.catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> inputs;
  for (int v = 0; v < g.num_vars; ++v) {
    inputs.push_back(out.catalog->Add("x" + std::to_string(v), 2, 1.0));
  }
  AttrId attr_y = out.catalog->Add("y", 2, 1.0);
  inputs.push_back(attr_y);
  AttrId attr_z = out.catalog->Add("z", 2, 1.0);

  CnfFormula formula = g;  // captured by value
  out.module = std::make_unique<LambdaModule>(
      "unsat_gadget", out.catalog, inputs, std::vector<AttrId>{attr_z},
      [formula](const Tuple& in) {
        std::vector<int32_t> assignment(in.begin(), in.end() - 1);
        bool gx = formula.Eval(assignment);
        bool y = in.back() != 0;
        return Tuple{static_cast<Value>((!gx && !y) ? 1 : 0)};
      });
  // V = {x1..xℓ, z}: only the auxiliary input y is hidden.
  out.view = Bitset64::All(out.catalog->size());
  out.view.Reset(attr_y);
  return out;
}

AdversaryPair MakeAdversaryPair(int num_inputs,
                                const std::vector<int>& special_set) {
  PV_CHECK_MSG(num_inputs >= 4 && num_inputs % 4 == 0,
               "Theorem-3 construction needs ℓ divisible by 4");
  PV_CHECK_MSG(static_cast<int>(special_set.size()) == num_inputs / 2,
               "|A| must be ℓ/2");
  AdversaryPair pair;
  pair.special_set = special_set;
  pair.catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> inputs;
  for (int i = 0; i < num_inputs; ++i) {
    inputs.push_back(pair.catalog->Add("x" + std::to_string(i), 2, 1.0));
  }
  // The paper prices the output at ℓ so it is never hidden.
  AttrId y1 = pair.catalog->Add("y1", 2, static_cast<double>(num_inputs));
  AttrId y2 = pair.catalog->Add("y2", 2, static_cast<double>(num_inputs));

  const int threshold = num_inputs / 4;
  pair.m1 = std::make_unique<LambdaModule>(
      "m1", pair.catalog, inputs, std::vector<AttrId>{y1},
      [threshold](const Tuple& in) {
        int ones = 0;
        for (Value v : in) ones += v;
        return Tuple{static_cast<Value>(ones >= threshold ? 1 : 0)};
      });
  std::vector<bool> in_a(static_cast<size_t>(num_inputs), false);
  for (int i : special_set) {
    PV_CHECK(i >= 0 && i < num_inputs);
    in_a[static_cast<size_t>(i)] = true;
  }
  pair.m2 = std::make_unique<LambdaModule>(
      "m2", pair.catalog, inputs, std::vector<AttrId>{y2},
      [threshold, in_a](const Tuple& in) {
        int ones = 0;
        bool outside = false;
        for (size_t i = 0; i < in.size(); ++i) {
          ones += in[i];
          if (in[i] != 0 && !in_a[i]) outside = true;
        }
        return Tuple{static_cast<Value>((ones >= threshold && outside) ? 1
                                                                       : 0)};
      });
  return pair;
}

bool AdversaryVisibleInputsSafe(const Module& module,
                                const std::vector<int>& visible_inputs) {
  Bitset64 visible(module.catalog()->size());
  for (int pos : visible_inputs) {
    PV_CHECK(pos >= 0 && pos < module.num_inputs());
    visible.Set(module.inputs()[static_cast<size_t>(pos)]);
  }
  for (AttrId id : module.outputs()) visible.Set(id);
  return IsStandaloneSafe(module, visible, 2);
}

}  // namespace provview
