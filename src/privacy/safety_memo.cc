#include "privacy/safety_memo.h"

#include <limits>
#include <memory>

#include "common/combinatorics.h"
#include "privacy/standalone_privacy.h"

namespace provview {

namespace {

// splitmix64 finalizer: the per-pair mix feeding the running hashes.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SafetyMemo::SafetyMemo(const Relation& rel, std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs)
    : view_(RelationView::Borrowed(rel)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {
  Init();
}

SafetyMemo::SafetyMemo(const Module& module, int64_t materialize_threshold)
    : view_(module.View(materialize_threshold)),
      inputs_(module.inputs()),
      outputs_(module.outputs()) {
  Init();
}

SafetyMemo::SafetyMemo(RelationView view, std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs)
    : view_(std::move(view)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {
  Init();
}

void SafetyMemo::Init() {
  const Schema& schema = view_.schema();
  const AttributeCatalog& catalog = *schema.catalog();
  const int universe = catalog.size();

  std::vector<AttrId> local = inputs_;
  local.insert(local.end(), outputs_.begin(), outputs_.end());
  local_pos_.reserve(local.size());
  for (AttrId id : local) {
    const int p = schema.PositionOf(id);
    PV_CHECK_MSG(p >= 0, "view schema misses module attr " << id);
    local_pos_.push_back(p);
  }

  // An attribute cannot change the verdict if its domain has one value or
  // it is constant across R (its presence changes neither the visible-input
  // grouping nor the visible-output distinct counts). One streaming pass
  // detects the constant columns.
  std::vector<uint8_t> constant(local.size(), 1);
  std::vector<Value> first(local.size(), 0);
  bool have_first = false;
  std::vector<Value> block;
  const size_t arity = static_cast<size_t>(schema.arity());
  std::unique_ptr<RowSupplier> rows = view_.NewSupplier();
  int64_t n;
  while ((n = rows->NextBlock(&block)) > 0) {
    for (int64_t r = 0; r < n; ++r) {
      const Value* row = &block[static_cast<size_t>(r) * arity];
      if (!have_first) {
        for (size_t c = 0; c < local.size(); ++c) {
          first[c] = row[local_pos_[c]];
        }
        have_first = true;
        continue;
      }
      for (size_t c = 0; c < local.size(); ++c) {
        if (constant[c] && row[local_pos_[c]] != first[c]) constant[c] = 0;
      }
    }
  }

  effective_ = Bitset64(universe);
  for (size_t c = 0; c < local.size(); ++c) {
    if (catalog.DomainSize(local[c]) <= 1) continue;
    if (have_first && constant[c]) continue;
    effective_.Set(local[c]);
  }
}

std::pair<SafetyMemo::ProjectionKey, int64_t> SafetyMemo::ScanProjection(
    const Bitset64& effective_visible, int64_t hidden_ext) {
  // Effective-visible row positions, split by side.
  std::vector<int> in_pos, out_pos;
  for (size_t j = 0; j < inputs_.size(); ++j) {
    if (effective_visible.Test(inputs_[j])) {
      in_pos.push_back(local_pos_[j]);
    }
  }
  for (size_t j = 0; j < outputs_.size(); ++j) {
    if (effective_visible.Test(outputs_[j])) {
      out_pos.push_back(local_pos_[inputs_.size() + j]);
    }
  }

  // One shared ScanVisibleGroups pass: the first-seen pair sequence feeds
  // the order-sensitive hashes and its per-group counts determine Γ.
  // First-seen order over the view's fixed row order is canonical, so
  // equal-projection hidden sets produce equal keys even when the
  // underlying values differ — and both backends walk rows in the same
  // order, so keys agree across materialized and streaming passes.
  ProjectionKey key;
  key.hidden_ext = hidden_ext;
  key.h1 = 0x8A91A6D40BF42040ull;
  key.h2 = 0xC83A91E1DB6A2BB1ull;
  std::unique_ptr<RowSupplier> rows = view_.NewSupplier();
  const int64_t min_count =
      ScanVisibleGroups(rows.get(), in_pos, out_pos, [&key](uint64_t pair) {
        key.h1 = key.h1 * 0x100000001B3ull + Mix64(pair);
        key.h2 = key.h2 * 0x9E3779B97F4A7C15ull + Mix64(~pair);
      });
  const int64_t gamma = min_count == std::numeric_limits<int64_t>::max()
                            ? min_count  // empty relation
                            : SaturatingMul(min_count, hidden_ext);
  return {key, gamma};
}

std::unique_ptr<SafetyMemo> SafetyMemo::Clone() const {
  PV_CHECK_MSG(base_ == nullptr, "Clone of an overlay memo");
  std::unique_ptr<SafetyMemo> clone(new SafetyMemo());
  clone->view_ = view_;
  clone->inputs_ = inputs_;
  clone->outputs_ = outputs_;
  clone->effective_ = effective_;
  clone->local_pos_ = local_pos_;
  clone->signature_cache_ = signature_cache_;
  clone->projection_cache_ = projection_cache_;
  return clone;
}

std::unique_ptr<SafetyMemo> SafetyMemo::NewOverlay() const {
  PV_CHECK_MSG(base_ == nullptr, "overlay of an overlay memo");
  std::unique_ptr<SafetyMemo> overlay(new SafetyMemo());
  overlay->view_ = view_;
  overlay->inputs_ = inputs_;
  overlay->outputs_ = outputs_;
  overlay->effective_ = effective_;
  overlay->local_pos_ = local_pos_;
  overlay->base_ = this;
  return overlay;
}

void SafetyMemo::Absorb(const SafetyMemo& worker) {
  signature_cache_.insert(worker.signature_cache_.begin(),
                          worker.signature_cache_.end());
  projection_cache_.insert(worker.projection_cache_.begin(),
                           worker.projection_cache_.end());
}

const int64_t* SafetyMemo::FindSignature(
    const std::pair<Bitset64, int64_t>& sig) const {
  auto it = signature_cache_.find(sig);
  if (it != signature_cache_.end()) return &it->second;
  if (base_ != nullptr) {
    auto bit = base_->signature_cache_.find(sig);
    if (bit != base_->signature_cache_.end()) return &bit->second;
  }
  return nullptr;
}

const int64_t* SafetyMemo::FindProjection(const ProjectionKey& pkey) const {
  auto it = projection_cache_.find(pkey);
  if (it != projection_cache_.end()) return &it->second;
  if (base_ != nullptr) {
    auto bit = base_->projection_cache_.find(pkey);
    if (bit != base_->projection_cache_.end()) return &bit->second;
  }
  return nullptr;
}

int64_t SafetyMemo::MaxGamma(const Bitset64& hidden, SafeSearchStats* stats) {
  const AttributeCatalog& catalog = *view_.schema().catalog();
  int64_t hidden_ext = 1;
  for (AttrId id : outputs_) {
    if (id < hidden.size() && hidden.Test(id)) {
      hidden_ext = SaturatingMul(hidden_ext, catalog.DomainSize(id));
    }
  }
  SignatureKey sig(Difference(effective_, hidden), hidden_ext);
  if (const int64_t* cached = FindSignature(sig)) {
    ++stats->cache_hits;
    ++stats->signature_hits;
    return *cached;
  }
  const auto [pkey, gamma] = ScanProjection(sig.first, hidden_ext);
  if (const int64_t* cached = FindProjection(pkey)) {
    ++stats->cache_hits;
    ++stats->projection_hits;
    signature_cache_.emplace(std::move(sig), *cached);
    return *cached;
  }
  ++stats->checker_calls;
  projection_cache_.emplace(pkey, gamma);
  signature_cache_.emplace(std::move(sig), gamma);
  return gamma;
}

int64_t SafetyMemo::MaxGammaLogged(const Bitset64& hidden, LookupLog* log) {
  const AttributeCatalog& catalog = *view_.schema().catalog();
  int64_t hidden_ext = 1;
  for (AttrId id : outputs_) {
    if (id < hidden.size() && hidden.Test(id)) {
      hidden_ext = SaturatingMul(hidden_ext, catalog.DomainSize(id));
    }
  }
  SignatureKey sig(Difference(effective_, hidden), hidden_ext);
  if (const int64_t* cached = FindSignature(sig)) {
    log->records.push_back({sig, ProjectionKey{}, *cached, false});
    return *cached;
  }
  const auto [pkey, gamma] = ScanProjection(sig.first, hidden_ext);
  if (const int64_t* cached = FindProjection(pkey)) {
    signature_cache_.emplace(sig, *cached);
    log->records.push_back({std::move(sig), pkey, *cached, true});
    return *cached;
  }
  projection_cache_.emplace(pkey, gamma);
  signature_cache_.emplace(sig, gamma);
  log->records.push_back({std::move(sig), pkey, gamma, true});
  return gamma;
}

bool SafetyMemo::IsSafeLogged(const Bitset64& hidden, int64_t gamma,
                              LookupLog* log) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxGammaLogged(hidden, log) >= gamma;
}

void SafetyMemo::AbsorbLog(const LookupLog& log, SafeSearchStats* stats) {
  for (const LookupLog::Record& rec : log.records) {
    if (FindSignature(rec.sig) != nullptr) {
      ++stats->cache_hits;
      ++stats->signature_hits;
      continue;
    }
    // A worker's visible caches are a subset of the replay view when logs
    // are absorbed in shard order, so an unscanned record (a worker-side
    // signature hit) can never be a replay-side miss.
    PV_CHECK_MSG(rec.scanned, "lookup log absorbed out of order");
    if (const int64_t* cached = FindProjection(rec.pkey)) {
      signature_cache_.emplace(rec.sig, *cached);
      ++stats->cache_hits;
      ++stats->projection_hits;
      continue;
    }
    ++stats->checker_calls;
    projection_cache_.emplace(rec.pkey, rec.gamma);
    signature_cache_.emplace(rec.sig, rec.gamma);
  }
}

bool SafetyMemo::IsSafe(const Bitset64& hidden, int64_t gamma,
                        SafeSearchStats* stats) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxGamma(hidden, stats) >= gamma;
}

}  // namespace provview
