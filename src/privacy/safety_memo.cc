#include "privacy/safety_memo.h"

#include <unordered_set>

#include "common/combinatorics.h"
#include "common/interner.h"
#include "privacy/standalone_privacy.h"

namespace provview {

namespace {

// splitmix64 finalizer: the per-pair mix feeding the running hashes.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SafetyMemo::SafetyMemo(const Relation& rel, std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs)
    : rel_(rel), inputs_(std::move(inputs)), outputs_(std::move(outputs)) {
  Init();
}

SafetyMemo::SafetyMemo(const Module& module)
    : owned_(module.FullRelation()),
      rel_(*owned_),
      inputs_(module.inputs()),
      outputs_(module.outputs()) {
  Init();
}

void SafetyMemo::Init() {
  const AttributeCatalog& catalog = *rel_.schema().catalog();
  const int universe = catalog.size();

  // Deduplicated rows as local columns: inputs then outputs.
  std::vector<Tuple> rows = rel_.SortedDistinctRows();
  num_rows_ = static_cast<int64_t>(rows.size());
  std::vector<AttrId> local = inputs_;
  local.insert(local.end(), outputs_.begin(), outputs_.end());
  columns_.resize(local.size());
  for (size_t c = 0; c < local.size(); ++c) {
    columns_[c].reserve(rows.size());
    for (const Tuple& row : rows) {
      columns_[c].push_back(rel_.At(row, local[c]));
    }
  }

  // An attribute cannot change the verdict if its domain has one value or
  // it is constant across R (its presence changes neither the visible-input
  // grouping nor the visible-output distinct counts).
  effective_ = Bitset64(universe);
  for (size_t c = 0; c < local.size(); ++c) {
    if (catalog.DomainSize(local[c]) <= 1) continue;
    bool constant = true;
    for (int64_t r = 1; r < num_rows_; ++r) {
      if (columns_[c][static_cast<size_t>(r)] != columns_[c][0]) {
        constant = false;
        break;
      }
    }
    if (num_rows_ > 0 && constant) continue;
    effective_.Set(local[c]);
  }
}

SafetyMemo::ProjectionKey SafetyMemo::ProjectionKeyOf(
    const Bitset64& effective_visible, int64_t hidden_ext) {
  // Effective-visible columns, split by side.
  std::vector<size_t> in_cols, out_cols;
  for (size_t j = 0; j < inputs_.size(); ++j) {
    if (effective_visible.Test(inputs_[j])) in_cols.push_back(j);
  }
  for (size_t j = 0; j < outputs_.size(); ++j) {
    if (effective_visible.Test(outputs_[j])) {
      out_cols.push_back(inputs_.size() + j);
    }
  }

  // Canonicalize every row to a (group id, output id) pair of dense
  // first-seen interned ids; hash the deduplicated pair sequence. First-seen
  // order over the fixed row order is canonical, so equal-projection hidden
  // sets produce equal keys even when the underlying values differ.
  TupleInterner gin, gout;
  Tuple in_buf, out_buf;
  std::unordered_set<uint64_t> seen;
  ProjectionKey key;
  key.hidden_ext = hidden_ext;
  key.h1 = 0x8A91A6D40BF42040ull;
  key.h2 = 0xC83A91E1DB6A2BB1ull;
  for (int64_t r = 0; r < num_rows_; ++r) {
    in_buf.clear();
    for (size_t c : in_cols) {
      in_buf.push_back(columns_[c][static_cast<size_t>(r)]);
    }
    out_buf.clear();
    for (size_t c : out_cols) {
      out_buf.push_back(columns_[c][static_cast<size_t>(r)]);
    }
    const uint64_t pair =
        (static_cast<uint64_t>(static_cast<uint32_t>(gin.Intern(in_buf)))
         << 32) |
        static_cast<uint32_t>(gout.Intern(out_buf));
    if (seen.insert(pair).second) {
      key.h1 = key.h1 * 0x100000001B3ull + Mix64(pair);
      key.h2 = key.h2 * 0x9E3779B97F4A7C15ull + Mix64(~pair);
    }
  }
  return key;
}

int64_t SafetyMemo::MaxGamma(const Bitset64& hidden, SafeSearchStats* stats) {
  const AttributeCatalog& catalog = *rel_.schema().catalog();
  int64_t hidden_ext = 1;
  for (AttrId id : outputs_) {
    if (id < hidden.size() && hidden.Test(id)) {
      hidden_ext = SaturatingMul(hidden_ext, catalog.DomainSize(id));
    }
  }
  SignatureKey sig(Difference(effective_, hidden), hidden_ext);
  auto it = signature_cache_.find(sig);
  if (it != signature_cache_.end()) {
    ++stats->cache_hits;
    ++stats->signature_hits;
    return it->second;
  }
  const ProjectionKey pkey = ProjectionKeyOf(sig.first, hidden_ext);
  auto pit = projection_cache_.find(pkey);
  if (pit != projection_cache_.end()) {
    ++stats->cache_hits;
    ++stats->projection_hits;
    signature_cache_.emplace(std::move(sig), pit->second);
    return pit->second;
  }
  ++stats->checker_calls;
  const int64_t gamma =
      MaxStandaloneGamma(rel_, inputs_, outputs_, hidden.Complement());
  projection_cache_.emplace(pkey, gamma);
  signature_cache_.emplace(std::move(sig), gamma);
  return gamma;
}

bool SafetyMemo::IsSafe(const Bitset64& hidden, int64_t gamma,
                        SafeSearchStats* stats) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxGamma(hidden, stats) >= gamma;
}

}  // namespace provview
