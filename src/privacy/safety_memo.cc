#include "privacy/safety_memo.h"

#include <limits>
#include <memory>

#include "common/combinatorics.h"
#include "common/exec_control.h"
#include "privacy/standalone_privacy.h"

namespace provview {

namespace {

// splitmix64 finalizer: the per-pair mix feeding the running hashes.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

SafetyMemo::SafetyMemo(const Relation& rel, std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs)
    : view_(RelationView::Borrowed(rel)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {
  BindPrivateCache();
  Init();
}

SafetyMemo::SafetyMemo(const Module& module, int64_t materialize_threshold)
    : view_(module.View(materialize_threshold)),
      inputs_(module.inputs()),
      outputs_(module.outputs()) {
  BindPrivateCache();
  Init();
}

SafetyMemo::SafetyMemo(const Module& module, int64_t materialize_threshold,
                       std::shared_ptr<VerdictCache> cache, uint32_t ns)
    : cache_(std::move(cache)),
      ns_(ns),
      view_(module.View(materialize_threshold)),
      inputs_(module.inputs()),
      outputs_(module.outputs()) {
  PV_CHECK_MSG(cache_ != nullptr, "SafetyMemo needs a verdict cache");
  Init();
}

SafetyMemo::SafetyMemo(RelationView view, std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs)
    : view_(std::move(view)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {
  BindPrivateCache();
  Init();
}

void SafetyMemo::BindPrivateCache() {
  // Single-owner store: unbounded (the historical grow-with-the-search
  // behavior) and unsharded (no concurrent readers to stripe for).
  VerdictCacheConfig config;
  config.num_shards = 1;
  cache_ = std::make_shared<VerdictCache>(config);
  ns_ = cache_->RegisterNamespace("memo");
}

void SafetyMemo::Init() {
  const Schema& schema = view_.schema();
  const AttributeCatalog& catalog = *schema.catalog();
  const int universe = catalog.size();

  std::vector<AttrId> local = inputs_;
  local.insert(local.end(), outputs_.begin(), outputs_.end());
  local_pos_.reserve(local.size());
  for (AttrId id : local) {
    const int p = schema.PositionOf(id);
    PV_CHECK_MSG(p >= 0, "view schema misses module attr " << id);
    local_pos_.push_back(p);
  }

  // An attribute cannot change the verdict if its domain has one value or
  // it is constant across R (its presence changes neither the visible-input
  // grouping nor the visible-output distinct counts). One streaming pass
  // detects the constant columns.
  std::vector<uint8_t> constant(local.size(), 1);
  std::vector<Value> first(local.size(), 0);
  bool have_first = false;
  std::vector<Value> block;
  const size_t arity = static_cast<size_t>(schema.arity());
  std::unique_ptr<RowSupplier> rows = view_.NewSupplier();
  int64_t n;
  while ((n = rows->NextBlock(&block)) > 0) {
    for (int64_t r = 0; r < n; ++r) {
      const Value* row = &block[static_cast<size_t>(r) * arity];
      if (!have_first) {
        for (size_t c = 0; c < local.size(); ++c) {
          first[c] = row[local_pos_[c]];
        }
        have_first = true;
        continue;
      }
      for (size_t c = 0; c < local.size(); ++c) {
        if (constant[c] && row[local_pos_[c]] != first[c]) constant[c] = 0;
      }
    }
  }

  effective_ = Bitset64(universe);
  for (size_t c = 0; c < local.size(); ++c) {
    if (catalog.DomainSize(local[c]) <= 1) continue;
    if (have_first && constant[c]) continue;
    effective_.Set(local[c]);
  }
}

std::pair<SafetyMemo::ProjectionKey, int64_t> SafetyMemo::ScanProjection(
    const Bitset64& effective_visible, int64_t hidden_ext) const {
  // Effective-visible row positions, split by side.
  std::vector<int> in_pos, out_pos;
  for (size_t j = 0; j < inputs_.size(); ++j) {
    if (effective_visible.Test(inputs_[j])) {
      in_pos.push_back(local_pos_[j]);
    }
  }
  for (size_t j = 0; j < outputs_.size(); ++j) {
    if (effective_visible.Test(outputs_[j])) {
      out_pos.push_back(local_pos_[inputs_.size() + j]);
    }
  }

  // One shared ScanVisibleGroups pass: the first-seen pair sequence feeds
  // the order-sensitive hashes and its per-group counts determine Γ.
  // First-seen order over the view's fixed row order is canonical, so
  // equal-projection hidden sets produce equal keys even when the
  // underlying values differ — and both backends walk rows in the same
  // order, so keys agree across materialized and streaming passes.
  ProjectionKey key;
  key.hidden_ext = hidden_ext;
  key.h1 = 0x8A91A6D40BF42040ull;
  key.h2 = 0xC83A91E1DB6A2BB1ull;
  std::unique_ptr<RowSupplier> rows = view_.NewSupplier();
  const int64_t min_count =
      ScanVisibleGroups(rows.get(), in_pos, out_pos, [&key](uint64_t pair) {
        key.h1 = key.h1 * 0x100000001B3ull + Mix64(pair);
        key.h2 = key.h2 * 0x9E3779B97F4A7C15ull + Mix64(~pair);
      });
  const int64_t gamma = min_count == std::numeric_limits<int64_t>::max()
                            ? min_count  // empty relation
                            : SaturatingMul(min_count, hidden_ext);
  return {key, gamma};
}

std::unique_ptr<SafetyMemo> SafetyMemo::NewOverlay() const {
  PV_CHECK_MSG(base_ == nullptr, "overlay of an overlay memo");
  std::unique_ptr<SafetyMemo> overlay(new SafetyMemo());
  overlay->view_ = view_;
  overlay->inputs_ = inputs_;
  overlay->outputs_ = outputs_;
  overlay->effective_ = effective_;
  overlay->local_pos_ = local_pos_;
  overlay->base_ = this;
  return overlay;
}

void SafetyMemo::Absorb(const SafetyMemo& worker) {
  for (const auto& [sig, gamma] : worker.signature_staging_) {
    StoreSignature(sig, gamma, nullptr);
  }
  for (const auto& [pkey, gamma] : worker.projection_staging_) {
    StoreProjection(pkey, gamma, nullptr);
  }
}

std::string SafetyMemo::SignatureKeyBytes(const SignatureKey& sig) const {
  std::string bytes;
  bytes.reserve(8 + sig.first.blocks().size() * 8);
  AppendU64(&bytes, static_cast<uint64_t>(sig.second));
  for (uint64_t block : sig.first.blocks()) AppendU64(&bytes, block);
  return bytes;
}

std::string SafetyMemo::ProjectionKeyBytes(const ProjectionKey& pkey) const {
  std::string bytes;
  bytes.reserve(24);
  AppendU64(&bytes, pkey.h1);
  AppendU64(&bytes, pkey.h2);
  AppendU64(&bytes, static_cast<uint64_t>(pkey.hidden_ext));
  return bytes;
}

bool SafetyMemo::FindSignature(const SignatureKey& sig,
                               int64_t* gamma) const {
  if (base_ != nullptr) {
    auto it = signature_staging_.find(sig);
    if (it != signature_staging_.end()) {
      *gamma = it->second;
      return true;
    }
    return base_->FindSignature(sig, gamma);
  }
  return cache_->Lookup(ns_, VerdictKeyClass::kSignature,
                        SignatureKeyBytes(sig), gamma);
}

bool SafetyMemo::FindProjection(const ProjectionKey& pkey,
                                int64_t* gamma) const {
  if (base_ != nullptr) {
    auto it = projection_staging_.find(pkey);
    if (it != projection_staging_.end()) {
      *gamma = it->second;
      return true;
    }
    return base_->FindProjection(pkey, gamma);
  }
  return cache_->Lookup(ns_, VerdictKeyClass::kProjection,
                        ProjectionKeyBytes(pkey), gamma);
}

void SafetyMemo::StoreSignature(const SignatureKey& sig, int64_t gamma,
                                const ExecControl* control) {
  if (base_ != nullptr) {
    signature_staging_.emplace(sig, gamma);
    return;
  }
  cache_->Insert(ns_, VerdictKeyClass::kSignature, SignatureKeyBytes(sig),
                 gamma, control);
}

void SafetyMemo::StoreProjection(const ProjectionKey& pkey, int64_t gamma,
                                 const ExecControl* control) {
  if (base_ != nullptr) {
    projection_staging_.emplace(pkey, gamma);
    return;
  }
  cache_->Insert(ns_, VerdictKeyClass::kProjection, ProjectionKeyBytes(pkey),
                 gamma, control);
}

SafetyMemo::SignatureKey SafetyMemo::MakeSignature(
    const Bitset64& hidden) const {
  const AttributeCatalog& catalog = *view_.schema().catalog();
  int64_t hidden_ext = 1;
  for (AttrId id : outputs_) {
    if (id < hidden.size() && hidden.Test(id)) {
      hidden_ext = SaturatingMul(hidden_ext, catalog.DomainSize(id));
    }
  }
  return SignatureKey(Difference(effective_, hidden), hidden_ext);
}

int64_t SafetyMemo::MaxGamma(const Bitset64& hidden, SafeSearchStats* stats,
                             LookupLog* log, const ExecControl* control) {
  PV_CHECK_MSG(stats != nullptr || log != nullptr,
               "MaxGamma needs stats (direct mode) or a log (worker mode)");
  SignatureKey sig = MakeSignature(hidden);
  int64_t cached = 0;
  if (FindSignature(sig, &cached)) {
    if (log != nullptr) {
      log->records.push_back({std::move(sig), ProjectionKey{}, cached, false});
    } else {
      ++stats->cache_hits;
      ++stats->signature_hits;
    }
    return cached;
  }
  const auto [pkey, gamma] = ScanProjection(sig.first, sig.second);
  if (FindProjection(pkey, &cached)) {
    StoreSignature(sig, cached, control);
    if (log != nullptr) {
      log->records.push_back({std::move(sig), pkey, cached, true});
    } else {
      ++stats->cache_hits;
      ++stats->projection_hits;
    }
    return cached;
  }
  StoreProjection(pkey, gamma, control);
  StoreSignature(sig, gamma, control);
  if (log != nullptr) {
    log->records.push_back({std::move(sig), pkey, gamma, true});
  } else {
    ++stats->checker_calls;
  }
  return gamma;
}

bool SafetyMemo::IsSafe(const Bitset64& hidden, int64_t gamma,
                        SafeSearchStats* stats, LookupLog* log,
                        const ExecControl* control) {
  PV_CHECK_MSG(gamma >= 1, "gamma must be >= 1");
  return MaxGamma(hidden, stats, log, control) >= gamma;
}

void SafetyMemo::AbsorbLog(const LookupLog& log, SafeSearchStats* stats) {
  for (const LookupLog::Record& rec : log.records) {
    int64_t cached = 0;
    if (FindSignature(rec.sig, &cached)) {
      ++stats->cache_hits;
      ++stats->signature_hits;
      continue;
    }
    if (!rec.scanned) {
      // The worker answered this from a settled signature, but the replay
      // misses — only possible when a bounded shared cache evicted the
      // entry in between. The verdict itself is settled (deterministic);
      // re-seed it and account the hit the worker actually had.
      StoreSignature(rec.sig, rec.gamma, nullptr);
      ++stats->cache_hits;
      ++stats->signature_hits;
      continue;
    }
    if (FindProjection(rec.pkey, &cached)) {
      StoreSignature(rec.sig, cached, nullptr);
      ++stats->cache_hits;
      ++stats->projection_hits;
      continue;
    }
    ++stats->checker_calls;
    StoreProjection(rec.pkey, rec.gamma, nullptr);
    StoreSignature(rec.sig, rec.gamma, nullptr);
  }
}

}  // namespace provview
