// Memoized Algorithm-2 safety verdicts for a fixed module relation, shared
// by the standalone subset searches (safe_subset_search) and the workflow
// batch certification driver (workflow_privacy). Two memo levels:
//
//   level 1 — effective-visible signature: Algorithm 2's verdict cannot
//   depend on attributes whose domain has one value or that are constant
//   across R, so hidden sets differing only in such attributes share one
//   cached Γ. Key: (effective visible set, hidden-output extension factor).
//
//   level 2 — induced-projection hash: the verdict is in fact a function of
//   the projection the hidden set induces, not of the attribute set itself.
//   Each row is canonicalized to a (visible-input group id, visible-output
//   value id) pair of dense first-seen interned ids; the deduplicated pair
//   sequence determines the per-group distinct-output counts and hence Γ
//   exactly. Distinct visible sets that induce the same grouping structure
//   (duplicated columns, value renamings, refinement-free columns) collapse
//   to one 128-bit key.
//
// A level-2 hit seeds level 1, so repeats of the same signature stay O(1).
// Since the streaming rework, the level-2 key and the exact Γ come out of
// the same single row pass — a level-2 hit therefore costs the same pass
// as a miss and exists to collapse verdict storage and to *measure* the
// canonicalization (SafeSearchStats reports per-level hit counts); the
// wall-clock win lives entirely in level 1.
//
// Verdict storage lives in a VerdictCache: a root memo serializes its keys
// into a cache namespace (a private unbounded cache by default, or a
// shared — possibly byte-budgeted — service cache bound at construction).
// The memo itself is a thin view over that store: root memos are safe to
// read concurrently (the cache is sharded and striped-locked; ScanProjection
// only reads the row backend), while NewOverlay() still hands workers O(1)
// private staging views whose lookup logs replay in rank order, keeping
// sharded-search results and SafeSearchStats byte-identical to the
// sequential walk at any thread count. Under a byte budget the cache may
// evict: eviction only forgets a verdict (it is recomputed on the next
// miss), never corrupts one.
//
// Rows are sourced through a RelationView: either a materialized relation
// (the small-domain fast case) or a streaming supplier re-deriving rows from
// the module's function each pass — which is how subset searches certify
// modules whose domain exceeds the 2^22 materialization wall. Both backends
// walk rows in the same order and run the identical cache logic, so the two
// paths produce byte-identical verdicts and SafeSearchStats.
#ifndef PROVVIEW_PRIVACY_SAFETY_MEMO_H_
#define PROVVIEW_PRIVACY_SAFETY_MEMO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "module/module.h"
#include "privacy/verdict_cache.h"
#include "relation/relation.h"
#include "relation/row_supplier.h"

namespace provview {

class ExecControl;

/// Instrumentation of a subset search / batch certification.
struct SafeSearchStats {
  int64_t subsets_examined = 0;  ///< candidate subsets considered
  int64_t checker_calls = 0;     ///< Algorithm-2 safety tests actually run
  /// Candidates answered from a memo instead of re-running Algorithm 2
  /// (signature_hits + projection_hits).
  int64_t cache_hits = 0;
  int64_t signature_hits = 0;   ///< level-1 effective-visible-signature hits
  int64_t projection_hits = 0;  ///< level-2 induced-projection-hash hits

  /// Fraction of memo-visible lookups answered without the checker.
  double HitRate() const {
    const int64_t total = checker_calls + cache_hits;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  void Accumulate(const SafeSearchStats& other) {
    subsets_examined += other.subsets_examined;
    checker_calls += other.checker_calls;
    cache_hits += other.cache_hits;
    signature_hits += other.signature_hits;
    projection_hits += other.projection_hits;
  }
};

/// Memoizing wrapper around MaxStandaloneGamma for a fixed (rel, I, O).
/// Build once per module and reuse across hidden sets, Γ values, and
/// callers. Root memos (cache-backed) are safe to read concurrently;
/// overlays are single-threaded — one per worker.
class SafetyMemo {
 public:
  /// Borrows `rel`; the caller keeps it alive for the memo's lifetime.
  /// Verdicts go to a private unbounded cache.
  SafetyMemo(const Relation& rel, std::vector<AttrId> inputs,
             std::vector<AttrId> outputs);

  /// Memo over the module relation: materialized when |Dom| is at most
  /// `materialize_threshold`, streamed from the module's function beyond it
  /// (the module must outlive the memo in that case).
  explicit SafetyMemo(
      const Module& module,
      int64_t materialize_threshold = Module::kDefaultMaterializeRows);

  /// As above, but bound to a shared VerdictCache namespace: verdicts are
  /// read from and settle into `cache` under `ns`, so they persist across
  /// requests and survive this memo. The cache may be byte-budgeted;
  /// eviction only forgets verdicts. One namespace per (cache, module).
  SafetyMemo(const Module& module, int64_t materialize_threshold,
             std::shared_ptr<VerdictCache> cache, uint32_t ns);

  /// Memo over an arbitrary row source (private unbounded cache).
  SafetyMemo(RelationView view, std::vector<AttrId> inputs,
             std::vector<AttrId> outputs);

  /// True when verdicts are recomputed by streaming passes instead of reads
  /// of a materialized relation.
  bool streaming() const { return !view_.materialized(); }

  SafetyMemo(const SafetyMemo&) = delete;
  SafetyMemo& operator=(const SafetyMemo&) = delete;

  /// O(1) worker view for the sharded searches: shares the row backend
  /// and reads this memo's verdicts through a frozen-base pointer, while
  /// its own inserts stay local (a delta, merged back later via Absorb or
  /// replayed with AbsorbLog). The base must not be mutated while overlays
  /// read it — the searches freeze it for the span of a lattice level. The
  /// overlay itself is single-threaded: one per worker.
  std::unique_ptr<SafetyMemo> NewOverlay() const;

  /// Merges an overlay's own verdicts back (deterministic values, so
  /// first-wins insertion is exact). Callers Absorb each shard in shard
  /// order, keeping the merged store identical across thread counts.
  void Absorb(const SafetyMemo& worker);

  /// Ordered record of the lookups one worker performed, replayable with
  /// AbsorbLog. Opaque to callers; definition follows the class.
  struct LookupLog;

  /// MaxStandaloneGamma(rel, I, O, hidden.Complement()), memoized — the
  /// one memo read path. With `log` null (the direct mode) a full miss
  /// bumps checker_calls and hits bump the per-level counters. With a
  /// non-null `log` (the worker mode, formerly MaxGammaLogged) no stats
  /// are bumped; the lookup is appended to the log instead, and the caller
  /// replays the logs with AbsorbLog in deterministic shard order — which
  /// reproduces the *sequential* walk's accounting exactly: a verdict two
  /// concurrent shards both computed collapses back into one checker call
  /// plus one cache hit, so SafeSearchStats are byte-identical to the
  /// single-threaded walk at any thread count. `stats` may be null only in
  /// log mode. A non-null `control` gates cache growth on the request's
  /// memory budget (see VerdictCache::Insert).
  int64_t MaxGamma(const Bitset64& hidden, SafeSearchStats* stats,
                   LookupLog* log = nullptr,
                   const ExecControl* control = nullptr);

  /// Memoized Algorithm-2 safety test (Γ ≥ 1 required); same log/control
  /// contract as MaxGamma.
  bool IsSafe(const Bitset64& hidden, int64_t gamma, SafeSearchStats* stats,
              LookupLog* log = nullptr, const ExecControl* control = nullptr);

  /// Replays a worker log against this memo in order: classifies every
  /// lookup against the current verdict store (signature hit / projection
  /// hit / checker call), inserts the settled verdicts, and bumps `stats`
  /// exactly as a sequential walk reaching these candidates in this order
  /// would. Under a bounded shared cache an entry may have been evicted
  /// between the worker's lookup and the replay; the logged Γ re-seeds it
  /// (eviction only forgets, the verdict itself is settled).
  void AbsorbLog(const LookupLog& log, SafeSearchStats* stats);

  /// The verdict store this memo settles into (never null for roots;
  /// overlays return their base's cache).
  const std::shared_ptr<VerdictCache>& cache() const {
    return base_ != nullptr ? base_->cache() : cache_;
  }

 private:
  SafetyMemo() = default;  // used by NewOverlay()

  // 128-bit order-sensitive hash of the canonical dedup'd pair sequence.
  struct ProjectionKey {
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    int64_t hidden_ext = 1;
    bool operator<(const ProjectionKey& o) const {
      if (h1 != o.h1) return h1 < o.h1;
      if (h2 != o.h2) return h2 < o.h2;
      return hidden_ext < o.hidden_ext;
    }
  };
  using SignatureKey = std::pair<Bitset64, int64_t>;

  void Init();
  void BindPrivateCache();
  // One streaming pass computing the level-2 key and the exact Γ together
  // (the pair sequence determines both), so a cache miss costs a single
  // pass regardless of backend.
  std::pair<ProjectionKey, int64_t> ScanProjection(
      const Bitset64& effective_visible, int64_t hidden_ext) const;

  SignatureKey MakeSignature(const Bitset64& hidden) const;

  // Serialized cache keys: signature = hidden_ext + effective-visible
  // blocks (the universe is fixed per namespace, so the block count is
  // constant); projection = (h1, h2, hidden_ext).
  std::string SignatureKeyBytes(const SignatureKey& sig) const;
  std::string ProjectionKeyBytes(const ProjectionKey& pkey) const;

  // Store lookups/inserts: overlays consult their local staging maps then
  // fall through to the frozen base; roots go to the cache namespace.
  bool FindSignature(const SignatureKey& sig, int64_t* gamma) const;
  bool FindProjection(const ProjectionKey& pkey, int64_t* gamma) const;
  void StoreSignature(const SignatureKey& sig, int64_t gamma,
                      const ExecControl* control);
  void StoreProjection(const ProjectionKey& pkey, int64_t gamma,
                       const ExecControl* control);

  // Frozen read-only fallback for overlays; nullptr for root memos.
  const SafetyMemo* base_ = nullptr;

  // Verdict store of a root memo (overlays keep local maps instead).
  std::shared_ptr<VerdictCache> cache_;
  uint32_t ns_ = 0;

  RelationView view_;
  std::vector<AttrId> inputs_;
  std::vector<AttrId> outputs_;
  Bitset64 effective_;  // attrs whose visibility can change the verdict
  // Row positions of the local attributes (inputs then outputs) within the
  // view's schema.
  std::vector<int> local_pos_;

  // Overlay staging (roots leave these empty and use the cache).
  std::map<SignatureKey, int64_t> signature_staging_;
  std::map<ProjectionKey, int64_t> projection_staging_;
};

/// One worker's lookup trace: which candidates it resolved, with enough of
/// each resolution (signature, projection key when a pass ran, Γ) for
/// AbsorbLog to re-classify it against the merged verdict store.
struct SafetyMemo::LookupLog {
  struct Record {
    SignatureKey sig;
    ProjectionKey pkey;  // meaningful only when `scanned`
    int64_t gamma = 0;
    bool scanned = false;  // the worker missed level 1 and ran the row pass
  };
  std::vector<Record> records;
};

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_SAFETY_MEMO_H_
