// Executable versions of the paper's lower-bound constructions
// (Appendix A):
//
//   - Theorem 1 (communication): the set-disjointness gadget. For sets
//     A, B ⊆ [N], a module with inputs (a, b, id) and output y = a ∧ b,
//     one row per universe element plus a sentinel row, is 2-private
//     w.r.t. V = {id, y} iff A ∩ B ≠ ∅. Deciding safety therefore answers
//     set disjointness, which needs Ω(N) communication.
//
//   - Theorem 2 (computation): the UNSAT gadget. For a CNF g over ℓ
//     variables, the module m(x1..xℓ, y) = ¬g(x) ∧ ¬y is 2-private w.r.t.
//     V = {x1..xℓ, z} iff g is unsatisfiable — so safety checking on
//     succinct modules is coNP-hard.
//
//   - Theorem 3 (oracle queries): the adversary pair m1/m2. Over ℓ boolean
//     inputs (ℓ divisible by 4), m1(x) = [#ones(x) ≥ ℓ/4]; m2 additionally
//     carries a special set A, |A| = ℓ/2, and outputs 1 iff #ones ≥ ℓ/4
//     AND some 1 lies outside A. Both agree that hidden input sets of size
//     < ℓ/4 are safe and larger ones unsafe — except that for m2, subsets
//     of A of size up to ℓ/2 are safe. Telling m1 from m2 needs 2^Ω(ℓ)
//     oracle queries; we expose the pair so the properties (P1)/(P2) can
//     be checked empirically against Algorithm 2.
#ifndef PROVVIEW_PRIVACY_LOWER_BOUNDS_H_
#define PROVVIEW_PRIVACY_LOWER_BOUNDS_H_

#include <vector>

#include "module/module.h"

namespace provview {

/// CNF formula over boolean variables 0..num_vars-1. Each clause is a list
/// of literals: +v+1 for variable v, -(v+1) for its negation.
struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;

  /// Evaluates under the given assignment (size num_vars, values 0/1).
  bool Eval(const std::vector<int32_t>& assignment) const;

  /// Exhaustive satisfiability check (num_vars ≤ 20).
  bool IsSatisfiable() const;
};

/// Theorem-1 gadget. The returned handle owns the catalog/module; the
/// visible set {id, y} is exposed as a bitset.
struct DisjointnessGadget {
  CatalogPtr catalog;
  ModulePtr module;   ///< inputs (a, b, id), output y
  Bitset64 view;      ///< V = {id, y}
  Relation relation;  ///< the N+1 rows of Appendix A.1
};

/// Builds the gadget for A, B ⊆ [0, universe). Safety of `view` for Γ = 2
/// holds iff A ∩ B ≠ ∅ (Theorem 1's equivalence).
DisjointnessGadget MakeDisjointnessGadget(int universe,
                                          const std::vector<int>& a,
                                          const std::vector<int>& b);

/// Theorem-2 gadget for a CNF g: module m(x, y) = ¬g(x) ∧ ¬y with visible
/// set V = {x1..xℓ, z}. Safe for Γ = 2 iff g is unsatisfiable.
struct UnsatGadget {
  CatalogPtr catalog;
  ModulePtr module;  ///< inputs (x1..xℓ, y), output z
  Bitset64 view;     ///< V = {x1..xℓ, z}  (y hidden)
};
UnsatGadget MakeUnsatGadget(const CnfFormula& g);

/// Theorem-3 adversary pair over ℓ boolean inputs (ℓ divisible by 4).
struct AdversaryPair {
  CatalogPtr catalog;
  ModulePtr m1;  ///< threshold function
  ModulePtr m2;  ///< threshold ∧ "some 1 outside A"
  std::vector<int> special_set;  ///< A (input positions), |A| = ℓ/2
};
AdversaryPair MakeAdversaryPair(int num_inputs,
                                const std::vector<int>& special_set);

/// True iff the view keeping exactly the input positions in
/// `visible_inputs` (plus the output) visible is safe for Γ = 2 —
/// convenience for checking properties (P1)/(P2) of the Theorem-3
/// construction against Algorithm 2.
bool AdversaryVisibleInputsSafe(const Module& module,
                                const std::vector<int>& visible_inputs);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_LOWER_BOUNDS_H_
