// Workflow-level privacy guarantees assembled from standalone guarantees:
//   Theorem 4 (all-private): if each private module m_i is Γ-standalone-
//   private w.r.t. V_i, the workflow is Γ-private w.r.t. V with V̄ = ∪ V̄_i.
//   Theorem 8 (general): additionally privatize every public module with a
//   hidden adjacent attribute; the remaining (visible) public modules keep
//   all attributes visible.
// This header provides certification (sufficient-condition checking), the
// composed solution assembly, and a ground-truth Γ computed by brute-force
// world enumeration for tiny workflows.
#ifndef PROVVIEW_PRIVACY_WORKFLOW_PRIVACY_H_
#define PROVVIEW_PRIVACY_WORKFLOW_PRIVACY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/engine_config.h"
#include "common/exec_control.h"
#include "privacy/safety_memo.h"
#include "privacy/verdict_cache.h"
#include "workflow/workflow.h"

namespace provview {

class TaskGraphExecutor;

/// A composed Secure-View solution for a workflow (§5.2 cost model: hidden
/// attributes pay c(a), privatized public modules pay c(m)).
struct ComposedSolution {
  Bitset64 hidden;                        ///< V̄, over the catalog
  std::vector<int> privatized_modules;    ///< P̄ (indices of hidden publics)
  double attr_cost = 0.0;
  double privatization_cost = 0.0;
  double total_cost() const { return attr_cost + privatization_cost; }
};

/// Theorem 4 / 8 assembly: unions per-private-module hidden sets (aligned
/// with workflow.PrivateModuleIndices()) and privatizes every public module
/// with a hidden input or output attribute.
ComposedSolution ComposeStandaloneSolutions(
    const Workflow& workflow,
    const std::vector<Bitset64>& hidden_per_private_module);

/// Largest Γ for which each module is standalone-private w.r.t. the visible
/// attributes induced by `hidden` (entry i corresponds to module index i;
/// public modules get INT64_MAX since they carry no privacy requirement).
std::vector<int64_t> PerModuleStandaloneGamma(const Workflow& workflow,
                                              const Bitset64& hidden);

/// Certificate produced by CertifyWorkflowPrivacy.
struct PrivacyCertificate {
  bool certified = false;             ///< all private modules reach Γ
  std::vector<int64_t> module_gammas; ///< per module standalone Γ
  /// Public modules that must be privatized for the Thm-8 argument to apply
  /// (those with a hidden adjacent attribute).
  std::vector<int> required_privatizations;
};

/// Sufficient-condition certification of Γ-workflow-privacy for a hidden
/// attribute set: every private module must be Γ-standalone-private w.r.t.
/// its local visible attributes (Theorems 4/8). Sound but — only in the
/// presence of public modules kept visible — not complete.
PrivacyCertificate CertifyWorkflowPrivacy(const Workflow& workflow,
                                          const Bitset64& hidden,
                                          int64_t gamma);

/// One batch certification request: a candidate hidden attribute set and
/// its privacy target Γ.
struct WorkflowCertificationRequest {
  Bitset64 hidden;   ///< V̄ over the catalog universe
  int64_t gamma = 1;
};

/// Knobs of the batch certification driver. The shared execution knobs
/// come from the embedded EngineConfig: num_threads defaults to 0 here
/// (hardware concurrency — certification parallelizes over private
/// modules, ground truth over requests); use_task_graph (default) runs the
/// batch as a dependency graph — per-module request chains, per-request
/// verdict tasks, and with ground truth a tables task feeding per-request
/// enumerations with no phase barrier — while off keeps the historical
/// two-phase fork-join driver, field-identical results either way
/// (resolved num_threads <= 1 always takes the historical sequential
/// path); `executor` shares the daemon's work-stealing pool; `control` is
/// polled between requests and at engine chunk boundaries, a trip
/// surfacing as WorkflowBatchResult::status — partial stats, no certified
/// verdicts. When control is null, guards keep the historical
/// PV_CHECK-abort behavior.
struct WorkflowBatchOptions : EngineConfig {
  WorkflowBatchOptions() { num_threads = 0; }

  /// Additionally run the pruned possible-worlds engine per request with
  /// the Γ short-circuit engaged (tiny workflows only), sharing one
  /// WorkflowTables build across all requests.
  bool with_ground_truth = false;
  /// Public modules held fixed for the ground-truth enumeration
  /// (Definition 4); ignored unless with_ground_truth.
  std::vector<int> visible_public_modules;
  /// Pruned-space budget for the ground-truth enumeration.
  int64_t max_candidates = 40000000;
};

/// Per-request batch output.
struct WorkflowBatchEntry {
  PrivacyCertificate certificate;
  /// Γ-privacy verdict from possible-worlds enumeration; meaningful only
  /// when the batch ran with_ground_truth.
  bool ground_truth_private = false;
};

struct WorkflowBatchResult {
  std::vector<WorkflowBatchEntry> entries;  ///< aligned with the requests
  /// Aggregated Algorithm-2 memo statistics: every private module keeps one
  /// SafetyMemo across the whole batch, so requests whose hidden sets
  /// induce the same projection on a module share one checker call.
  SafeSearchStats stats;
  /// Non-OK when a service-mode control tripped (DEADLINE_EXCEEDED /
  /// RESOURCE_EXHAUSTED) or a request was structurally invalid
  /// (INVALID_ARGUMENT). Entries then carry no certified verdicts — only
  /// `stats` reflects the partial work done.
  Status status;
};

/// One workflow's verdict namespaces in a VerdictCache: a cache-backed
/// SafetyMemo per private module, aligned with
/// workflow.PrivateModuleIndices(), each bound to its own namespace of the
/// cache. Cache-backed memos are safe to read concurrently (the cache is
/// sharded and striped-locked), so concurrent batches — e.g. daemon
/// connections certifying against the same registered workflow — share
/// settled verdicts without per-module mutexes, and a byte-budgeted shared
/// cache bounds the daemon's verdict memory (its eviction only forgets
/// verdicts, never corrupts them). Pass no cache for a private unbounded
/// one — the historical single-owner behavior.
class WorkflowCacheNamespace {
 public:
  /// Binds one namespace per private module of `workflow` in `cache`
  /// (nullptr = a private unbounded cache). `label` prefixes the
  /// namespace's diagnostic labels.
  explicit WorkflowCacheNamespace(const Workflow& workflow,
                                  std::shared_ptr<VerdictCache> cache = nullptr,
                                  const std::string& label = "workflow");

  const Workflow* workflow() const { return workflow_; }
  size_t size() const { return memos_.size(); }
  /// Cache-backed memo of the mi-th private module (concurrent-read safe).
  SafetyMemo* memo(size_t mi) { return memos_[mi].get(); }
  const std::shared_ptr<VerdictCache>& cache() const { return cache_; }

 private:
  const Workflow* workflow_;
  std::shared_ptr<VerdictCache> cache_;
  std::vector<std::unique_ptr<SafetyMemo>> memos_;
};

/// Certifies many candidate hidden sets / Γ targets in one pass. Unlike
/// calling CertifyWorkflowPrivacy per candidate — which re-materializes
/// every module relation and re-runs Algorithm 2 from scratch each time —
/// the batch driver materializes each private module's relation once,
/// shares a per-module SafetyMemo across all requests, fans the per-module
/// work out onto a thread pool, and (optionally) reuses one set of
/// possible-worlds tables for every ground-truth enumeration.
WorkflowBatchResult CertifyWorkflowBatch(
    const Workflow& workflow,
    const std::vector<WorkflowCertificationRequest>& requests,
    const WorkflowBatchOptions& opts = {});

/// As above, answering from (and settling into) a caller-owned cache
/// namespace so verdicts persist across batches (and across connections
/// when the namespace is bound to a shared daemon cache). `verdicts` must
/// have been built for this workflow; pass nullptr for the single-batch
/// behavior.
WorkflowBatchResult CertifyWorkflowBatch(
    const Workflow& workflow,
    const std::vector<WorkflowCertificationRequest>& requests,
    const WorkflowBatchOptions& opts, WorkflowCacheNamespace* verdicts);

/// Ground truth via brute-force world enumeration (tiny workflows only):
/// min over private modules and their original inputs of |OUT_{x,W}|, with
/// the public modules in `visible_public_modules` held fixed (Definition 4)
/// and all other modules free. The workflow is Γ-private iff the returned
/// value is ≥ Γ.
int64_t GroundTruthWorkflowGamma(const Workflow& workflow,
                                 const Bitset64& hidden,
                                 const std::vector<int>& visible_public_modules,
                                 int64_t max_candidates = 40000000);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_WORKFLOW_PRIVACY_H_
