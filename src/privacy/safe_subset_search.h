// Standalone Secure-View search (§3): enumerate hidden attribute subsets of
// a single module and find (a) the minimum-cost safe one, (b) the antichain
// of minimal safe subsets, and (c) the minimal safe cardinality pairs.
// These searches are exponential in k = |I| + |O| — exactly the complexity
// the paper proves unavoidable (Theorems 1–3) — but k is small in practice
// (§3.2 Remarks), and the outputs are the building blocks of the workflow
// Secure-View problem: (b) yields the set-constraint lists L_i and (c) the
// cardinality-constraint lists of §4.2.
#ifndef PROVVIEW_PRIVACY_SAFE_SUBSET_SEARCH_H_
#define PROVVIEW_PRIVACY_SAFE_SUBSET_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/engine_config.h"
#include "common/exec_control.h"
#include "module/module.h"
#include "privacy/safety_memo.h"

namespace provview {

class TaskGraphExecutor;

/// Knobs of the subset-lattice searches. The shared execution knobs
/// (num_threads, use_task_graph, executor, control, materialize_threshold)
/// come from the embedded EngineConfig; the historical field names keep
/// working as inherited aliases.
///
/// The lattice walk is level-synchronous: subsets of one cardinality are
/// pairwise incomparable, so a level can shard across worker threads
/// (contiguous lexicographic rank ranges via ForEachSubsetOfSizeRange) with
/// dominance checked only against the minimal sets of strictly smaller
/// levels — results and their order are identical to the sequential walk
/// for every thread count.
///
/// Two parallel execution modes share that decomposition. Both run shards
/// on O(1) SafetyMemo overlays of the frozen level-start memo and replay
/// each shard's lookup log in rank order — the one memo read path — so
/// SafeSearchStats come out byte-identical to the sequential walk at every
/// thread count in either mode:
///
///   * use_task_graph (default) — rank-range tasks on the dependency-aware
///     TaskGraphExecutor; a per-level absorb chain replays each shard's log
///     the moment the shard finishes, overlapping memo merges with later
///     shards' compute instead of paying a level barrier.
///   * barrier (use_task_graph = false) — the historical fork-join
///     schedule: all shards of a level run to completion on a thread pool,
///     then the logs replay at the level barrier. Kept for A/B equivalence
///     and bench races.
///
/// A control trip makes the searches return early with whatever they have
/// (MinimalSafeHiddenSets: the minimal sets of fully completed levels;
/// MinimalSafeCardinalityPairs: a frontier that must be discarded). Callers
/// MUST treat results as partial whenever control->Check() is non-OK
/// afterwards.
struct SubsetSearchOptions : EngineConfig {
  /// Levels with at most this many subsets always run inline (the task /
  /// memo-overlay overhead would dominate).
  int64_t min_parallel_subsets = 4096;
};

/// Largest k = |I| + |O| the lattice searches accept. 2^24 subsets is the
/// point where even the sharded walk stops being interactive.
inline constexpr int kMaxSubsetSearchAttrs = 24;

/// Result of the minimum-cost search.
struct MinCostSafeResult {
  bool found = false;
  Bitset64 hidden;  ///< minimum-cost safe hidden subset (over the catalog)
  double cost = 0.0;
  SafeSearchStats stats;
};

/// All minimal (w.r.t. set inclusion) safe hidden subsets of the module's
/// attributes for privacy level `gamma`. By Proposition 1 safety is
/// monotone under adding hidden attributes, so these minimal sets describe
/// the full safe family. k = |I|+|O| must be ≤ 24; sharded searches
/// (SubsetSearchOptions::num_threads) keep k = 24 tractable.
std::vector<Bitset64> MinimalSafeHiddenSets(const Relation& rel,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int64_t gamma,
                                            SafeSearchStats* stats = nullptr);

/// As above, but reusing a caller-owned SafetyMemo (for the module of
/// `memo`), so repeated searches — different Γ values, batch drivers —
/// share one verdict cache. Accumulates into `stats` instead of resetting.
std::vector<Bitset64> MinimalSafeHiddenSets(SafetyMemo* memo,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int universe, int64_t gamma,
                                            SafeSearchStats* stats);

/// Full-control overload: sharded level-parallel walk over a caller-owned
/// memo.
std::vector<Bitset64> MinimalSafeHiddenSets(SafetyMemo* memo,
                                            const std::vector<AttrId>& inputs,
                                            const std::vector<AttrId>& outputs,
                                            int universe, int64_t gamma,
                                            SafeSearchStats* stats,
                                            const SubsetSearchOptions& opts);

/// Minimum-cost safe hidden subset using catalog attribute costs. With
/// non-negative costs the optimum is attained at a minimal safe subset.
MinCostSafeResult MinCostSafeHiddenSet(const Relation& rel,
                                       const std::vector<AttrId>& inputs,
                                       const std::vector<AttrId>& outputs,
                                       int64_t gamma);

/// Convenience overloads over the module relation. Domains of at most
/// `materialize_threshold` rows use the materialized fast path; larger
/// domains stream rows from the module's function on every checker pass, so
/// the searches work past the 2^22 materialization wall (subject to the
/// k <= 24 subset-space limit). The explicit parameter wins when it differs
/// from the default; otherwise opts.materialize_threshold (the EngineConfig
/// field) applies, so a single config can carry the knob.
std::vector<Bitset64> MinimalSafeHiddenSets(
    const Module& module, int64_t gamma, SafeSearchStats* stats = nullptr,
    int64_t materialize_threshold = Module::kDefaultMaterializeRows,
    const SubsetSearchOptions& opts = {});
MinCostSafeResult MinCostSafeHiddenSet(
    const Module& module, int64_t gamma,
    int64_t materialize_threshold = Module::kDefaultMaterializeRows,
    const SubsetSearchOptions& opts = {});

/// A cardinality requirement pair (α, β): hiding ANY α inputs and β outputs
/// of the module is safe (§4.2, cardinality constraints).
struct CardinalityPair {
  int alpha = 0;
  int beta = 0;
  bool operator==(const CardinalityPair& o) const {
    return alpha == o.alpha && beta == o.beta;
  }
};

/// The minimal frontier of safe cardinality pairs for the module: all
/// pairs (α, β) such that every subset hiding exactly α inputs and β
/// outputs is safe for `gamma`, minimized coordinatewise (the list L_i the
/// paper's cardinality-constraint Secure-View instances carry; e.g. a
/// one-one k-bit module with Γ = 2^k yields {(k,0), (0,k)}, Example 6).
/// Returns an empty list when not even hiding everything is safe.
std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int64_t gamma);

/// As above over a caller-owned memo (any row backend, shared verdict
/// cache).
std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    SafetyMemo* memo, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int universe, int64_t gamma);

/// Full-control overload: the (α, β) grid cells are independent given the
/// memo, so cells shard across the thread pool (each cell ANDs its subset
/// family with an early break, exactly the verdict the sequential
/// evaluation computes). Accumulates into `stats` when non-null.
std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    SafetyMemo* memo, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, int universe, int64_t gamma,
    const SubsetSearchOptions& opts, SafeSearchStats* stats = nullptr);

std::vector<CardinalityPair> MinimalSafeCardinalityPairs(
    const Module& module, int64_t gamma,
    int64_t materialize_threshold = Module::kDefaultMaterializeRows,
    const SubsetSearchOptions& opts = {});

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_SAFE_SUBSET_SEARCH_H_
