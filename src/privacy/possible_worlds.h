// Brute-force possible-worlds enumeration (Definitions 1, 4). This is the
// library's ground truth: it enumerates candidate relations explicitly and
// computes OUT sets from first principles, with no reliance on the paper's
// counting shortcuts. Exponential — usable only on tiny modules/workflows —
// and cross-checked against the fast Algorithm-2 checker by the test suite.
#ifndef PROVVIEW_PRIVACY_POSSIBLE_WORLDS_H_
#define PROVVIEW_PRIVACY_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "workflow/workflow.h"

namespace provview {

/// Result of enumerating Worlds(R, V) for a standalone module.
struct StandaloneWorlds {
  /// Number of candidate functions on π_I(R) consistent with the view.
  int64_t num_worlds = 0;
  /// OUT_{x,m} per input x (keys aligned with the module's input list).
  std::map<Tuple, std::set<Tuple>> out_sets;

  /// min_x |OUT_{x,m}| — the exact largest safe Γ. INT64_MAX when no input.
  int64_t MinOutSize() const;
};

/// Enumerates every total function f from π_I(R) into Range whose induced
/// relation projects onto V exactly like R does, i.e. all members of
/// Worlds(R, V) that keep R's input set. (By the flip construction these
/// realize every achievable OUT value; see standalone_privacy.h.)
/// Aborts if the candidate space |Range|^N exceeds `max_candidates`.
StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           int64_t max_candidates = 40000000);

/// Result of enumerating functional worlds of a workflow.
struct WorkflowWorlds {
  /// Distinct provenance relations among consistent worlds (counted up to
  /// row-set equality; Proposition 2 compares this with the standalone
  /// world count).
  int64_t num_distinct_relations = 0;
  /// Number of consistent joint function choices (≥ num_distinct_relations).
  int64_t num_function_choices = 0;
  /// out_sets[i][x] = OUT_{x,W} restricted to functional worlds, for module
  /// index i and module-i input x.
  std::vector<std::map<Tuple, std::set<Tuple>>> out_sets;

  /// min over private-module inputs of |OUT| for a given module index.
  int64_t MinOutSize(int module_index) const;
};

/// Enumerates joint choices of total functions (g_1, ..., g_n) — keeping
/// g_i = m_i for every module index in `fixed_modules` (Definition 4's
/// public-module constraint) — runs the workflow on every initial input of
/// the original provenance relation, and keeps the worlds whose visible
/// projection matches. OUT sets are recorded for every module.
/// The joint candidate space ∏ |Range_i|^{|Dom_i|} must not exceed
/// `max_candidates`.
WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       int64_t max_candidates = 40000000);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_POSSIBLE_WORLDS_H_
