// Possible-worlds enumeration (Definitions 1, 4). This is the library's
// ground truth: it enumerates candidate relations explicitly and computes
// OUT sets from first principles, with no reliance on the paper's counting
// shortcuts.
//
// Two standalone enumerators are provided. EnumerateStandaloneWorldsNaive is
// the original odometer over the full |Range|^N function space, retained as
// the reference implementation the equivalence tests compare against.
// EnumerateStandaloneWorlds is the production engine: it interns visible
// projections to dense ids, prunes each input slot to the output codes whose
// visible projection actually occurs in the target view (shrinking the walk
// from |Range|^N to ∏_i |feasible_i|), maintains the projected multiset
// incrementally as the odometer advances one digit at a time, optionally
// short-circuits once every input's OUT set has reached Γ, and can shard the
// walk over the first slot's feasible codes on a thread pool. Both compute
// byte-identical num_worlds / out_sets on full runs.
#ifndef PROVVIEW_PRIVACY_POSSIBLE_WORLDS_H_
#define PROVVIEW_PRIVACY_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/engine_config.h"
#include "common/exec_control.h"
#include "relation/row_supplier.h"
#include "workflow/workflow.h"

namespace provview {

class TaskGraphExecutor;

/// Tuning knobs of the optimized standalone enumerator.
struct EnumerationOptions {
  /// Abort if the (pruned) candidate space exceeds this.
  int64_t max_candidates = 40000000;
  /// When > 0, stop enumerating as soon as every input's OUT set holds at
  /// least this many outputs — the Γ short-circuit used by the brute-force
  /// safety check. The returned num_worlds is then only a lower bound and
  /// `early_stopped` is set.
  int64_t gamma = 0;
  /// Worker threads for sharded enumeration. 0 = hardware concurrency,
  /// 1 = fully sequential. Shards split the first slot's feasible codes;
  /// results are merged by commutative sums/unions, so the outcome is
  /// deterministic regardless of thread count.
  int num_threads = 1;
  /// Pruned spaces at or below this size always run sequentially (the pool
  /// overhead would dominate).
  int64_t min_parallel_candidates = 4096;
  /// Optional deadline/cancellation/memory-budget token (service mode).
  /// When set, the walk polls it at chunk boundaries and a tripped control
  /// stops the enumeration with a typed `status` (DEADLINE_EXCEEDED /
  /// RESOURCE_EXHAUSTED) instead of aborting — including the candidate-space
  /// guards, which PV_CHECK-abort only when no control is attached.
  const ExecControl* control = nullptr;
};

/// Result of enumerating Worlds(R, V) for a standalone module.
struct StandaloneWorlds {
  /// Number of candidate functions on π_I(R) consistent with the view.
  /// A lower bound if `early_stopped` is set.
  int64_t num_worlds = 0;
  /// OUT_{x,m} per input x (keys aligned with the module's input list).
  std::map<Tuple, std::set<Tuple>> out_sets;
  /// True iff the Γ short-circuit fired before the walk finished.
  bool early_stopped = false;
  /// ∏_i |feasible_i|: candidates actually walked by the pruned engine.
  int64_t pruned_candidates = 0;
  /// |Range|^N: candidates the naive engine would walk.
  int64_t naive_candidates = 0;
  /// OK on a completed run. DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED when the
  /// attached ExecControl tripped: counts and OUT sets are then the partial
  /// state at the stop point (stats, not verdicts).
  Status status;

  /// min_x |OUT_{x,m}| — the exact largest safe Γ. INT64_MAX when no input.
  int64_t MinOutSize() const;
};

/// Enumerates every total function f from π_I(R) into Range whose induced
/// relation projects onto V exactly like R does, i.e. all members of
/// Worlds(R, V) that keep R's input set. (By the flip construction these
/// realize every achievable OUT value; see standalone_privacy.h.)
/// Pruned + incremental + optionally parallel; aborts if the pruned space
/// ∏_i |feasible_i| exceeds `opts.max_candidates`.
StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           const EnumerationOptions& opts);

/// Core entry point: sources rows from any supplier (materialized table or
/// module function), so the engine no longer requires an eagerly built
/// FullRelation. The Relation overload above wraps the rows in a
/// MaterializedRowSupplier and delegates here.
StandaloneWorlds EnumerateStandaloneWorlds(RowSupplier* rows,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           const EnumerationOptions& opts);

/// Back-compat wrapper with the historical signature.
StandaloneWorlds EnumerateStandaloneWorlds(const Relation& rel,
                                           const std::vector<AttrId>& inputs,
                                           const std::vector<AttrId>& outputs,
                                           const Bitset64& visible,
                                           int64_t max_candidates = 40000000);

/// The original unpruned odometer over |Range|^N candidate functions.
/// Exponentially slower than EnumerateStandaloneWorlds; kept as the
/// reference implementation for the equivalence test suite and the
/// speedup benchmarks. Aborts if |Range|^N exceeds `max_candidates`.
StandaloneWorlds EnumerateStandaloneWorldsNaive(
    const Relation& rel, const std::vector<AttrId>& inputs,
    const std::vector<AttrId>& outputs, const Bitset64& visible,
    int64_t max_candidates = 40000000);

/// Brute-force Γ-standalone-privacy check via the pruned enumerator with the
/// Γ short-circuit engaged: stops walking as soon as every input's OUT set
/// reaches `gamma`. Semantically identical to (but exponentially slower
/// than) Algorithm 2's IsStandaloneSafe; used to cross-check it.
bool IsStandaloneSafeByEnumeration(const Relation& rel,
                                   const std::vector<AttrId>& inputs,
                                   const std::vector<AttrId>& outputs,
                                   const Bitset64& visible, int64_t gamma,
                                   EnumerationOptions opts = {});

/// Result of enumerating functional worlds of a workflow.
struct WorkflowWorlds {
  /// Distinct provenance relations among consistent worlds (counted up to
  /// row-set equality; Proposition 2 compares this with the standalone
  /// world count). Zero when the enumeration ran with
  /// `collect_distinct_relations` off.
  int64_t num_distinct_relations = 0;
  /// Number of consistent joint function choices (≥ num_distinct_relations).
  /// A lower bound if `early_stopped` is set.
  int64_t num_function_choices = 0;
  /// out_sets[i][x] = OUT_{x,W} restricted to functional worlds, for module
  /// index i and module-i input x.
  std::vector<std::map<Tuple, std::set<Tuple>>> out_sets;
  /// True iff the Γ short-circuit fired before the walk finished.
  bool early_stopped = false;
  /// Joint states actually walked by the pruned engine: ∏ |feasible_s| over
  /// the walked slots (factored always-unreached slots excluded).
  int64_t pruned_candidates = 0;
  /// ∏ |Range_i|^{|Dom_i|} over free modules: the naive joint space.
  int64_t naive_candidates = 0;
  /// OK on a completed run. DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED when the
  /// attached ExecControl tripped mid-walk (partial counts, no verdict).
  Status status;

  /// min over private-module inputs of |OUT| for a given module index.
  int64_t MinOutSize(int module_index) const;
};

/// Tuning knobs of the optimized workflow enumerator. The shared execution
/// knobs (num_threads, control, ...) come from the embedded EngineConfig.
/// Sharded enumeration splits the first walked slot's feasible codes;
/// results merge by commutative sums/unions, so the outcome is
/// deterministic regardless of thread count. The enumeration walk has no
/// task-graph mode yet — use_task_graph / executor / materialize_threshold
/// are accepted (one config can drive a whole pipeline) but ignored here.
struct WorkflowEnumerationOptions : EngineConfig {
  /// Abort if the (pruned) walked joint space exceeds this.
  int64_t max_candidates = 40000000;
  /// When > 0, stop enumerating as soon as every tracked module input's OUT
  /// set holds at least this many outputs. Counts become lower bounds and
  /// `early_stopped` is set.
  int64_t gamma = 0;
  /// Modules whose OUT sets the Γ short-circuit tracks. Empty = every free
  /// private module (fixed modules have singleton OUT sets and would never
  /// reach Γ > 1).
  std::vector<int> gamma_modules;
  /// Pruned spaces at or below this size always run sequentially.
  int64_t min_parallel_candidates = 4096;
  /// Maintain the distinct-relation set. The Γ-certification path only
  /// needs OUT sets and can turn this off (num_distinct_relations stays 0).
  bool collect_distinct_relations = true;
  /// Run the feasible-set fixpoint (privacy/feasible_sets.h) before the
  /// walk: determinedness then crosses forced free modules, candidate lists
  /// shrink from per-attribute feasible sets (including hidden outputs
  /// narrowed backward through fixed modules), and domain points of free
  /// modules proven unreachable are factored instead of walked at full
  /// range. Exact — identical results with the pass on or off; off
  /// reproduces the determined-input-only engine for A/B benchmarking.
  bool use_feasible_sets = true;
};

/// Immutable per-workflow tables shared by every enumeration over the same
/// workflow: interned per-module original functions (encoded input →
/// encoded output), mixed-radix strides, the original execution log, and
/// per-module original input codes. Building them costs one full provenance
/// run; the batch certification driver builds them once and reuses them
/// across many (visible set, fixed set, Γ) enumerations.
struct WorkflowTables {
  const Workflow* workflow = nullptr;
  int num_attrs = 0;
  int num_modules = 0;

  // Per module (index-aligned with the workflow).
  std::vector<std::vector<AttrId>> in_attrs;
  std::vector<std::vector<AttrId>> out_attrs;
  std::vector<std::vector<int>> in_radices;
  std::vector<std::vector<int>> out_radices;
  std::vector<std::vector<int64_t>> in_strides;   // little-endian, match Encode
  std::vector<std::vector<int64_t>> out_strides;
  std::vector<int64_t> dom_size;
  std::vector<int64_t> range_size;
  /// original_fn[i][input_code] = output_code of module i's real function.
  std::vector<std::vector<int32_t>> original_fn;
  /// Decoded outputs: out_values[i][code * |O_i| + j] = j-th output value of
  /// output code `code` (avoids div/mod decoding in the walk's hot loop).
  std::vector<std::vector<int32_t>> out_values;
  /// Distinct original input codes of module i (sorted): the x's whose
  /// OUT sets Definition 5 tracks.
  std::vector<std::vector<int32_t>> orig_input_codes;

  // The original execution log: one execution per initial-input combination.
  std::vector<int> init_radices;
  int64_t num_execs = 0;
  std::vector<AttrId> prov_ids;
  /// True when the per-execution arrays below were materialized. Beyond the
  /// materialization threshold the build streams executions in chunks and
  /// keeps only the aggregates (orig_input_codes); world enumeration then
  /// requires a rebuild with a larger threshold, but the aggregate tables
  /// still serve batch certification and instance derivation.
  bool log_materialized = false;
  /// Original provenance rows, flattened num_execs × prov_ids.size().
  std::vector<int32_t> orig_rows;
  /// Original input code of module i in execution e, flattened
  /// num_execs × num_modules.
  std::vector<int32_t> orig_in_code;
  /// Initial-input values per execution, flattened num_execs × |I_0|.
  std::vector<int32_t> init_values;
  /// OK on a completed build. When WorkflowTablesOptions::control tripped
  /// (deadline or memory budget) the build stops early, this carries the
  /// typed reason, and the tables must not be fed to the enumerators.
  Status status;
};

/// Knobs of the workflow-tables build. The shared execution knobs come
/// from the embedded EngineConfig: num_threads shards the streamed scan
/// (each shard owns its own ExecutionSupplier over a contiguous execution
/// range; per-shard aggregates merge deterministically); use_task_graph
/// runs the build on the dependency-aware executor — the per-module
/// function sweeps and output-decode tables become independent tasks and
/// the scan shards start the moment the sweeps settle, identical tables
/// either way (engaged only when the resolved num_threads > 1);
/// materialize_threshold bounds the execution logs that keep per-execution
/// arrays (required by world enumeration) — larger spaces stream the log
/// and keep aggregates only; `control`'s memory budget is charged before
/// the per-execution arrays allocate, a trip surfacing as
/// WorkflowTables::status instead of a PV_CHECK abort.
struct WorkflowTablesOptions : EngineConfig {
  /// Hard budget on the initial-input product space (the execution count),
  /// materialized or streamed.
  int64_t max_executions = int64_t{1} << 22;
  /// Executions per streamed chunk (the shard-sized unit of work).
  int64_t chunk_executions = int64_t{1} << 16;
};

/// Precomputes the shared tables, streaming the execution log from the
/// initial-input odometer in chunk-sized blocks (one pass, optionally
/// sharded over a thread pool).
std::shared_ptr<const WorkflowTables> BuildWorkflowTables(
    const Workflow& workflow, const WorkflowTablesOptions& opts);

/// Back-compat wrapper: materializes the log (as world enumeration needs)
/// and refuses initial-input spaces beyond `max_executions`.
std::shared_ptr<const WorkflowTables> BuildWorkflowTables(
    const Workflow& workflow, int64_t max_executions = 1 << 22);

/// Enumerates joint choices of total functions (g_1, ..., g_n) — keeping
/// g_i = m_i for every module index in `fixed_modules` (Definition 4's
/// public-module constraint) — runs the workflow on every initial input of
/// the original provenance relation, and keeps the worlds whose visible
/// projection matches. OUT sets are recorded for every module.
///
/// This is the pruned engine: slots whose input is determined in every
/// world (fed by initial inputs through fixed modules only) are pruned to
/// the output codes consistent with the visible provenance view — fully
/// visible outputs collapse to the forced codes, fully hidden ones keep the
/// whole range — and determined slots reached by no execution are factored
/// out of the walk entirely (they multiply num_function_choices without
/// changing any relation). The covered-target multiset is maintained
/// incrementally across odometer steps, the Γ short-circuit can stop the
/// walk early, and the walk is sharded over the first walked slot's
/// feasible codes on a thread pool. Byte-identical results to
/// EnumerateWorkflowWorldsNaive on full runs.
WorkflowWorlds EnumerateWorkflowWorlds(const WorkflowTables& tables,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       const WorkflowEnumerationOptions& opts);

/// Convenience overload building the tables internally.
WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       const WorkflowEnumerationOptions& opts);

/// Back-compat wrapper with the historical signature.
WorkflowWorlds EnumerateWorkflowWorlds(const Workflow& workflow,
                                       const Bitset64& visible,
                                       const std::vector<int>& fixed_modules,
                                       int64_t max_candidates = 40000000);

/// The original joint odometer over the unpruned ∏ |Range_i|^{|Dom_i|}
/// space. Exponentially slower than EnumerateWorkflowWorlds; kept as the
/// reference implementation for the workflow equivalence suite and the
/// speedup benchmarks.
WorkflowWorlds EnumerateWorkflowWorldsNaive(
    const Workflow& workflow, const Bitset64& visible,
    const std::vector<int>& fixed_modules, int64_t max_candidates = 40000000);

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_POSSIBLE_WORLDS_H_
