// One shared, evicting, memory-accounted verdict cache. The certification
// decision (is this hidden set Γ-safe on this module?) is pure and
// endlessly re-asked — across subset-lattice levels, across
// CertifyWorkflowBatch requests, and across podsd connections — so the
// verdict store is a cache in the memcached sense, not a per-request map:
//
//   * sharded — the serialized key hashes to one of num_shards independent
//     segments, each behind its own mutex (striped locking), so concurrent
//     requests against the same workflow contend only when they touch the
//     same shard;
//   * segmented LRU — each shard keeps a probation and a protected list. A
//     new entry enters probation; a hit promotes it to protected; eviction
//     drains probation first, so one-shot scans cannot flush the working
//     set of repeated certifications;
//   * memory-accounted — a counting allocator charges every byte the
//     shard's containers allocate (keys, entries, index buckets) against a
//     per-shard atomic, so the hard byte budget is enforced on *measured*
//     bytes, memcached-style, not on guessed entry sizes.
//
// Two key classes mirror SafetyMemo's two memo levels: the
// effective-visible signature (level 1) and the 128-bit induced-projection
// hash (level 2). Verdicts are deterministic, so first-wins insertion is
// exact and eviction can only forget a verdict, never corrupt one.
//
// Namespaces partition the key space: each (workflow, private module)
// binds one namespace id, so one cache instance serves a whole daemon
// without cross-module collisions and STAT can report a namespace count.
#ifndef PROVVIEW_PRIVACY_VERDICT_CACHE_H_
#define PROVVIEW_PRIVACY_VERDICT_CACHE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace provview {

class ExecControl;

/// The two verdict key classes (SafetyMemo's memo levels).
enum class VerdictKeyClass : uint8_t {
  kSignature = 0,   ///< effective-visible signature (level 1)
  kProjection = 1,  ///< 128-bit induced-projection hash (level 2)
};

struct VerdictCacheConfig {
  /// Hard ceiling on measured cache bytes. Defaults to unbounded — the
  /// historical grow-forever memo behavior. The budget splits evenly
  /// across shards; each shard evicts from its own segments, so the
  /// global measured total never exceeds the budget.
  int64_t byte_budget = std::numeric_limits<int64_t>::max();
  /// Lock stripes / LRU segments; rounded up to a power of two. More
  /// shards = less contention but coarser per-shard budgets.
  int num_shards = 16;
  /// Fraction of a shard's budget the protected segment may occupy before
  /// promotions demote its LRU tail back to probation.
  double protected_fraction = 0.8;
};

/// Counters behind STAT's cache section. Hit/miss/insert/eviction tallies
/// are exact; byte/entry tallies are per-class measured totals.
struct VerdictCacheStats {
  struct PerClass {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    int64_t bytes = 0;    ///< measured bytes attributed to live entries
    int64_t entries = 0;  ///< live entries
  };
  PerClass signature;
  PerClass projection;
  int64_t bytes_in_use = 0;  ///< all measured bytes (entries + index)
  int64_t peak_bytes = 0;    ///< sum of per-shard measured peaks
  int64_t byte_budget = 0;
  uint64_t namespaces = 0;
};

/// Thread-safe sharded verdict store. Keys are opaque byte strings
/// (SafetyMemo serializes its signature / projection keys); values are the
/// Γ verdicts. All methods are safe to call concurrently.
class VerdictCache {
 public:
  explicit VerdictCache(const VerdictCacheConfig& config = {});
  ~VerdictCache();

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  /// Reserves a fresh key-space partition (e.g. one per private module of
  /// a registered workflow). `label` is diagnostic only.
  uint32_t RegisterNamespace(std::string label);

  /// True on a hit (LRU-promoting); bumps the per-class hit/miss counter.
  bool Lookup(uint32_t ns, VerdictKeyClass klass, std::string_view key,
              int64_t* gamma);

  /// First-wins insert: returns false (and leaves the cached value alone)
  /// when the key is already present. A non-null `control` is charged
  /// transiently with the entry's measured bytes — when the request's
  /// memory budget cannot cover them the control trips RESOURCE_EXHAUSTED
  /// and the insert is skipped, tying cache growth triggered by a request
  /// into that request's ExecControl budget. The cache's own byte budget
  /// is enforced afterwards by evicting LRU entries of the shard.
  bool Insert(uint32_t ns, VerdictKeyClass klass, std::string_view key,
              int64_t gamma, const ExecControl* control = nullptr);

  VerdictCacheStats Stats() const;
  int64_t bytes_in_use() const;
  int64_t byte_budget() const { return config_.byte_budget; }
  bool bounded() const {
    return config_.byte_budget != std::numeric_limits<int64_t>::max();
  }

 private:
  struct Shard;

  Shard* ShardFor(std::string_view full_key) const;

  VerdictCacheConfig config_;
  int64_t shard_budget_ = 0;
  int64_t protected_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex ns_mu_;
  std::vector<std::string> namespace_labels_;
};

}  // namespace provview

#endif  // PROVVIEW_PRIVACY_VERDICT_CACHE_H_
