#include "reductions/label_cover.h"

#include <algorithm>
#include <set>

namespace provview {

LabelCoverInstance RandomLabelCover(int num_left, int num_right,
                                    int num_labels, int num_edges,
                                    int extra_pairs, Rng* rng) {
  PV_CHECK(num_left >= 1 && num_right >= 1 && num_labels >= 1);
  const int max_edges = num_left * num_right;
  num_edges = std::min(num_edges, max_edges);
  LabelCoverInstance inst;
  inst.num_left = num_left;
  inst.num_right = num_right;
  inst.num_labels = num_labels;

  // Planted labeling: one label per vertex.
  std::vector<int> plant_left(static_cast<size_t>(num_left));
  std::vector<int> plant_right(static_cast<size_t>(num_right));
  for (auto& l : plant_left) {
    l = static_cast<int>(rng->NextBelow(static_cast<uint64_t>(num_labels)));
  }
  for (auto& l : plant_right) {
    l = static_cast<int>(rng->NextBelow(static_cast<uint64_t>(num_labels)));
  }

  // Distinct random edges.
  std::vector<int> edge_codes =
      rng->SampleWithoutReplacement(max_edges, num_edges);
  for (int code : edge_codes) {
    LabelCoverEdge e;
    e.u = code / num_right;
    e.w = code % num_right;
    std::set<std::pair<int, int>> pairs;
    pairs.insert({plant_left[static_cast<size_t>(e.u)],
                  plant_right[static_cast<size_t>(e.w)]});
    for (int t = 0; t < extra_pairs; ++t) {
      pairs.insert(
          {static_cast<int>(rng->NextBelow(static_cast<uint64_t>(num_labels))),
           static_cast<int>(
               rng->NextBelow(static_cast<uint64_t>(num_labels)))});
    }
    e.relation.assign(pairs.begin(), pairs.end());
    inst.edges.push_back(std::move(e));
  }
  return inst;
}

bool IsLabelCover(const LabelCoverInstance& inst,
                  const std::vector<std::vector<int>>& assignment) {
  if (static_cast<int>(assignment.size()) != inst.num_left + inst.num_right) {
    return false;
  }
  for (const LabelCoverEdge& e : inst.edges) {
    const auto& au = assignment[static_cast<size_t>(e.u)];
    const auto& aw = assignment[static_cast<size_t>(inst.num_left + e.w)];
    bool covered = false;
    for (const auto& [l1, l2] : e.relation) {
      if (std::find(au.begin(), au.end(), l1) != au.end() &&
          std::find(aw.begin(), aw.end(), l2) != aw.end()) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

LabelCoverResult SolveLabelCoverExact(const LabelCoverInstance& inst,
                                      const BnbOptions& options) {
  LinearProgram lp;
  const int num_vertices = inst.num_left + inst.num_right;
  // a_{v,l} = 1 iff label l assigned to vertex v.
  std::vector<std::vector<int>> a_var(static_cast<size_t>(num_vertices));
  std::vector<int> integer_vars;
  for (int v = 0; v < num_vertices; ++v) {
    for (int l = 0; l < inst.num_labels; ++l) {
      int var = lp.AddUnitVariable(
          1.0, "a_" + std::to_string(v) + "_" + std::to_string(l));
      a_var[static_cast<size_t>(v)].push_back(var);
      integer_vars.push_back(var);
    }
  }
  // Per edge: Σ_pairs e_p ≥ 1, e_p ≤ a_{u,l1}, e_p ≤ a_{w,l2}.
  for (const LabelCoverEdge& e : inst.edges) {
    std::vector<std::pair<int, double>> pick;
    for (const auto& [l1, l2] : e.relation) {
      int ev = lp.AddUnitVariable(0.0);
      integer_vars.push_back(ev);
      pick.emplace_back(ev, 1.0);
      lp.AddConstraint(
          {{ev, 1.0},
           {a_var[static_cast<size_t>(e.u)][static_cast<size_t>(l1)], -1.0}},
          ConstraintSense::kLe, 0.0);
      lp.AddConstraint(
          {{ev, 1.0},
           {a_var[static_cast<size_t>(inst.num_left + e.w)]
                 [static_cast<size_t>(l2)],
            -1.0}},
          ConstraintSense::kLe, 0.0);
    }
    lp.AddConstraint(std::move(pick), ConstraintSense::kGe, 1.0);
  }
  BnbResult ilp = SolveIlp(lp, integer_vars, options);
  LabelCoverResult result;
  result.status = ilp.status;
  if (ilp.x.empty()) return result;
  result.assignment.resize(static_cast<size_t>(num_vertices));
  for (int v = 0; v < num_vertices; ++v) {
    for (int l = 0; l < inst.num_labels; ++l) {
      if (ilp.x[static_cast<size_t>(
              a_var[static_cast<size_t>(v)][static_cast<size_t>(l)])] > 0.5) {
        result.assignment[static_cast<size_t>(v)].push_back(l);
        ++result.cost;
      }
    }
  }
  return result;
}

}  // namespace provview
