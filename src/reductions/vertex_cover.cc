#include "reductions/vertex_cover.h"

#include <algorithm>
#include <set>

namespace provview {

std::vector<int> Graph::Degrees() const {
  std::vector<int> deg(static_cast<size_t>(num_vertices), 0);
  for (const auto& [u, v] : edges) {
    ++deg[static_cast<size_t>(u)];
    ++deg[static_cast<size_t>(v)];
  }
  return deg;
}

int Graph::MaxDegree() const {
  int best = 0;
  for (int d : Degrees()) best = std::max(best, d);
  return best;
}

Graph RandomCubicGraph(int n, Rng* rng) {
  PV_CHECK_MSG(n >= 4 && n % 2 == 0, "cubic graph needs even n >= 4");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Configuration model: 3 stubs per vertex, random perfect matching.
    std::vector<int> stubs;
    for (int v = 0; v < n; ++v) {
      stubs.push_back(v);
      stubs.push_back(v);
      stubs.push_back(v);
    }
    rng->Shuffle(&stubs);
    std::set<std::pair<int, int>> edge_set;
    bool ok = true;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      int u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      auto e = std::minmax(u, v);
      if (!edge_set.insert({e.first, e.second}).second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    Graph g;
    g.num_vertices = n;
    g.edges.assign(edge_set.begin(), edge_set.end());
    return g;
  }
  PV_CHECK_MSG(false, "failed to sample a cubic graph");
  return Graph{};
}

bool IsVertexCover(const Graph& g, const std::vector<int>& cover) {
  std::vector<bool> in_cover(static_cast<size_t>(g.num_vertices), false);
  for (int v : cover) in_cover[static_cast<size_t>(v)] = true;
  for (const auto& [u, v] : g.edges) {
    if (!in_cover[static_cast<size_t>(u)] && !in_cover[static_cast<size_t>(v)]) {
      return false;
    }
  }
  return true;
}

VertexCoverResult SolveVertexCoverGreedy(const Graph& g, Rng* rng) {
  VertexCoverResult result;
  std::vector<std::pair<int, int>> edges = g.edges;
  rng->Shuffle(&edges);
  std::vector<bool> in_cover(static_cast<size_t>(g.num_vertices), false);
  for (const auto& [u, v] : edges) {
    if (!in_cover[static_cast<size_t>(u)] &&
        !in_cover[static_cast<size_t>(v)]) {
      in_cover[static_cast<size_t>(u)] = true;
      in_cover[static_cast<size_t>(v)] = true;
    }
  }
  for (int v = 0; v < g.num_vertices; ++v) {
    if (in_cover[static_cast<size_t>(v)]) result.cover.push_back(v);
  }
  result.cost = static_cast<int>(result.cover.size());
  result.status = Status::OK();
  return result;
}

VertexCoverResult SolveVertexCoverExact(const Graph& g,
                                        const BnbOptions& options) {
  LinearProgram lp;
  std::vector<int> vars;
  for (int v = 0; v < g.num_vertices; ++v) {
    vars.push_back(lp.AddUnitVariable(1.0, "v" + std::to_string(v)));
  }
  for (const auto& [u, v] : g.edges) {
    lp.AddConstraint({{vars[static_cast<size_t>(u)], 1.0},
                      {vars[static_cast<size_t>(v)], 1.0}},
                     ConstraintSense::kGe, 1.0);
  }
  BnbResult ilp = SolveIlp(lp, vars, options);
  VertexCoverResult result;
  result.status = ilp.status;
  if (ilp.x.empty()) return result;
  for (int v = 0; v < g.num_vertices; ++v) {
    if (ilp.x[static_cast<size_t>(vars[static_cast<size_t>(v)])] > 0.5) {
      result.cover.push_back(v);
    }
  }
  result.cost = static_cast<int>(result.cover.size());
  return result;
}

}  // namespace provview
