// The paper's hardness reductions, made executable. Each builder maps a
// source instance to a Secure-View instance such that optima correspond
// exactly (the "iff" lemmas of Appendices B.4.2, B.5.2, B.6.2, C.2, C.4).
// The experiment harnesses solve both sides exactly and check equality, and
// run approximation algorithms on the reduced instances to reproduce the
// hardness landscape empirically.
#ifndef PROVVIEW_REDUCTIONS_TO_SECURE_VIEW_H_
#define PROVVIEW_REDUCTIONS_TO_SECURE_VIEW_H_

#include "reductions/label_cover.h"
#include "reductions/set_cover.h"
#include "reductions/vertex_cover.h"
#include "secureview/instance.h"

namespace provview {

/// Appendix B.4.2 (Theorem 5 hardness): set cover → Secure-View with
/// cardinality constraints, ℓ_max = 1, unit costs, α/β ∈ {0,1}.
/// Attribute `a_attr[i]` corresponds to choosing set S_i; OPT(SV) =
/// OPT(set cover).
struct SetCoverCardReduction {
  SecureViewInstance instance;
  std::vector<int> a_attr;  ///< per set S_i, the shared data item a_i
};
SetCoverCardReduction ReduceSetCoverToCardinality(const SetCoverInstance& sc);

/// Appendix B.6.2 (Theorem 7 APX-hardness): vertex cover in (cubic) graphs
/// → Secure-View with cardinality constraints and NO data sharing.
/// OPT(SV) = |E| + OPT(VC). Attribute `gv_attr[v]` is the edge (y_v, z)
/// whose hiding corresponds to putting v in the cover.
struct VertexCoverCardReduction {
  SecureViewInstance instance;
  std::vector<int> gv_attr;  ///< per vertex v, the attr on edge y_v → z
};
VertexCoverCardReduction ReduceVertexCoverToCardinality(const Graph& g);

/// Appendix B.5.2 (Theorem 6 hardness): label cover → Secure-View with set
/// constraints. Attribute `label_attr[v][l]` is the data item b_{v,ℓ};
/// OPT(SV) = OPT(label cover).
struct LabelCoverSetReduction {
  SecureViewInstance instance;
  std::vector<std::vector<int>> label_attr;  ///< [vertex][label] → b_{v,ℓ}
};
LabelCoverSetReduction ReduceLabelCoverToSet(const LabelCoverInstance& lc);

/// Appendix C.2 (Theorem 9): set cover → Secure-View in a GENERAL workflow
/// (public set-modules, privatization cost 1, zero data costs, no data
/// sharing, cardinality lists of size 1). OPT(SV) = OPT(set cover); the
/// cost consists purely of privatizations. `set_module[i]` is the public
/// module standing for S_i.
struct SetCoverGeneralReduction {
  SecureViewInstance instance;
  std::vector<int> set_module;  ///< per set S_i, its public module index
};
SetCoverGeneralReduction ReduceSetCoverToGeneral(const SetCoverInstance& sc);

/// Appendix C.4 (Theorem 10): label cover → Secure-View with cardinality
/// constraints in a GENERAL workflow (public modules z_{v,ℓ} with unit
/// privatization cost, all data free). OPT(SV) = OPT(label cover);
/// `z_module[v][l]` is the public module z_{v,ℓ}.
struct LabelCoverGeneralReduction {
  SecureViewInstance instance;
  std::vector<std::vector<int>> z_module;  ///< [vertex][label]
};
LabelCoverGeneralReduction ReduceLabelCoverToGeneral(
    const LabelCoverInstance& lc);

}  // namespace provview

#endif  // PROVVIEW_REDUCTIONS_TO_SECURE_VIEW_H_
