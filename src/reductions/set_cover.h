// Minimum set cover: source problem of the Theorem-5 hardness reduction
// (Appendix B.4.2) and the Theorem-9 no-data-sharing reduction (C.2).
// Provides generators, the classical greedy (H_n-approximation — the best
// possible by Feige), and an exact ILP solver for measuring reductions.
#ifndef PROVVIEW_REDUCTIONS_SET_COVER_H_
#define PROVVIEW_REDUCTIONS_SET_COVER_H_

#include <vector>

#include "common/rng.h"
#include "lp/branch_and_bound.h"

namespace provview {

/// Universe {0..universe_size-1}; sets[i] lists the elements of S_i.
struct SetCoverInstance {
  int universe_size = 0;
  std::vector<std::vector<int>> sets;

  int num_sets() const { return static_cast<int>(sets.size()); }
  /// True if the union of all sets is the whole universe.
  bool IsCoverable() const;
};

/// Random instance guaranteed coverable: each set gets a uniformly random
/// size in [1, max_set_size]; leftover elements are patched into random
/// sets.
SetCoverInstance RandomSetCover(int universe_size, int num_sets,
                                int max_set_size, Rng* rng);

/// Cover outcome: chosen set indices, |chosen| as cost.
struct SetCoverResult {
  Status status;
  std::vector<int> chosen;
  int cost = 0;
};

/// Classical greedy: repeatedly take the set covering the most uncovered
/// elements. H_n-approximation.
SetCoverResult SolveSetCoverGreedy(const SetCoverInstance& inst);

/// Exact minimum via the ILP encoding.
SetCoverResult SolveSetCoverExact(const SetCoverInstance& inst,
                                  const BnbOptions& options = {});

}  // namespace provview

#endif  // PROVVIEW_REDUCTIONS_SET_COVER_H_
