// Minimum label cover: source of the set-constraint inapproximability
// (Theorem 6, Appendix B.5.2) and of the general-workflow cardinality
// hardness (Theorem 10, Appendix C.4). Bipartite graph H = (U, U', E_H),
// label set L, relation R_uw ⊆ L×L per edge; assign label sets A(v) so each
// edge has a pair (ℓ1, ℓ2) ∈ R_uw with ℓ1 ∈ A(u), ℓ2 ∈ A(w), minimizing
// Σ|A(v)|.
#ifndef PROVVIEW_REDUCTIONS_LABEL_COVER_H_
#define PROVVIEW_REDUCTIONS_LABEL_COVER_H_

#include <vector>

#include "common/rng.h"
#include "lp/branch_and_bound.h"

namespace provview {

/// One bipartite edge with its admissible label pairs.
struct LabelCoverEdge {
  int u = 0;  ///< left vertex index, in [0, num_left)
  int w = 0;  ///< right vertex index, in [0, num_right)
  std::vector<std::pair<int, int>> relation;  ///< admissible (ℓ1, ℓ2) pairs
};

struct LabelCoverInstance {
  int num_left = 0;
  int num_right = 0;
  int num_labels = 0;
  std::vector<LabelCoverEdge> edges;
};

/// Random instance with a planted feasible labeling (one label per vertex),
/// each edge carrying the planted pair plus up to `extra_pairs` random
/// pairs, over a random bipartite graph with `num_edges` distinct edges.
LabelCoverInstance RandomLabelCover(int num_left, int num_right,
                                    int num_labels, int num_edges,
                                    int extra_pairs, Rng* rng);

/// Labeling outcome: assignment[v] lists the labels of vertex v, with left
/// vertices first (v in [0, num_left)) then right (num_left + w).
struct LabelCoverResult {
  Status status;
  std::vector<std::vector<int>> assignment;
  int cost = 0;
};

/// Exact minimum via ILP (variables per vertex-label plus per admissible
/// edge pair).
LabelCoverResult SolveLabelCoverExact(const LabelCoverInstance& inst,
                                      const BnbOptions& options = {});

/// True if the assignment covers every edge.
bool IsLabelCover(const LabelCoverInstance& inst,
                  const std::vector<std::vector<int>>& assignment);

}  // namespace provview

#endif  // PROVVIEW_REDUCTIONS_LABEL_COVER_H_
