#include "reductions/to_secure_view.h"

#include <algorithm>
#include <map>
#include <string>

namespace provview {

namespace {

// Appends a fresh attribute with the given cost; returns its index.
int AddAttr(SecureViewInstance* inst, double cost) {
  inst->attr_cost.push_back(cost);
  return inst->num_attrs++;
}

}  // namespace

SetCoverCardReduction ReduceSetCoverToCardinality(const SetCoverInstance& sc) {
  SetCoverCardReduction red;
  SecureViewInstance& inst = red.instance;
  inst.kind = ConstraintKind::kCardinality;

  const int bs = AddAttr(&inst, 1.0);  // initial input of z
  red.a_attr.reserve(static_cast<size_t>(sc.num_sets()));
  for (int i = 0; i < sc.num_sets(); ++i) {
    red.a_attr.push_back(AddAttr(&inst, 1.0));  // a_i, shared data of S_i
  }
  std::vector<int> b_attr;  // final outputs of the element modules
  for (int j = 0; j < sc.universe_size; ++j) {
    b_attr.push_back(AddAttr(&inst, 1.0));
  }

  // Module z: produces every a_i; requirement: hide one output.
  SvModule z;
  z.name = "z";
  z.inputs = {bs};
  z.outputs = red.a_attr;
  z.card_options = {CardOption{0, 1}};
  inst.modules.push_back(std::move(z));

  // Module f_j per element: consumes the a_i of the sets containing u_j;
  // requirement: hide one input.
  for (int j = 0; j < sc.universe_size; ++j) {
    SvModule f;
    f.name = "f" + std::to_string(j);
    for (int i = 0; i < sc.num_sets(); ++i) {
      const auto& s = sc.sets[static_cast<size_t>(i)];
      if (std::find(s.begin(), s.end(), j) != s.end()) {
        f.inputs.push_back(red.a_attr[static_cast<size_t>(i)]);
      }
    }
    f.outputs = {b_attr[static_cast<size_t>(j)]};
    f.card_options = {CardOption{1, 0}};
    inst.modules.push_back(std::move(f));
  }
  PV_CHECK_MSG(inst.Validate().ok(), "bad set-cover reduction instance");
  return red;
}

VertexCoverCardReduction ReduceVertexCoverToCardinality(const Graph& g) {
  VertexCoverCardReduction red;
  SecureViewInstance& inst = red.instance;
  inst.kind = ConstraintKind::kCardinality;

  // Per-edge module x_uv with one initial input and outputs to y_u, y_v.
  // e_attr[edge] = {attr to y_u, attr to y_v}.
  std::vector<std::pair<int, int>> e_attr;
  std::vector<int> s_attr;
  for (int e = 0; e < g.num_edges(); ++e) {
    s_attr.push_back(AddAttr(&inst, 1.0));
    e_attr.emplace_back(AddAttr(&inst, 1.0), AddAttr(&inst, 1.0));
  }
  red.gv_attr.reserve(static_cast<size_t>(g.num_vertices));
  for (int v = 0; v < g.num_vertices; ++v) {
    red.gv_attr.push_back(AddAttr(&inst, 1.0));  // edge y_v → z
  }
  const int h = AddAttr(&inst, 1.0);  // final output of z

  for (int e = 0; e < g.num_edges(); ++e) {
    SvModule x;
    x.name = "x" + std::to_string(g.edges[static_cast<size_t>(e)].first) +
             "_" + std::to_string(g.edges[static_cast<size_t>(e)].second);
    x.inputs = {s_attr[static_cast<size_t>(e)]};
    x.outputs = {e_attr[static_cast<size_t>(e)].first,
                 e_attr[static_cast<size_t>(e)].second};
    x.card_options = {CardOption{0, 1}};
    inst.modules.push_back(std::move(x));
  }
  for (int v = 0; v < g.num_vertices; ++v) {
    SvModule y;
    y.name = "y" + std::to_string(v);
    for (int e = 0; e < g.num_edges(); ++e) {
      if (g.edges[static_cast<size_t>(e)].first == v) {
        y.inputs.push_back(e_attr[static_cast<size_t>(e)].first);
      } else if (g.edges[static_cast<size_t>(e)].second == v) {
        y.inputs.push_back(e_attr[static_cast<size_t>(e)].second);
      }
    }
    y.outputs = {red.gv_attr[static_cast<size_t>(v)]};
    // Hide all incoming edges, or the single outgoing edge.
    y.card_options = {CardOption{static_cast<int>(y.inputs.size()), 0},
                      CardOption{0, 1}};
    inst.modules.push_back(std::move(y));
  }
  SvModule z;
  z.name = "z";
  z.inputs = red.gv_attr;
  z.outputs = {h};
  z.card_options = {CardOption{1, 0}};
  inst.modules.push_back(std::move(z));
  PV_CHECK_MSG(inst.Validate().ok(), "bad vertex-cover reduction instance");
  PV_CHECK_MSG(inst.DataSharingDegree() <= 1, "reduction must be sharing-free");
  return red;
}

LabelCoverSetReduction ReduceLabelCoverToSet(const LabelCoverInstance& lc) {
  LabelCoverSetReduction red;
  SecureViewInstance& inst = red.instance;
  inst.kind = ConstraintKind::kSet;

  const int num_vertices = lc.num_left + lc.num_right;
  const int bz = AddAttr(&inst, 1.0);
  red.label_attr.assign(static_cast<size_t>(num_vertices), {});
  for (int v = 0; v < num_vertices; ++v) {
    for (int l = 0; l < lc.num_labels; ++l) {
      red.label_attr[static_cast<size_t>(v)].push_back(AddAttr(&inst, 1.0));
    }
  }

  // Module z produces every b_{v,ℓ}; its list offers every singleton.
  SvModule z;
  z.name = "z";
  z.inputs = {bz};
  for (int v = 0; v < num_vertices; ++v) {
    for (int l = 0; l < lc.num_labels; ++l) {
      z.outputs.push_back(
          red.label_attr[static_cast<size_t>(v)][static_cast<size_t>(l)]);
      SetOption opt;
      opt.hidden_outputs = {
          red.label_attr[static_cast<size_t>(v)][static_cast<size_t>(l)]};
      z.set_options.push_back(std::move(opt));
    }
  }
  inst.modules.push_back(std::move(z));

  // Module x_uw per edge; its list mirrors R_uw.
  for (const LabelCoverEdge& e : lc.edges) {
    SvModule x;
    x.name = "x" + std::to_string(e.u) + "_" + std::to_string(e.w);
    for (int l = 0; l < lc.num_labels; ++l) {
      x.inputs.push_back(
          red.label_attr[static_cast<size_t>(e.u)][static_cast<size_t>(l)]);
      x.inputs.push_back(
          red.label_attr[static_cast<size_t>(lc.num_left + e.w)]
                        [static_cast<size_t>(l)]);
    }
    x.outputs = {AddAttr(&inst, 1.0)};  // b_uw
    for (const auto& [l1, l2] : e.relation) {
      SetOption opt;
      opt.hidden_inputs = {
          red.label_attr[static_cast<size_t>(e.u)][static_cast<size_t>(l1)],
          red.label_attr[static_cast<size_t>(lc.num_left + e.w)]
                        [static_cast<size_t>(l2)]};
      x.set_options.push_back(std::move(opt));
    }
    inst.modules.push_back(std::move(x));
  }
  PV_CHECK_MSG(inst.Validate().ok(), "bad label-cover reduction instance");
  return red;
}

SetCoverGeneralReduction ReduceSetCoverToGeneral(const SetCoverInstance& sc) {
  SetCoverGeneralReduction red;
  SecureViewInstance& inst = red.instance;
  inst.kind = ConstraintKind::kCardinality;

  // Per-set public module S_i: initial input a_i, one output b_ij per
  // element it contains. All data free; privatization costs 1.
  std::vector<std::vector<std::pair<int, int>>> incoming(
      static_cast<size_t>(sc.universe_size));  // (set index, attr)
  red.set_module.reserve(static_cast<size_t>(sc.num_sets()));
  for (int i = 0; i < sc.num_sets(); ++i) {
    SvModule s;
    s.name = "S" + std::to_string(i);
    s.is_public = true;
    s.privatization_cost = 1.0;
    s.inputs = {AddAttr(&inst, 0.0)};
    for (int j : sc.sets[static_cast<size_t>(i)]) {
      int b = AddAttr(&inst, 0.0);
      s.outputs.push_back(b);
      incoming[static_cast<size_t>(j)].emplace_back(i, b);
    }
    red.set_module.push_back(static_cast<int>(inst.modules.size()));
    inst.modules.push_back(std::move(s));
  }
  for (int j = 0; j < sc.universe_size; ++j) {
    SvModule u;
    u.name = "u" + std::to_string(j);
    for (const auto& [i, b] : incoming[static_cast<size_t>(j)]) {
      (void)i;
      u.inputs.push_back(b);
    }
    u.outputs = {AddAttr(&inst, 0.0)};
    u.card_options = {CardOption{1, 0}};
    inst.modules.push_back(std::move(u));
  }
  PV_CHECK_MSG(inst.Validate().ok(), "bad general set-cover reduction");
  PV_CHECK_MSG(inst.DataSharingDegree() <= 1, "reduction must be sharing-free");
  return red;
}

LabelCoverGeneralReduction ReduceLabelCoverToGeneral(
    const LabelCoverInstance& lc) {
  LabelCoverGeneralReduction red;
  SecureViewInstance& inst = red.instance;
  inst.kind = ConstraintKind::kCardinality;

  const int num_vertices = lc.num_left + lc.num_right;
  const int ds = AddAttr(&inst, 0.0);
  const int dv = AddAttr(&inst, 0.0);

  // Module v: single output dv; requirement: hide it.
  SvModule v_mod;
  v_mod.name = "v";
  v_mod.inputs = {ds};
  v_mod.outputs = {dv};
  v_mod.card_options = {CardOption{0, 1}};

  // y_{ℓ1,ℓ2} per label pair occurring in some relation; produces the
  // shared items d_{u,w,ℓ1,ℓ2}. x_uw per edge consumes them; z_{v,ℓ}
  // (public, cost 1) also consumes those with its vertex/label.
  struct PairKey {
    int l1, l2;
    bool operator<(const PairKey& o) const {
      return l1 != o.l1 ? l1 < o.l1 : l2 < o.l2;
    }
  };
  std::map<PairKey, SvModule> y_mods;
  std::vector<SvModule> x_mods;
  red.z_module.assign(static_cast<size_t>(num_vertices),
                      std::vector<int>(static_cast<size_t>(lc.num_labels), -1));
  std::vector<std::vector<std::vector<int>>> z_inputs(
      static_cast<size_t>(num_vertices),
      std::vector<std::vector<int>>(static_cast<size_t>(lc.num_labels)));

  for (const LabelCoverEdge& e : lc.edges) {
    SvModule x;
    x.name = "x" + std::to_string(e.u) + "_" + std::to_string(e.w);
    for (const auto& [l1, l2] : e.relation) {
      int d = AddAttr(&inst, 0.0);  // d_{u,w,ℓ1,ℓ2}
      x.inputs.push_back(d);
      PairKey key{l1, l2};
      auto it = y_mods.find(key);
      if (it == y_mods.end()) {
        SvModule y;
        y.name = "y" + std::to_string(l1) + "_" + std::to_string(l2);
        y.inputs = {dv};
        y.card_options = {CardOption{1, 0}};
        it = y_mods.emplace(key, std::move(y)).first;
      }
      it->second.outputs.push_back(d);
      z_inputs[static_cast<size_t>(e.u)][static_cast<size_t>(l1)].push_back(d);
      z_inputs[static_cast<size_t>(lc.num_left + e.w)]
              [static_cast<size_t>(l2)].push_back(d);
    }
    x.outputs = {AddAttr(&inst, 0.0)};  // d_uw
    x.card_options = {CardOption{1, 0}};
    x_mods.push_back(std::move(x));
  }

  inst.modules.push_back(std::move(v_mod));
  for (auto& [key, y] : y_mods) {
    (void)key;
    y.outputs.push_back(AddAttr(&inst, 0.0));  // d_{ℓ1,ℓ2}
    inst.modules.push_back(std::move(y));
  }
  for (auto& x : x_mods) inst.modules.push_back(std::move(x));
  // NOTE: the shared items d_{u,w,ℓ1,ℓ2} are INPUTS of the public z
  // modules, so hiding one forces privatizing z_{u,ℓ1} and z_{w,ℓ2}.
  for (int v = 0; v < num_vertices; ++v) {
    for (int l = 0; l < lc.num_labels; ++l) {
      const auto& ins = z_inputs[static_cast<size_t>(v)][static_cast<size_t>(l)];
      if (ins.empty()) continue;  // label never used near this vertex
      SvModule z;
      z.name = "z" + std::to_string(v) + "_" + std::to_string(l);
      z.is_public = true;
      z.privatization_cost = 1.0;
      z.inputs = ins;
      z.outputs = {AddAttr(&inst, 0.0)};  // d_{v,ℓ}
      red.z_module[static_cast<size_t>(v)][static_cast<size_t>(l)] =
          static_cast<int>(inst.modules.size());
      inst.modules.push_back(std::move(z));
    }
  }
  PV_CHECK_MSG(inst.Validate().ok(), "bad general label-cover reduction");
  return red;
}

}  // namespace provview
