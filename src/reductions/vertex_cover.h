// Minimum vertex cover in (sub)cubic graphs: source of the APX-hardness in
// Theorem 7 (Appendix B.6.2). Generator uses the pairing model for random
// 3-regular graphs; exact solving via ILP; 2-approximation via maximal
// matching for a baseline.
#ifndef PROVVIEW_REDUCTIONS_VERTEX_COVER_H_
#define PROVVIEW_REDUCTIONS_VERTEX_COVER_H_

#include <vector>

#include "common/rng.h"
#include "lp/branch_and_bound.h"

namespace provview {

/// Simple undirected graph.
struct Graph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;

  int num_edges() const { return static_cast<int>(edges.size()); }
  std::vector<int> Degrees() const;
  int MaxDegree() const;
};

/// Random 3-regular simple graph on `n` vertices (n even, n ≥ 4) via the
/// configuration model with rejection.
Graph RandomCubicGraph(int n, Rng* rng);

/// Vertex-cover outcome.
struct VertexCoverResult {
  Status status;
  std::vector<int> cover;
  int cost = 0;
};

/// Maximal-matching 2-approximation.
VertexCoverResult SolveVertexCoverGreedy(const Graph& g, Rng* rng);

/// Exact minimum vertex cover via ILP.
VertexCoverResult SolveVertexCoverExact(const Graph& g,
                                        const BnbOptions& options = {});

/// True if `cover` touches every edge.
bool IsVertexCover(const Graph& g, const std::vector<int>& cover);

}  // namespace provview

#endif  // PROVVIEW_REDUCTIONS_VERTEX_COVER_H_
