#include "reductions/set_cover.h"

#include <algorithm>
#include <set>

namespace provview {

bool SetCoverInstance::IsCoverable() const {
  std::vector<bool> covered(static_cast<size_t>(universe_size), false);
  for (const auto& s : sets) {
    for (int e : s) covered[static_cast<size_t>(e)] = true;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

SetCoverInstance RandomSetCover(int universe_size, int num_sets,
                                int max_set_size, Rng* rng) {
  PV_CHECK(universe_size >= 1 && num_sets >= 1 && max_set_size >= 1);
  SetCoverInstance inst;
  inst.universe_size = universe_size;
  inst.sets.resize(static_cast<size_t>(num_sets));
  for (auto& s : inst.sets) {
    int size = static_cast<int>(rng->NextInt(1, max_set_size));
    size = std::min(size, universe_size);
    s = rng->SampleWithoutReplacement(universe_size, size);
  }
  // Patch uncovered elements into random sets so the instance is coverable.
  std::vector<bool> covered(static_cast<size_t>(universe_size), false);
  for (const auto& s : inst.sets) {
    for (int e : s) covered[static_cast<size_t>(e)] = true;
  }
  for (int e = 0; e < universe_size; ++e) {
    if (!covered[static_cast<size_t>(e)]) {
      auto& s = inst.sets[static_cast<size_t>(rng->NextBelow(
          static_cast<uint64_t>(num_sets)))];
      s.push_back(e);
    }
  }
  for (auto& s : inst.sets) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return inst;
}

SetCoverResult SolveSetCoverGreedy(const SetCoverInstance& inst) {
  SetCoverResult result;
  if (!inst.IsCoverable()) {
    result.status = Status::Infeasible("universe not coverable");
    return result;
  }
  std::set<int> uncovered;
  for (int e = 0; e < inst.universe_size; ++e) uncovered.insert(e);
  while (!uncovered.empty()) {
    int best_set = -1;
    int best_gain = 0;
    for (int i = 0; i < inst.num_sets(); ++i) {
      int gain = 0;
      for (int e : inst.sets[static_cast<size_t>(i)]) {
        if (uncovered.count(e) != 0) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_set = i;
      }
    }
    PV_CHECK(best_set >= 0);
    for (int e : inst.sets[static_cast<size_t>(best_set)]) uncovered.erase(e);
    result.chosen.push_back(best_set);
  }
  result.cost = static_cast<int>(result.chosen.size());
  result.status = Status::OK();
  return result;
}

SetCoverResult SolveSetCoverExact(const SetCoverInstance& inst,
                                  const BnbOptions& options) {
  SetCoverResult result;
  if (!inst.IsCoverable()) {
    result.status = Status::Infeasible("universe not coverable");
    return result;
  }
  LinearProgram lp;
  std::vector<int> vars;
  for (int i = 0; i < inst.num_sets(); ++i) {
    vars.push_back(lp.AddUnitVariable(1.0, "s" + std::to_string(i)));
  }
  // One covering constraint per element.
  std::vector<std::vector<std::pair<int, double>>> covering(
      static_cast<size_t>(inst.universe_size));
  for (int i = 0; i < inst.num_sets(); ++i) {
    for (int e : inst.sets[static_cast<size_t>(i)]) {
      covering[static_cast<size_t>(e)].emplace_back(
          vars[static_cast<size_t>(i)], 1.0);
    }
  }
  for (auto& terms : covering) {
    lp.AddConstraint(std::move(terms), ConstraintSense::kGe, 1.0);
  }
  BnbResult ilp = SolveIlp(lp, vars, options);
  if (!ilp.status.ok()) {
    result.status = ilp.status;
    if (ilp.x.empty()) return result;
  } else {
    result.status = Status::OK();
  }
  for (int i = 0; i < inst.num_sets(); ++i) {
    if (ilp.x[static_cast<size_t>(vars[static_cast<size_t>(i)])] > 0.5) {
      result.chosen.push_back(i);
    }
  }
  result.cost = static_cast<int>(result.chosen.size());
  return result;
}

}  // namespace provview
