#include "module/module.h"

#include <set>

#include "common/combinatorics.h"

namespace provview {

Module::Module(std::string name, CatalogPtr catalog, std::vector<AttrId> inputs,
               std::vector<AttrId> outputs)
    : name_(std::move(name)),
      catalog_(std::move(catalog)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)) {
  PV_CHECK(catalog_ != nullptr);
  PV_CHECK_MSG(!outputs_.empty(), "module " << name_ << " has no outputs");
  // I ∩ O = ∅ and no duplicates — enforced by building sets.
  std::set<AttrId> seen;
  for (AttrId id : inputs_) {
    PV_CHECK_MSG(id >= 0 && id < catalog_->size(), "bad input attr " << id);
    PV_CHECK_MSG(seen.insert(id).second,
                 "duplicate input attribute in module " << name_);
  }
  for (AttrId id : outputs_) {
    PV_CHECK_MSG(id >= 0 && id < catalog_->size(), "bad output attr " << id);
    PV_CHECK_MSG(seen.insert(id).second,
                 "attribute appears twice (I ∩ O must be empty) in module "
                     << name_);
  }
}

Bitset64 Module::InputSet() const {
  Bitset64 s(catalog_->size());
  for (AttrId id : inputs_) s.Set(id);
  return s;
}

Bitset64 Module::OutputSet() const {
  Bitset64 s(catalog_->size());
  for (AttrId id : outputs_) s.Set(id);
  return s;
}

Bitset64 Module::AttrSet() const { return InputSet() | OutputSet(); }

Schema Module::FullSchema() const {
  std::vector<AttrId> attrs = inputs_;
  attrs.insert(attrs.end(), outputs_.begin(), outputs_.end());
  return Schema(catalog_, attrs);
}

Relation Module::FullRelation(int64_t max_rows) const {
  int64_t dom = DomainSize();
  PV_CHECK_MSG(dom <= max_rows, "module " << name_ << " domain too large ("
                                          << dom << " > " << max_rows << ")");
  Relation rel(FullSchema());
  MixedRadixCounter counter(InputSchema().DomainSizes());
  do {
    Tuple in = counter.values();
    Tuple out = Eval(in);
    Tuple row = in;
    row.insert(row.end(), out.begin(), out.end());
    rel.AddRow(std::move(row));
  } while (counter.Advance());
  return rel;
}

RelationView Module::View(int64_t materialize_threshold) const {
  if (DomainSize() <= materialize_threshold) {
    return RelationView::Materialized(FullRelation(materialize_threshold));
  }
  return RelationView::Streaming(
      FullSchema(), DomainSize(),
      [this] { return std::make_unique<ModuleRowSupplier>(*this); });
}

Relation Module::RelationOn(const std::vector<Tuple>& input_tuples) const {
  Relation rel(FullSchema());
  for (const Tuple& in : input_tuples) {
    PV_CHECK_MSG(static_cast<int>(in.size()) == num_inputs(),
                 "bad input arity for module " << name_);
    Tuple out = Eval(in);
    Tuple row = in;
    row.insert(row.end(), out.begin(), out.end());
    rel.AddRow(std::move(row));
  }
  return rel;
}

bool Module::IsInjective(int64_t max_domain) const {
  int64_t dom = DomainSize();
  PV_CHECK_MSG(dom <= max_domain, "domain too large for injectivity check");
  std::set<Tuple> images;
  MixedRadixCounter counter(InputSchema().DomainSizes());
  do {
    if (!images.insert(Eval(counter.values())).second) return false;
  } while (counter.Advance());
  return true;
}

ModuleRowSupplier::ModuleRowSupplier(const Module& module)
    : module_(&module),
      schema_(module.FullSchema()),
      counter_(module.InputSchema().DomainSizes()) {}

void ModuleRowSupplier::Reset() {
  counter_.Reset();
  exhausted_ = false;
}

int64_t ModuleRowSupplier::NextBlock(std::vector<Value>* block,
                                     int64_t max_rows) {
  PV_CHECK_MSG(max_rows > 0, "block size must be positive");
  block->clear();
  if (exhausted_) return 0;
  block->reserve(static_cast<size_t>(
      std::min<int64_t>(max_rows, module_->DomainSize()) * schema_.arity()));
  int64_t count = 0;
  while (count < max_rows) {
    const Tuple& in = counter_.values();
    Tuple out = module_->Eval(in);
    block->insert(block->end(), in.begin(), in.end());
    block->insert(block->end(), out.begin(), out.end());
    ++count;
    if (!counter_.Advance()) {
      exhausted_ = true;
      break;
    }
  }
  return count;
}

}  // namespace provview
