// Module whose functionality is given extensionally as a relation — the way
// the paper presents modules (Figure 1c) and the way a workflow system's
// execution log presents them. Also models the paper's "data supplier"
// (§3.1): a lookup per input, with a counter of supplier calls so the
// Theorem-1 communication-complexity experiment can measure reads.
#ifndef PROVVIEW_MODULE_TABLE_MODULE_H_
#define PROVVIEW_MODULE_TABLE_MODULE_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "module/module.h"

namespace provview {

/// Relation-backed module. The relation must satisfy I → O; Eval() on an
/// input absent from the table is a fatal error (partial functions are
/// represented by simply not listing the input).
class TableModule : public Module {
 public:
  /// Builds from explicit (input, output) pairs.
  TableModule(std::string name, CatalogPtr catalog, std::vector<AttrId> inputs,
              std::vector<AttrId> outputs,
              const std::vector<std::pair<Tuple, Tuple>>& entries);

  /// Builds from a relation whose schema is I followed by O.
  static ModulePtr FromRelation(std::string name, const Relation& rel,
                                int num_inputs);

  /// Samples another module's behavior into an explicit table (useful for
  /// snapshotting random modules).
  static ModulePtr Materialize(const Module& m);

  Tuple Eval(const Tuple& input) const override;

  /// True if this table defines an output for `input`.
  bool Defines(const Tuple& input) const;

  /// All inputs this table defines, in sorted order.
  std::vector<Tuple> DefinedInputs() const;

  /// Number of Eval() lookups served so far (the paper's data-supplier call
  /// count; Theorem 1 lower-bounds this by Ω(N)). Atomic: the sharded
  /// streaming scans evaluate modules from several threads at once.
  int64_t supplier_calls() const {
    return supplier_calls_.load(std::memory_order_relaxed);
  }
  void ResetSupplierCalls() {
    supplier_calls_.store(0, std::memory_order_relaxed);
  }

 private:
  std::map<Tuple, Tuple> table_;
  mutable std::atomic<int64_t> supplier_calls_{0};
};

}  // namespace provview

#endif  // PROVVIEW_MODULE_TABLE_MODULE_H_
