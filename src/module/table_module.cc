#include "module/table_module.h"

namespace provview {

TableModule::TableModule(std::string name, CatalogPtr catalog,
                         std::vector<AttrId> inputs, std::vector<AttrId> outputs,
                         const std::vector<std::pair<Tuple, Tuple>>& entries)
    : Module(std::move(name), std::move(catalog), std::move(inputs),
             std::move(outputs)) {
  for (const auto& [in, out] : entries) {
    PV_CHECK_MSG(static_cast<int>(in.size()) == num_inputs(),
                 "bad input arity in table for module " << this->name());
    PV_CHECK_MSG(static_cast<int>(out.size()) == num_outputs(),
                 "bad output arity in table for module " << this->name());
    auto [it, inserted] = table_.emplace(in, out);
    // Re-inserting the same mapping is fine; a conflicting one violates the
    // functional dependency I → O.
    PV_CHECK_MSG(inserted || it->second == out,
                 "FD violation in table for module " << this->name());
  }
}

ModulePtr TableModule::FromRelation(std::string name, const Relation& rel,
                                    int num_inputs) {
  const Schema& schema = rel.schema();
  PV_CHECK_MSG(num_inputs >= 0 && num_inputs < schema.arity(),
               "bad input split for table module " << name);
  std::vector<AttrId> inputs(schema.attrs().begin(),
                             schema.attrs().begin() + num_inputs);
  std::vector<AttrId> outputs(schema.attrs().begin() + num_inputs,
                              schema.attrs().end());
  PV_CHECK_MSG(rel.SatisfiesFd(inputs, outputs),
               "relation violates I → O for table module " << name);
  std::vector<std::pair<Tuple, Tuple>> entries;
  entries.reserve(rel.rows().size());
  for (const Tuple& row : rel.rows()) {
    entries.emplace_back(rel.ProjectRow(row, inputs),
                         rel.ProjectRow(row, outputs));
  }
  return std::make_unique<TableModule>(std::move(name), schema.catalog(),
                                       std::move(inputs), std::move(outputs),
                                       entries);
}

ModulePtr TableModule::Materialize(const Module& m) {
  Relation rel = m.FullRelation();
  auto out = FromRelation(m.name(), rel, m.num_inputs());
  out->set_public(m.is_public());
  out->set_privatization_cost(m.privatization_cost());
  return out;
}

Tuple TableModule::Eval(const Tuple& input) const {
  supplier_calls_.fetch_add(1, std::memory_order_relaxed);
  auto it = table_.find(input);
  PV_CHECK_MSG(it != table_.end(),
               "module " << name() << " undefined on requested input");
  return it->second;
}

bool TableModule::Defines(const Tuple& input) const {
  return table_.find(input) != table_.end();
}

std::vector<Tuple> TableModule::DefinedInputs() const {
  std::vector<Tuple> out;
  out.reserve(table_.size());
  for (const auto& [in, _] : table_) out.push_back(in);
  return out;
}

}  // namespace provview
