// Module abstraction (§2.1): a module m has input attributes I, output
// attributes O (disjoint), and computes a function Dom = ∏_{a∈I} Δ_a →
// Range = ∏_{a∈O} Δ_a. Its relational representation R satisfies the FD
// I → O. Modules are either private (behavior unknown a priori) or public
// (behavior known to every user; §2.2), and public modules carry a
// privatization cost used by the §5 Secure-View variant.
#ifndef PROVVIEW_MODULE_MODULE_H_
#define PROVVIEW_MODULE_MODULE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/combinatorics.h"
#include "relation/relation.h"
#include "relation/row_supplier.h"

namespace provview {

/// Abstract module. Concrete modules implement Eval(); everything else
/// (relation materialization, schemas) is provided here.
class Module {
 public:
  Module(std::string name, CatalogPtr catalog, std::vector<AttrId> inputs,
         std::vector<AttrId> outputs);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes m(x). `input` is aligned with inputs(); the result is aligned
  /// with outputs().
  virtual Tuple Eval(const Tuple& input) const = 0;

  const std::string& name() const { return name_; }
  const CatalogPtr& catalog() const { return catalog_; }
  const std::vector<AttrId>& inputs() const { return inputs_; }
  const std::vector<AttrId>& outputs() const { return outputs_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  /// Total attribute count k = |I| + |O|.
  int arity() const { return num_inputs() + num_outputs(); }

  /// Public modules have a-priori-known behavior (§2.2). Default: private.
  bool is_public() const { return is_public_; }
  void set_public(bool is_public) { is_public_ = is_public; }

  /// Cost c(m) of hiding (privatizing) this module's identity (§5.2).
  double privatization_cost() const { return privatization_cost_; }
  void set_privatization_cost(double cost) { privatization_cost_ = cost; }

  /// Input attribute ids as a set over the catalog.
  Bitset64 InputSet() const;
  /// Output attribute ids as a set over the catalog.
  Bitset64 OutputSet() const;
  /// I ∪ O.
  Bitset64 AttrSet() const;

  Schema InputSchema() const { return Schema(catalog_, inputs_); }
  Schema OutputSchema() const { return Schema(catalog_, outputs_); }
  /// Schema over I followed by O (the module relation's schema).
  Schema FullSchema() const;

  /// |Dom| = ∏_{a∈I} |Δ_a| (saturating).
  int64_t DomainSize() const { return InputSchema().ProductSpaceSize(); }
  /// |Range| = ∏_{a∈O} |Δ_a| (saturating).
  int64_t RangeSize() const { return OutputSchema().ProductSpaceSize(); }

  /// Largest |Dom| FullRelation / View materialize eagerly by default; the
  /// 2^22 wall the streaming suppliers exist to pass.
  static constexpr int64_t kDefaultMaterializeRows = int64_t{1} << 22;

  /// Materializes the module relation over the full input domain: one row
  /// (x, m(x)) per x ∈ Dom. Requires |Dom| <= max_rows (guards blowup).
  Relation FullRelation(int64_t max_rows = kDefaultMaterializeRows) const;

  /// RelationView over the module relation. Domains of at most
  /// `materialize_threshold` rows materialize eagerly (the small-domain fast
  /// case); larger domains stream rows in blocks straight from Eval(), so
  /// certification is no longer capped by the materialization guard. Both
  /// backends yield rows in the same domain (odometer) order. The view
  /// borrows this module; keep it alive while the view is in use.
  RelationView View(
      int64_t materialize_threshold = kDefaultMaterializeRows) const;

  /// Materializes the module relation on the given inputs only (a partial
  /// execution log).
  Relation RelationOn(const std::vector<Tuple>& input_tuples) const;

  /// True if Eval is a one-one (injective) function. Enumerates the domain,
  /// so only valid for small |Dom|.
  bool IsInjective(int64_t max_domain = 1 << 20) const;

 private:
  std::string name_;
  CatalogPtr catalog_;
  std::vector<AttrId> inputs_;
  std::vector<AttrId> outputs_;
  bool is_public_ = false;
  double privatization_cost_ = 1.0;
};

using ModulePtr = std::unique_ptr<Module>;

/// RowSupplier streaming (x, m(x)) rows in domain order from the module's
/// function, one mixed-radix odometer block at a time — the streaming
/// backend of Module::View(). Borrows the module.
class ModuleRowSupplier : public RowSupplier {
 public:
  explicit ModuleRowSupplier(const Module& module);

  const Schema& schema() const override { return schema_; }
  int64_t total_rows() const override { return module_->DomainSize(); }
  void Reset() override;
  int64_t NextBlock(std::vector<Value>* block, int64_t max_rows) override;

 private:
  const Module* module_;
  Schema schema_;  // inputs then outputs
  MixedRadixCounter counter_;  // domain odometer, FullRelation's row order
  bool exhausted_ = false;
};

/// Module defined by an arbitrary function object. The workhorse for the
/// boolean-gate library and for the flip-world construction (Lemma 1),
/// which rewrites modules m_j into g_j = FLIP ∘ m_j ∘ FLIP.
class LambdaModule : public Module {
 public:
  using Fn = std::function<Tuple(const Tuple&)>;

  LambdaModule(std::string name, CatalogPtr catalog, std::vector<AttrId> inputs,
               std::vector<AttrId> outputs, Fn fn)
      : Module(std::move(name), std::move(catalog), std::move(inputs),
               std::move(outputs)),
        fn_(std::move(fn)) {}

  Tuple Eval(const Tuple& input) const override {
    Tuple out = fn_(input);
    PV_CHECK_MSG(static_cast<int>(out.size()) == num_outputs(),
                 "module " << name() << " produced wrong output arity");
    return out;
  }

 private:
  Fn fn_;
};

}  // namespace provview

#endif  // PROVVIEW_MODULE_MODULE_H_
