// Module abstraction (§2.1): a module m has input attributes I, output
// attributes O (disjoint), and computes a function Dom = ∏_{a∈I} Δ_a →
// Range = ∏_{a∈O} Δ_a. Its relational representation R satisfies the FD
// I → O. Modules are either private (behavior unknown a priori) or public
// (behavior known to every user; §2.2), and public modules carry a
// privatization cost used by the §5 Secure-View variant.
#ifndef PROVVIEW_MODULE_MODULE_H_
#define PROVVIEW_MODULE_MODULE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace provview {

/// Abstract module. Concrete modules implement Eval(); everything else
/// (relation materialization, schemas) is provided here.
class Module {
 public:
  Module(std::string name, CatalogPtr catalog, std::vector<AttrId> inputs,
         std::vector<AttrId> outputs);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes m(x). `input` is aligned with inputs(); the result is aligned
  /// with outputs().
  virtual Tuple Eval(const Tuple& input) const = 0;

  const std::string& name() const { return name_; }
  const CatalogPtr& catalog() const { return catalog_; }
  const std::vector<AttrId>& inputs() const { return inputs_; }
  const std::vector<AttrId>& outputs() const { return outputs_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  /// Total attribute count k = |I| + |O|.
  int arity() const { return num_inputs() + num_outputs(); }

  /// Public modules have a-priori-known behavior (§2.2). Default: private.
  bool is_public() const { return is_public_; }
  void set_public(bool is_public) { is_public_ = is_public; }

  /// Cost c(m) of hiding (privatizing) this module's identity (§5.2).
  double privatization_cost() const { return privatization_cost_; }
  void set_privatization_cost(double cost) { privatization_cost_ = cost; }

  /// Input attribute ids as a set over the catalog.
  Bitset64 InputSet() const;
  /// Output attribute ids as a set over the catalog.
  Bitset64 OutputSet() const;
  /// I ∪ O.
  Bitset64 AttrSet() const;

  Schema InputSchema() const { return Schema(catalog_, inputs_); }
  Schema OutputSchema() const { return Schema(catalog_, outputs_); }
  /// Schema over I followed by O (the module relation's schema).
  Schema FullSchema() const;

  /// |Dom| = ∏_{a∈I} |Δ_a| (saturating).
  int64_t DomainSize() const { return InputSchema().ProductSpaceSize(); }
  /// |Range| = ∏_{a∈O} |Δ_a| (saturating).
  int64_t RangeSize() const { return OutputSchema().ProductSpaceSize(); }

  /// Materializes the module relation over the full input domain: one row
  /// (x, m(x)) per x ∈ Dom. Requires |Dom| <= max_rows (guards blowup).
  Relation FullRelation(int64_t max_rows = 1 << 22) const;

  /// Materializes the module relation on the given inputs only (a partial
  /// execution log).
  Relation RelationOn(const std::vector<Tuple>& input_tuples) const;

  /// True if Eval is a one-one (injective) function. Enumerates the domain,
  /// so only valid for small |Dom|.
  bool IsInjective(int64_t max_domain = 1 << 20) const;

 private:
  std::string name_;
  CatalogPtr catalog_;
  std::vector<AttrId> inputs_;
  std::vector<AttrId> outputs_;
  bool is_public_ = false;
  double privatization_cost_ = 1.0;
};

using ModulePtr = std::unique_ptr<Module>;

/// Module defined by an arbitrary function object. The workhorse for the
/// boolean-gate library and for the flip-world construction (Lemma 1),
/// which rewrites modules m_j into g_j = FLIP ∘ m_j ∘ FLIP.
class LambdaModule : public Module {
 public:
  using Fn = std::function<Tuple(const Tuple&)>;

  LambdaModule(std::string name, CatalogPtr catalog, std::vector<AttrId> inputs,
               std::vector<AttrId> outputs, Fn fn)
      : Module(std::move(name), std::move(catalog), std::move(inputs),
               std::move(outputs)),
        fn_(std::move(fn)) {}

  Tuple Eval(const Tuple& input) const override {
    Tuple out = fn_(input);
    PV_CHECK_MSG(static_cast<int>(out.size()) == num_outputs(),
                 "module " << name() << " produced wrong output arity");
    return out;
  }

 private:
  Fn fn_;
};

}  // namespace provview

#endif  // PROVVIEW_MODULE_MODULE_H_
