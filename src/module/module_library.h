// Factory library of concrete module functionalities used throughout the
// paper's examples and constructions:
//   - boolean gates (AND/OR/XOR/NOT/NAND/NOR) — Figure 1's m1/m2/m3;
//   - majority over 2k inputs — Example 6;
//   - identity / reversal / random bijections (one-one modules) — Example 6,
//     Proposition 2, Example 7;
//   - constant functions — Example 7's problematic public module;
//   - uniformly random functions — generator workloads.
// All factories take the catalog and attribute ids; attribute domains may be
// non-boolean where noted.
#ifndef PROVVIEW_MODULE_MODULE_LIBRARY_H_
#define PROVVIEW_MODULE_MODULE_LIBRARY_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "module/module.h"

namespace provview {

/// m1 of Figure 1: inputs (a1,a2) ↦ (a1∨a2, ¬(a1∧a2), ¬(a1⊕a2)).
/// All five attributes must be boolean.
ModulePtr MakeFig1M1(CatalogPtr catalog, AttrId a1, AttrId a2, AttrId a3,
                     AttrId a4, AttrId a5);

/// m2 of Figure 1: (a3,a4) ↦ a6 = ¬(a3∧a4), matching the executions in
/// Figure 1(b).
ModulePtr MakeFig1M2(CatalogPtr catalog, AttrId a3, AttrId a4, AttrId a6);

/// m3 of Figure 1: (a4,a5) ↦ a7 = a4⊕a5, matching the executions in
/// Figure 1(b).
ModulePtr MakeFig1M3(CatalogPtr catalog, AttrId a4, AttrId a5, AttrId a7);

/// Boolean AND of all inputs (any fan-in ≥ 1) into one boolean output.
ModulePtr MakeAnd(std::string name, CatalogPtr catalog,
                  std::vector<AttrId> inputs, AttrId output);

/// Boolean OR of all inputs into one boolean output.
ModulePtr MakeOr(std::string name, CatalogPtr catalog,
                 std::vector<AttrId> inputs, AttrId output);

/// Boolean NAND of all inputs into one boolean output.
ModulePtr MakeNand(std::string name, CatalogPtr catalog,
                   std::vector<AttrId> inputs, AttrId output);

/// Boolean XOR (parity) of all inputs into one boolean output.
ModulePtr MakeParity(std::string name, CatalogPtr catalog,
                     std::vector<AttrId> inputs, AttrId output);

/// Majority: outputs 1 iff at least half of the (boolean) inputs are 1
/// (Example 6: with 2k inputs, 2-privacy needs k+1 hidden inputs or the
/// output hidden).
ModulePtr MakeMajority(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs, AttrId output);

/// Identity: output i copies input i. Domains must match pairwise.
ModulePtr MakeIdentity(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs, std::vector<AttrId> outputs);

/// Bitwise negation over booleans: output i = ¬ input i (the "reversal"
/// module of Proposition 2's chain).
ModulePtr MakeNegation(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs, std::vector<AttrId> outputs);

/// Constant function: ignores inputs, always emits `constant` (Example 7's
/// public module that defeats input-hiding).
ModulePtr MakeConstant(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs, std::vector<AttrId> outputs,
                       Tuple constant);

/// Uniformly random total function Dom → Range, sampled once at
/// construction (deterministic in `rng`). Materialized as a table.
ModulePtr MakeRandomFunction(std::string name, CatalogPtr catalog,
                             std::vector<AttrId> inputs,
                             std::vector<AttrId> outputs, Rng* rng);

/// Uniformly random bijection Dom → Range; requires |Dom| == |Range|
/// (one-one modules of Example 6 / Proposition 2 / Example 7).
ModulePtr MakeRandomBijection(std::string name, CatalogPtr catalog,
                              std::vector<AttrId> inputs,
                              std::vector<AttrId> outputs, Rng* rng);

/// Encodes the input tuple as an integer, adds `shift` modulo |Range|, and
/// decodes into the outputs. A cheap deterministic bijection when
/// |Dom| == |Range|.
ModulePtr MakeShiftBijection(std::string name, CatalogPtr catalog,
                             std::vector<AttrId> inputs,
                             std::vector<AttrId> outputs, int64_t shift);

/// Ripple-carry adder: two k-bit little-endian boolean operands (lhs then
/// rhs, each of size k) to a (k+1)-bit little-endian sum. All attributes
/// boolean; outputs must have size k+1.
ModulePtr MakeAdder(std::string name, CatalogPtr catalog,
                    std::vector<AttrId> lhs, std::vector<AttrId> rhs,
                    std::vector<AttrId> sum);

/// Unsigned comparator: outputs 1 iff lhs ≥ rhs (little-endian boolean
/// operands of equal width).
ModulePtr MakeComparator(std::string name, CatalogPtr catalog,
                         std::vector<AttrId> lhs, std::vector<AttrId> rhs,
                         AttrId output);

/// 2-way multiplexer: output = (select == 0 ? a : b), element-wise over
/// equally sized boolean vectors a and b.
ModulePtr MakeMux(std::string name, CatalogPtr catalog, AttrId select,
                  std::vector<AttrId> a, std::vector<AttrId> b,
                  std::vector<AttrId> outputs);

}  // namespace provview

#endif  // PROVVIEW_MODULE_MODULE_LIBRARY_H_
