#include "module/module_library.h"

#include "common/combinatorics.h"
#include "module/table_module.h"

namespace provview {

namespace {

void CheckBoolean(const CatalogPtr& catalog, const std::vector<AttrId>& ids) {
  for (AttrId id : ids) {
    PV_CHECK_MSG(catalog->DomainSize(id) == 2,
                 "attribute " << catalog->Name(id) << " must be boolean");
  }
}

// Encodes a tuple in the mixed-radix system given by `radices`.
int64_t Encode(const Tuple& t, const std::vector<int>& radices) {
  int64_t code = 0;
  for (size_t i = t.size(); i-- > 0;) {
    code = code * radices[i] + t[i];
  }
  return code;
}

// Inverse of Encode.
Tuple Decode(int64_t code, const std::vector<int>& radices) {
  Tuple t(radices.size());
  for (size_t i = 0; i < radices.size(); ++i) {
    t[i] = static_cast<Value>(code % radices[i]);
    code /= radices[i];
  }
  return t;
}

std::vector<int> Radices(const CatalogPtr& catalog,
                         const std::vector<AttrId>& ids) {
  std::vector<int> r;
  r.reserve(ids.size());
  for (AttrId id : ids) r.push_back(catalog->DomainSize(id));
  return r;
}

}  // namespace

ModulePtr MakeFig1M1(CatalogPtr catalog, AttrId a1, AttrId a2, AttrId a3,
                     AttrId a4, AttrId a5) {
  CheckBoolean(catalog, {a1, a2, a3, a4, a5});
  return std::make_unique<LambdaModule>(
      "m1", catalog, std::vector<AttrId>{a1, a2},
      std::vector<AttrId>{a3, a4, a5}, [](const Tuple& in) {
        Value x = in[0], y = in[1];
        return Tuple{static_cast<Value>(x | y), static_cast<Value>(!(x & y)),
                     static_cast<Value>(!(x ^ y))};
      });
}

ModulePtr MakeFig1M2(CatalogPtr catalog, AttrId a3, AttrId a4, AttrId a6) {
  return MakeNand("m2", std::move(catalog), {a3, a4}, a6);
}

ModulePtr MakeFig1M3(CatalogPtr catalog, AttrId a4, AttrId a5, AttrId a7) {
  return MakeParity("m3", std::move(catalog), {a4, a5}, a7);
}

ModulePtr MakeAnd(std::string name, CatalogPtr catalog,
                  std::vector<AttrId> inputs, AttrId output) {
  CheckBoolean(catalog, inputs);
  CheckBoolean(catalog, {output});
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::vector<AttrId>{output}, [](const Tuple& in) {
        Value acc = 1;
        for (Value v : in) acc &= v;
        return Tuple{acc};
      });
}

ModulePtr MakeOr(std::string name, CatalogPtr catalog,
                 std::vector<AttrId> inputs, AttrId output) {
  CheckBoolean(catalog, inputs);
  CheckBoolean(catalog, {output});
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::vector<AttrId>{output}, [](const Tuple& in) {
        Value acc = 0;
        for (Value v : in) acc |= v;
        return Tuple{acc};
      });
}

ModulePtr MakeNand(std::string name, CatalogPtr catalog,
                   std::vector<AttrId> inputs, AttrId output) {
  CheckBoolean(catalog, inputs);
  CheckBoolean(catalog, {output});
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::vector<AttrId>{output}, [](const Tuple& in) {
        Value acc = 1;
        for (Value v : in) acc &= v;
        return Tuple{static_cast<Value>(1 - acc)};
      });
}

ModulePtr MakeParity(std::string name, CatalogPtr catalog,
                     std::vector<AttrId> inputs, AttrId output) {
  CheckBoolean(catalog, inputs);
  CheckBoolean(catalog, {output});
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::vector<AttrId>{output}, [](const Tuple& in) {
        Value acc = 0;
        for (Value v : in) acc ^= v;
        return Tuple{acc};
      });
}

ModulePtr MakeMajority(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs, AttrId output) {
  CheckBoolean(catalog, inputs);
  CheckBoolean(catalog, {output});
  const int threshold = (static_cast<int>(inputs.size()) + 1) / 2;
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::vector<AttrId>{output}, [threshold](const Tuple& in) {
        int ones = 0;
        for (Value v : in) ones += v;
        return Tuple{static_cast<Value>(ones >= threshold ? 1 : 0)};
      });
}

ModulePtr MakeIdentity(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs) {
  PV_CHECK_MSG(inputs.size() == outputs.size(),
               "identity needs equal arities");
  for (size_t i = 0; i < inputs.size(); ++i) {
    PV_CHECK_MSG(
        catalog->DomainSize(inputs[i]) == catalog->DomainSize(outputs[i]),
        "identity requires matching domains position " << i);
  }
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::move(outputs), [](const Tuple& in) { return in; });
}

ModulePtr MakeNegation(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs,
                       std::vector<AttrId> outputs) {
  PV_CHECK_MSG(inputs.size() == outputs.size(),
               "negation needs equal arities");
  CheckBoolean(catalog, inputs);
  CheckBoolean(catalog, outputs);
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::move(outputs), [](const Tuple& in) {
        Tuple out = in;
        for (Value& v : out) v = 1 - v;
        return out;
      });
}

ModulePtr MakeConstant(std::string name, CatalogPtr catalog,
                       std::vector<AttrId> inputs, std::vector<AttrId> outputs,
                       Tuple constant) {
  PV_CHECK_MSG(constant.size() == outputs.size(),
               "constant arity must match outputs");
  for (size_t i = 0; i < outputs.size(); ++i) {
    PV_CHECK_MSG(constant[i] >= 0 &&
                     constant[i] < catalog->DomainSize(outputs[i]),
                 "constant value out of domain at position " << i);
  }
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::move(outputs),
      [constant](const Tuple&) { return constant; });
}

ModulePtr MakeRandomFunction(std::string name, CatalogPtr catalog,
                             std::vector<AttrId> inputs,
                             std::vector<AttrId> outputs, Rng* rng) {
  std::vector<int> in_radices = Radices(catalog, inputs);
  std::vector<int> out_radices = Radices(catalog, outputs);
  const int64_t range = SaturatingProduct(
      std::vector<int64_t>(out_radices.begin(), out_radices.end()));
  std::vector<std::pair<Tuple, Tuple>> entries;
  MixedRadixCounter counter(in_radices);
  do {
    int64_t code = static_cast<int64_t>(
        rng->NextBelow(static_cast<uint64_t>(range)));
    entries.emplace_back(counter.values(), Decode(code, out_radices));
  } while (counter.Advance());
  return std::make_unique<TableModule>(std::move(name), std::move(catalog),
                                       std::move(inputs), std::move(outputs),
                                       entries);
}

ModulePtr MakeRandomBijection(std::string name, CatalogPtr catalog,
                              std::vector<AttrId> inputs,
                              std::vector<AttrId> outputs, Rng* rng) {
  std::vector<int> in_radices = Radices(catalog, inputs);
  std::vector<int> out_radices = Radices(catalog, outputs);
  const int64_t dom = SaturatingProduct(
      std::vector<int64_t>(in_radices.begin(), in_radices.end()));
  const int64_t range = SaturatingProduct(
      std::vector<int64_t>(out_radices.begin(), out_radices.end()));
  PV_CHECK_MSG(dom == range, "bijection requires |Dom| == |Range|");
  PV_CHECK_MSG(dom <= (1 << 22), "bijection domain too large");
  std::vector<int> perm = rng->RandomPermutation(static_cast<int>(dom));
  std::vector<std::pair<Tuple, Tuple>> entries;
  MixedRadixCounter counter(in_radices);
  int64_t idx = 0;
  do {
    entries.emplace_back(
        counter.values(),
        Decode(perm[static_cast<size_t>(idx)], out_radices));
    ++idx;
  } while (counter.Advance());
  return std::make_unique<TableModule>(std::move(name), std::move(catalog),
                                       std::move(inputs), std::move(outputs),
                                       entries);
}

ModulePtr MakeShiftBijection(std::string name, CatalogPtr catalog,
                             std::vector<AttrId> inputs,
                             std::vector<AttrId> outputs, int64_t shift) {
  std::vector<int> in_radices = Radices(catalog, inputs);
  std::vector<int> out_radices = Radices(catalog, outputs);
  const int64_t dom = SaturatingProduct(
      std::vector<int64_t>(in_radices.begin(), in_radices.end()));
  const int64_t range = SaturatingProduct(
      std::vector<int64_t>(out_radices.begin(), out_radices.end()));
  PV_CHECK_MSG(dom == range, "bijection requires |Dom| == |Range|");
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::move(outputs),
      [in_radices, out_radices, range, shift](const Tuple& in) {
        int64_t code = Encode(in, in_radices);
        code = ((code + shift) % range + range) % range;
        return Decode(code, out_radices);
      });
}

ModulePtr MakeAdder(std::string name, CatalogPtr catalog,
                    std::vector<AttrId> lhs, std::vector<AttrId> rhs,
                    std::vector<AttrId> sum) {
  const size_t k = lhs.size();
  PV_CHECK_MSG(rhs.size() == k && sum.size() == k + 1,
               "adder needs |lhs| == |rhs| == k and |sum| == k+1");
  CheckBoolean(catalog, lhs);
  CheckBoolean(catalog, rhs);
  CheckBoolean(catalog, sum);
  std::vector<AttrId> inputs = lhs;
  inputs.insert(inputs.end(), rhs.begin(), rhs.end());
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs), std::move(sum),
      [k](const Tuple& in) {
        Tuple out(k + 1);
        Value carry = 0;
        for (size_t i = 0; i < k; ++i) {
          Value total = in[i] + in[k + i] + carry;
          out[i] = total & 1;
          carry = total >> 1;
        }
        out[k] = carry;
        return out;
      });
}

ModulePtr MakeComparator(std::string name, CatalogPtr catalog,
                         std::vector<AttrId> lhs, std::vector<AttrId> rhs,
                         AttrId output) {
  const size_t k = lhs.size();
  PV_CHECK_MSG(rhs.size() == k && k >= 1, "comparator needs equal widths");
  CheckBoolean(catalog, lhs);
  CheckBoolean(catalog, rhs);
  CheckBoolean(catalog, {output});
  std::vector<AttrId> inputs = lhs;
  inputs.insert(inputs.end(), rhs.begin(), rhs.end());
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::vector<AttrId>{output}, [k](const Tuple& in) {
        // Compare from the most significant (last) bit down.
        for (size_t i = k; i-- > 0;) {
          if (in[i] != in[k + i]) {
            return Tuple{static_cast<Value>(in[i] > in[k + i] ? 1 : 0)};
          }
        }
        return Tuple{1};  // equal → lhs >= rhs
      });
}

ModulePtr MakeMux(std::string name, CatalogPtr catalog, AttrId select,
                  std::vector<AttrId> a, std::vector<AttrId> b,
                  std::vector<AttrId> outputs) {
  const size_t k = a.size();
  PV_CHECK_MSG(b.size() == k && outputs.size() == k,
               "mux needs equal widths");
  CheckBoolean(catalog, {select});
  CheckBoolean(catalog, a);
  CheckBoolean(catalog, b);
  CheckBoolean(catalog, outputs);
  std::vector<AttrId> inputs = {select};
  inputs.insert(inputs.end(), a.begin(), a.end());
  inputs.insert(inputs.end(), b.begin(), b.end());
  return std::make_unique<LambdaModule>(
      std::move(name), std::move(catalog), std::move(inputs),
      std::move(outputs), [k](const Tuple& in) {
        Tuple out(k);
        const size_t offset = in[0] == 0 ? 1 : 1 + k;
        for (size_t i = 0; i < k; ++i) out[i] = in[offset + i];
        return out;
      });
}

}  // namespace provview
