// Named instance families used by specific experiments:
//   - Example 5's fan-out family, where the union-of-standalone-optima
//     baseline is Ω(n) worse than the workflow optimum;
//   - Proposition 2's chain of one-one modules (identity → negation), for
//     the doubly-exponential possible-worlds ratio;
//   - Example 7's public-module chains (constant upstream / invertible
//     downstream), where standalone privacy fails to compose.
#ifndef PROVVIEW_GENERATORS_FAMILIES_H_
#define PROVVIEW_GENERATORS_FAMILIES_H_

#include "common/rng.h"
#include "secureview/instance.h"
#include "workflow/workflow.h"

namespace provview {

/// Example 5 as a Secure-View instance with set constraints:
/// module m: input a1 (cost 1), output a2 (cost 1 + eps) feeding all of
/// m_1..m_n; each m_i outputs b_i (cost 1) into m'. Requirements: m hides
/// a1 or a2; each m_i hides a2... (its input) or b_i; m' hides some b_i.
/// The standalone union costs n + 1 while OPT = 2 + eps.
SecureViewInstance MakeExample5Instance(int n, double eps = 0.1);

/// Proposition 2's workflow: m1 = identity, m2 = bitwise negation, both on
/// k boolean attributes. Returns the workflow; attribute ids are
/// [0,k) initial, [k,2k) middle (O1 = I2), [2k,3k) final.
struct Prop2Chain {
  CatalogPtr catalog;
  WorkflowPtr workflow;
  int k = 0;
};
Prop2Chain MakeProp2Chain(int k);

/// Example 7 (first half): public constant module feeding a private random
/// bijection on k boolean attributes. Hiding the private module's inputs
/// is standalone-safe but NOT workflow-safe while the public module stays
/// visible.
struct Example7Chain {
  CatalogPtr catalog;
  WorkflowPtr workflow;
  int constant_index = 0;   ///< the public constant module
  int bijection_index = 1;  ///< the private one-one module
  int k = 0;
};
Example7Chain MakeExample7Chain(int k, Rng* rng);

/// Example 7 (second half) / Example 8: private bijection feeding a public
/// invertible module. Hiding the private module's outputs is
/// standalone-safe but leaks through the public inverse.
struct Example7OutputChain {
  CatalogPtr catalog;
  WorkflowPtr workflow;
  int bijection_index = 0;  ///< the private one-one module
  int invertible_index = 1; ///< the public invertible module
  int k = 0;
};
Example7OutputChain MakeExample7OutputChain(int k, Rng* rng);

/// A `stages`-stage chain of random one-one modules on k boolean attributes
/// per layer — the deep-workflow shape the feasible-set fixpoint targets:
/// hiding one intermediate layer leaves every layer above it fully visible,
/// so the fixpoint forces the upstream stages and prunes the hidden stage,
/// while the determined-input-only engine walks every stage past the first
/// at full range (E1f).
struct OneOneChain {
  CatalogPtr catalog;
  WorkflowPtr workflow;
  int stages = 0;
  int k = 0;
  /// layer_attrs[s], s in [0, stages]: the k attributes entering stage s
  /// (s = 0: initial inputs; s = stages: final outputs). Module s maps
  /// layer s to layer s + 1.
  std::vector<std::vector<AttrId>> layer_attrs;
};
OneOneChain MakeOneOneChain(int stages, int k, Rng* rng);

/// A diamond: source bijection on 2k bits fanning out to two k-bit one-one
/// branches, re-joined by a sink bijection, optionally followed by a tail
/// bijection (making the longest path 4 modules). Attribute layers:
/// x (2k, initial) -> t (2k) -> u (2k, branch outputs) -> y (2k)
/// [-> z (2k) when with_tail].
struct DiamondWorkflow {
  CatalogPtr catalog;
  WorkflowPtr workflow;
  int k = 0;
  bool with_tail = false;
  std::vector<AttrId> x, t, u, y, z;  // z empty unless with_tail
  int source_index = 0;
  int branch_a_index = 0;  ///< t[0..k) -> u[0..k)
  int branch_b_index = 0;  ///< t[k..2k) -> u[k..2k)
  int sink_index = 0;
  int tail_index = -1;  ///< -1 unless with_tail
};
DiamondWorkflow MakeDiamondWorkflow(int k, bool with_tail, Rng* rng);

}  // namespace provview

#endif  // PROVVIEW_GENERATORS_FAMILIES_H_
