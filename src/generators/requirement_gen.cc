#include "generators/requirement_gen.h"

#include <algorithm>
#include <set>

namespace provview {

namespace {

// A non-redundant cardinality list: α strictly increasing, β strictly
// decreasing, all options within [0, ni] × [0, no] and not both zero.
std::vector<CardOption> RandomCardList(int ni, int no, int length, Rng* rng) {
  length = std::min(length, std::min(ni, no) + 1);
  length = std::max(length, 1);
  // Draw `length` distinct alphas increasing and betas decreasing.
  std::vector<int> alphas = rng->SampleWithoutReplacement(ni + 1, length);
  std::vector<int> betas = rng->SampleWithoutReplacement(no + 1, length);
  std::sort(alphas.begin(), alphas.end());
  std::sort(betas.rbegin(), betas.rend());
  std::vector<CardOption> list;
  for (int j = 0; j < length; ++j) {
    int a = alphas[static_cast<size_t>(j)];
    int b = betas[static_cast<size_t>(j)];
    if (a == 0 && b == 0) {
      // A (0,0) option would make the module requirement vacuous; bump it.
      if (ni > 0) {
        a = 1;
      } else {
        b = 1;
      }
    }
    list.push_back(CardOption{a, b});
  }
  // De-duplicate after the bump (degenerate small modules).
  std::sort(list.begin(), list.end(), [](const CardOption& x,
                                         const CardOption& y) {
    return x.alpha != y.alpha ? x.alpha < y.alpha : x.beta < y.beta;
  });
  list.erase(std::unique(list.begin(), list.end(),
                         [](const CardOption& x, const CardOption& y) {
                           return x.alpha == y.alpha && x.beta == y.beta;
                         }),
             list.end());
  return list;
}

std::vector<SetOption> RandomSetList(const SvModule& m, int length,
                                     int min_size, int max_size, Rng* rng) {
  std::vector<int> all = m.inputs;
  all.insert(all.end(), m.outputs.begin(), m.outputs.end());
  std::set<int> input_set(m.inputs.begin(), m.inputs.end());
  std::set<std::vector<int>> seen;
  std::vector<SetOption> list;
  for (int j = 0; j < length && static_cast<int>(list.size()) < length; ++j) {
    int size = static_cast<int>(rng->NextInt(min_size, max_size));
    size = std::min(size, static_cast<int>(all.size()));
    size = std::max(size, 1);
    std::vector<int> picked_pos =
        rng->SampleWithoutReplacement(static_cast<int>(all.size()), size);
    std::vector<int> picked;
    for (int p : picked_pos) picked.push_back(all[static_cast<size_t>(p)]);
    std::sort(picked.begin(), picked.end());
    if (!seen.insert(picked).second) continue;
    SetOption opt;
    for (int a : picked) {
      if (input_set.count(a) != 0) {
        opt.hidden_inputs.push_back(a);
      } else {
        opt.hidden_outputs.push_back(a);
      }
    }
    list.push_back(std::move(opt));
  }
  return list;
}

}  // namespace

SecureViewInstance MakeRandomInstance(const RandomInstanceOptions& options,
                                      Rng* rng) {
  SecureViewInstance inst;
  inst.kind = options.kind;

  auto random_cost = [&]() {
    return options.min_cost +
           rng->NextDouble() * (options.max_cost - options.min_cost);
  };
  auto fresh_attr = [&]() {
    inst.attr_cost.push_back(random_cost());
    return inst.num_attrs++;
  };

  std::vector<int> reusable;
  std::vector<int> consumer_count;

  for (int mi = 0; mi < options.num_modules; ++mi) {
    SvModule m;
    m.name = "m" + std::to_string(mi);
    const int num_in =
        static_cast<int>(rng->NextInt(options.min_inputs, options.max_inputs));
    const int num_out = static_cast<int>(
        rng->NextInt(options.min_outputs, options.max_outputs));
    for (int i = 0; i < num_in; ++i) {
      int chosen = -1;
      if (!reusable.empty() && rng->NextBernoulli(options.reuse_probability)) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          int cand = reusable[static_cast<size_t>(
              rng->NextBelow(reusable.size()))];
          if (std::find(m.inputs.begin(), m.inputs.end(), cand) ==
              m.inputs.end()) {
            chosen = cand;
            break;
          }
        }
      }
      if (chosen < 0) {
        chosen = fresh_attr();
        consumer_count.resize(static_cast<size_t>(inst.num_attrs), 0);
      }
      m.inputs.push_back(chosen);
      if (++consumer_count[static_cast<size_t>(chosen)] >=
          options.gamma_bound) {
        reusable.erase(std::remove(reusable.begin(), reusable.end(), chosen),
                       reusable.end());
      }
    }
    for (int o = 0; o < num_out; ++o) {
      int id = fresh_attr();
      consumer_count.resize(static_cast<size_t>(inst.num_attrs), 0);
      m.outputs.push_back(id);
      reusable.push_back(id);
    }
    if (rng->NextBernoulli(options.public_fraction)) {
      m.is_public = true;
      m.privatization_cost =
          options.min_privatization_cost +
          rng->NextDouble() * (options.max_privatization_cost -
                               options.min_privatization_cost);
    } else {
      const int length = static_cast<int>(
          rng->NextInt(options.min_list_length, options.max_list_length));
      if (options.kind == ConstraintKind::kCardinality) {
        m.card_options =
            RandomCardList(static_cast<int>(m.inputs.size()),
                           static_cast<int>(m.outputs.size()), length, rng);
      } else {
        m.set_options = RandomSetList(m, length, options.min_option_size,
                                      options.max_option_size, rng);
      }
    }
    inst.modules.push_back(std::move(m));
  }
  Status st = inst.Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return inst;
}

}  // namespace provview
