// Random executable workflows with controlled structure: module count,
// fan-in/fan-out, data-sharing degree γ (Definition 3), public-module
// fraction, and attribute cost ranges. These are the workloads for the
// composition (E3) and end-to-end experiments; the paper cites real
// workflow repositories [1] with modules of ≤ 10 attributes, which these
// parameter ranges mirror.
#ifndef PROVVIEW_GENERATORS_RANDOM_WORKFLOW_H_
#define PROVVIEW_GENERATORS_RANDOM_WORKFLOW_H_

#include "common/rng.h"
#include "workflow/workflow.h"

namespace provview {

/// Knobs for the random workflow generator.
struct RandomWorkflowOptions {
  int num_modules = 6;
  int min_inputs = 1;       ///< per module
  int max_inputs = 3;
  int min_outputs = 1;      ///< per module
  int max_outputs = 2;
  int gamma_bound = 2;      ///< max consumers per attribute
  double reuse_probability = 0.6;  ///< chance an input reuses an earlier output
  double public_fraction = 0.0;
  double min_cost = 1.0;    ///< attribute hiding costs ~ U[min_cost, max_cost]
  double max_cost = 8.0;
  double min_privatization_cost = 1.0;
  double max_privatization_cost = 8.0;
  /// Module functionality: uniformly random boolean functions.
  bool all_boolean = true;

  // ---- Layered-DAG shape (the hundreds-of-modules E10 family). ----
  /// 0 = unlayered (the historical generator): any earlier output below the
  /// sharing bound is reusable. >= 1 partitions the modules into this many
  /// equal layers; a module's inputs reuse outputs of the previous layer
  /// only (the classic pipeline shape), except with
  /// cross_layer_probability an input may reach back to ANY earlier layer
  /// (skip connections). Layering keeps generation and derivation linear in
  /// module count, so workflows with hundreds of modules stay cheap to
  /// sample and validate.
  int num_layers = 0;
  /// Probability a reused input of a layered workflow comes from an
  /// arbitrary earlier layer instead of the immediately previous one.
  double cross_layer_probability = 0.1;
};

/// A generated workflow plus its catalog.
struct GeneratedWorkflow {
  CatalogPtr catalog;
  WorkflowPtr workflow;
};

/// Samples a validated DAG workflow. Modules are created in topological
/// order; each input either reuses an earlier output whose consumer count
/// is still below gamma_bound (with reuse_probability) or introduces a
/// fresh initial input.
GeneratedWorkflow MakeRandomWorkflow(const RandomWorkflowOptions& options,
                                     Rng* rng);

}  // namespace provview

#endif  // PROVVIEW_GENERATORS_RANDOM_WORKFLOW_H_
