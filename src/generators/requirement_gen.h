// Direct random Secure-View instance generation (no executable modules) —
// the workload for the solver-scaling experiments (E5/E6), where instances
// larger than exhaustive privacy search allows are needed. Structure
// mirrors the workflow model: modules in topological order, inputs drawn
// from earlier outputs under a data-sharing bound γ, requirement lists on a
// non-redundant tradeoff frontier as §4.2 assumes.
#ifndef PROVVIEW_GENERATORS_REQUIREMENT_GEN_H_
#define PROVVIEW_GENERATORS_REQUIREMENT_GEN_H_

#include "common/rng.h"
#include "secureview/instance.h"

namespace provview {

/// Knobs for random Secure-View instances.
struct RandomInstanceOptions {
  ConstraintKind kind = ConstraintKind::kCardinality;
  int num_modules = 12;
  int min_inputs = 1;
  int max_inputs = 4;
  int min_outputs = 1;
  int max_outputs = 3;
  int gamma_bound = 3;             ///< max consumers per attribute
  double reuse_probability = 0.6;
  int min_list_length = 1;         ///< ℓ_i range
  int max_list_length = 3;
  double min_cost = 1.0;
  double max_cost = 10.0;
  double public_fraction = 0.0;    ///< general-workflow instances
  double min_privatization_cost = 1.0;
  double max_privatization_cost = 10.0;
  /// For set constraints: per-option hidden subset size range.
  int min_option_size = 1;
  int max_option_size = 3;
};

/// Samples a validated instance. Cardinality lists are sorted with α
/// strictly increasing and β strictly decreasing (non-redundant, as the
/// paper's analysis assumes). Set options are random subsets of the
/// module's attributes.
SecureViewInstance MakeRandomInstance(const RandomInstanceOptions& options,
                                      Rng* rng);

}  // namespace provview

#endif  // PROVVIEW_GENERATORS_REQUIREMENT_GEN_H_
