#include "generators/families.h"

#include <string>

#include "module/module_library.h"

namespace provview {

SecureViewInstance MakeExample5Instance(int n, double eps) {
  PV_CHECK(n >= 1);
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kSet;

  const int a1 = inst.num_attrs++;
  inst.attr_cost.push_back(1.0);
  const int a2 = inst.num_attrs++;
  inst.attr_cost.push_back(1.0 + eps);
  std::vector<int> b(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    b[static_cast<size_t>(i)] = inst.num_attrs++;
    inst.attr_cost.push_back(1.0);
  }
  const int c = inst.num_attrs++;
  inst.attr_cost.push_back(1.0);

  // Module m: hide its incoming a1 or its outgoing a2.
  SvModule m;
  m.name = "m";
  m.inputs = {a1};
  m.outputs = {a2};
  m.set_options = {SetOption{{a1}, {}}, SetOption{{}, {a2}}};
  inst.modules.push_back(std::move(m));

  // Modules m_i: hide the shared incoming a2 or the outgoing b_i.
  for (int i = 0; i < n; ++i) {
    SvModule mi;
    mi.name = "m" + std::to_string(i + 1);
    mi.inputs = {a2};
    mi.outputs = {b[static_cast<size_t>(i)]};
    mi.set_options = {SetOption{{a2}, {}},
                      SetOption{{}, {b[static_cast<size_t>(i)]}}};
    inst.modules.push_back(std::move(mi));
  }

  // Module m': hide any one incoming b_i.
  SvModule mp;
  mp.name = "m'";
  mp.inputs = b;
  mp.outputs = {c};
  for (int i = 0; i < n; ++i) {
    mp.set_options.push_back(SetOption{{b[static_cast<size_t>(i)]}, {}});
  }
  inst.modules.push_back(std::move(mp));

  PV_CHECK_MSG(inst.Validate().ok(), "bad Example-5 instance");
  return inst;
}

Prop2Chain MakeProp2Chain(int k) {
  PV_CHECK(k >= 1 && k <= 16);
  Prop2Chain chain;
  chain.k = k;
  chain.catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> x, y, z;
  for (int i = 0; i < k; ++i) x.push_back(chain.catalog->Add("x" + std::to_string(i)));
  for (int i = 0; i < k; ++i) y.push_back(chain.catalog->Add("y" + std::to_string(i)));
  for (int i = 0; i < k; ++i) z.push_back(chain.catalog->Add("z" + std::to_string(i)));
  chain.workflow = std::make_unique<Workflow>(chain.catalog);
  chain.workflow->AddModule(MakeIdentity("m1_identity", chain.catalog, x, y));
  chain.workflow->AddModule(MakeNegation("m2_negation", chain.catalog, y, z));
  Status st = chain.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return chain;
}

Example7Chain MakeExample7Chain(int k, Rng* rng) {
  PV_CHECK(k >= 1 && k <= 10);
  Example7Chain chain;
  chain.k = k;
  chain.catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> u, v, w;
  for (int i = 0; i < k; ++i) u.push_back(chain.catalog->Add("u" + std::to_string(i)));
  for (int i = 0; i < k; ++i) v.push_back(chain.catalog->Add("v" + std::to_string(i)));
  for (int i = 0; i < k; ++i) w.push_back(chain.catalog->Add("w" + std::to_string(i)));
  chain.workflow = std::make_unique<Workflow>(chain.catalog);

  Tuple constant(static_cast<size_t>(k));
  for (auto& val : constant) {
    val = static_cast<Value>(rng->NextBelow(2));
  }
  ModulePtr const_mod = MakeConstant("m_const", chain.catalog, u, v, constant);
  const_mod->set_public(true);
  chain.constant_index = chain.workflow->AddModule(std::move(const_mod));
  chain.bijection_index = chain.workflow->AddModule(
      MakeRandomBijection("m_private", chain.catalog, v, w, rng));
  Status st = chain.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return chain;
}

Example7OutputChain MakeExample7OutputChain(int k, Rng* rng) {
  PV_CHECK(k >= 1 && k <= 10);
  Example7OutputChain chain;
  chain.k = k;
  chain.catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> x, y, z;
  for (int i = 0; i < k; ++i) x.push_back(chain.catalog->Add("x" + std::to_string(i)));
  for (int i = 0; i < k; ++i) y.push_back(chain.catalog->Add("y" + std::to_string(i)));
  for (int i = 0; i < k; ++i) z.push_back(chain.catalog->Add("z" + std::to_string(i)));
  chain.workflow = std::make_unique<Workflow>(chain.catalog);
  chain.bijection_index = chain.workflow->AddModule(
      MakeRandomBijection("m_private", chain.catalog, x, y, rng));
  ModulePtr inv = MakeNegation("m_invertible", chain.catalog, y, z);
  inv->set_public(true);
  chain.invertible_index = chain.workflow->AddModule(std::move(inv));
  Status st = chain.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return chain;
}

OneOneChain MakeOneOneChain(int stages, int k, Rng* rng) {
  PV_CHECK(stages >= 2 && stages <= 16 && k >= 1 && k <= 10);
  OneOneChain chain;
  chain.stages = stages;
  chain.k = k;
  chain.catalog = std::make_shared<AttributeCatalog>();
  chain.layer_attrs.resize(static_cast<size_t>(stages) + 1);
  for (int s = 0; s <= stages; ++s) {
    for (int i = 0; i < k; ++i) {
      chain.layer_attrs[static_cast<size_t>(s)].push_back(chain.catalog->Add(
          "l" + std::to_string(s) + "_" + std::to_string(i)));
    }
  }
  chain.workflow = std::make_unique<Workflow>(chain.catalog);
  for (int s = 0; s < stages; ++s) {
    chain.workflow->AddModule(MakeRandomBijection(
        "m" + std::to_string(s + 1), chain.catalog,
        chain.layer_attrs[static_cast<size_t>(s)],
        chain.layer_attrs[static_cast<size_t>(s) + 1], rng));
  }
  Status st = chain.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return chain;
}

DiamondWorkflow MakeDiamondWorkflow(int k, bool with_tail, Rng* rng) {
  PV_CHECK(k >= 1 && k <= 5);
  DiamondWorkflow d;
  d.k = k;
  d.with_tail = with_tail;
  d.catalog = std::make_shared<AttributeCatalog>();
  auto add_layer = [&](const char* base, std::vector<AttrId>* out) {
    for (int i = 0; i < 2 * k; ++i) {
      out->push_back(d.catalog->Add(base + std::to_string(i)));
    }
  };
  add_layer("x", &d.x);
  add_layer("t", &d.t);
  add_layer("u", &d.u);
  add_layer("y", &d.y);
  if (with_tail) add_layer("z", &d.z);
  d.workflow = std::make_unique<Workflow>(d.catalog);
  d.source_index = d.workflow->AddModule(
      MakeRandomBijection("m_src", d.catalog, d.x, d.t, rng));
  std::vector<AttrId> t_lo(d.t.begin(), d.t.begin() + k);
  std::vector<AttrId> t_hi(d.t.begin() + k, d.t.end());
  std::vector<AttrId> u_lo(d.u.begin(), d.u.begin() + k);
  std::vector<AttrId> u_hi(d.u.begin() + k, d.u.end());
  d.branch_a_index = d.workflow->AddModule(
      MakeRandomBijection("m_branch_a", d.catalog, t_lo, u_lo, rng));
  d.branch_b_index = d.workflow->AddModule(
      MakeRandomBijection("m_branch_b", d.catalog, t_hi, u_hi, rng));
  d.sink_index = d.workflow->AddModule(
      MakeRandomBijection("m_sink", d.catalog, d.u, d.y, rng));
  if (with_tail) {
    d.tail_index = d.workflow->AddModule(
        MakeRandomBijection("m_tail", d.catalog, d.y, d.z, rng));
  }
  Status st = d.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return d;
}

}  // namespace provview
