#include "generators/random_workflow.h"

#include <string>
#include <vector>

#include "module/module_library.h"

namespace provview {

GeneratedWorkflow MakeRandomWorkflow(const RandomWorkflowOptions& options,
                                     Rng* rng) {
  PV_CHECK(options.num_modules >= 1);
  PV_CHECK(options.min_inputs >= 1 && options.max_inputs >= options.min_inputs);
  PV_CHECK(options.min_outputs >= 1 &&
           options.max_outputs >= options.min_outputs);
  PV_CHECK(options.gamma_bound >= 1);

  GeneratedWorkflow gen;
  gen.catalog = std::make_shared<AttributeCatalog>();
  gen.workflow = std::make_unique<Workflow>(gen.catalog);

  auto random_cost = [&]() {
    return options.min_cost +
           rng->NextDouble() * (options.max_cost - options.min_cost);
  };

  const int layers = options.num_layers;
  PV_CHECK_MSG(layers <= options.num_modules,
               "more layers than modules requested");

  // Reusable pools: outputs of earlier modules still below the sharing
  // bound. Unlayered mode keeps one pool; layered mode keeps one pool per
  // layer so inputs draw from the previous layer (or, with
  // cross_layer_probability, any earlier one).
  std::vector<std::vector<AttrId>> pools(
      static_cast<size_t>(layers > 0 ? layers : 1));
  std::vector<int> consumer_count;  // per attribute id
  int attr_counter = 0;
  auto fresh_attr = [&](const std::string& prefix) {
    AttrId id = gen.catalog->Add(prefix + std::to_string(attr_counter++), 2,
                                 random_cost());
    consumer_count.push_back(0);
    return id;
  };
  auto drop_from_pools = [&](AttrId id) {
    for (std::vector<AttrId>& pool : pools) {
      pool.erase(std::remove(pool.begin(), pool.end(), id), pool.end());
    }
  };

  for (int mi = 0; mi < options.num_modules; ++mi) {
    // Layer of this module (0 when unlayered); equal-width partition.
    const int layer =
        layers > 0 ? static_cast<int>((static_cast<int64_t>(mi) * layers) /
                                      options.num_modules)
                   : 0;
    const int num_in = static_cast<int>(
        rng->NextInt(options.min_inputs, options.max_inputs));
    const int num_out = static_cast<int>(
        rng->NextInt(options.min_outputs, options.max_outputs));
    std::vector<AttrId> inputs;
    for (int i = 0; i < num_in; ++i) {
      // Pick the pool this input may reuse from.
      const std::vector<AttrId>* pool = nullptr;
      if (layers > 0) {
        if (layer > 0) {
          int src = layer - 1;
          if (layer > 1 &&
              rng->NextBernoulli(options.cross_layer_probability)) {
            src = static_cast<int>(rng->NextBelow(
                static_cast<uint64_t>(layer)));
          }
          pool = &pools[static_cast<size_t>(src)];
        }
      } else {
        pool = &pools[0];
      }
      AttrId chosen = -1;
      if (pool != nullptr && !pool->empty() &&
          rng->NextBernoulli(options.reuse_probability)) {
        // Try a few times to find a reusable attribute not already an
        // input of this module.
        for (int attempt = 0; attempt < 8; ++attempt) {
          AttrId cand =
              (*pool)[static_cast<size_t>(rng->NextBelow(pool->size()))];
          if (std::find(inputs.begin(), inputs.end(), cand) == inputs.end()) {
            chosen = cand;
            break;
          }
        }
      }
      if (chosen < 0) chosen = fresh_attr("in");
      inputs.push_back(chosen);
      if (++consumer_count[static_cast<size_t>(chosen)] >=
          options.gamma_bound) {
        drop_from_pools(chosen);
      }
    }
    std::vector<AttrId> outputs;
    for (int o = 0; o < num_out; ++o) {
      AttrId id = fresh_attr("d");
      outputs.push_back(id);
      pools[static_cast<size_t>(layers > 0 ? layer : 0)].push_back(id);
    }
    PV_CHECK_MSG(options.all_boolean, "only boolean workflows supported");
    ModulePtr module = MakeRandomFunction("m" + std::to_string(mi),
                                          gen.catalog, inputs, outputs, rng);
    if (rng->NextBernoulli(options.public_fraction)) {
      module->set_public(true);
      module->set_privatization_cost(
          options.min_privatization_cost +
          rng->NextDouble() * (options.max_privatization_cost -
                               options.min_privatization_cost));
    }
    gen.workflow->AddModule(std::move(module));
  }
  Status st = gen.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return gen;
}

}  // namespace provview
