#include "generators/random_workflow.h"

#include <string>
#include <vector>

#include "module/module_library.h"

namespace provview {

GeneratedWorkflow MakeRandomWorkflow(const RandomWorkflowOptions& options,
                                     Rng* rng) {
  PV_CHECK(options.num_modules >= 1);
  PV_CHECK(options.min_inputs >= 1 && options.max_inputs >= options.min_inputs);
  PV_CHECK(options.min_outputs >= 1 &&
           options.max_outputs >= options.min_outputs);
  PV_CHECK(options.gamma_bound >= 1);

  GeneratedWorkflow gen;
  gen.catalog = std::make_shared<AttributeCatalog>();
  gen.workflow = std::make_unique<Workflow>(gen.catalog);

  auto random_cost = [&]() {
    return options.min_cost +
           rng->NextDouble() * (options.max_cost - options.min_cost);
  };

  // Outputs of earlier modules still below the sharing bound.
  std::vector<AttrId> reusable;
  std::vector<int> consumer_count;  // per attribute id
  int attr_counter = 0;
  auto fresh_attr = [&](const std::string& prefix) {
    AttrId id = gen.catalog->Add(prefix + std::to_string(attr_counter++), 2,
                                 random_cost());
    consumer_count.push_back(0);
    return id;
  };

  for (int mi = 0; mi < options.num_modules; ++mi) {
    const int num_in = static_cast<int>(
        rng->NextInt(options.min_inputs, options.max_inputs));
    const int num_out = static_cast<int>(
        rng->NextInt(options.min_outputs, options.max_outputs));
    std::vector<AttrId> inputs;
    for (int i = 0; i < num_in; ++i) {
      AttrId chosen = -1;
      if (!reusable.empty() && rng->NextBernoulli(options.reuse_probability)) {
        // Try a few times to find a reusable attribute not already an
        // input of this module.
        for (int attempt = 0; attempt < 8; ++attempt) {
          AttrId cand = reusable[static_cast<size_t>(
              rng->NextBelow(reusable.size()))];
          if (std::find(inputs.begin(), inputs.end(), cand) == inputs.end()) {
            chosen = cand;
            break;
          }
        }
      }
      if (chosen < 0) chosen = fresh_attr("in");
      inputs.push_back(chosen);
      if (++consumer_count[static_cast<size_t>(chosen)] >=
          options.gamma_bound) {
        reusable.erase(std::remove(reusable.begin(), reusable.end(), chosen),
                       reusable.end());
      }
    }
    std::vector<AttrId> outputs;
    for (int o = 0; o < num_out; ++o) {
      AttrId id = fresh_attr("d");
      outputs.push_back(id);
      reusable.push_back(id);
    }
    PV_CHECK_MSG(options.all_boolean, "only boolean workflows supported");
    ModulePtr module = MakeRandomFunction("m" + std::to_string(mi),
                                          gen.catalog, inputs, outputs, rng);
    if (rng->NextBernoulli(options.public_fraction)) {
      module->set_public(true);
      module->set_privatization_cost(
          options.min_privatization_cost +
          rng->NextDouble() * (options.max_privatization_cost -
                               options.min_privatization_cost));
    }
    gen.workflow->AddModule(std::move(module));
  }
  Status st = gen.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return gen;
}

}  // namespace provview
