// Attribute model (§2.1 of the paper): every data item in a workflow is an
// attribute with a finite domain and a hiding cost c(a). Attributes are
// registered once in an AttributeCatalog and referenced by dense ids, which
// is what lets module relations join into the provenance relation and lets
// visible/hidden subsets be represented as bitsets over the catalog.
#ifndef PROVVIEW_RELATION_ATTRIBUTE_H_
#define PROVVIEW_RELATION_ATTRIBUTE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace provview {

/// Dense id of an attribute within its catalog.
using AttrId = int32_t;

/// Value of an attribute in a tuple; domains are finite categorical sets
/// encoded as 0..domain_size-1.
using Value = int32_t;

/// A single data item: name, finite domain size |Δ_a|, and the utility
/// penalty c(a) incurred when it is hidden from the provenance view.
struct Attribute {
  std::string name;
  int domain_size = 2;
  double cost = 1.0;
};

/// Registry of all attributes of a workflow (or of a standalone module).
/// Ids are dense and assigned in registration order.
class AttributeCatalog {
 public:
  AttributeCatalog() = default;

  /// Registers a new attribute; names must be unique and domain_size >= 1.
  AttrId Add(const std::string& name, int domain_size = 2, double cost = 1.0);

  int size() const { return static_cast<int>(attributes_.size()); }

  const Attribute& Get(AttrId id) const {
    PV_CHECK_MSG(id >= 0 && id < size(), "bad attribute id " << id);
    return attributes_[static_cast<size_t>(id)];
  }

  const std::string& Name(AttrId id) const { return Get(id).name; }
  int DomainSize(AttrId id) const { return Get(id).domain_size; }
  double Cost(AttrId id) const { return Get(id).cost; }

  /// Updates the hiding cost of an attribute (costs are experiment inputs).
  void SetCost(AttrId id, double cost);

  /// Id lookup by name.
  Result<AttrId> Find(const std::string& name) const;

  /// True if an attribute with this name exists.
  bool Contains(const std::string& name) const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, AttrId> by_name_;
};

using CatalogPtr = std::shared_ptr<AttributeCatalog>;

}  // namespace provview

#endif  // PROVVIEW_RELATION_ATTRIBUTE_H_
