#include "relation/row_supplier.h"

#include <utility>

namespace provview {

int64_t MaterializedRowSupplier::NextBlock(std::vector<Value>* block,
                                           int64_t max_rows) {
  PV_CHECK_MSG(max_rows > 0, "block size must be positive");
  block->clear();
  const int64_t total = rel_->num_rows();
  const int64_t count = std::min(max_rows, total - next_);
  if (count <= 0) return 0;
  const size_t arity = static_cast<size_t>(rel_->schema().arity());
  block->reserve(static_cast<size_t>(count) * arity);
  for (int64_t r = next_; r < next_ + count; ++r) {
    const Tuple& row = rel_->rows()[static_cast<size_t>(r)];
    block->insert(block->end(), row.begin(), row.end());
  }
  next_ += count;
  return count;
}

RelationView RelationView::Materialized(Relation rel) {
  RelationView v;
  v.owned_ = std::make_shared<const Relation>(std::move(rel));
  v.rel_ = v.owned_.get();
  v.num_rows_ = v.rel_->num_rows();
  return v;
}

RelationView RelationView::Borrowed(const Relation& rel) {
  RelationView v;
  v.rel_ = &rel;
  v.num_rows_ = rel.num_rows();
  return v;
}

RelationView RelationView::Streaming(Schema schema, int64_t num_rows,
                                     SupplierFactory factory) {
  PV_CHECK_MSG(num_rows >= 0, "negative row count");
  PV_CHECK_MSG(factory != nullptr, "streaming view needs a supplier factory");
  RelationView v;
  v.schema_ = std::move(schema);
  v.num_rows_ = num_rows;
  v.factory_ = std::move(factory);
  return v;
}

const Schema& RelationView::schema() const {
  return rel_ != nullptr ? rel_->schema() : schema_;
}

std::unique_ptr<RowSupplier> RelationView::NewSupplier() const {
  if (rel_ != nullptr) {
    return std::make_unique<MaterializedRowSupplier>(*rel_);
  }
  PV_CHECK_MSG(factory_ != nullptr, "empty RelationView");
  return factory_();
}

}  // namespace provview
