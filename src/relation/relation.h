// Finite relations over catalog attributes. A module's functionality (§2.1)
// and a workflow's execution log (§2.3) are both Relations; the privacy
// machinery operates on projections (views) of them.
#ifndef PROVVIEW_RELATION_RELATION_H_
#define PROVVIEW_RELATION_RELATION_H_

#include <string>
#include <vector>

#include "common/bitset64.h"
#include "common/interner.h"
#include "relation/schema.h"

namespace provview {

/// A tuple's values, aligned positionally with its relation's schema.
using Tuple = std::vector<Value>;

/// In-memory relation: a schema plus a row vector. Rows are value vectors in
/// schema order. Set semantics are applied explicitly via Distinct() /
/// EqualsAsSet(); storage itself permits duplicates (a projection is a
/// multiset until deduplicated).
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; arity and per-attribute domain ranges are checked.
  void AddRow(Tuple row);

  /// Value of attribute `id` in `row` (id must be in the schema).
  Value At(const Tuple& row, AttrId id) const;

  /// Projects a single row onto `attr_ids` (order as given).
  Tuple ProjectRow(const Tuple& row, const std::vector<AttrId>& attr_ids) const;

  /// π_{attrs}(R) with duplicate elimination (set semantics, as in the
  /// paper's views). Output schema order follows `attr_ids`.
  Relation Project(const std::vector<AttrId>& attr_ids) const;

  /// Projection onto the attributes present in `attr_set` (catalog order).
  Relation ProjectSet(const Bitset64& attr_set) const;

  /// Natural join on shared attribute ids. Both relations must share the
  /// same catalog. Output schema: this relation's attributes followed by the
  /// other's non-shared attributes.
  Relation NaturalJoin(const Relation& other) const;

  /// Removes duplicate rows (sorts internally).
  Relation Distinct() const;

  /// True if the functional dependency lhs → rhs holds in this relation.
  bool SatisfiesFd(const std::vector<AttrId>& lhs,
                   const std::vector<AttrId>& rhs) const;

  /// True if both relations contain the same set of rows over equal schemas
  /// (duplicates ignored).
  bool EqualsAsSet(const Relation& other) const;

  /// True if this relation's row set contains `row`.
  bool ContainsRow(const Tuple& row) const;

  /// Rows sorted lexicographically; canonical form for comparison/hashing.
  std::vector<Tuple> SortedDistinctRows() const;

  /// Interns every row (in storage order, duplicates included) and returns
  /// the dense ids. The hook the possible-worlds engine uses to replace
  /// tuple comparisons with integer comparisons in its inner loops.
  std::vector<int32_t> InternRows(TupleInterner* interner) const;

  /// Interns π_{attr_ids}(row) for every row (storage order, duplicates
  /// included — the interner deduplicates). Ids index the distinct projected
  /// tuples in first-seen order.
  std::vector<int32_t> InternProjectedRows(const std::vector<AttrId>& attr_ids,
                                           TupleInterner* interner) const;

  /// Pretty-printed table with attribute names, for examples and debugging.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace provview

#endif  // PROVVIEW_RELATION_RELATION_H_
