#include "relation/relation.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace provview {

namespace {

// Hash for Tuple keys in join/group maps.
struct TupleHasher {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (Value v : t) {
      h ^= static_cast<uint64_t>(v) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

void Relation::AddRow(Tuple row) {
  PV_CHECK_MSG(static_cast<int>(row.size()) == schema_.arity(),
               "row arity " << row.size() << " != schema arity "
                            << schema_.arity());
  for (int pos = 0; pos < schema_.arity(); ++pos) {
    AttrId id = schema_.attr(pos);
    int dom = schema_.catalog()->DomainSize(id);
    PV_CHECK_MSG(row[static_cast<size_t>(pos)] >= 0 &&
                     row[static_cast<size_t>(pos)] < dom,
                 "value " << row[static_cast<size_t>(pos)] << " out of domain ["
                          << 0 << "," << dom << ") for attribute "
                          << schema_.catalog()->Name(id));
  }
  rows_.push_back(std::move(row));
}

Value Relation::At(const Tuple& row, AttrId id) const {
  int pos = schema_.PositionOf(id);
  PV_CHECK_MSG(pos >= 0, "attribute id " << id << " not in schema");
  return row[static_cast<size_t>(pos)];
}

Tuple Relation::ProjectRow(const Tuple& row,
                           const std::vector<AttrId>& attr_ids) const {
  Tuple out;
  out.reserve(attr_ids.size());
  for (AttrId id : attr_ids) out.push_back(At(row, id));
  return out;
}

Relation Relation::Project(const std::vector<AttrId>& attr_ids) const {
  Relation out(Schema(schema_.catalog(), attr_ids));
  out.rows_.reserve(rows_.size());
  for (const Tuple& row : rows_) out.rows_.push_back(ProjectRow(row, attr_ids));
  return out.Distinct();
}

Relation Relation::ProjectSet(const Bitset64& attr_set) const {
  std::vector<AttrId> ids;
  for (AttrId id : schema_.attrs()) {
    if (id < attr_set.size() && attr_set.Test(id)) ids.push_back(id);
  }
  return Project(ids);
}

Relation Relation::NaturalJoin(const Relation& other) const {
  PV_CHECK_MSG(schema_.catalog() == other.schema_.catalog(),
               "natural join across different catalogs");
  // Shared attributes, in this relation's order.
  std::vector<AttrId> shared;
  for (AttrId id : schema_.attrs()) {
    if (other.schema_.ContainsAttr(id)) shared.push_back(id);
  }
  // Output schema: ours, then the other's non-shared attributes.
  std::vector<AttrId> out_attrs = schema_.attrs();
  std::vector<AttrId> other_only;
  for (AttrId id : other.schema_.attrs()) {
    if (!schema_.ContainsAttr(id)) {
      out_attrs.push_back(id);
      other_only.push_back(id);
    }
  }
  Relation out(Schema(schema_.catalog(), out_attrs));

  // Hash the smaller probe structure: bucket `other` rows by shared key.
  std::unordered_multimap<Tuple, const Tuple*, TupleHasher> index;
  index.reserve(other.rows_.size());
  for (const Tuple& r : other.rows_) {
    index.emplace(other.ProjectRow(r, shared), &r);
  }
  for (const Tuple& l : rows_) {
    Tuple key = ProjectRow(l, shared);
    auto [begin, end] = index.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      Tuple joined = l;
      joined.reserve(out_attrs.size());
      for (AttrId id : other_only) joined.push_back(other.At(*it->second, id));
      out.rows_.push_back(std::move(joined));
    }
  }
  return out;
}

Relation Relation::Distinct() const {
  Relation out(schema_);
  out.rows_ = SortedDistinctRows();
  return out;
}

bool Relation::SatisfiesFd(const std::vector<AttrId>& lhs,
                           const std::vector<AttrId>& rhs) const {
  std::unordered_map<Tuple, Tuple, TupleHasher> determined;
  determined.reserve(rows_.size());
  for (const Tuple& row : rows_) {
    Tuple key = ProjectRow(row, lhs);
    Tuple val = ProjectRow(row, rhs);
    auto [it, inserted] = determined.emplace(std::move(key), val);
    if (!inserted && it->second != val) return false;
  }
  return true;
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  return SortedDistinctRows() == other.SortedDistinctRows();
}

bool Relation::ContainsRow(const Tuple& row) const {
  return std::find(rows_.begin(), rows_.end(), row) != rows_.end();
}

std::vector<Tuple> Relation::SortedDistinctRows() const {
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

std::vector<int32_t> Relation::InternRows(TupleInterner* interner) const {
  std::vector<int32_t> ids;
  ids.reserve(rows_.size());
  for (const Tuple& row : rows_) ids.push_back(interner->Intern(row));
  return ids;
}

std::vector<int32_t> Relation::InternProjectedRows(
    const std::vector<AttrId>& attr_ids, TupleInterner* interner) const {
  std::vector<int32_t> ids;
  ids.reserve(rows_.size());
  for (const Tuple& row : rows_) {
    ids.push_back(interner->Intern(ProjectRow(row, attr_ids)));
  }
  return ids;
}

std::string Relation::ToString() const {
  std::ostringstream oss;
  const auto& cat = *schema_.catalog();
  for (int pos = 0; pos < schema_.arity(); ++pos) {
    if (pos > 0) oss << " ";
    oss << cat.Name(schema_.attr(pos));
  }
  oss << "\n";
  for (const Tuple& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) oss << " ";
      // Pad to the attribute-name width so columns align for short names.
      std::string v = std::to_string(row[i]);
      std::string name = cat.Name(schema_.attr(static_cast<int>(i)));
      if (v.size() < name.size()) v += std::string(name.size() - v.size(), ' ');
      oss << v;
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace provview
