#include "relation/relation_ops.h"

#include <algorithm>
#include <set>

namespace provview {

namespace {

void CheckSameSchema(const Relation& r, const Relation& s) {
  PV_CHECK_MSG(r.schema() == s.schema(), "set operation schema mismatch");
}

}  // namespace

Relation Select(const Relation& r, AttrId attr, Value value) {
  return SelectWhere(r, [attr, value](const Relation& rel, const Tuple& row) {
    return rel.At(row, attr) == value;
  });
}

Relation SelectWhere(const Relation& r,
                     const std::function<bool(const Relation&, const Tuple&)>&
                         predicate) {
  Relation out(r.schema());
  for (const Tuple& row : r.rows()) {
    if (predicate(r, row)) out.AddRow(row);
  }
  return out;
}

Relation Union(const Relation& r, const Relation& s) {
  CheckSameSchema(r, s);
  Relation out(r.schema());
  for (const Tuple& row : r.rows()) out.AddRow(row);
  for (const Tuple& row : s.rows()) out.AddRow(row);
  return out.Distinct();
}

Relation Intersect(const Relation& r, const Relation& s) {
  CheckSameSchema(r, s);
  std::vector<Tuple> other = s.SortedDistinctRows();
  Relation out(r.schema());
  for (const Tuple& row : r.SortedDistinctRows()) {
    if (std::binary_search(other.begin(), other.end(), row)) {
      out.AddRow(row);
    }
  }
  return out;
}

Relation Minus(const Relation& r, const Relation& s) {
  CheckSameSchema(r, s);
  std::vector<Tuple> other = s.SortedDistinctRows();
  Relation out(r.schema());
  for (const Tuple& row : r.SortedDistinctRows()) {
    if (!std::binary_search(other.begin(), other.end(), row)) {
      out.AddRow(row);
    }
  }
  return out;
}

std::map<Tuple, int64_t> GroupCount(const Relation& r,
                                    const std::vector<AttrId>& keys) {
  std::map<Tuple, int64_t> counts;
  for (const Tuple& row : r.SortedDistinctRows()) {
    ++counts[r.ProjectRow(row, keys)];
  }
  return counts;
}

std::map<Tuple, int64_t> GroupCountDistinct(
    const Relation& r, const std::vector<AttrId>& keys,
    const std::vector<AttrId>& counted) {
  std::map<Tuple, std::set<Tuple>> groups;
  for (const Tuple& row : r.SortedDistinctRows()) {
    groups[r.ProjectRow(row, keys)].insert(r.ProjectRow(row, counted));
  }
  std::map<Tuple, int64_t> counts;
  for (const auto& [key, values] : groups) {
    counts[key] = static_cast<int64_t>(values.size());
  }
  return counts;
}

}  // namespace provview
