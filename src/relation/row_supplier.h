// Streaming row access for relations that are too large to materialize.
// A RowSupplier yields a relation's rows in flat blocks on demand, so the
// privacy checkers can scan a module relation of |Dom| >> 2^22 rows without
// ever holding more than one block in memory. A RelationView is the handle
// the engines consume: it is backed either by a materialized Relation (the
// small-domain fast case) or by a supplier factory that re-derives rows on
// every pass (e.g. from a module's function, see Module::View()).
#ifndef PROVVIEW_RELATION_ROW_SUPPLIER_H_
#define PROVVIEW_RELATION_ROW_SUPPLIER_H_

#include <functional>
#include <memory>

#include "relation/relation.h"

namespace provview {

/// Rows a NextBlock call yields at most by default. Large enough to amortize
/// the virtual call, small enough that a block of wide rows stays in cache.
inline constexpr int64_t kDefaultSupplierBlockRows = 8192;

/// One sequential pass over a relation's rows. Rows are yielded in a fixed,
/// deterministic order (storage order for materialized relations, domain
/// order for function-backed module relations); repeating a pass after
/// Reset() yields the identical sequence. Not thread-safe; each concurrent
/// scan owns its own supplier.
class RowSupplier {
 public:
  virtual ~RowSupplier() = default;

  /// Schema the yielded rows are aligned with.
  virtual const Schema& schema() const = 0;

  /// Total rows this supplier yields over one full pass (duplicates
  /// included).
  virtual int64_t total_rows() const = 0;

  /// Restarts the pass from the first row.
  virtual void Reset() = 0;

  /// Clears `block` and fills it with up to `max_rows` rows, flattened
  /// back-to-back (arity() values per row). Returns the number of rows
  /// written; 0 means the pass is exhausted.
  virtual int64_t NextBlock(std::vector<Value>* block,
                            int64_t max_rows = kDefaultSupplierBlockRows) = 0;
};

/// Supplier over a materialized Relation (borrowed; the caller keeps it
/// alive for the supplier's lifetime).
class MaterializedRowSupplier : public RowSupplier {
 public:
  explicit MaterializedRowSupplier(const Relation& rel) : rel_(&rel) {}

  const Schema& schema() const override { return rel_->schema(); }
  int64_t total_rows() const override { return rel_->num_rows(); }
  void Reset() override { next_ = 0; }
  int64_t NextBlock(std::vector<Value>* block, int64_t max_rows) override;

 private:
  const Relation* rel_;
  int64_t next_ = 0;
};

/// Handle unifying the two row sources. Copyable and cheap to pass around;
/// a materialized view shares ownership of its Relation, a streaming view
/// holds a factory that opens fresh passes. Streaming factories typically
/// borrow the object they stream from (a Module, a Workflow); that object
/// must outlive the view.
class RelationView {
 public:
  using SupplierFactory = std::function<std::unique_ptr<RowSupplier>()>;

  RelationView() = default;

  /// View over an owned, materialized relation.
  static RelationView Materialized(Relation rel);

  /// View borrowing `rel`; the caller keeps it alive.
  static RelationView Borrowed(const Relation& rel);

  /// Streaming view: every NewSupplier() call opens a fresh pass yielding
  /// `num_rows` rows of `schema`.
  static RelationView Streaming(Schema schema, int64_t num_rows,
                                SupplierFactory factory);

  const Schema& schema() const;
  int64_t num_rows() const { return num_rows_; }

  /// True when backed by an in-memory Relation (relation() is non-null).
  bool materialized() const { return rel_ != nullptr; }

  /// The backing relation, or nullptr for a streaming view.
  const Relation* relation() const { return rel_; }

  /// Opens a fresh pass over the rows.
  std::unique_ptr<RowSupplier> NewSupplier() const;

 private:
  std::shared_ptr<const Relation> owned_;  // set for Materialized views
  const Relation* rel_ = nullptr;          // set for Materialized/Borrowed
  Schema schema_;
  int64_t num_rows_ = 0;
  SupplierFactory factory_;  // set for Streaming views
};

}  // namespace provview

#endif  // PROVVIEW_RELATION_ROW_SUPPLIER_H_
