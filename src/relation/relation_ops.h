// Relational algebra beyond projection/join: selection, set operations and
// grouping. Used by the examples for provenance queries over views
// ("SELECT executions WHERE risk = 1") and by the privacy checker's
// conceptual GROUP BY (§A.4 notes Algorithm 2 is expressible as SQL
// GROUP BY / COUNT).
#ifndef PROVVIEW_RELATION_RELATION_OPS_H_
#define PROVVIEW_RELATION_RELATION_OPS_H_

#include <functional>
#include <map>

#include "relation/relation.h"

namespace provview {

/// σ_{attr = value}(r).
Relation Select(const Relation& r, AttrId attr, Value value);

/// σ_pred(r) for an arbitrary row predicate.
Relation SelectWhere(const Relation& r,
                     const std::function<bool(const Relation&, const Tuple&)>&
                         predicate);

/// r ∪ s (set semantics). Schemas must be identical.
Relation Union(const Relation& r, const Relation& s);

/// r ∩ s (set semantics). Schemas must be identical.
Relation Intersect(const Relation& r, const Relation& s);

/// r \ s (set semantics). Schemas must be identical.
Relation Minus(const Relation& r, const Relation& s);

/// Number of distinct rows per key: GROUP BY `keys`, COUNT(DISTINCT *).
/// Keys are projections onto `keys` in the given order.
std::map<Tuple, int64_t> GroupCount(const Relation& r,
                                    const std::vector<AttrId>& keys);

/// GROUP BY `keys`, COUNT(DISTINCT π_counted): the exact aggregate
/// Algorithm 2 evaluates per visible-input group.
std::map<Tuple, int64_t> GroupCountDistinct(const Relation& r,
                                            const std::vector<AttrId>& keys,
                                            const std::vector<AttrId>& counted);

}  // namespace provview

#endif  // PROVVIEW_RELATION_RELATION_OPS_H_
