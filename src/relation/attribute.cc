#include "relation/attribute.h"

namespace provview {

AttrId AttributeCatalog::Add(const std::string& name, int domain_size,
                             double cost) {
  PV_CHECK_MSG(domain_size >= 1, "domain size must be >= 1 for " << name);
  PV_CHECK_MSG(cost >= 0.0, "cost must be non-negative for " << name);
  PV_CHECK_MSG(by_name_.find(name) == by_name_.end(),
               "duplicate attribute name " << name);
  AttrId id = static_cast<AttrId>(attributes_.size());
  attributes_.push_back(Attribute{name, domain_size, cost});
  by_name_.emplace(name, id);
  return id;
}

void AttributeCatalog::SetCost(AttrId id, double cost) {
  PV_CHECK_MSG(id >= 0 && id < size(), "bad attribute id " << id);
  PV_CHECK(cost >= 0.0);
  attributes_[static_cast<size_t>(id)].cost = cost;
}

Result<AttrId> AttributeCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no attribute named " + name);
  }
  return it->second;
}

bool AttributeCatalog::Contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

}  // namespace provview
