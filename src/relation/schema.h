// Ordered attribute list of a relation, bound to an AttributeCatalog.
// Relations over the same catalog can be joined on shared attribute ids,
// which is how the workflow provenance relation R = R1 ⋈ ... ⋈ Rn (§2.3)
// is assembled from the constituent module relations.
#ifndef PROVVIEW_RELATION_SCHEMA_H_
#define PROVVIEW_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/bitset64.h"
#include "relation/attribute.h"

namespace provview {

/// Immutable ordered list of attribute ids plus the catalog they live in.
class Schema {
 public:
  Schema() = default;
  Schema(CatalogPtr catalog, std::vector<AttrId> attrs);

  const CatalogPtr& catalog() const { return catalog_; }
  const std::vector<AttrId>& attrs() const { return attrs_; }
  int arity() const { return static_cast<int>(attrs_.size()); }

  AttrId attr(int pos) const {
    PV_CHECK_MSG(pos >= 0 && pos < arity(), "bad schema position " << pos);
    return attrs_[static_cast<size_t>(pos)];
  }

  /// Position of attribute `id` in this schema, or -1 if absent.
  int PositionOf(AttrId id) const;

  bool ContainsAttr(AttrId id) const { return PositionOf(id) >= 0; }

  /// The attribute ids as a bitset over the catalog universe.
  Bitset64 AttrSet() const;

  /// Domain sizes in schema order (radices for tuple enumeration).
  std::vector<int> DomainSizes() const;

  /// Number of distinct tuples of the full product space, saturating.
  int64_t ProductSpaceSize() const;

  bool operator==(const Schema& other) const;

  /// "(a1, a2, a3)".
  std::string ToString() const;

 private:
  CatalogPtr catalog_;
  std::vector<AttrId> attrs_;
  // position_of_[id] = position in attrs_, or -1. Sized to the catalog at
  // construction time; ids added to the catalog later are simply absent.
  std::vector<int> position_of_;
};

}  // namespace provview

#endif  // PROVVIEW_RELATION_SCHEMA_H_
