#include "relation/schema.h"

#include <sstream>

#include "common/combinatorics.h"

namespace provview {

Schema::Schema(CatalogPtr catalog, std::vector<AttrId> attrs)
    : catalog_(std::move(catalog)), attrs_(std::move(attrs)) {
  PV_CHECK(catalog_ != nullptr);
  position_of_.assign(static_cast<size_t>(catalog_->size()), -1);
  for (size_t pos = 0; pos < attrs_.size(); ++pos) {
    AttrId id = attrs_[pos];
    PV_CHECK_MSG(id >= 0 && id < catalog_->size(),
                 "schema references unknown attribute id " << id);
    PV_CHECK_MSG(position_of_[static_cast<size_t>(id)] == -1,
                 "duplicate attribute " << catalog_->Name(id) << " in schema");
    position_of_[static_cast<size_t>(id)] = static_cast<int>(pos);
  }
}

int Schema::PositionOf(AttrId id) const {
  if (id < 0 || static_cast<size_t>(id) >= position_of_.size()) return -1;
  return position_of_[static_cast<size_t>(id)];
}

Bitset64 Schema::AttrSet() const {
  Bitset64 s(catalog_->size());
  for (AttrId id : attrs_) s.Set(id);
  return s;
}

std::vector<int> Schema::DomainSizes() const {
  std::vector<int> out;
  out.reserve(attrs_.size());
  for (AttrId id : attrs_) out.push_back(catalog_->DomainSize(id));
  return out;
}

int64_t Schema::ProductSpaceSize() const {
  std::vector<int64_t> sizes;
  sizes.reserve(attrs_.size());
  for (AttrId id : attrs_) sizes.push_back(catalog_->DomainSize(id));
  return SaturatingProduct(sizes);
}

bool Schema::operator==(const Schema& other) const {
  return catalog_ == other.catalog_ && attrs_ == other.attrs_;
}

std::string Schema::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << catalog_->Name(attrs_[i]);
  }
  oss << ")";
  return oss.str();
}

}  // namespace provview
