#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace provview {

namespace {

// Internal dense tableau. Rows: one per constraint, plus a cost row kept
// separately. Columns: structural variables (after shifting lower bounds to
// zero), slack/surplus columns, artificial columns, and the rhs.
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& options)
      : lp_(lp), opt_(options), n_(lp.num_vars()) {
    BuildRows();
    BuildColumns();
  }

  LpSolution Run() {
    LpSolution solution;
    // ---- Phase 1: minimize the sum of artificials. ----
    if (num_artificial_ > 0) {
      std::vector<double> phase1_cost(static_cast<size_t>(num_cols_), 0.0);
      for (int j = first_artificial_; j < num_cols_; ++j) {
        phase1_cost[static_cast<size_t>(j)] = 1.0;
      }
      InstallCost(phase1_cost);
      Status st = Optimize(/*allow_artificial_entering=*/false, &solution);
      if (!st.ok()) {
        solution.status = st;
        return solution;
      }
      if (cost_rhs_ < -opt_.eps) {
        // cost_rhs_ holds -objective; phase-1 objective > eps ⇒ infeasible.
        solution.status = Status::Infeasible("phase-1 objective positive");
        return solution;
      }
      DriveOutArtificials();
    }
    // ---- Phase 2: original objective. ----
    std::vector<double> phase2_cost(static_cast<size_t>(num_cols_), 0.0);
    for (int j = 0; j < n_; ++j) {
      phase2_cost[static_cast<size_t>(j)] =
          lp_.objective_coeff(j);
    }
    InstallCost(phase2_cost);
    Status st = Optimize(/*allow_artificial_entering=*/false, &solution);
    if (!st.ok()) {
      solution.status = st;
      return solution;
    }
    // Extract structural values (undo the lower-bound shift).
    solution.x.assign(static_cast<size_t>(n_), 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      int bv = basis_[static_cast<size_t>(i)];
      if (bv < n_) {
        solution.x[static_cast<size_t>(bv)] = rhs_[static_cast<size_t>(i)];
      }
    }
    for (int j = 0; j < n_; ++j) {
      solution.x[static_cast<size_t>(j)] += lp_.lower_bound(j);
    }
    solution.objective = lp_.Objective(solution.x);
    solution.status = Status::OK();
    return solution;
  }

 private:
  // Pivots between deadline polls: each pivot is already O(rows·cols), so a
  // small stride keeps service-mode LP solves responsive without measurable
  // overhead.
  static constexpr int kControlStride = 16;

  struct Row {
    std::vector<double> coeffs;  // dense over structural variables
    ConstraintSense sense;
    double rhs;
  };

  void BuildRows() {
    // Original constraints with lower-bound shift folded into the rhs.
    for (const LpConstraint& c : lp_.constraints()) {
      Row row;
      row.coeffs.assign(static_cast<size_t>(n_), 0.0);
      double shift = 0.0;
      for (const auto& [var, coeff] : c.terms) {
        row.coeffs[static_cast<size_t>(var)] += coeff;
        shift += coeff * lp_.lower_bound(var);
      }
      row.sense = c.sense;
      row.rhs = c.rhs - shift;
      rows_.push_back(std::move(row));
    }
    // Finite upper bounds become explicit ≤ rows on the shifted variable.
    for (int j = 0; j < n_; ++j) {
      double range = lp_.upper_bound(j) - lp_.lower_bound(j);
      if (std::isfinite(range)) {
        Row row;
        row.coeffs.assign(static_cast<size_t>(n_), 0.0);
        row.coeffs[static_cast<size_t>(j)] = 1.0;
        row.sense = ConstraintSense::kLe;
        row.rhs = range;
        rows_.push_back(std::move(row));
      }
    }
    // Normalize to non-negative rhs.
    for (Row& row : rows_) {
      if (row.rhs < 0) {
        for (double& v : row.coeffs) v = -v;
        row.rhs = -row.rhs;
        if (row.sense == ConstraintSense::kLe) {
          row.sense = ConstraintSense::kGe;
        } else if (row.sense == ConstraintSense::kGe) {
          row.sense = ConstraintSense::kLe;
        }
      }
    }
    num_rows_ = static_cast<int>(rows_.size());
  }

  void BuildColumns() {
    // Column layout: [0, n_) structural; then slack/surplus; then
    // artificials.
    int num_slack = 0;
    for (const Row& row : rows_) {
      if (row.sense != ConstraintSense::kEq) ++num_slack;
    }
    num_artificial_ = 0;
    for (const Row& row : rows_) {
      if (row.sense != ConstraintSense::kLe) ++num_artificial_;
    }
    first_slack_ = n_;
    first_artificial_ = n_ + num_slack;
    num_cols_ = n_ + num_slack + num_artificial_;

    tab_.assign(static_cast<size_t>(num_rows_),
                std::vector<double>(static_cast<size_t>(num_cols_), 0.0));
    rhs_.assign(static_cast<size_t>(num_rows_), 0.0);
    basis_.assign(static_cast<size_t>(num_rows_), -1);

    int slack = first_slack_;
    int art = first_artificial_;
    for (int i = 0; i < num_rows_; ++i) {
      const Row& row = rows_[static_cast<size_t>(i)];
      for (int j = 0; j < n_; ++j) {
        tab_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            row.coeffs[static_cast<size_t>(j)];
      }
      rhs_[static_cast<size_t>(i)] = row.rhs;
      switch (row.sense) {
        case ConstraintSense::kLe:
          tab_[static_cast<size_t>(i)][static_cast<size_t>(slack)] = 1.0;
          basis_[static_cast<size_t>(i)] = slack++;
          break;
        case ConstraintSense::kGe:
          tab_[static_cast<size_t>(i)][static_cast<size_t>(slack)] = -1.0;
          ++slack;
          tab_[static_cast<size_t>(i)][static_cast<size_t>(art)] = 1.0;
          basis_[static_cast<size_t>(i)] = art++;
          break;
        case ConstraintSense::kEq:
          tab_[static_cast<size_t>(i)][static_cast<size_t>(art)] = 1.0;
          basis_[static_cast<size_t>(i)] = art++;
          break;
      }
    }
  }

  // Installs a cost vector and prices it against the current basis.
  void InstallCost(const std::vector<double>& cost) {
    cost_row_ = cost;
    cost_rhs_ = 0.0;
    for (int i = 0; i < num_rows_; ++i) {
      double cb = cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
      if (cb == 0.0) continue;
      for (int j = 0; j < num_cols_; ++j) {
        cost_row_[static_cast<size_t>(j)] -=
            cb * tab_[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
      cost_rhs_ -= cb * rhs_[static_cast<size_t>(i)];
    }
  }

  Status Optimize(bool allow_artificial_entering, LpSolution* solution) {
    const int entering_limit =
        allow_artificial_entering ? num_cols_ : first_artificial_;
    int stall = 0;
    double last_obj = cost_rhs_;
    while (true) {
      if (solution->iterations >= opt_.max_iterations) {
        return Status::Timeout("simplex iteration budget exhausted");
      }
      if (opt_.control != nullptr &&
          (solution->iterations % kControlStride) == 0 &&
          opt_.control->ExpiredNow()) {
        return opt_.control->Check();
      }
      const bool bland = stall >= opt_.bland_threshold;
      // Entering column.
      int enter = -1;
      double best = -opt_.eps;
      for (int j = 0; j < entering_limit; ++j) {
        double rc = cost_row_[static_cast<size_t>(j)];
        if (rc < best) {
          enter = j;
          if (bland) break;  // Bland: first eligible index
          best = rc;
        } else if (bland && rc < -opt_.eps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return Status::OK();  // optimal
      // Leaving row (ratio test; Bland tie-break on basis index).
      int leave = -1;
      double best_ratio = 0.0;
      for (int i = 0; i < num_rows_; ++i) {
        double a = tab_[static_cast<size_t>(i)][static_cast<size_t>(enter)];
        if (a <= opt_.eps) continue;
        double ratio = rhs_[static_cast<size_t>(i)] / a;
        if (leave < 0 || ratio < best_ratio - opt_.eps ||
            (ratio < best_ratio + opt_.eps &&
             basis_[static_cast<size_t>(i)] <
                 basis_[static_cast<size_t>(leave)])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave < 0) return Status::Unbounded("no blocking row");
      Pivot(leave, enter);
      ++solution->iterations;
      if (cost_rhs_ > last_obj + opt_.eps) {
        stall = 0;
        last_obj = cost_rhs_;
      } else {
        ++stall;
      }
    }
  }

  void Pivot(int leave, int enter) {
    auto& prow = tab_[static_cast<size_t>(leave)];
    const double pivot = prow[static_cast<size_t>(enter)];
    for (double& v : prow) v /= pivot;
    rhs_[static_cast<size_t>(leave)] /= pivot;
    prow[static_cast<size_t>(enter)] = 1.0;  // exact
    for (int i = 0; i < num_rows_; ++i) {
      if (i == leave) continue;
      double factor = tab_[static_cast<size_t>(i)][static_cast<size_t>(enter)];
      if (factor == 0.0) continue;
      auto& row = tab_[static_cast<size_t>(i)];
      for (int j = 0; j < num_cols_; ++j) {
        row[static_cast<size_t>(j)] -= factor * prow[static_cast<size_t>(j)];
      }
      row[static_cast<size_t>(enter)] = 0.0;
      rhs_[static_cast<size_t>(i)] -= factor * rhs_[static_cast<size_t>(leave)];
      if (rhs_[static_cast<size_t>(i)] < 0 &&
          rhs_[static_cast<size_t>(i)] > -1e-11) {
        rhs_[static_cast<size_t>(i)] = 0.0;  // clamp numeric dust
      }
    }
    double factor = cost_row_[static_cast<size_t>(enter)];
    if (factor != 0.0) {
      for (int j = 0; j < num_cols_; ++j) {
        cost_row_[static_cast<size_t>(j)] -=
            factor * prow[static_cast<size_t>(j)];
      }
      cost_row_[static_cast<size_t>(enter)] = 0.0;
      cost_rhs_ -= factor * rhs_[static_cast<size_t>(leave)];
    }
    basis_[static_cast<size_t>(leave)] = enter;
  }

  // After phase 1, pivots basic artificials out where possible; rows where
  // no pivot exists are redundant and harmless (the artificial stays basic
  // at value zero and can never re-enter the objective).
  void DriveOutArtificials() {
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[static_cast<size_t>(i)] < first_artificial_) continue;
      if (rhs_[static_cast<size_t>(i)] > opt_.eps) continue;  // shouldn't happen
      for (int j = 0; j < first_artificial_; ++j) {
        if (std::abs(tab_[static_cast<size_t>(i)][static_cast<size_t>(j)]) >
            1e-7) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  const LinearProgram& lp_;
  const SimplexOptions& opt_;
  const int n_;

  std::vector<Row> rows_;
  int num_rows_ = 0;
  int num_cols_ = 0;
  int first_slack_ = 0;
  int first_artificial_ = 0;
  int num_artificial_ = 0;

  std::vector<std::vector<double>> tab_;
  std::vector<double> rhs_;
  std::vector<int> basis_;
  std::vector<double> cost_row_;
  double cost_rhs_ = 0.0;  // negative of current objective value
};

}  // namespace

LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options) {
  if (options.control != nullptr && options.control->ExpiredNow()) {
    LpSolution solution;
    solution.status = options.control->Check();
    return solution;
  }
  Tableau tableau(lp, options);
  return tableau.Run();
}

}  // namespace provview
