// Dense two-phase primal simplex. Designed for the moderate-size
// relaxations produced by the Secure-View encoders (up to a few thousand
// variables/constraints): full-tableau representation, Dantzig pricing with
// a Bland's-rule fallback to guarantee termination, explicit artificial
// variables for ≥/= rows.
#ifndef PROVVIEW_LP_SIMPLEX_H_
#define PROVVIEW_LP_SIMPLEX_H_

#include "common/exec_control.h"
#include "lp/linear_program.h"

namespace provview {

/// Tuning knobs for the simplex solver.
struct SimplexOptions {
  double eps = 1e-9;           ///< pivot / feasibility tolerance
  int max_iterations = 500000; ///< across both phases
  /// Switch from Dantzig pricing to Bland's rule after this many
  /// consecutive non-improving iterations (anti-cycling).
  int bland_threshold = 2000;
  /// Cooperative deadline/cancel token, polled every kControlStride pivots;
  /// a tripped control surfaces as its typed Status (DEADLINE_EXCEEDED /
  /// RESOURCE_EXHAUSTED) instead of an unbounded pivot loop.
  const ExecControl* control = nullptr;
};

/// Solves `lp` to optimality (minimization). Statuses: OK (optimal),
/// Infeasible, Unbounded, Timeout (iteration budget exhausted).
LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace provview

#endif  // PROVVIEW_LP_SIMPLEX_H_
