// Linear-program model consumed by the simplex solver and the
// branch-and-bound ILP solver. The paper's approximation algorithms
// (Theorem 5's Figure-3 relaxation, Theorem 6's set-constraint relaxation,
// and Appendix C.4's privatization relaxation) are all built on this.
#ifndef PROVVIEW_LP_LINEAR_PROGRAM_H_
#define PROVVIEW_LP_LINEAR_PROGRAM_H_

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace provview {

/// Direction of a linear constraint.
enum class ConstraintSense { kLe, kGe, kEq };

/// One linear constraint: Σ coeff_j · x_{var_j}  (sense)  rhs.
struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coeff)
  ConstraintSense sense = ConstraintSense::kLe;
  double rhs = 0.0;
};

/// Minimization LP with per-variable bounds. Variables are created with
/// AddVariable and referenced by index.
class LinearProgram {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Adds a variable with bounds [lb, ub] and objective coefficient `obj`.
  /// Returns its index. lb must be finite; ub may be +inf.
  int AddVariable(double lb, double ub, double obj,
                  std::string name = std::string());

  /// Adds a [0, 1] variable (the shape every relaxation here uses).
  int AddUnitVariable(double obj, std::string name = std::string()) {
    return AddVariable(0.0, 1.0, obj, std::move(name));
  }

  /// Adds a constraint; variable indices must already exist. Duplicate
  /// variable entries in `terms` are allowed (coefficients accumulate).
  void AddConstraint(std::vector<std::pair<int, double>> terms,
                     ConstraintSense sense, double rhs);

  /// Overwrites a variable's bounds in place. lb must stay finite; lb > ub
  /// is allowed (an empty box) so branch-and-bound scratch LPs can record
  /// contradictory branches and detect them before any solve.
  void SetVarBounds(int var, double lb, double ub) {
    PV_CHECK_MSG(std::isfinite(lb), "lower bound must be finite");
    lb_[Check(var)] = lb;
    ub_[Check(var)] = ub;
  }

  int num_vars() const { return static_cast<int>(obj_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  double objective_coeff(int var) const { return obj_[Check(var)]; }
  double lower_bound(int var) const { return lb_[Check(var)]; }
  double upper_bound(int var) const { return ub_[Check(var)]; }
  const std::string& var_name(int var) const { return names_[Check(var)]; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

  /// Objective value of an assignment (no feasibility check).
  double Objective(const std::vector<double>& x) const;

  /// Max constraint/bound violation of an assignment.
  double MaxViolation(const std::vector<double>& x) const;

 private:
  size_t Check(int var) const {
    PV_CHECK_MSG(var >= 0 && var < num_vars(), "bad variable index " << var);
    return static_cast<size_t>(var);
  }
  std::vector<double> obj_, lb_, ub_;
  std::vector<std::string> names_;
  std::vector<LpConstraint> constraints_;
};

/// Solver outcome. `status` is OK, Infeasible, Unbounded, or Timeout.
struct LpSolution {
  Status status;
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
};

}  // namespace provview

#endif  // PROVVIEW_LP_LINEAR_PROGRAM_H_
