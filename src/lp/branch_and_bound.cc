#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <tuple>
#include <utility>

#include "common/task_graph.h"

namespace provview {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One open subtree: the branching path as (var, lb, ub) tightenings over
// the base LP, the parent relaxation objective (its proven lower bound),
// and a deterministic creation id used for tie-breaking so the traversal
// order never depends on scheduling.
struct Node {
  std::vector<std::tuple<int, double, double>> bounds;
  double bound = -kInf;
  int64_t id = 0;
};

// Best-bound ordering: smallest bound first, then oldest id. std::*_heap
// keeps the *largest* element first, so the comparator is reversed.
struct WorseThan {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id > b.id;
  }
};

// What resolving one node established. Produced (possibly concurrently)
// during a wave's resolve phase from state frozen at the wave boundary;
// consumed sequentially in pop order by the merge phase.
struct Outcome {
  enum Kind {
    kClosed,     // pruned / infeasible: subtree contains nothing better
    kCandidate,  // integral point (or oracle-resolved box optimum)
    kBranch,     // fractional relaxation: split on branch_var
    kError,      // solver failure / tripped control
  };
  Kind kind = Kind::kClosed;
  bool done = false;          // resolve ran to completion (vs. skipped)
  bool lp_solved = false;
  bool oracle_closed = false;
  std::vector<double> x;      // kCandidate
  double objective = kInf;    // kCandidate
  int branch_var = -1;        // kBranch
  double branch_val = 0.0;    // kBranch
  double relax_obj = 0.0;     // kBranch
  Status error;               // kError
};

// Historical per-node path: rebuilds a full copy of the LP with the node's
// bounds folded in. Kept (behind BnbOptions::use_scratch_lp == false) as
// the baseline of the scratch-LP A/B bench row.
LinearProgram WithBounds(const LinearProgram& base,
                         const std::vector<std::tuple<int, double, double>>&
                             bounds) {
  LinearProgram lp;
  std::vector<double> lb(static_cast<size_t>(base.num_vars()));
  std::vector<double> ub(static_cast<size_t>(base.num_vars()));
  for (int v = 0; v < base.num_vars(); ++v) {
    lb[static_cast<size_t>(v)] = base.lower_bound(v);
    ub[static_cast<size_t>(v)] = base.upper_bound(v);
  }
  for (const auto& [var, new_lb, new_ub] : bounds) {
    lb[static_cast<size_t>(var)] =
        std::max(lb[static_cast<size_t>(var)], new_lb);
    ub[static_cast<size_t>(var)] =
        std::min(ub[static_cast<size_t>(var)], new_ub);
  }
  for (int v = 0; v < base.num_vars(); ++v) {
    if (lb[static_cast<size_t>(v)] > ub[static_cast<size_t>(v)]) {
      // Empty box; encode as an infeasible bound pair the simplex will
      // reject via an unsatisfiable constraint.
      lp.AddVariable(lb[static_cast<size_t>(v)], lb[static_cast<size_t>(v)],
                     base.objective_coeff(v), base.var_name(v));
      lp.AddConstraint({{v, 1.0}}, ConstraintSense::kLe,
                       ub[static_cast<size_t>(v)]);
    } else {
      lp.AddVariable(lb[static_cast<size_t>(v)], ub[static_cast<size_t>(v)],
                     base.objective_coeff(v), base.var_name(v));
    }
  }
  for (const LpConstraint& c : base.constraints()) {
    lp.AddConstraint(c.terms, c.sense, c.rhs);
  }
  return lp;
}

class Engine {
 public:
  Engine(const LinearProgram& lp, const std::vector<int>& integer_vars,
         const BnbOptions& options)
      : lp_(lp), ivars_(integer_vars), opt_(options) {
    simplex_ = opt_.simplex;
    if (simplex_.control == nullptr) simplex_.control = opt_.control;
    base_lb_.resize(static_cast<size_t>(lp.num_vars()));
    base_ub_.resize(static_cast<size_t>(lp.num_vars()));
    for (int v = 0; v < lp.num_vars(); ++v) {
      base_lb_[static_cast<size_t>(v)] = lp.lower_bound(v);
      base_ub_[static_cast<size_t>(v)] = lp.upper_bound(v);
    }
  }

  BnbResult Run() {
    best_obj_ = opt_.warm_objective;
    Push(Node{{}, -kInf, next_id_++});

    const int buckets =
        std::max(1, std::min(opt_.num_threads, std::max(1, opt_.wave_width)));
    scratch_.resize(static_cast<size_t>(buckets));
    std::unique_ptr<TaskGraphExecutor> owned;
    TaskGraphExecutor* executor = opt_.executor;
    if (buckets > 1 && executor == nullptr) {
      // The Run() caller helps drain the graph, so num_threads - 1 workers
      // plus the caller are num_threads runners.
      owned = std::make_unique<TaskGraphExecutor>(buckets - 1);
      executor = owned.get();
    }

    std::vector<Node> wave;
    std::vector<Outcome> outcomes;
    while (!open_.empty()) {
      if (opt_.control != nullptr && opt_.control->ExpiredNow()) {
        return Finish(opt_.control->Check(), /*unmerged=*/{});
      }
      // ---- Pop a wave. The wave's width never depends on num_threads, so
      // the explored tree is a function of the options alone. ----
      wave.clear();
      while (!open_.empty() &&
             static_cast<int>(wave.size()) < std::max(1, opt_.wave_width)) {
        if (result_.nodes_explored >= opt_.max_nodes) {
          // Nodes already popped into this partial wave are unexplored:
          // hand them to Finish so their bounds stay in the gap.
          return Finish(Status::Timeout("node budget exhausted"), wave);
        }
        wave.push_back(Pop());
        ++result_.nodes_explored;
      }

      // ---- Resolve phase: pure function of (node, wave-start incumbent).
      // Safe to shard: no resolve reads anything a concurrent resolve
      // writes. ----
      const double frozen_best = best_obj_;
      outcomes.assign(wave.size(), Outcome{});
      Status wave_status = Status::OK();
      if (buckets <= 1 || wave.size() <= 1) {
        for (size_t i = 0; i < wave.size(); ++i) {
          Resolve(wave[i], frozen_best, /*bucket=*/0, &outcomes[i]);
        }
      } else {
        TaskGraph graph;
        for (int b = 0; b < buckets; ++b) {
          graph.Add([this, b, buckets, frozen_best, &wave, &outcomes] {
            for (size_t i = static_cast<size_t>(b); i < wave.size();
                 i += static_cast<size_t>(buckets)) {
              Resolve(wave[i], frozen_best, b, &outcomes[i]);
            }
          });
        }
        wave_status = graph.Run(executor, opt_.control);
      }

      // ---- Merge phase: sequential, in pop order. The only place the
      // incumbent and the open queue change. ----
      for (size_t i = 0; i < wave.size(); ++i) {
        Outcome& out = outcomes[i];
        if (!out.done) {
          // The resolve was skipped (tripped control) or died: this
          // subtree — and everything after it in the wave — is still open.
          Status st = !wave_status.ok()
                          ? wave_status
                          : (opt_.control != nullptr
                                 ? opt_.control->Check()
                                 : Status::Internal("wave resolve skipped"));
          if (st.ok()) st = Status::Internal("wave resolve skipped");
          return Finish(st, {wave.begin() + static_cast<long>(i), wave.end()});
        }
        result_.lp_solves += out.lp_solved ? 1 : 0;
        result_.oracle_fathoms += out.oracle_closed ? 1 : 0;
        switch (out.kind) {
          case Outcome::kClosed:
            break;
          case Outcome::kError:
            // The failed node's own subtree is unexplored too: keep it in
            // the open set for the lower-bound computation.
            return Finish(out.error,
                          {wave.begin() + static_cast<long>(i), wave.end()});
          case Outcome::kCandidate:
            if (out.objective < best_obj_) {
              best_obj_ = out.objective;
              result_.x = std::move(out.x);
            }
            break;
          case Outcome::kBranch: {
            // Re-check against the merged incumbent: an earlier node of
            // this wave may have improved it since the resolve froze.
            if (out.relax_obj >= best_obj_ - opt_.obj_eps) break;
            const Node& node = wave[i];
            const double val = out.branch_val;
            Node down{node.bounds, out.relax_obj, 0};
            down.bounds.emplace_back(out.branch_var, -kInf, std::floor(val));
            Node up{node.bounds, out.relax_obj, 0};
            up.bounds.emplace_back(out.branch_var, std::ceil(val), kInf);
            // Explore the branch closer to the fractional value first: it
            // gets the smaller id (best-bound tie-break) and, in LIFO
            // mode, the later push.
            bool down_first = val - std::floor(val) <= 0.5;
            Node& first = down_first ? down : up;
            Node& second = down_first ? up : down;
            first.id = next_id_++;
            second.id = next_id_++;
            if (opt_.best_bound) {
              Push(std::move(first));
              Push(std::move(second));
            } else {
              Push(std::move(second));
              Push(std::move(first));
            }
            break;
          }
        }
      }
    }
    return Finish(Status::OK(), /*unmerged=*/{});
  }

 private:
  void Push(Node node) {
    open_.push_back(std::move(node));
    if (opt_.best_bound) {
      std::push_heap(open_.begin(), open_.end(), WorseThan{});
    }
  }

  Node Pop() {
    if (opt_.best_bound) {
      std::pop_heap(open_.begin(), open_.end(), WorseThan{});
    }
    Node node = std::move(open_.back());
    open_.pop_back();
    return node;
  }

  // Resolves one node against the wave-start incumbent `frozen_best`.
  // Reads only immutable engine state plus its own bucket's scratch LP.
  void Resolve(const Node& node, double frozen_best, int bucket,
               Outcome* out) {
    out->done = true;  // overwritten fields below; kind defaults to closed
    if (node.bound >= frozen_best - opt_.obj_eps) return;  // cannot beat it

    // Effective box: base bounds tightened along the branching path.
    // Paths are short (tree depth), so this is the cheap part of a node.
    std::vector<std::pair<int, std::pair<double, double>>> touched;
    touched.reserve(node.bounds.size());
    for (const auto& [var, blb, bub] : node.bounds) {
      double lo = base_lb_[static_cast<size_t>(var)];
      double hi = base_ub_[static_cast<size_t>(var)];
      for (auto& [tvar, box] : touched) {
        if (tvar == var) {
          lo = box.first;
          hi = box.second;
        }
      }
      lo = std::max(lo, blb);
      hi = std::min(hi, bub);
      bool found = false;
      for (auto& [tvar, box] : touched) {
        if (tvar == var) {
          box = {lo, hi};
          found = true;
        }
      }
      if (!found) touched.emplace_back(var, std::make_pair(lo, hi));
      if (lo > hi) return;  // empty box: closed without any solve
    }

    if (opt_.oracle) {
      std::vector<double> eff_lb = base_lb_;
      std::vector<double> eff_ub = base_ub_;
      for (const auto& [var, box] : touched) {
        eff_lb[static_cast<size_t>(var)] = box.first;
        eff_ub[static_cast<size_t>(var)] = box.second;
      }
      BnbNodeCut cut = opt_.oracle(eff_lb, eff_ub);
      if (cut.infeasible) {
        out->oracle_closed = true;
        return;
      }
      if (cut.resolved) {
        out->oracle_closed = true;
        if (cut.objective >= frozen_best - opt_.obj_eps) return;
        out->kind = Outcome::kCandidate;
        out->x = std::move(cut.x);
        out->objective = cut.objective;
        return;
      }
      if (cut.lower_bound >= frozen_best - opt_.obj_eps) {
        out->oracle_closed = true;
        return;
      }
    }

    LpSolution relax;
    if (opt_.use_scratch_lp) {
      LinearProgram* scratch = scratch_[static_cast<size_t>(bucket)].get();
      if (scratch == nullptr) {
        scratch_[static_cast<size_t>(bucket)] =
            std::make_unique<LinearProgram>(lp_);
        scratch = scratch_[static_cast<size_t>(bucket)].get();
      }
      for (const auto& [var, box] : touched) {
        scratch->SetVarBounds(var, box.first, box.second);
      }
      relax = SolveLp(*scratch, simplex_);
      for (const auto& [var, box] : touched) {
        scratch->SetVarBounds(var, base_lb_[static_cast<size_t>(var)],
                              base_ub_[static_cast<size_t>(var)]);
      }
    } else {
      LinearProgram node_lp = WithBounds(lp_, node.bounds);
      relax = SolveLp(node_lp, simplex_);
    }
    out->lp_solved = true;
    if (relax.status.code() == StatusCode::kInfeasible) return;
    if (!relax.status.ok()) {
      out->kind = Outcome::kError;
      out->error = relax.status;
      return;
    }
    if (relax.objective >= frozen_best - opt_.obj_eps) return;

    // Branching variable: most fractional, optionally weighted by the
    // objective coefficient (fixing an expensive variable moves the child
    // bounds furthest). Deterministic: first maximum in variable order.
    int branch_var = -1;
    double best_score = -1.0;
    for (int v : ivars_) {
      double value = relax.x[static_cast<size_t>(v)];
      double frac = value - std::floor(value);
      double dist = std::min(frac, 1.0 - frac);
      if (dist <= opt_.int_tol) continue;
      double score = dist;
      if (opt_.cost_branching) {
        score *= std::max(std::abs(lp_.objective_coeff(v)), 1e-3);
      }
      if (score > best_score) {
        best_score = score;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      // Integral: candidate incumbent. Round integer vars exactly.
      std::vector<double> x = std::move(relax.x);
      for (int v : ivars_) {
        x[static_cast<size_t>(v)] = std::round(x[static_cast<size_t>(v)]);
      }
      out->kind = Outcome::kCandidate;
      out->objective = lp_.Objective(x);
      out->x = std::move(x);
      return;
    }
    out->kind = Outcome::kBranch;
    out->branch_var = branch_var;
    out->branch_val = relax.x[static_cast<size_t>(branch_var)];
    out->relax_obj = relax.objective;
  }

  // Assembles the result: incumbent, proven lower bound over everything
  // still open (the queue plus any wave nodes the stop left unmerged), and
  // the gap. `stop` is OK only when the search ran to completion.
  BnbResult Finish(Status stop, std::vector<Node> unmerged) {
    const bool have = std::isfinite(best_obj_);
    result_.objective = best_obj_;
    if (stop.ok()) {
      result_.status = have ? Status::OK()
                            : Status::Infeasible("no integral solution");
      result_.lower_bound = best_obj_;  // +inf when proven infeasible
      result_.gap = 0.0;
      return std::move(result_);
    }
    double open_lb = kInf;
    for (const Node& n : open_) open_lb = std::min(open_lb, n.bound);
    for (const Node& n : unmerged) open_lb = std::min(open_lb, n.bound);
    // optimum = min(incumbent, best open subtree) >= min of their bounds.
    result_.lower_bound = open_lb == kInf ? best_obj_
                                          : std::min(best_obj_, open_lb);
    result_.gap = best_obj_ - result_.lower_bound;  // inf - (-inf) -> inf
    if (!std::isfinite(result_.gap)) result_.gap = kInf;
    result_.status = std::move(stop);
    return std::move(result_);
  }

  const LinearProgram& lp_;
  const std::vector<int>& ivars_;
  const BnbOptions& opt_;
  SimplexOptions simplex_;

  std::vector<double> base_lb_, base_ub_;
  std::vector<std::unique_ptr<LinearProgram>> scratch_;  // one per bucket
  std::vector<Node> open_;  // heap (best_bound) or LIFO stack
  int64_t next_id_ = 0;
  double best_obj_ = kInf;
  BnbResult result_;
};

}  // namespace

BnbResult SolveIlp(const LinearProgram& lp,
                   const std::vector<int>& integer_vars,
                   const BnbOptions& options) {
  return Engine(lp, integer_vars, options).Run();
}

}  // namespace provview
