#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

namespace provview {

namespace {

struct Node {
  // Extra variable bounds layered on the base LP: (var, lb, ub).
  std::vector<std::tuple<int, double, double>> bounds;
  double parent_bound;  // relaxation objective of the parent (for ordering)
};

// Applies node bounds by rebuilding a copy of the LP with tightened bounds.
LinearProgram WithBounds(const LinearProgram& base,
                         const std::vector<std::tuple<int, double, double>>&
                             bounds) {
  LinearProgram lp;
  std::vector<double> lb(static_cast<size_t>(base.num_vars()));
  std::vector<double> ub(static_cast<size_t>(base.num_vars()));
  for (int v = 0; v < base.num_vars(); ++v) {
    lb[static_cast<size_t>(v)] = base.lower_bound(v);
    ub[static_cast<size_t>(v)] = base.upper_bound(v);
  }
  for (const auto& [var, new_lb, new_ub] : bounds) {
    lb[static_cast<size_t>(var)] =
        std::max(lb[static_cast<size_t>(var)], new_lb);
    ub[static_cast<size_t>(var)] =
        std::min(ub[static_cast<size_t>(var)], new_ub);
  }
  for (int v = 0; v < base.num_vars(); ++v) {
    if (lb[static_cast<size_t>(v)] > ub[static_cast<size_t>(v)]) {
      // Empty box; encode as an infeasible bound pair the simplex will
      // reject via an unsatisfiable constraint.
      lp.AddVariable(lb[static_cast<size_t>(v)], lb[static_cast<size_t>(v)],
                     base.objective_coeff(v), base.var_name(v));
      lp.AddConstraint({{v, 1.0}}, ConstraintSense::kLe,
                       ub[static_cast<size_t>(v)]);
    } else {
      lp.AddVariable(lb[static_cast<size_t>(v)], ub[static_cast<size_t>(v)],
                     base.objective_coeff(v), base.var_name(v));
    }
  }
  for (const LpConstraint& c : base.constraints()) {
    lp.AddConstraint(c.terms, c.sense, c.rhs);
  }
  return lp;
}

}  // namespace

BnbResult SolveIlp(const LinearProgram& lp,
                   const std::vector<int>& integer_vars,
                   const BnbOptions& options) {
  BnbResult result;
  result.objective = std::numeric_limits<double>::infinity();
  bool have_incumbent = false;
  bool timed_out = false;

  std::vector<Node> stack;
  stack.push_back(Node{{}, -std::numeric_limits<double>::infinity()});

  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      timed_out = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    if (have_incumbent &&
        node.parent_bound >= result.objective - options.obj_eps) {
      continue;  // cannot beat the incumbent
    }

    LinearProgram node_lp = WithBounds(lp, node.bounds);
    LpSolution relax = SolveLp(node_lp, options.simplex);
    if (relax.status.code() == StatusCode::kInfeasible) continue;
    if (!relax.status.ok()) {
      result.status = relax.status;
      return result;
    }
    if (have_incumbent &&
        relax.objective >= result.objective - options.obj_eps) {
      continue;
    }

    // Most fractional integer variable.
    int branch_var = -1;
    double best_frac_dist = options.int_tol;
    for (int v : integer_vars) {
      double val = relax.x[static_cast<size_t>(v)];
      double frac = val - std::floor(val);
      double dist = std::min(frac, 1.0 - frac);
      if (dist > best_frac_dist) {
        best_frac_dist = dist;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      // Integral: new incumbent. Round integer vars exactly.
      std::vector<double> x = relax.x;
      for (int v : integer_vars) {
        x[static_cast<size_t>(v)] = std::round(x[static_cast<size_t>(v)]);
      }
      double obj = lp.Objective(x);
      if (!have_incumbent || obj < result.objective) {
        result.objective = obj;
        result.x = std::move(x);
        have_incumbent = true;
      }
      continue;
    }

    const double val = relax.x[static_cast<size_t>(branch_var)];
    const double inf = std::numeric_limits<double>::infinity();
    Node down = node;
    down.bounds.emplace_back(branch_var, -inf, std::floor(val));
    down.parent_bound = relax.objective;
    Node up = node;
    up.bounds.emplace_back(branch_var, std::ceil(val), inf);
    up.parent_bound = relax.objective;
    // DFS; explore the branch closer to the fractional value first
    // (pushed last).
    if (val - std::floor(val) <= 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  if (!have_incumbent) {
    result.status = timed_out ? Status::Timeout("node budget exhausted")
                              : Status::Infeasible("no integral solution");
  } else {
    result.status = timed_out
                        ? Status::Timeout("node budget exhausted; incumbent "
                                          "may be suboptimal")
                        : Status::OK();
  }
  return result;
}

}  // namespace provview
