#include "lp/linear_program.h"

#include <algorithm>
#include <cmath>

namespace provview {

int LinearProgram::AddVariable(double lb, double ub, double obj,
                               std::string name) {
  PV_CHECK_MSG(std::isfinite(lb), "lower bound must be finite");
  PV_CHECK_MSG(ub >= lb, "upper bound below lower bound");
  obj_.push_back(obj);
  lb_.push_back(lb);
  ub_.push_back(ub);
  if (name.empty()) name = "x" + std::to_string(num_vars() - 1);
  names_.push_back(std::move(name));
  return num_vars() - 1;
}

void LinearProgram::AddConstraint(std::vector<std::pair<int, double>> terms,
                                  ConstraintSense sense, double rhs) {
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    Check(var);
  }
  constraints_.push_back(LpConstraint{std::move(terms), sense, rhs});
}

double LinearProgram::Objective(const std::vector<double>& x) const {
  PV_CHECK(static_cast<int>(x.size()) == num_vars());
  double total = 0.0;
  for (int v = 0; v < num_vars(); ++v) {
    total += obj_[static_cast<size_t>(v)] * x[static_cast<size_t>(v)];
  }
  return total;
}

double LinearProgram::MaxViolation(const std::vector<double>& x) const {
  PV_CHECK(static_cast<int>(x.size()) == num_vars());
  double worst = 0.0;
  for (int v = 0; v < num_vars(); ++v) {
    worst = std::max(worst, lb_[static_cast<size_t>(v)] -
                                x[static_cast<size_t>(v)]);
    if (std::isfinite(ub_[static_cast<size_t>(v)])) {
      worst = std::max(worst, x[static_cast<size_t>(v)] -
                                  ub_[static_cast<size_t>(v)]);
    }
  }
  for (const LpConstraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) {
      lhs += coeff * x[static_cast<size_t>(var)];
    }
    switch (c.sense) {
      case ConstraintSense::kLe:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case ConstraintSense::kGe:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case ConstraintSense::kEq:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace provview
