// Branch-and-bound integer solver on top of the simplex relaxation. Used
// to compute the exact Secure-View optimum that the approximation ratios of
// Theorems 5/6/7 are measured against, and to solve reduction source
// problems (set cover, vertex cover, label cover) exactly on small
// instances.
//
// The engine is a deterministic *wave* search (docs/optimizer.md):
//
//   * Open nodes live in a best-bound priority queue (LIFO depth-first
//     order behind best_bound=false, the historical traversal). Each round
//     pops up to wave_width nodes, resolves their relaxations — oracle
//     fathoming first, then the simplex — and only then merges the
//     outcomes back sequentially in pop order: incumbent updates, pruning,
//     child creation.
//   * The wave's composition and every per-node decision depend only on
//     state fixed at the start of the wave (the open queue and the
//     incumbent), never on which worker resolved a node first — so
//     sharding the resolve phase over a TaskGraphExecutor keeps BnbResult
//     (status, x, objective, bounds, node accounting) byte-identical at
//     any thread count, including 1.
//   * Node relaxations are solved on a per-worker scratch LinearProgram:
//     the node's path bounds are applied in place and undone after the
//     solve, so no variables or constraints are ever copied per node. The
//     historical rebuild-the-LP path is kept behind use_scratch_lp=false
//     for the A/B bench row.
//   * A warm-start objective (from any feasible solution the caller
//     already has) prunes from the first node; an oracle hook lets domain
//     layers fathom or even resolve whole subtrees without touching the
//     simplex (see MakeSecureViewBnbOracle in secureview/solvers.h).
//   * A cooperative ExecControl is polled at node boundaries and inside
//     the simplex; tripping returns the typed status WITH the current
//     incumbent and the proven optimality gap instead of discarding work.
#ifndef PROVVIEW_LP_BRANCH_AND_BOUND_H_
#define PROVVIEW_LP_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/exec_control.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace provview {

class TaskGraphExecutor;

/// Verdict of a node oracle over one branch-and-bound box.
struct BnbNodeCut {
  /// The box provably contains no feasible integral point.
  bool infeasible = false;
  /// Proven lower bound on every feasible integral point in the box
  /// (-inf when the oracle has nothing to say).
  double lower_bound = -std::numeric_limits<double>::infinity();
  /// The box's optimum is known exactly: `x` / `objective` describe it and
  /// the subtree needs no further exploration.
  bool resolved = false;
  std::vector<double> x;
  double objective = std::numeric_limits<double>::infinity();
};

/// Domain fathoming hook: called once per node with the node's effective
/// variable bounds (base LP bounds tightened by the branching path). Must
/// be a pure function of (lb, ub) — it may be invoked from several worker
/// threads of one solve concurrently — and must be sound: fathoming or
/// bounding a box that still contains the optimum breaks exactness.
using BnbOracle = std::function<BnbNodeCut(const std::vector<double>& lb,
                                           const std::vector<double>& ub)>;

/// Branch-and-bound knobs.
struct BnbOptions {
  SimplexOptions simplex;
  int max_nodes = 200000;     ///< node budget; kTimeout past it
  double int_tol = 1e-6;      ///< integrality tolerance
  double obj_eps = 1e-7;      ///< pruning slack

  /// Solve node relaxations on a reusable scratch LP with in-place bound
  /// deltas (apply / solve / undo). false = rebuild a full copy of the LP
  /// per node, the historical path kept for the A/B bench row.
  bool use_scratch_lp = true;
  /// Pop the open node with the smallest parent relaxation bound first;
  /// false = LIFO depth-first, the historical order.
  bool best_bound = true;
  /// Branch on the fractional variable with the largest
  /// objective-coefficient × fractionality score (drives the child bounds
  /// apart fastest on weighted covering LPs); false = most-fractional,
  /// the historical rule.
  bool cost_branching = true;
  /// Nodes resolved per wave. Fixed independently of num_threads so the
  /// search tree — and therefore BnbResult — is a function of the options
  /// alone, never of the worker count.
  int wave_width = 16;
  /// Workers for the wave resolve phase; <= 1 resolves inline.
  int num_threads = 1;
  /// Optional shared executor (e.g. the daemon's); when null and
  /// num_threads > 1 the solve owns a temporary one.
  TaskGraphExecutor* executor = nullptr;
  /// Cooperative deadline / cancellation / memory token. Polled at node
  /// boundaries and inside the simplex; a trip surfaces as
  /// DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED with the incumbent and gap.
  const ExecControl* control = nullptr;
  /// Objective of a feasible solution the caller already holds (+inf =
  /// none). Prunes like an incumbent from node one; when the search proves
  /// nothing beats it, SolveIlp returns OK with this objective and an
  /// EMPTY x — the caller's solution is optimal.
  double warm_objective = std::numeric_limits<double>::infinity();
  /// Domain fathoming / bounding hook (may be empty).
  BnbOracle oracle;
};

/// ILP outcome. `x` holds the incumbent (rounded on integer variables);
/// empty when the warm-start solution was never beaten (its objective is
/// still reported) or when no feasible point was found.
struct BnbResult {
  Status status;
  std::vector<double> x;
  double objective = 0.0;
  /// Proven global lower bound: the objective itself when status is OK,
  /// otherwise the smallest bound among open (unexplored) subtrees — what
  /// a kTimeout / DEADLINE_EXCEEDED return has actually established.
  double lower_bound = -std::numeric_limits<double>::infinity();
  /// objective - lower_bound (0 when proven optimal; +inf when no bound
  /// was established before the trip).
  double gap = 0.0;
  int nodes_explored = 0;   ///< nodes popped into waves
  int64_t lp_solves = 0;    ///< simplex relaxations actually run
  int64_t oracle_fathoms = 0;  ///< nodes closed by the oracle alone
};

/// Minimizes `lp` with the variables in `integer_vars` restricted to
/// integers.
BnbResult SolveIlp(const LinearProgram& lp, const std::vector<int>& integer_vars,
                   const BnbOptions& options = {});

}  // namespace provview

#endif  // PROVVIEW_LP_BRANCH_AND_BOUND_H_
