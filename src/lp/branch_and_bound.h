// Branch-and-bound integer solver on top of the simplex relaxation. Used
// to compute the exact Secure-View optimum that the approximation ratios of
// Theorems 5/6/7 are measured against, and to solve reduction source
// problems (set cover, vertex cover, label cover) exactly on small
// instances.
#ifndef PROVVIEW_LP_BRANCH_AND_BOUND_H_
#define PROVVIEW_LP_BRANCH_AND_BOUND_H_

#include <vector>

#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace provview {

/// Branch-and-bound knobs.
struct BnbOptions {
  SimplexOptions simplex;
  int max_nodes = 200000;     ///< node budget; Timeout past it
  double int_tol = 1e-6;      ///< integrality tolerance
  double obj_eps = 1e-7;      ///< pruning slack
};

/// ILP outcome. `x` holds the incumbent (rounded on integer variables).
struct BnbResult {
  Status status;
  std::vector<double> x;
  double objective = 0.0;
  int nodes_explored = 0;
};

/// Minimizes `lp` with the variables in `integer_vars` restricted to
/// integers. DFS with best-bound pruning, branching on the most fractional
/// integer variable.
BnbResult SolveIlp(const LinearProgram& lp, const std::vector<int>& integer_vars,
                   const BnbOptions& options = {});

}  // namespace provview

#endif  // PROVVIEW_LP_BRANCH_AND_BOUND_H_
