// Graphviz DOT export for workflows and Secure-View solutions, so owners
// can inspect which data items a view hides and which public modules get
// privatized. Purely presentational; no Graphviz dependency (we only emit
// the text format).
#ifndef PROVVIEW_WORKFLOW_DOT_EXPORT_H_
#define PROVVIEW_WORKFLOW_DOT_EXPORT_H_

#include <string>

#include "common/bitset64.h"
#include "workflow/workflow.h"

namespace provview {

/// Rendering options for ToDot.
struct DotOptions {
  /// Attributes to render as hidden (dashed red edges). Empty = none.
  Bitset64 hidden;
  /// Module indices to render as privatized (grey fill).
  std::vector<int> privatized;
  /// Graph name used in the `digraph` header.
  std::string graph_name = "workflow";
};

/// Emits the workflow as a DOT digraph: modules are boxes (double border
/// for public modules), data items are edges labeled with the attribute
/// name and cost; initial inputs / final outputs hang off point nodes.
std::string ToDot(const Workflow& workflow, const DotOptions& options = {});

}  // namespace provview

#endif  // PROVVIEW_WORKFLOW_DOT_EXPORT_H_
