#include "workflow/execution_supplier.h"

#include <algorithm>

#include "common/combinatorics.h"

namespace provview {

std::shared_ptr<ExecutionPlan> ExecutionSupplier::MakePlanShell(
    const Workflow& workflow) {
  auto plan = std::make_shared<ExecutionPlan>();
  plan->workflow = &workflow;
  plan->schema = workflow.ProvenanceSchema();
  const AttributeCatalog& catalog = *workflow.catalog();
  for (AttrId id : workflow.initial_input_ids()) {
    plan->init_radices.push_back(catalog.DomainSize(id));
  }
  plan->total_execs = 1;
  for (int r : plan->init_radices) {
    plan->total_execs = SaturatingMul(plan->total_execs, r);
  }

  const int n = workflow.num_modules();
  plan->modules.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Module& m = workflow.module(i);
    ExecutionPlan::ModuleTable& t = plan->modules[static_cast<size_t>(i)];
    int64_t dom = 1;
    for (AttrId id : m.inputs()) {
      t.in_pos.push_back(plan->schema.PositionOf(id));
      t.in_strides.push_back(dom);
      const int r = catalog.DomainSize(id);
      t.in_radices.push_back(r);
      dom = SaturatingMul(dom, r);
    }
    for (AttrId id : m.outputs()) {
      t.out_radices.push_back(catalog.DomainSize(id));
    }
  }
  return plan;
}

void ExecutionSupplier::TabulateModule(ExecutionPlan* plan, int module_index) {
  PV_CHECK(plan != nullptr && plan->workflow != nullptr);
  PV_CHECK(module_index >= 0 &&
           module_index < static_cast<int>(plan->modules.size()));
  const Module& m = plan->workflow->module(module_index);
  ExecutionPlan::ModuleTable& t =
      plan->modules[static_cast<size_t>(module_index)];
  int64_t dom = 1;
  for (int r : t.in_radices) dom = SaturatingMul(dom, r);
  // Pre-tabulate small functions so streamed executions are pure table
  // lookups; large-domain modules evaluate directly.
  if (dom <= (int64_t{1} << 20)) {
    t.fn.resize(static_cast<size_t>(dom));
    MixedRadixCounter counter(t.in_radices);
    int64_t code = 0;
    do {
      t.fn[static_cast<size_t>(code)] = static_cast<int32_t>(
          EncodeMixedRadix(m.Eval(counter.values()), t.out_radices));
      ++code;
    } while (counter.Advance());
  }
}

std::shared_ptr<const ExecutionPlan> ExecutionSupplier::MakePlan(
    const Workflow& workflow) {
  std::shared_ptr<ExecutionPlan> plan = MakePlanShell(workflow);
  for (int i = 0; i < workflow.num_modules(); ++i) TabulateModule(plan.get(), i);
  return plan;
}

ExecutionSupplier::ExecutionSupplier(const Workflow& workflow,
                                     int64_t begin_exec, int64_t end_exec)
    : ExecutionSupplier(MakePlan(workflow), begin_exec, end_exec) {}

ExecutionSupplier::ExecutionSupplier(std::shared_ptr<const ExecutionPlan> plan,
                                     int64_t begin_exec, int64_t end_exec)
    : plan_(std::move(plan)) {
  PV_CHECK_MSG(plan_ != nullptr && plan_->workflow != nullptr,
               "execution supplier needs a plan");
  begin_ = begin_exec;
  end_ = end_exec < 0 ? plan_->total_execs : end_exec;
  PV_CHECK_MSG(0 <= begin_ && begin_ <= end_ && end_ <= plan_->total_execs,
               "bad execution range [" << begin_exec << ", " << end_exec
                                       << ") over " << plan_->total_execs);
  values_.assign(static_cast<size_t>(plan_->workflow->catalog()->size()), -1);
  Reset();
}

void ExecutionSupplier::Reset() {
  // An empty range may sit at begin_ == total_execs, where the odometer
  // decode would be out of range; the digits are never read in that case.
  init_ = begin_ < end_ ? DecodeMixedRadix(begin_, plan_->init_radices)
                        : Tuple(plan_->init_radices.size(), 0);
  next_ = begin_;
}

int64_t ExecutionSupplier::NextBlock(std::vector<Value>* block,
                                     int64_t max_rows) {
  PV_CHECK_MSG(max_rows > 0, "block size must be positive");
  block->clear();
  if (next_ >= end_) return 0;
  const Workflow& workflow = *plan_->workflow;
  const int64_t count = std::min(max_rows, end_ - next_);
  const std::vector<AttrId>& prov_ids = plan_->schema.attrs();
  const std::vector<AttrId>& init_ids = workflow.initial_input_ids();
  block->reserve(static_cast<size_t>(count) * prov_ids.size());
  Tuple in_buf;
  for (int64_t e = 0; e < count; ++e) {
    for (size_t k = 0; k < init_ids.size(); ++k) {
      values_[static_cast<size_t>(init_ids[k])] = init_[k];
    }
    for (int mi : workflow.topo_order()) {
      const ExecutionPlan::ModuleTable& t =
          plan_->modules[static_cast<size_t>(mi)];
      const Module& m = workflow.module(mi);
      if (!t.fn.empty()) {
        int64_t in_code = 0;
        const std::vector<AttrId>& ins = m.inputs();
        for (size_t j = 0; j < ins.size(); ++j) {
          in_code +=
              static_cast<int64_t>(values_[static_cast<size_t>(ins[j])]) *
              t.in_strides[j];
        }
        int64_t out_code = t.fn[static_cast<size_t>(in_code)];
        const std::vector<AttrId>& outs = m.outputs();
        for (size_t j = 0; j < outs.size(); ++j) {
          values_[static_cast<size_t>(outs[j])] =
              static_cast<Value>(out_code % t.out_radices[j]);
          out_code /= t.out_radices[j];
        }
      } else {
        in_buf.clear();
        for (AttrId id : m.inputs()) {
          in_buf.push_back(values_[static_cast<size_t>(id)]);
        }
        Tuple out = m.Eval(in_buf);
        const std::vector<AttrId>& outs = m.outputs();
        for (size_t j = 0; j < outs.size(); ++j) {
          values_[static_cast<size_t>(outs[j])] = out[j];
        }
      }
    }
    for (AttrId id : prov_ids) {
      block->push_back(values_[static_cast<size_t>(id)]);
    }
    // Advance the little-endian initial-input odometer.
    size_t d = 0;
    while (d < init_.size() &&
           ++init_[d] == static_cast<Value>(plan_->init_radices[d])) {
      init_[d] = 0;
      ++d;
    }
  }
  next_ += count;
  return count;
}

int64_t ExecutionSupplier::InputCodeOf(const Value* row, int mi) const {
  const ExecutionPlan::ModuleTable& t = plan_->modules[static_cast<size_t>(mi)];
  int64_t code = 0;
  for (size_t j = 0; j < t.in_pos.size(); ++j) {
    code += static_cast<int64_t>(row[t.in_pos[j]]) * t.in_strides[j];
  }
  return code;
}

}  // namespace provview
