// Workflow model (§2.3): modules m1..mn connected in a DAG over a shared
// attribute catalog. Each attribute is produced by at most one module
// (O_i ∩ O_j = ∅) and may be consumed by several (data sharing, Def. 3).
// Executions of the workflow populate the provenance relation
// R = R1 ⋈ ... ⋈ Rn, one tuple per execution.
#ifndef PROVVIEW_WORKFLOW_WORKFLOW_H_
#define PROVVIEW_WORKFLOW_WORKFLOW_H_

#include <memory>
#include <string>
#include <vector>

#include "module/module.h"

namespace provview {

/// A DAG of modules. Build by AddModule(), then Validate() (which computes
/// the topological order, classifies attributes, and checks the §2.3
/// well-formedness conditions). Execution and analysis methods require a
/// successful Validate().
class Workflow {
 public:
  explicit Workflow(CatalogPtr catalog);

  Workflow(const Workflow&) = delete;
  Workflow& operator=(const Workflow&) = delete;
  Workflow(Workflow&&) = default;
  Workflow& operator=(Workflow&&) = default;

  /// Adds a module; returns its index. Invalidates any prior Validate().
  int AddModule(ModulePtr module);

  /// Checks: every attribute produced by at most one module; the produces/
  /// consumes graph is acyclic; every module input is either an initial
  /// input or produced by another module. Computes topological order,
  /// initial inputs (no producer) and final outputs (no consumer).
  Status Validate();

  bool validated() const { return validated_; }

  const CatalogPtr& catalog() const { return catalog_; }
  int num_modules() const { return static_cast<int>(modules_.size()); }
  int num_attrs() const { return catalog_->size(); }

  const Module& module(int i) const {
    PV_CHECK_MSG(i >= 0 && i < num_modules(), "bad module index " << i);
    return *modules_[static_cast<size_t>(i)];
  }
  Module* mutable_module(int i) {
    PV_CHECK_MSG(i >= 0 && i < num_modules(), "bad module index " << i);
    return modules_[static_cast<size_t>(i)].get();
  }

  /// Module indices in a topological order of the DAG.
  const std::vector<int>& topo_order() const;

  /// Attributes used by the workflow (input or output of some module).
  const Bitset64& used_attrs() const;
  /// Attributes with no producer (the workflow's external inputs I_0).
  const Bitset64& initial_inputs() const;
  /// Attributes consumed by no module (the workflow's final outputs).
  const Bitset64& final_outputs() const;
  /// Used attributes that are outputs of some module.
  const Bitset64& produced_attrs() const;

  /// Initial input attribute ids in increasing id order (the alignment used
  /// by Execute()).
  const std::vector<AttrId>& initial_input_ids() const;

  /// Index of the module producing `id`, or -1 for initial inputs.
  int ProducerOf(AttrId id) const;
  /// Indices of the modules consuming `id` (possibly empty).
  const std::vector<int>& ConsumersOf(AttrId id) const;

  /// γ of Definition 3: the maximum number of modules any single attribute
  /// feeds.
  int DataSharingDegree() const;

  /// Longest producer→consumer path in the module DAG, in modules (a single
  /// module is depth 1; a `stages`-stage chain is depth `stages`). Bounds
  /// how many sweeps value facts need to cross the workflow — the
  /// feasible-set fixpoint converges in about Depth() + 2 sweeps.
  int Depth() const;

  /// Runs the workflow on one assignment of the initial inputs (aligned
  /// with initial_input_ids()); returns values of all used attributes in
  /// increasing attribute-id order.
  Tuple Execute(const Tuple& initial) const;

  /// Attribute ids of the full provenance schema: used attributes in
  /// increasing id order (matches Execute()'s output alignment).
  std::vector<AttrId> ProvenanceAttrIds() const;
  Schema ProvenanceSchema() const;

  /// Provenance relation over every assignment of the initial inputs.
  /// Requires the initial-input product space to have at most `max_rows`
  /// tuples.
  Relation ProvenanceRelation(int64_t max_rows = 1 << 22) const;

  /// Provenance relation over the given initial-input assignments (a
  /// partial execution log).
  Relation ProvenanceOn(const std::vector<Tuple>& initial_tuples) const;

  /// Σ_{a ∈ attrs} c(a) over the catalog costs.
  double AttrCost(const Bitset64& attrs) const;

  /// Indices of private / public modules.
  std::vector<int> PrivateModuleIndices() const;
  std::vector<int> PublicModuleIndices() const;

  /// Human-readable structural summary.
  std::string DebugString() const;

 private:
  void CheckValidated() const {
    PV_CHECK_MSG(validated_, "call Validate() before using the workflow");
  }

  CatalogPtr catalog_;
  std::vector<ModulePtr> modules_;

  bool validated_ = false;
  std::vector<int> topo_order_;
  Bitset64 used_attrs_;
  Bitset64 initial_inputs_;
  Bitset64 final_outputs_;
  Bitset64 produced_attrs_;
  std::vector<AttrId> initial_input_ids_;
  std::vector<int> producer_of_;               // per attribute id, -1 if none
  std::vector<std::vector<int>> consumers_of_; // per attribute id
};

using WorkflowPtr = std::unique_ptr<Workflow>;

}  // namespace provview

#endif  // PROVVIEW_WORKFLOW_WORKFLOW_H_
