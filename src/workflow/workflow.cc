#include "workflow/workflow.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/combinatorics.h"

namespace provview {

Workflow::Workflow(CatalogPtr catalog) : catalog_(std::move(catalog)) {
  PV_CHECK(catalog_ != nullptr);
}

int Workflow::AddModule(ModulePtr module) {
  PV_CHECK(module != nullptr);
  PV_CHECK_MSG(module->catalog() == catalog_,
               "module " << module->name() << " uses a different catalog");
  validated_ = false;
  modules_.push_back(std::move(module));
  return num_modules() - 1;
}

Status Workflow::Validate() {
  const int num_ids = catalog_->size();
  producer_of_.assign(static_cast<size_t>(num_ids), -1);
  consumers_of_.assign(static_cast<size_t>(num_ids), {});
  used_attrs_ = Bitset64(num_ids);
  produced_attrs_ = Bitset64(num_ids);

  for (int i = 0; i < num_modules(); ++i) {
    const Module& m = module(i);
    for (AttrId id : m.outputs()) {
      if (producer_of_[static_cast<size_t>(id)] != -1) {
        return Status::InvalidArgument(
            "attribute " + catalog_->Name(id) + " produced by both " +
            module(producer_of_[static_cast<size_t>(id)]).name() + " and " +
            m.name());
      }
      producer_of_[static_cast<size_t>(id)] = i;
      produced_attrs_.Set(id);
      used_attrs_.Set(id);
    }
    for (AttrId id : m.inputs()) {
      consumers_of_[static_cast<size_t>(id)].push_back(i);
      used_attrs_.Set(id);
    }
  }

  // Kahn topological sort over the module dependency graph.
  std::vector<int> indegree(static_cast<size_t>(num_modules()), 0);
  std::vector<std::vector<int>> successors(
      static_cast<size_t>(num_modules()));
  for (int j = 0; j < num_modules(); ++j) {
    for (AttrId id : module(j).inputs()) {
      int prod = producer_of_[static_cast<size_t>(id)];
      if (prod >= 0) {
        successors[static_cast<size_t>(prod)].push_back(j);
        ++indegree[static_cast<size_t>(j)];
      }
    }
  }
  topo_order_.clear();
  std::queue<int> ready;
  for (int i = 0; i < num_modules(); ++i) {
    if (indegree[static_cast<size_t>(i)] == 0) ready.push(i);
  }
  while (!ready.empty()) {
    int i = ready.front();
    ready.pop();
    topo_order_.push_back(i);
    for (int j : successors[static_cast<size_t>(i)]) {
      if (--indegree[static_cast<size_t>(j)] == 0) ready.push(j);
    }
  }
  if (static_cast<int>(topo_order_.size()) != num_modules()) {
    return Status::InvalidArgument("workflow module graph contains a cycle");
  }

  initial_inputs_ = Bitset64(num_ids);
  final_outputs_ = Bitset64(num_ids);
  initial_input_ids_.clear();
  for (AttrId id = 0; id < num_ids; ++id) {
    if (!used_attrs_.Test(id)) continue;
    if (producer_of_[static_cast<size_t>(id)] == -1) {
      initial_inputs_.Set(id);
      initial_input_ids_.push_back(id);
    }
    if (consumers_of_[static_cast<size_t>(id)].empty() &&
        producer_of_[static_cast<size_t>(id)] != -1) {
      final_outputs_.Set(id);
    }
  }

  validated_ = true;
  return Status::OK();
}

const std::vector<int>& Workflow::topo_order() const {
  CheckValidated();
  return topo_order_;
}

const Bitset64& Workflow::used_attrs() const {
  CheckValidated();
  return used_attrs_;
}

const Bitset64& Workflow::initial_inputs() const {
  CheckValidated();
  return initial_inputs_;
}

const Bitset64& Workflow::final_outputs() const {
  CheckValidated();
  return final_outputs_;
}

const Bitset64& Workflow::produced_attrs() const {
  CheckValidated();
  return produced_attrs_;
}

const std::vector<AttrId>& Workflow::initial_input_ids() const {
  CheckValidated();
  return initial_input_ids_;
}

int Workflow::ProducerOf(AttrId id) const {
  CheckValidated();
  PV_CHECK(id >= 0 && id < catalog_->size());
  return producer_of_[static_cast<size_t>(id)];
}

const std::vector<int>& Workflow::ConsumersOf(AttrId id) const {
  CheckValidated();
  PV_CHECK(id >= 0 && id < catalog_->size());
  return consumers_of_[static_cast<size_t>(id)];
}

int Workflow::DataSharingDegree() const {
  CheckValidated();
  int gamma = 0;
  for (const auto& consumers : consumers_of_) {
    gamma = std::max(gamma, static_cast<int>(consumers.size()));
  }
  return gamma;
}

int Workflow::Depth() const {
  CheckValidated();
  std::vector<int> depth(modules_.size(), 1);
  int longest = modules_.empty() ? 0 : 1;
  for (int mi : topo_order_) {
    const size_t smi = static_cast<size_t>(mi);
    for (AttrId id : modules_[smi]->inputs()) {
      const int producer = producer_of_[static_cast<size_t>(id)];
      if (producer >= 0) {
        depth[smi] = std::max(depth[smi],
                              depth[static_cast<size_t>(producer)] + 1);
      }
    }
    longest = std::max(longest, depth[smi]);
  }
  return longest;
}

Tuple Workflow::Execute(const Tuple& initial) const {
  CheckValidated();
  PV_CHECK_MSG(initial.size() == initial_input_ids_.size(),
               "initial input arity mismatch");
  std::vector<Value> values(static_cast<size_t>(catalog_->size()), -1);
  for (size_t i = 0; i < initial_input_ids_.size(); ++i) {
    values[static_cast<size_t>(initial_input_ids_[i])] = initial[i];
  }
  for (int mi : topo_order_) {
    const Module& m = module(mi);
    Tuple in;
    in.reserve(m.inputs().size());
    for (AttrId id : m.inputs()) {
      PV_CHECK_MSG(values[static_cast<size_t>(id)] >= 0,
                   "module " << m.name() << " input " << catalog_->Name(id)
                             << " undefined during execution");
      in.push_back(values[static_cast<size_t>(id)]);
    }
    Tuple out = m.Eval(in);
    for (size_t oi = 0; oi < m.outputs().size(); ++oi) {
      values[static_cast<size_t>(m.outputs()[oi])] = out[oi];
    }
  }
  Tuple result;
  for (AttrId id = 0; id < catalog_->size(); ++id) {
    if (used_attrs_.Test(id)) {
      result.push_back(values[static_cast<size_t>(id)]);
    }
  }
  return result;
}

std::vector<AttrId> Workflow::ProvenanceAttrIds() const {
  CheckValidated();
  std::vector<AttrId> ids;
  for (AttrId id = 0; id < catalog_->size(); ++id) {
    if (used_attrs_.Test(id)) ids.push_back(id);
  }
  return ids;
}

Schema Workflow::ProvenanceSchema() const {
  return Schema(catalog_, ProvenanceAttrIds());
}

Relation Workflow::ProvenanceRelation(int64_t max_rows) const {
  CheckValidated();
  std::vector<int> radices;
  radices.reserve(initial_input_ids_.size());
  for (AttrId id : initial_input_ids_) {
    radices.push_back(catalog_->DomainSize(id));
  }
  MixedRadixCounter counter(radices);
  PV_CHECK_MSG(counter.Cardinality() <= max_rows,
               "initial input space too large ("
                   << counter.Cardinality() << " > " << max_rows << ")");
  Relation rel(ProvenanceSchema());
  do {
    rel.AddRow(Execute(counter.values()));
  } while (counter.Advance());
  return rel;
}

Relation Workflow::ProvenanceOn(const std::vector<Tuple>& initial_tuples) const {
  CheckValidated();
  Relation rel(ProvenanceSchema());
  for (const Tuple& t : initial_tuples) rel.AddRow(Execute(t));
  return rel;
}

double Workflow::AttrCost(const Bitset64& attrs) const {
  double total = 0.0;
  for (AttrId id : attrs.ToVector()) total += catalog_->Cost(id);
  return total;
}

std::vector<int> Workflow::PrivateModuleIndices() const {
  std::vector<int> out;
  for (int i = 0; i < num_modules(); ++i) {
    if (!module(i).is_public()) out.push_back(i);
  }
  return out;
}

std::vector<int> Workflow::PublicModuleIndices() const {
  std::vector<int> out;
  for (int i = 0; i < num_modules(); ++i) {
    if (module(i).is_public()) out.push_back(i);
  }
  return out;
}

std::string Workflow::DebugString() const {
  std::ostringstream oss;
  oss << "Workflow with " << num_modules() << " modules over "
      << catalog_->size() << " attributes\n";
  for (int i = 0; i < num_modules(); ++i) {
    const Module& m = module(i);
    oss << "  [" << i << "] " << m.name()
        << (m.is_public() ? " (public)" : " (private)") << ": (";
    for (size_t j = 0; j < m.inputs().size(); ++j) {
      if (j > 0) oss << ", ";
      oss << catalog_->Name(m.inputs()[j]);
    }
    oss << ") -> (";
    for (size_t j = 0; j < m.outputs().size(); ++j) {
      if (j > 0) oss << ", ";
      oss << catalog_->Name(m.outputs()[j]);
    }
    oss << ")\n";
  }
  return oss.str();
}

}  // namespace provview
