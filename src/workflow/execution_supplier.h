// Streaming access to a workflow's execution log: yields the provenance
// rows of executions [begin, end) of the initial-input odometer in blocks,
// without ever materializing the full log. This is how BuildWorkflowTables
// scans initial-input spaces past the 2^22 materialization wall, and each
// shard of a parallel scan owns its own supplier over a contiguous
// execution range while sharing one immutable ExecutionPlan.
#ifndef PROVVIEW_WORKFLOW_EXECUTION_SUPPLIER_H_
#define PROVVIEW_WORKFLOW_EXECUTION_SUPPLIER_H_

#include <memory>
#include <vector>

#include "relation/row_supplier.h"
#include "workflow/workflow.h"

namespace provview {

/// Immutable per-workflow execution tables shared by every supplier over
/// the same workflow: provenance schema, odometer radices, and per-module
/// lookup tables (small functions pre-tabulated once so a streamed
/// execution is a chain of table lookups; larger modules fall back to
/// Eval()). Build once via ExecutionSupplier::MakePlan and share across
/// shards — per-shard suppliers then carry only their odometer state.
/// Borrows the workflow.
struct ExecutionPlan {
  const Workflow* workflow = nullptr;
  Schema schema;                   // provenance schema
  std::vector<int> init_radices;
  int64_t total_execs = 0;

  struct ModuleTable {
    std::vector<int> in_pos;  // input positions in the prov row
    std::vector<int64_t> in_strides;
    std::vector<int> in_radices;
    std::vector<int> out_radices;
    std::vector<int32_t> fn;  // fn[in_code] = out_code; empty = Eval directly
  };
  std::vector<ModuleTable> modules;
};

/// RowSupplier over the provenance relation (schema: used attributes in
/// increasing id order, matching Workflow::ProvenanceSchema()). Executions
/// run in initial-input odometer order — byte-identical rows, in the same
/// order, as Workflow::ProvenanceRelation().
class ExecutionSupplier : public RowSupplier {
 public:
  /// Precomputes the shared plan (one full-domain sweep per small module).
  static std::shared_ptr<const ExecutionPlan> MakePlan(
      const Workflow& workflow);

  /// The plan without the per-module function sweeps: schema, radices,
  /// strides and positions only. Callers then run TabulateModule for every
  /// module before handing the plan to suppliers — possibly concurrently
  /// (distinct modules touch disjoint state), which is how the task-graph
  /// table build overlaps the sweeps.
  static std::shared_ptr<ExecutionPlan> MakePlanShell(const Workflow& workflow);

  /// Fills plan->modules[module_index].fn (the full-domain sweep) when the
  /// domain is small enough to pre-tabulate; larger modules keep Eval().
  /// Touches only that module's table.
  static void TabulateModule(ExecutionPlan* plan, int module_index);

  /// Streams executions [begin_exec, end_exec) of the odometer;
  /// end_exec = -1 means the whole space. Builds a private plan.
  explicit ExecutionSupplier(const Workflow& workflow, int64_t begin_exec = 0,
                             int64_t end_exec = -1);

  /// As above over a shared plan (the sharded-scan fast path).
  explicit ExecutionSupplier(std::shared_ptr<const ExecutionPlan> plan,
                             int64_t begin_exec = 0, int64_t end_exec = -1);

  const Schema& schema() const override { return plan_->schema; }
  int64_t total_rows() const override { return end_ - begin_; }
  void Reset() override;
  int64_t NextBlock(std::vector<Value>* block, int64_t max_rows) override;

  /// Derives module `mi`'s encoded input (little-endian mixed radix over its
  /// input attributes) from a provenance row of this supplier's schema.
  int64_t InputCodeOf(const Value* row, int mi) const;

 private:
  std::shared_ptr<const ExecutionPlan> plan_;
  int64_t begin_ = 0;
  int64_t end_ = 0;

  std::vector<Value> values_;  // attribute-id-indexed scratch
  Tuple init_;                 // current odometer digits
  int64_t next_ = 0;           // next execution index
};

}  // namespace provview

#endif  // PROVVIEW_WORKFLOW_EXECUTION_SUPPLIER_H_
