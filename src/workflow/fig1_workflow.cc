#include "workflow/fig1_workflow.h"

#include "module/module_library.h"

namespace provview {

Fig1Workflow MakeFig1Workflow() {
  Fig1Workflow out;
  out.catalog = std::make_shared<AttributeCatalog>();
  out.a1 = out.catalog->Add("a1");
  out.a2 = out.catalog->Add("a2");
  out.a3 = out.catalog->Add("a3");
  out.a4 = out.catalog->Add("a4");
  out.a5 = out.catalog->Add("a5");
  out.a6 = out.catalog->Add("a6");
  out.a7 = out.catalog->Add("a7");

  out.workflow = std::make_unique<Workflow>(out.catalog);
  out.m1_index = out.workflow->AddModule(
      MakeFig1M1(out.catalog, out.a1, out.a2, out.a3, out.a4, out.a5));
  out.m2_index = out.workflow->AddModule(
      MakeFig1M2(out.catalog, out.a3, out.a4, out.a6));
  out.m3_index = out.workflow->AddModule(
      MakeFig1M3(out.catalog, out.a4, out.a5, out.a7));
  Status st = out.workflow->Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return out;
}

}  // namespace provview
