// The paper's running example (Figure 1): three boolean modules
//   m1: (a1,a2) → (a3 = a1∨a2, a4 = ¬(a1∧a2), a5 = ¬(a1⊕a2))
//   m2: (a3,a4) → a6 = ¬(a3∧a4)
//   m3: (a4,a5) → a7 = a4⊕a5
// (m2/m3 reverse-engineered from the executions of Figure 1(b).)
// with data sharing degree γ = 2 (a4 feeds both m2 and m3).
// Used by the quickstart example, the possible-worlds bench (E1) and many
// tests as a fully-worked ground truth.
#ifndef PROVVIEW_WORKFLOW_FIG1_WORKFLOW_H_
#define PROVVIEW_WORKFLOW_FIG1_WORKFLOW_H_

#include "workflow/workflow.h"

namespace provview {

/// Handle bundling the Figure-1 workflow with its attribute ids.
struct Fig1Workflow {
  WorkflowPtr workflow;
  CatalogPtr catalog;
  AttrId a1, a2, a3, a4, a5, a6, a7;

  /// Index of m1/m2/m3 inside the workflow.
  int m1_index = 0, m2_index = 1, m3_index = 2;
};

/// Builds and validates the Figure-1 workflow. All attributes boolean with
/// unit cost (costs can be adjusted afterwards via the catalog).
Fig1Workflow MakeFig1Workflow();

}  // namespace provview

#endif  // PROVVIEW_WORKFLOW_FIG1_WORKFLOW_H_
