#include "workflow/dot_export.h"

#include <set>
#include <sstream>

namespace provview {

namespace {

std::string ModuleNodeId(int index) { return "m" + std::to_string(index); }

std::string EdgeStyle(bool hidden) {
  return hidden ? " style=dashed color=red fontcolor=red" : "";
}

}  // namespace

std::string ToDot(const Workflow& workflow, const DotOptions& options) {
  PV_CHECK_MSG(workflow.validated(), "validate the workflow before export");
  const AttributeCatalog& catalog = *workflow.catalog();
  Bitset64 hidden = options.hidden.size() == catalog.size()
                        ? options.hidden
                        : Bitset64(catalog.size());
  std::set<int> privatized(options.privatized.begin(),
                           options.privatized.end());

  std::ostringstream dot;
  dot << "digraph " << options.graph_name << " {\n";
  dot << "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";

  for (int i = 0; i < workflow.num_modules(); ++i) {
    const Module& m = workflow.module(i);
    dot << "  " << ModuleNodeId(i) << " [shape=box label=\"" << m.name()
        << "\"";
    if (m.is_public()) dot << " peripheries=2";
    if (privatized.count(i) != 0) {
      dot << " style=filled fillcolor=lightgrey";
    }
    dot << "];\n";
  }

  // Source/sink points for initial inputs and final outputs.
  int point_counter = 0;
  auto emit_point = [&]() {
    std::string id = "p" + std::to_string(point_counter++);
    dot << "  " << id << " [shape=point];\n";
    return id;
  };

  for (AttrId id = 0; id < catalog.size(); ++id) {
    if (!workflow.used_attrs().Test(id)) continue;
    const bool is_hidden = hidden.Test(id);
    std::ostringstream label;
    label << catalog.Name(id) << " (c=" << catalog.Cost(id) << ")";
    const int producer = workflow.ProducerOf(id);
    const auto& consumers = workflow.ConsumersOf(id);
    std::string from = producer >= 0 ? ModuleNodeId(producer) : emit_point();
    if (consumers.empty()) {
      std::string to = emit_point();
      dot << "  " << from << " -> " << to << " [label=\"" << label.str()
          << "\"" << EdgeStyle(is_hidden) << "];\n";
    } else {
      for (int c : consumers) {
        dot << "  " << from << " -> " << ModuleNodeId(c) << " [label=\""
            << label.str() << "\"" << EdgeStyle(is_hidden) << "];\n";
      }
    }
  }
  dot << "}\n";
  return dot.str();
}

}  // namespace provview
