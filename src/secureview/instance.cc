#include "secureview/instance.h"

#include <algorithm>
#include <set>

namespace provview {

int SecureViewInstance::MaxListLength() const {
  int lmax = 0;
  for (const SvModule& m : modules) {
    if (m.is_public) continue;
    int len = kind == ConstraintKind::kCardinality
                  ? static_cast<int>(m.card_options.size())
                  : static_cast<int>(m.set_options.size());
    lmax = std::max(lmax, len);
  }
  return lmax;
}

int SecureViewInstance::DataSharingDegree() const {
  std::vector<int> consumers(static_cast<size_t>(num_attrs), 0);
  for (const SvModule& m : modules) {
    for (int a : m.inputs) ++consumers[static_cast<size_t>(a)];
  }
  int gamma = 0;
  for (int c : consumers) gamma = std::max(gamma, c);
  return gamma;
}

double SecureViewInstance::AttrCost(const Bitset64& hidden) const {
  double total = 0.0;
  for (int a : hidden.ToVector()) total += attr_cost[static_cast<size_t>(a)];
  return total;
}

std::vector<int> SecureViewInstance::PrivateModules() const {
  std::vector<int> out;
  for (int i = 0; i < num_modules(); ++i) {
    if (!modules[static_cast<size_t>(i)].is_public) out.push_back(i);
  }
  return out;
}

std::vector<int> SecureViewInstance::PublicModules() const {
  std::vector<int> out;
  for (int i = 0; i < num_modules(); ++i) {
    if (modules[static_cast<size_t>(i)].is_public) out.push_back(i);
  }
  return out;
}

Status SecureViewInstance::Validate() const {
  if (static_cast<int>(attr_cost.size()) != num_attrs) {
    return Status::InvalidArgument("attr_cost size mismatch");
  }
  for (double c : attr_cost) {
    if (c < 0) return Status::InvalidArgument("negative attribute cost");
  }
  for (const SvModule& m : modules) {
    std::set<int> in_set(m.inputs.begin(), m.inputs.end());
    std::set<int> out_set(m.outputs.begin(), m.outputs.end());
    for (int a : m.inputs) {
      if (a < 0 || a >= num_attrs) {
        return Status::InvalidArgument("bad input attr in " + m.name);
      }
    }
    for (int a : m.outputs) {
      if (a < 0 || a >= num_attrs) {
        return Status::InvalidArgument("bad output attr in " + m.name);
      }
      if (in_set.count(a) != 0) {
        return Status::InvalidArgument("I ∩ O non-empty in " + m.name);
      }
    }
    if (m.is_public) {
      if (!m.card_options.empty() || !m.set_options.empty()) {
        return Status::InvalidArgument("public module " + m.name +
                                       " must not carry requirements");
      }
      if (m.privatization_cost < 0) {
        return Status::InvalidArgument("negative privatization cost for " +
                                       m.name);
      }
      continue;
    }
    if (kind == ConstraintKind::kCardinality) {
      if (m.card_options.empty()) {
        return Status::InvalidArgument("private module " + m.name +
                                       " has empty cardinality list");
      }
      for (const CardOption& o : m.card_options) {
        if (o.alpha < 0 || o.alpha > static_cast<int>(m.inputs.size()) ||
            o.beta < 0 || o.beta > static_cast<int>(m.outputs.size())) {
          return Status::InvalidArgument("cardinality option out of range in " +
                                         m.name);
        }
      }
    } else {
      if (m.set_options.empty()) {
        return Status::InvalidArgument("private module " + m.name +
                                       " has empty set list");
      }
      for (const SetOption& o : m.set_options) {
        for (int a : o.hidden_inputs) {
          if (in_set.count(a) == 0) {
            return Status::InvalidArgument("set option input not in I_i of " +
                                           m.name);
          }
        }
        for (int a : o.hidden_outputs) {
          if (out_set.count(a) == 0) {
            return Status::InvalidArgument("set option output not in O_i of " +
                                           m.name);
          }
        }
      }
    }
  }
  return Status::OK();
}

double SecureViewSolution::PrivatizationCost(
    const SecureViewInstance& inst) const {
  double total = 0.0;
  for (int i : privatized) {
    PV_CHECK(i >= 0 && i < inst.num_modules());
    PV_CHECK_MSG(inst.modules[static_cast<size_t>(i)].is_public,
                 "cannot privatize a private module");
    total += inst.modules[static_cast<size_t>(i)].privatization_cost;
  }
  return total;
}

}  // namespace provview
