#include "secureview/serialization.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/wire.h"
#include "module/table_module.h"

namespace provview {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream iss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (iss >> token) {
    if (token == "#") break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

Status ParseInt(const std::string& token, int* out) {
  try {
    size_t pos = 0;
    *out = std::stoi(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("bad integer: " + token);
    }
  } catch (...) {
    return Status::InvalidArgument("bad integer: " + token);
  }
  return Status::OK();
}

Status ParseDouble(const std::string& token, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("bad number: " + token);
    }
  } catch (...) {
    return Status::InvalidArgument("bad number: " + token);
  }
  return Status::OK();
}

}  // namespace

std::string SerializeInstance(const SecureViewInstance& inst) {
  std::ostringstream out;
  // Costs must round-trip bit-exactly.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "provview-instance v1\n";
  out << "kind "
      << (inst.kind == ConstraintKind::kCardinality ? "cardinality" : "set")
      << "\n";
  out << "attrs " << inst.num_attrs << "\n";
  out << "costs";
  for (double c : inst.attr_cost) out << " " << c;
  out << "\n";
  for (const SvModule& m : inst.modules) {
    out << "module " << m.name << " " << (m.is_public ? "public" : "private")
        << " " << m.privatization_cost << "\n";
    out << "inputs";
    for (int a : m.inputs) out << " " << a;
    out << "\n";
    out << "outputs";
    for (int a : m.outputs) out << " " << a;
    out << "\n";
    for (const CardOption& o : m.card_options) {
      out << "option card " << o.alpha << " " << o.beta << "\n";
    }
    for (const SetOption& o : m.set_options) {
      out << "option set in";
      for (int a : o.hidden_inputs) out << " " << a;
      out << " out";
      for (int a : o.hidden_outputs) out << " " << a;
      out << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

Result<SecureViewInstance> ParseInstance(const std::string& text) {
  SecureViewInstance inst;
  std::istringstream iss(text);
  std::string line;
  bool saw_header = false, saw_end = false;
  SvModule* current = nullptr;

  while (std::getline(iss, line)) {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    if (!saw_header) {
      if (keyword != "provview-instance" || tokens.size() < 2 ||
          tokens[1] != "v1") {
        return Status::InvalidArgument("missing 'provview-instance v1' header");
      }
      saw_header = true;
      continue;
    }
    if (keyword == "kind") {
      if (tokens.size() != 2) return Status::InvalidArgument("bad kind line");
      if (tokens[1] == "cardinality") {
        inst.kind = ConstraintKind::kCardinality;
      } else if (tokens[1] == "set") {
        inst.kind = ConstraintKind::kSet;
      } else {
        return Status::InvalidArgument("unknown kind " + tokens[1]);
      }
    } else if (keyword == "attrs") {
      if (tokens.size() != 2) return Status::InvalidArgument("bad attrs line");
      PV_RETURN_IF_ERROR(ParseInt(tokens[1], &inst.num_attrs));
      if (inst.num_attrs < 0 ||
          inst.num_attrs > static_cast<int>(kMaxBinaryAttrs)) {
        return Status::InvalidArgument("attrs count out of range: " +
                                       tokens[1]);
      }
    } else if (keyword == "costs") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        double c;
        PV_RETURN_IF_ERROR(ParseDouble(tokens[i], &c));
        inst.attr_cost.push_back(c);
      }
    } else if (keyword == "module") {
      if (tokens.size() != 4) return Status::InvalidArgument("bad module line");
      SvModule m;
      m.name = tokens[1];
      if (tokens[2] == "public") {
        m.is_public = true;
      } else if (tokens[2] != "private") {
        return Status::InvalidArgument("bad module visibility " + tokens[2]);
      }
      PV_RETURN_IF_ERROR(ParseDouble(tokens[3], &m.privatization_cost));
      inst.modules.push_back(std::move(m));
      current = &inst.modules.back();
    } else if (keyword == "inputs" || keyword == "outputs") {
      if (current == nullptr) {
        return Status::InvalidArgument(keyword + " before any module");
      }
      auto& target = keyword == "inputs" ? current->inputs : current->outputs;
      for (size_t i = 1; i < tokens.size(); ++i) {
        int a;
        PV_RETURN_IF_ERROR(ParseInt(tokens[i], &a));
        target.push_back(a);
      }
    } else if (keyword == "option") {
      if (current == nullptr) {
        return Status::InvalidArgument("option before any module");
      }
      if (tokens.size() >= 2 && tokens[1] == "card") {
        if (tokens.size() != 4) {
          return Status::InvalidArgument("bad card option line");
        }
        CardOption o;
        PV_RETURN_IF_ERROR(ParseInt(tokens[2], &o.alpha));
        PV_RETURN_IF_ERROR(ParseInt(tokens[3], &o.beta));
        current->card_options.push_back(o);
      } else if (tokens.size() >= 2 && tokens[1] == "set") {
        SetOption o;
        enum { kNone, kIn, kOut } mode = kNone;
        for (size_t i = 2; i < tokens.size(); ++i) {
          if (tokens[i] == "in") {
            mode = kIn;
          } else if (tokens[i] == "out") {
            mode = kOut;
          } else {
            int a;
            PV_RETURN_IF_ERROR(ParseInt(tokens[i], &a));
            if (mode == kIn) {
              o.hidden_inputs.push_back(a);
            } else if (mode == kOut) {
              o.hidden_outputs.push_back(a);
            } else {
              return Status::InvalidArgument("set option value outside "
                                             "in/out section");
            }
          }
        }
        current->set_options.push_back(std::move(o));
      } else {
        return Status::InvalidArgument("unknown option type");
      }
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      return Status::InvalidArgument("unknown keyword " + keyword);
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty instance text");
  if (!saw_end) return Status::InvalidArgument("missing 'end'");
  PV_RETURN_IF_ERROR(inst.Validate());
  return inst;
}

std::string SerializeSolution(const SecureViewSolution& solution) {
  std::ostringstream out;
  out << "hidden";
  for (int a : solution.hidden.ToVector()) out << " " << a;
  out << " | privatized";
  for (int i : solution.privatized) out << " " << i;
  return out.str();
}

Result<SecureViewSolution> ParseSolution(const std::string& text,
                                         int num_attrs) {
  SecureViewSolution sol;
  sol.hidden = Bitset64(num_attrs);
  std::vector<std::string> tokens = Tokenize(text);
  enum { kNone, kHidden, kPrivatized } mode = kNone;
  for (const std::string& token : tokens) {
    if (token == "hidden") {
      mode = kHidden;
    } else if (token == "privatized") {
      mode = kPrivatized;
    } else if (token == "|") {
      mode = kNone;
    } else {
      int v;
      PV_RETURN_IF_ERROR(ParseInt(token, &v));
      if (mode == kHidden) {
        if (v < 0 || v >= num_attrs) {
          return Status::OutOfRange("hidden attr out of range");
        }
        sol.hidden.Set(v);
      } else if (mode == kPrivatized) {
        if (v < 0) {
          return Status::OutOfRange("privatized module index out of range");
        }
        sol.privatized.push_back(v);
      } else {
        return Status::InvalidArgument("value outside a section");
      }
    }
  }
  return sol;
}

// ---------------------------------------------------------------------------
// Binary wire format.
// ---------------------------------------------------------------------------

namespace {

// 'PVSI' / 'PVSL' little-endian, followed by a u16 format version.
constexpr uint32_t kInstanceMagic = 0x49535650;  // "PVSI"
constexpr uint32_t kSolutionMagic = 0x4c535650;  // "PVSL"
constexpr uint16_t kBinaryVersion = 1;

// Reads a u32 count and rejects it before anything is allocated.
Status ReadCount(WireReader* r, uint32_t max, const char* what,
                 uint32_t* out) {
  PV_RETURN_IF_ERROR(r->ReadU32(out));
  if (*out > max) {
    return Status::InvalidArgument(std::string(what) + " count " +
                                   std::to_string(*out) + " exceeds limit " +
                                   std::to_string(max));
  }
  return Status::OK();
}

// An attribute/module index: non-negative and below `bound`.
Status ReadIndex(WireReader* r, uint32_t bound, const char* what,
                 int* out) {
  uint32_t v;
  PV_RETURN_IF_ERROR(r->ReadU32(&v));
  if (v >= bound) {
    return Status::InvalidArgument(std::string(what) + " index " +
                                   std::to_string(v) + " out of range");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

void PutIndexList(WireWriter* w, const std::vector<int>& values) {
  w->PutU32(static_cast<uint32_t>(values.size()));
  for (int v : values) w->PutU32(static_cast<uint32_t>(v));
}

Status ReadIndexList(WireReader* r, uint32_t bound, const char* what,
                     std::vector<int>* out) {
  uint32_t count;
  PV_RETURN_IF_ERROR(ReadCount(r, kMaxBinaryAttrs, what, &count));
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int v;
    PV_RETURN_IF_ERROR(ReadIndex(r, bound, what, &v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace

void SerializeInstanceBinary(const SecureViewInstance& inst,
                             std::string* out) {
  WireWriter w(out);
  w.PutU32(kInstanceMagic);
  w.PutU16(kBinaryVersion);
  w.PutU8(inst.kind == ConstraintKind::kCardinality ? 0 : 1);
  w.PutU32(static_cast<uint32_t>(inst.num_attrs));
  for (double c : inst.attr_cost) w.PutDouble(c);
  w.PutU32(static_cast<uint32_t>(inst.modules.size()));
  for (const SvModule& m : inst.modules) {
    w.PutString(m.name);
    w.PutU8(m.is_public ? 1 : 0);
    w.PutDouble(m.privatization_cost);
    PutIndexList(&w, m.inputs);
    PutIndexList(&w, m.outputs);
    w.PutU32(static_cast<uint32_t>(m.card_options.size()));
    for (const CardOption& o : m.card_options) {
      w.PutU32(static_cast<uint32_t>(o.alpha));
      w.PutU32(static_cast<uint32_t>(o.beta));
    }
    w.PutU32(static_cast<uint32_t>(m.set_options.size()));
    for (const SetOption& o : m.set_options) {
      PutIndexList(&w, o.hidden_inputs);
      PutIndexList(&w, o.hidden_outputs);
    }
  }
}

Result<SecureViewInstance> DeserializeInstanceBinary(std::string_view bytes) {
  WireReader r(bytes);
  uint32_t magic;
  uint16_t version;
  PV_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kInstanceMagic) {
    return Status::InvalidArgument("bad instance magic");
  }
  PV_RETURN_IF_ERROR(r.ReadU16(&version));
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported instance format version " +
                                   std::to_string(version));
  }
  SecureViewInstance inst;
  uint8_t kind;
  PV_RETURN_IF_ERROR(r.ReadU8(&kind));
  if (kind > 1) return Status::InvalidArgument("bad constraint kind");
  inst.kind = kind == 0 ? ConstraintKind::kCardinality : ConstraintKind::kSet;
  uint32_t num_attrs;
  PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryAttrs, "attr", &num_attrs));
  inst.num_attrs = static_cast<int>(num_attrs);
  // The cost array must fit in what is actually left on the wire — check
  // before reserving so a forged count cannot force a huge allocation.
  if (r.remaining() < static_cast<size_t>(num_attrs) * sizeof(double)) {
    return Status::InvalidArgument("truncated attr cost array");
  }
  inst.attr_cost.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    double c;
    PV_RETURN_IF_ERROR(r.ReadDouble(&c));
    inst.attr_cost.push_back(c);
  }
  uint32_t num_modules;
  PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryModules, "module",
                               &num_modules));
  inst.modules.reserve(num_modules);
  for (uint32_t mi = 0; mi < num_modules; ++mi) {
    SvModule m;
    PV_RETURN_IF_ERROR(r.ReadString(&m.name, kMaxBinaryNameLen));
    uint8_t is_public;
    PV_RETURN_IF_ERROR(r.ReadU8(&is_public));
    if (is_public > 1) return Status::InvalidArgument("bad public flag");
    m.is_public = is_public == 1;
    PV_RETURN_IF_ERROR(r.ReadDouble(&m.privatization_cost));
    PV_RETURN_IF_ERROR(ReadIndexList(&r, num_attrs, "input", &m.inputs));
    PV_RETURN_IF_ERROR(ReadIndexList(&r, num_attrs, "output", &m.outputs));
    uint32_t num_card;
    PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryOptions, "card option",
                                 &num_card));
    m.card_options.reserve(num_card);
    for (uint32_t i = 0; i < num_card; ++i) {
      CardOption o;
      // α / β are bounded by the module arity; Validate() enforces that —
      // here it is enough that they fit a non-negative int.
      PV_RETURN_IF_ERROR(ReadIndex(&r, kMaxBinaryAttrs, "alpha", &o.alpha));
      PV_RETURN_IF_ERROR(ReadIndex(&r, kMaxBinaryAttrs, "beta", &o.beta));
      m.card_options.push_back(o);
    }
    uint32_t num_set;
    PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryOptions, "set option",
                                 &num_set));
    m.set_options.reserve(num_set);
    for (uint32_t i = 0; i < num_set; ++i) {
      SetOption o;
      PV_RETURN_IF_ERROR(
          ReadIndexList(&r, num_attrs, "hidden input", &o.hidden_inputs));
      PV_RETURN_IF_ERROR(
          ReadIndexList(&r, num_attrs, "hidden output", &o.hidden_outputs));
      m.set_options.push_back(std::move(o));
    }
    inst.modules.push_back(std::move(m));
  }
  PV_RETURN_IF_ERROR(r.ExpectEnd());
  PV_RETURN_IF_ERROR(inst.Validate());
  return inst;
}

void SerializeSolutionBinary(const SecureViewSolution& solution,
                             std::string* out) {
  WireWriter w(out);
  w.PutU32(kSolutionMagic);
  w.PutU16(kBinaryVersion);
  PutIndexList(&w, solution.hidden.ToVector());
  PutIndexList(&w, solution.privatized);
}

Result<SecureViewSolution> DeserializeSolutionBinary(std::string_view bytes,
                                                     int num_attrs) {
  if (num_attrs < 0 || num_attrs > static_cast<int>(kMaxBinaryAttrs)) {
    return Status::InvalidArgument("attrs count out of range");
  }
  WireReader r(bytes);
  uint32_t magic;
  uint16_t version;
  PV_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kSolutionMagic) {
    return Status::InvalidArgument("bad solution magic");
  }
  PV_RETURN_IF_ERROR(r.ReadU16(&version));
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported solution format version " +
                                   std::to_string(version));
  }
  SecureViewSolution sol;
  sol.hidden = Bitset64(num_attrs);
  std::vector<int> hidden;
  PV_RETURN_IF_ERROR(ReadIndexList(
      &r, static_cast<uint32_t>(num_attrs), "hidden attr", &hidden));
  for (int a : hidden) sol.hidden.Set(a);
  PV_RETURN_IF_ERROR(ReadIndexList(&r, kMaxBinaryModules, "privatized module",
                                   &sol.privatized));
  PV_RETURN_IF_ERROR(r.ExpectEnd());
  return sol;
}

// ------------------------------------------------------------- workflows --

namespace {

constexpr uint32_t kWorkflowMagic = 0x46575650;  // "PVWF"

// Row order of a serialized module table: the input tuple is a mixed-radix
// odometer over the module's input attributes, LAST input cycling fastest.
// Both directions of the codec use this one helper, so the convention can
// never drift between them. Returns false after the last domain point.
bool NextDomainPoint(const AttributeCatalog& catalog,
                     const std::vector<AttrId>& inputs, Tuple* point) {
  for (size_t i = inputs.size(); i-- > 0;) {
    Value& v = (*point)[i];
    if (v + 1 < catalog.DomainSize(inputs[i])) {
      ++v;
      return true;
    }
    v = 0;
  }
  return false;
}

Status CheckFiniteCost(double cost, const std::string& what) {
  if (!std::isfinite(cost) || cost < 0.0) {
    return Status::InvalidArgument(what + " cost must be finite and >= 0");
  }
  return Status::OK();
}

// Reads one module's attribute-id list (inputs or outputs); every id must
// be in the catalog and not repeat within the module.
Status ReadModuleAttrList(WireReader* r, uint32_t num_attrs, uint32_t min_len,
                          const char* what, std::set<AttrId>* seen,
                          std::vector<AttrId>* out) {
  uint32_t count;
  PV_RETURN_IF_ERROR(r->ReadU32(&count));
  if (count < min_len || count > kMaxWorkflowModuleArity) {
    return Status::InvalidArgument(std::string(what) + " count " +
                                   std::to_string(count) + " out of range");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id;
    PV_RETURN_IF_ERROR(r->ReadU32(&id));
    if (id >= num_attrs) {
      return Status::InvalidArgument(std::string(what) + " attr " +
                                     std::to_string(id) + " out of range");
    }
    if (!seen->insert(static_cast<AttrId>(id)).second) {
      return Status::InvalidArgument(std::string(what) + " attr " +
                                     std::to_string(id) +
                                     " repeats within the module");
    }
    out->push_back(static_cast<AttrId>(id));
  }
  return Status::OK();
}

}  // namespace

Status SerializeWorkflowBinary(const Workflow& workflow, std::string* out) {
  const AttributeCatalog& catalog = *workflow.catalog();
  if (catalog.size() < 1 ||
      catalog.size() > static_cast<int>(kMaxWorkflowAttrs)) {
    return Status::InvalidArgument("catalog size out of codec range");
  }
  if (workflow.num_modules() < 1 ||
      workflow.num_modules() > static_cast<int>(kMaxWorkflowModules)) {
    return Status::InvalidArgument("module count out of codec range");
  }
  std::string buf;
  WireWriter w(&buf);
  w.PutU32(kWorkflowMagic);
  w.PutU16(kBinaryVersion);
  w.PutU32(static_cast<uint32_t>(catalog.size()));
  for (AttrId a = 0; a < catalog.size(); ++a) {
    const Attribute& attr = catalog.Get(a);
    if (attr.name.empty() || attr.name.size() > kMaxBinaryNameLen) {
      return Status::InvalidArgument("attribute name length out of range");
    }
    if (attr.domain_size < 1 || attr.domain_size > kMaxWorkflowAttrDomain) {
      return Status::InvalidArgument("attribute domain out of codec range");
    }
    PV_RETURN_IF_ERROR(CheckFiniteCost(attr.cost, "attribute"));
    w.PutString(attr.name);
    w.PutU32(static_cast<uint32_t>(attr.domain_size));
    w.PutDouble(attr.cost);
  }
  w.PutU32(static_cast<uint32_t>(workflow.num_modules()));
  for (int mi = 0; mi < workflow.num_modules(); ++mi) {
    const Module& m = workflow.module(mi);
    if (m.name().empty() || m.name().size() > kMaxBinaryNameLen) {
      return Status::InvalidArgument("module name length out of range");
    }
    if (m.num_inputs() > static_cast<int>(kMaxWorkflowModuleArity) ||
        m.num_outputs() < 1 ||
        m.num_outputs() > static_cast<int>(kMaxWorkflowModuleArity)) {
      return Status::InvalidArgument("module '" + m.name() +
                                     "' arity out of codec range");
    }
    PV_RETURN_IF_ERROR(CheckFiniteCost(m.privatization_cost(), "module"));
    const int64_t rows = m.DomainSize();
    if (rows > static_cast<int64_t>(kMaxWorkflowTableRows)) {
      return Status::InvalidArgument(
          "module '" + m.name() + "' input domain of " + std::to_string(rows) +
          " rows exceeds the " + std::to_string(kMaxWorkflowTableRows) +
          "-row serialization cap");
    }
    w.PutString(m.name());
    w.PutU8(m.is_public() ? 1 : 0);
    w.PutDouble(m.privatization_cost());
    w.PutU32(static_cast<uint32_t>(m.num_inputs()));
    for (AttrId a : m.inputs()) w.PutU32(static_cast<uint32_t>(a));
    w.PutU32(static_cast<uint32_t>(m.num_outputs()));
    for (AttrId a : m.outputs()) w.PutU32(static_cast<uint32_t>(a));
    w.PutU32(static_cast<uint32_t>(rows));
    Tuple point(m.inputs().size(), 0);
    do {
      const Tuple result = m.Eval(point);
      for (int oi = 0; oi < m.num_outputs(); ++oi) {
        const Value v = result[static_cast<size_t>(oi)];
        if (v < 0 || v >= catalog.DomainSize(m.outputs()[static_cast<size_t>(
                              oi)])) {
          return Status::InvalidArgument("module '" + m.name() +
                                         "' produced an out-of-domain value");
        }
        w.PutU32(static_cast<uint32_t>(v));
      }
    } while (NextDomainPoint(catalog, m.inputs(), &point));
  }
  out->append(buf);
  return Status::OK();
}

Result<WorkflowBundle> DeserializeWorkflowBinary(std::string_view bytes) {
  WireReader r(bytes);
  uint32_t magic;
  uint16_t version;
  PV_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kWorkflowMagic) {
    return Status::InvalidArgument("bad workflow magic");
  }
  PV_RETURN_IF_ERROR(r.ReadU16(&version));
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported workflow format version " +
                                   std::to_string(version));
  }

  uint32_t num_attrs;
  PV_RETURN_IF_ERROR(r.ReadU32(&num_attrs));
  if (num_attrs < 1 || num_attrs > kMaxWorkflowAttrs) {
    return Status::InvalidArgument("attr count " + std::to_string(num_attrs) +
                                   " out of range");
  }
  // Every PV_CHECK the model layer would make on hostile values (duplicate
  // names, bad domain, negative cost) is re-made here as a typed rejection:
  // catalog/module construction below must be abort-free by construction.
  auto catalog = std::make_shared<AttributeCatalog>();
  for (uint32_t i = 0; i < num_attrs; ++i) {
    std::string name;
    PV_RETURN_IF_ERROR(r.ReadString(&name, kMaxBinaryNameLen));
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    if (catalog->Contains(name)) {
      return Status::InvalidArgument("duplicate attribute name '" + name +
                                     "'");
    }
    uint32_t domain;
    PV_RETURN_IF_ERROR(r.ReadU32(&domain));
    if (domain < 1 || domain > static_cast<uint32_t>(kMaxWorkflowAttrDomain)) {
      return Status::InvalidArgument("attribute domain " +
                                     std::to_string(domain) + " out of range");
    }
    double cost;
    PV_RETURN_IF_ERROR(r.ReadDouble(&cost));
    PV_RETURN_IF_ERROR(CheckFiniteCost(cost, "attribute"));
    catalog->Add(name, static_cast<int>(domain), cost);
  }

  uint32_t num_modules;
  PV_RETURN_IF_ERROR(r.ReadU32(&num_modules));
  if (num_modules < 1 || num_modules > kMaxWorkflowModules) {
    return Status::InvalidArgument("module count " +
                                   std::to_string(num_modules) +
                                   " out of range");
  }
  auto workflow = std::make_unique<Workflow>(catalog);
  std::set<std::string> module_names;
  for (uint32_t mi = 0; mi < num_modules; ++mi) {
    std::string name;
    PV_RETURN_IF_ERROR(r.ReadString(&name, kMaxBinaryNameLen));
    if (name.empty()) {
      return Status::InvalidArgument("empty module name");
    }
    if (!module_names.insert(name).second) {
      return Status::InvalidArgument("duplicate module name '" + name + "'");
    }
    uint8_t is_public;
    PV_RETURN_IF_ERROR(r.ReadU8(&is_public));
    if (is_public > 1) {
      return Status::InvalidArgument("bad module visibility flag");
    }
    double cost;
    PV_RETURN_IF_ERROR(r.ReadDouble(&cost));
    PV_RETURN_IF_ERROR(CheckFiniteCost(cost, "module"));

    std::set<AttrId> seen;
    std::vector<AttrId> inputs, outputs;
    PV_RETURN_IF_ERROR(ReadModuleAttrList(&r, num_attrs, /*min_len=*/0,
                                          "input", &seen, &inputs));
    PV_RETURN_IF_ERROR(ReadModuleAttrList(&r, num_attrs, /*min_len=*/1,
                                          "output", &seen, &outputs));

    int64_t domain_rows = 1;
    for (AttrId a : inputs) {
      domain_rows *= catalog->DomainSize(a);
      if (domain_rows > static_cast<int64_t>(kMaxWorkflowTableRows)) {
        return Status::InvalidArgument(
            "module '" + name + "' input domain exceeds the " +
            std::to_string(kMaxWorkflowTableRows) + "-row cap");
      }
    }
    uint32_t rows;
    PV_RETURN_IF_ERROR(r.ReadU32(&rows));
    if (static_cast<int64_t>(rows) != domain_rows) {
      // The table must be TOTAL: exactly one row per domain point, inputs
      // implied by odometer position. Anything else is hostile.
      return Status::InvalidArgument(
          "module '" + name + "' table has " + std::to_string(rows) +
          " rows, domain has " + std::to_string(domain_rows));
    }
    const size_t table_bytes =
        static_cast<size_t>(rows) * outputs.size() * sizeof(uint32_t);
    if (r.remaining() < table_bytes) {
      return Status::InvalidArgument("truncated table for module '" + name +
                                     "'");
    }
    std::vector<std::pair<Tuple, Tuple>> entries;
    entries.reserve(rows);
    Tuple point(inputs.size(), 0);
    do {
      Tuple result(outputs.size(), 0);
      for (size_t oi = 0; oi < outputs.size(); ++oi) {
        uint32_t v;
        PV_RETURN_IF_ERROR(r.ReadU32(&v));
        if (v >= static_cast<uint32_t>(catalog->DomainSize(outputs[oi]))) {
          return Status::InvalidArgument("module '" + name +
                                         "' table value out of domain");
        }
        result[oi] = static_cast<Value>(v);
      }
      entries.emplace_back(point, std::move(result));
    } while (NextDomainPoint(*catalog, inputs, &point));

    auto module = std::make_unique<TableModule>(name, catalog, inputs,
                                                outputs, entries);
    module->set_public(is_public == 1);
    module->set_privatization_cost(cost);
    workflow->AddModule(std::move(module));
  }
  PV_RETURN_IF_ERROR(r.ExpectEnd());
  PV_RETURN_IF_ERROR(workflow->Validate());
  WorkflowBundle bundle;
  bundle.catalog = std::move(catalog);
  bundle.workflow = std::move(workflow);
  return bundle;
}

}  // namespace provview
