#include "secureview/serialization.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace provview {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream iss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (iss >> token) {
    if (token == "#") break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

Status ParseInt(const std::string& token, int* out) {
  try {
    size_t pos = 0;
    *out = std::stoi(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("bad integer: " + token);
    }
  } catch (...) {
    return Status::InvalidArgument("bad integer: " + token);
  }
  return Status::OK();
}

Status ParseDouble(const std::string& token, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("bad number: " + token);
    }
  } catch (...) {
    return Status::InvalidArgument("bad number: " + token);
  }
  return Status::OK();
}

}  // namespace

std::string SerializeInstance(const SecureViewInstance& inst) {
  std::ostringstream out;
  // Costs must round-trip bit-exactly.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "provview-instance v1\n";
  out << "kind "
      << (inst.kind == ConstraintKind::kCardinality ? "cardinality" : "set")
      << "\n";
  out << "attrs " << inst.num_attrs << "\n";
  out << "costs";
  for (double c : inst.attr_cost) out << " " << c;
  out << "\n";
  for (const SvModule& m : inst.modules) {
    out << "module " << m.name << " " << (m.is_public ? "public" : "private")
        << " " << m.privatization_cost << "\n";
    out << "inputs";
    for (int a : m.inputs) out << " " << a;
    out << "\n";
    out << "outputs";
    for (int a : m.outputs) out << " " << a;
    out << "\n";
    for (const CardOption& o : m.card_options) {
      out << "option card " << o.alpha << " " << o.beta << "\n";
    }
    for (const SetOption& o : m.set_options) {
      out << "option set in";
      for (int a : o.hidden_inputs) out << " " << a;
      out << " out";
      for (int a : o.hidden_outputs) out << " " << a;
      out << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

Result<SecureViewInstance> ParseInstance(const std::string& text) {
  SecureViewInstance inst;
  std::istringstream iss(text);
  std::string line;
  bool saw_header = false, saw_end = false;
  SvModule* current = nullptr;

  while (std::getline(iss, line)) {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    if (!saw_header) {
      if (keyword != "provview-instance" || tokens.size() < 2 ||
          tokens[1] != "v1") {
        return Status::InvalidArgument("missing 'provview-instance v1' header");
      }
      saw_header = true;
      continue;
    }
    if (keyword == "kind") {
      if (tokens.size() != 2) return Status::InvalidArgument("bad kind line");
      if (tokens[1] == "cardinality") {
        inst.kind = ConstraintKind::kCardinality;
      } else if (tokens[1] == "set") {
        inst.kind = ConstraintKind::kSet;
      } else {
        return Status::InvalidArgument("unknown kind " + tokens[1]);
      }
    } else if (keyword == "attrs") {
      if (tokens.size() != 2) return Status::InvalidArgument("bad attrs line");
      PV_RETURN_IF_ERROR(ParseInt(tokens[1], &inst.num_attrs));
    } else if (keyword == "costs") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        double c;
        PV_RETURN_IF_ERROR(ParseDouble(tokens[i], &c));
        inst.attr_cost.push_back(c);
      }
    } else if (keyword == "module") {
      if (tokens.size() != 4) return Status::InvalidArgument("bad module line");
      SvModule m;
      m.name = tokens[1];
      if (tokens[2] == "public") {
        m.is_public = true;
      } else if (tokens[2] != "private") {
        return Status::InvalidArgument("bad module visibility " + tokens[2]);
      }
      PV_RETURN_IF_ERROR(ParseDouble(tokens[3], &m.privatization_cost));
      inst.modules.push_back(std::move(m));
      current = &inst.modules.back();
    } else if (keyword == "inputs" || keyword == "outputs") {
      if (current == nullptr) {
        return Status::InvalidArgument(keyword + " before any module");
      }
      auto& target = keyword == "inputs" ? current->inputs : current->outputs;
      for (size_t i = 1; i < tokens.size(); ++i) {
        int a;
        PV_RETURN_IF_ERROR(ParseInt(tokens[i], &a));
        target.push_back(a);
      }
    } else if (keyword == "option") {
      if (current == nullptr) {
        return Status::InvalidArgument("option before any module");
      }
      if (tokens.size() >= 2 && tokens[1] == "card") {
        if (tokens.size() != 4) {
          return Status::InvalidArgument("bad card option line");
        }
        CardOption o;
        PV_RETURN_IF_ERROR(ParseInt(tokens[2], &o.alpha));
        PV_RETURN_IF_ERROR(ParseInt(tokens[3], &o.beta));
        current->card_options.push_back(o);
      } else if (tokens.size() >= 2 && tokens[1] == "set") {
        SetOption o;
        enum { kNone, kIn, kOut } mode = kNone;
        for (size_t i = 2; i < tokens.size(); ++i) {
          if (tokens[i] == "in") {
            mode = kIn;
          } else if (tokens[i] == "out") {
            mode = kOut;
          } else {
            int a;
            PV_RETURN_IF_ERROR(ParseInt(tokens[i], &a));
            if (mode == kIn) {
              o.hidden_inputs.push_back(a);
            } else if (mode == kOut) {
              o.hidden_outputs.push_back(a);
            } else {
              return Status::InvalidArgument("set option value outside "
                                             "in/out section");
            }
          }
        }
        current->set_options.push_back(std::move(o));
      } else {
        return Status::InvalidArgument("unknown option type");
      }
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      return Status::InvalidArgument("unknown keyword " + keyword);
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty instance text");
  if (!saw_end) return Status::InvalidArgument("missing 'end'");
  PV_RETURN_IF_ERROR(inst.Validate());
  return inst;
}

std::string SerializeSolution(const SecureViewSolution& solution) {
  std::ostringstream out;
  out << "hidden";
  for (int a : solution.hidden.ToVector()) out << " " << a;
  out << " | privatized";
  for (int i : solution.privatized) out << " " << i;
  return out.str();
}

Result<SecureViewSolution> ParseSolution(const std::string& text,
                                         int num_attrs) {
  SecureViewSolution sol;
  sol.hidden = Bitset64(num_attrs);
  std::vector<std::string> tokens = Tokenize(text);
  enum { kNone, kHidden, kPrivatized } mode = kNone;
  for (const std::string& token : tokens) {
    if (token == "hidden") {
      mode = kHidden;
    } else if (token == "privatized") {
      mode = kPrivatized;
    } else if (token == "|") {
      mode = kNone;
    } else {
      int v;
      PV_RETURN_IF_ERROR(ParseInt(token, &v));
      if (mode == kHidden) {
        if (v < 0 || v >= num_attrs) {
          return Status::OutOfRange("hidden attr out of range");
        }
        sol.hidden.Set(v);
      } else if (mode == kPrivatized) {
        sol.privatized.push_back(v);
      } else {
        return Status::InvalidArgument("value outside a section");
      }
    }
  }
  return sol;
}

}  // namespace provview
