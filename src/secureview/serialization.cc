#include "secureview/serialization.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

#include "common/wire.h"

namespace provview {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream iss(line);
  std::vector<std::string> tokens;
  std::string token;
  while (iss >> token) {
    if (token == "#") break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

Status ParseInt(const std::string& token, int* out) {
  try {
    size_t pos = 0;
    *out = std::stoi(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("bad integer: " + token);
    }
  } catch (...) {
    return Status::InvalidArgument("bad integer: " + token);
  }
  return Status::OK();
}

Status ParseDouble(const std::string& token, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("bad number: " + token);
    }
  } catch (...) {
    return Status::InvalidArgument("bad number: " + token);
  }
  return Status::OK();
}

}  // namespace

std::string SerializeInstance(const SecureViewInstance& inst) {
  std::ostringstream out;
  // Costs must round-trip bit-exactly.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "provview-instance v1\n";
  out << "kind "
      << (inst.kind == ConstraintKind::kCardinality ? "cardinality" : "set")
      << "\n";
  out << "attrs " << inst.num_attrs << "\n";
  out << "costs";
  for (double c : inst.attr_cost) out << " " << c;
  out << "\n";
  for (const SvModule& m : inst.modules) {
    out << "module " << m.name << " " << (m.is_public ? "public" : "private")
        << " " << m.privatization_cost << "\n";
    out << "inputs";
    for (int a : m.inputs) out << " " << a;
    out << "\n";
    out << "outputs";
    for (int a : m.outputs) out << " " << a;
    out << "\n";
    for (const CardOption& o : m.card_options) {
      out << "option card " << o.alpha << " " << o.beta << "\n";
    }
    for (const SetOption& o : m.set_options) {
      out << "option set in";
      for (int a : o.hidden_inputs) out << " " << a;
      out << " out";
      for (int a : o.hidden_outputs) out << " " << a;
      out << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

Result<SecureViewInstance> ParseInstance(const std::string& text) {
  SecureViewInstance inst;
  std::istringstream iss(text);
  std::string line;
  bool saw_header = false, saw_end = false;
  SvModule* current = nullptr;

  while (std::getline(iss, line)) {
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    if (!saw_header) {
      if (keyword != "provview-instance" || tokens.size() < 2 ||
          tokens[1] != "v1") {
        return Status::InvalidArgument("missing 'provview-instance v1' header");
      }
      saw_header = true;
      continue;
    }
    if (keyword == "kind") {
      if (tokens.size() != 2) return Status::InvalidArgument("bad kind line");
      if (tokens[1] == "cardinality") {
        inst.kind = ConstraintKind::kCardinality;
      } else if (tokens[1] == "set") {
        inst.kind = ConstraintKind::kSet;
      } else {
        return Status::InvalidArgument("unknown kind " + tokens[1]);
      }
    } else if (keyword == "attrs") {
      if (tokens.size() != 2) return Status::InvalidArgument("bad attrs line");
      PV_RETURN_IF_ERROR(ParseInt(tokens[1], &inst.num_attrs));
      if (inst.num_attrs < 0 ||
          inst.num_attrs > static_cast<int>(kMaxBinaryAttrs)) {
        return Status::InvalidArgument("attrs count out of range: " +
                                       tokens[1]);
      }
    } else if (keyword == "costs") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        double c;
        PV_RETURN_IF_ERROR(ParseDouble(tokens[i], &c));
        inst.attr_cost.push_back(c);
      }
    } else if (keyword == "module") {
      if (tokens.size() != 4) return Status::InvalidArgument("bad module line");
      SvModule m;
      m.name = tokens[1];
      if (tokens[2] == "public") {
        m.is_public = true;
      } else if (tokens[2] != "private") {
        return Status::InvalidArgument("bad module visibility " + tokens[2]);
      }
      PV_RETURN_IF_ERROR(ParseDouble(tokens[3], &m.privatization_cost));
      inst.modules.push_back(std::move(m));
      current = &inst.modules.back();
    } else if (keyword == "inputs" || keyword == "outputs") {
      if (current == nullptr) {
        return Status::InvalidArgument(keyword + " before any module");
      }
      auto& target = keyword == "inputs" ? current->inputs : current->outputs;
      for (size_t i = 1; i < tokens.size(); ++i) {
        int a;
        PV_RETURN_IF_ERROR(ParseInt(tokens[i], &a));
        target.push_back(a);
      }
    } else if (keyword == "option") {
      if (current == nullptr) {
        return Status::InvalidArgument("option before any module");
      }
      if (tokens.size() >= 2 && tokens[1] == "card") {
        if (tokens.size() != 4) {
          return Status::InvalidArgument("bad card option line");
        }
        CardOption o;
        PV_RETURN_IF_ERROR(ParseInt(tokens[2], &o.alpha));
        PV_RETURN_IF_ERROR(ParseInt(tokens[3], &o.beta));
        current->card_options.push_back(o);
      } else if (tokens.size() >= 2 && tokens[1] == "set") {
        SetOption o;
        enum { kNone, kIn, kOut } mode = kNone;
        for (size_t i = 2; i < tokens.size(); ++i) {
          if (tokens[i] == "in") {
            mode = kIn;
          } else if (tokens[i] == "out") {
            mode = kOut;
          } else {
            int a;
            PV_RETURN_IF_ERROR(ParseInt(tokens[i], &a));
            if (mode == kIn) {
              o.hidden_inputs.push_back(a);
            } else if (mode == kOut) {
              o.hidden_outputs.push_back(a);
            } else {
              return Status::InvalidArgument("set option value outside "
                                             "in/out section");
            }
          }
        }
        current->set_options.push_back(std::move(o));
      } else {
        return Status::InvalidArgument("unknown option type");
      }
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      return Status::InvalidArgument("unknown keyword " + keyword);
    }
  }
  if (!saw_header) return Status::InvalidArgument("empty instance text");
  if (!saw_end) return Status::InvalidArgument("missing 'end'");
  PV_RETURN_IF_ERROR(inst.Validate());
  return inst;
}

std::string SerializeSolution(const SecureViewSolution& solution) {
  std::ostringstream out;
  out << "hidden";
  for (int a : solution.hidden.ToVector()) out << " " << a;
  out << " | privatized";
  for (int i : solution.privatized) out << " " << i;
  return out.str();
}

Result<SecureViewSolution> ParseSolution(const std::string& text,
                                         int num_attrs) {
  SecureViewSolution sol;
  sol.hidden = Bitset64(num_attrs);
  std::vector<std::string> tokens = Tokenize(text);
  enum { kNone, kHidden, kPrivatized } mode = kNone;
  for (const std::string& token : tokens) {
    if (token == "hidden") {
      mode = kHidden;
    } else if (token == "privatized") {
      mode = kPrivatized;
    } else if (token == "|") {
      mode = kNone;
    } else {
      int v;
      PV_RETURN_IF_ERROR(ParseInt(token, &v));
      if (mode == kHidden) {
        if (v < 0 || v >= num_attrs) {
          return Status::OutOfRange("hidden attr out of range");
        }
        sol.hidden.Set(v);
      } else if (mode == kPrivatized) {
        if (v < 0) {
          return Status::OutOfRange("privatized module index out of range");
        }
        sol.privatized.push_back(v);
      } else {
        return Status::InvalidArgument("value outside a section");
      }
    }
  }
  return sol;
}

// ---------------------------------------------------------------------------
// Binary wire format.
// ---------------------------------------------------------------------------

namespace {

// 'PVSI' / 'PVSL' little-endian, followed by a u16 format version.
constexpr uint32_t kInstanceMagic = 0x49535650;  // "PVSI"
constexpr uint32_t kSolutionMagic = 0x4c535650;  // "PVSL"
constexpr uint16_t kBinaryVersion = 1;

// Reads a u32 count and rejects it before anything is allocated.
Status ReadCount(WireReader* r, uint32_t max, const char* what,
                 uint32_t* out) {
  PV_RETURN_IF_ERROR(r->ReadU32(out));
  if (*out > max) {
    return Status::InvalidArgument(std::string(what) + " count " +
                                   std::to_string(*out) + " exceeds limit " +
                                   std::to_string(max));
  }
  return Status::OK();
}

// An attribute/module index: non-negative and below `bound`.
Status ReadIndex(WireReader* r, uint32_t bound, const char* what,
                 int* out) {
  uint32_t v;
  PV_RETURN_IF_ERROR(r->ReadU32(&v));
  if (v >= bound) {
    return Status::InvalidArgument(std::string(what) + " index " +
                                   std::to_string(v) + " out of range");
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

void PutIndexList(WireWriter* w, const std::vector<int>& values) {
  w->PutU32(static_cast<uint32_t>(values.size()));
  for (int v : values) w->PutU32(static_cast<uint32_t>(v));
}

Status ReadIndexList(WireReader* r, uint32_t bound, const char* what,
                     std::vector<int>* out) {
  uint32_t count;
  PV_RETURN_IF_ERROR(ReadCount(r, kMaxBinaryAttrs, what, &count));
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int v;
    PV_RETURN_IF_ERROR(ReadIndex(r, bound, what, &v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace

void SerializeInstanceBinary(const SecureViewInstance& inst,
                             std::string* out) {
  WireWriter w(out);
  w.PutU32(kInstanceMagic);
  w.PutU16(kBinaryVersion);
  w.PutU8(inst.kind == ConstraintKind::kCardinality ? 0 : 1);
  w.PutU32(static_cast<uint32_t>(inst.num_attrs));
  for (double c : inst.attr_cost) w.PutDouble(c);
  w.PutU32(static_cast<uint32_t>(inst.modules.size()));
  for (const SvModule& m : inst.modules) {
    w.PutString(m.name);
    w.PutU8(m.is_public ? 1 : 0);
    w.PutDouble(m.privatization_cost);
    PutIndexList(&w, m.inputs);
    PutIndexList(&w, m.outputs);
    w.PutU32(static_cast<uint32_t>(m.card_options.size()));
    for (const CardOption& o : m.card_options) {
      w.PutU32(static_cast<uint32_t>(o.alpha));
      w.PutU32(static_cast<uint32_t>(o.beta));
    }
    w.PutU32(static_cast<uint32_t>(m.set_options.size()));
    for (const SetOption& o : m.set_options) {
      PutIndexList(&w, o.hidden_inputs);
      PutIndexList(&w, o.hidden_outputs);
    }
  }
}

Result<SecureViewInstance> DeserializeInstanceBinary(std::string_view bytes) {
  WireReader r(bytes);
  uint32_t magic;
  uint16_t version;
  PV_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kInstanceMagic) {
    return Status::InvalidArgument("bad instance magic");
  }
  PV_RETURN_IF_ERROR(r.ReadU16(&version));
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported instance format version " +
                                   std::to_string(version));
  }
  SecureViewInstance inst;
  uint8_t kind;
  PV_RETURN_IF_ERROR(r.ReadU8(&kind));
  if (kind > 1) return Status::InvalidArgument("bad constraint kind");
  inst.kind = kind == 0 ? ConstraintKind::kCardinality : ConstraintKind::kSet;
  uint32_t num_attrs;
  PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryAttrs, "attr", &num_attrs));
  inst.num_attrs = static_cast<int>(num_attrs);
  // The cost array must fit in what is actually left on the wire — check
  // before reserving so a forged count cannot force a huge allocation.
  if (r.remaining() < static_cast<size_t>(num_attrs) * sizeof(double)) {
    return Status::InvalidArgument("truncated attr cost array");
  }
  inst.attr_cost.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    double c;
    PV_RETURN_IF_ERROR(r.ReadDouble(&c));
    inst.attr_cost.push_back(c);
  }
  uint32_t num_modules;
  PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryModules, "module",
                               &num_modules));
  inst.modules.reserve(num_modules);
  for (uint32_t mi = 0; mi < num_modules; ++mi) {
    SvModule m;
    PV_RETURN_IF_ERROR(r.ReadString(&m.name, kMaxBinaryNameLen));
    uint8_t is_public;
    PV_RETURN_IF_ERROR(r.ReadU8(&is_public));
    if (is_public > 1) return Status::InvalidArgument("bad public flag");
    m.is_public = is_public == 1;
    PV_RETURN_IF_ERROR(r.ReadDouble(&m.privatization_cost));
    PV_RETURN_IF_ERROR(ReadIndexList(&r, num_attrs, "input", &m.inputs));
    PV_RETURN_IF_ERROR(ReadIndexList(&r, num_attrs, "output", &m.outputs));
    uint32_t num_card;
    PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryOptions, "card option",
                                 &num_card));
    m.card_options.reserve(num_card);
    for (uint32_t i = 0; i < num_card; ++i) {
      CardOption o;
      // α / β are bounded by the module arity; Validate() enforces that —
      // here it is enough that they fit a non-negative int.
      PV_RETURN_IF_ERROR(ReadIndex(&r, kMaxBinaryAttrs, "alpha", &o.alpha));
      PV_RETURN_IF_ERROR(ReadIndex(&r, kMaxBinaryAttrs, "beta", &o.beta));
      m.card_options.push_back(o);
    }
    uint32_t num_set;
    PV_RETURN_IF_ERROR(ReadCount(&r, kMaxBinaryOptions, "set option",
                                 &num_set));
    m.set_options.reserve(num_set);
    for (uint32_t i = 0; i < num_set; ++i) {
      SetOption o;
      PV_RETURN_IF_ERROR(
          ReadIndexList(&r, num_attrs, "hidden input", &o.hidden_inputs));
      PV_RETURN_IF_ERROR(
          ReadIndexList(&r, num_attrs, "hidden output", &o.hidden_outputs));
      m.set_options.push_back(std::move(o));
    }
    inst.modules.push_back(std::move(m));
  }
  PV_RETURN_IF_ERROR(r.ExpectEnd());
  PV_RETURN_IF_ERROR(inst.Validate());
  return inst;
}

void SerializeSolutionBinary(const SecureViewSolution& solution,
                             std::string* out) {
  WireWriter w(out);
  w.PutU32(kSolutionMagic);
  w.PutU16(kBinaryVersion);
  PutIndexList(&w, solution.hidden.ToVector());
  PutIndexList(&w, solution.privatized);
}

Result<SecureViewSolution> DeserializeSolutionBinary(std::string_view bytes,
                                                     int num_attrs) {
  if (num_attrs < 0 || num_attrs > static_cast<int>(kMaxBinaryAttrs)) {
    return Status::InvalidArgument("attrs count out of range");
  }
  WireReader r(bytes);
  uint32_t magic;
  uint16_t version;
  PV_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kSolutionMagic) {
    return Status::InvalidArgument("bad solution magic");
  }
  PV_RETURN_IF_ERROR(r.ReadU16(&version));
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported solution format version " +
                                   std::to_string(version));
  }
  SecureViewSolution sol;
  sol.hidden = Bitset64(num_attrs);
  std::vector<int> hidden;
  PV_RETURN_IF_ERROR(ReadIndexList(
      &r, static_cast<uint32_t>(num_attrs), "hidden attr", &hidden));
  for (int a : hidden) sol.hidden.Set(a);
  PV_RETURN_IF_ERROR(ReadIndexList(&r, kMaxBinaryModules, "privatized module",
                                   &sol.privatized));
  PV_RETURN_IF_ERROR(r.ExpectEnd());
  return sol;
}

}  // namespace provview
