// ILP / LP-relaxation encodings of the Secure-View problem:
//   - cardinality constraints: the Figure-3 integer program (with the
//     summation constraints (4)-(5) and the coupling constraints (6)-(7)
//     whose necessity Appendix B.4 proves via integrality-gap examples);
//   - set constraints: program (15)-(17) of Appendix B.5;
//   - general workflows: the Appendix-C.4 extension with a privatization
//     variable w_i per public module and constraints w_i ≥ x_b for every
//     attribute b adjacent to public module i.
#ifndef PROVVIEW_SECUREVIEW_ILP_ENCODING_H_
#define PROVVIEW_SECUREVIEW_ILP_ENCODING_H_

#include <vector>

#include "lp/linear_program.h"
#include "secureview/instance.h"

namespace provview {

/// Encoded program plus the variable maps needed to decode solutions.
struct SvEncoding {
  LinearProgram lp;
  std::vector<int> x_var;                ///< per attribute: x_b
  std::vector<int> w_var;                ///< per module: w_i, or -1 if private
  std::vector<std::vector<int>> r_var;   ///< per module, per option: r_ij
  /// Variables that must be integral for the exact ILP (x, r, w; the
  /// auxiliary y/z of Figure 3 may stay continuous without affecting
  /// exactness).
  std::vector<int> integer_vars;
};

/// Builds the encoding matching inst.kind.
SvEncoding EncodeSecureView(const SecureViewInstance& inst);

/// Ablation variants of the cardinality encoding, for the Appendix-B.4
/// integrality-gap study:
///   kFull       — the Figure-3 program (same as EncodeSecureView);
///   kNoCoupling — drops constraints (6)-(7) (y/z no longer bounded by r),
///                 letting a fractional solution mix incomparable options;
///   kDirect     — drops the y/z accounting entirely and writes
///                 Σ_{b∈I_i} x_b ≥ α_ij·r_ij (resp. outputs) directly;
///                 the same x mass then satisfies every option at once,
///                 which B.4 shows yields an Ω(ℓ_max) gap.
/// All variants agree on INTEGRAL optima (they are valid IPs); they differ
/// in how tight their LP relaxations are.
enum class CardEncodingVariant { kFull, kNoCoupling, kDirect };
SvEncoding EncodeCardinalityVariant(const SecureViewInstance& inst,
                                    CardEncodingVariant variant);

/// Decodes an LP/ILP assignment into a hidden attribute set by thresholding
/// x_b at `threshold`, completing privatizations canonically.
SecureViewSolution DecodeSolution(const SecureViewInstance& inst,
                                  const SvEncoding& enc,
                                  const std::vector<double>& x,
                                  double threshold = 0.5);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_ILP_ENCODING_H_
