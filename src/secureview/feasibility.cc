#include "secureview/feasibility.h"

#include <algorithm>
#include <limits>
#include <set>

namespace provview {

namespace {

// Number of hidden attributes among `attrs`.
int HiddenCount(const std::vector<int>& attrs, const Bitset64& hidden) {
  int count = 0;
  for (int a : attrs) {
    if (hidden.Test(a)) ++count;
  }
  return count;
}

// The `count` cheapest attributes of `attrs` not already in `hidden`,
// given that `already` of them are hidden. Returns the additional ids.
std::vector<int> CheapestMissing(const SecureViewInstance& inst,
                                 const std::vector<int>& attrs,
                                 const Bitset64& hidden, int needed) {
  std::vector<int> candidates;
  for (int a : attrs) {
    if (!hidden.Test(a)) candidates.push_back(a);
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    return inst.attr_cost[static_cast<size_t>(a)] <
           inst.attr_cost[static_cast<size_t>(b)];
  });
  PV_CHECK_MSG(needed <= static_cast<int>(candidates.size()),
               "requirement exceeds available attributes");
  candidates.resize(static_cast<size_t>(std::max(needed, 0)));
  return candidates;
}

}  // namespace

bool ModuleSatisfied(const SecureViewInstance& inst, int module_index,
                     const Bitset64& hidden) {
  const SvModule& m = inst.modules[static_cast<size_t>(module_index)];
  PV_CHECK_MSG(!m.is_public, "public modules carry no requirement");
  if (inst.kind == ConstraintKind::kCardinality) {
    int hidden_in = HiddenCount(m.inputs, hidden);
    int hidden_out = HiddenCount(m.outputs, hidden);
    for (const CardOption& o : m.card_options) {
      if (hidden_in >= o.alpha && hidden_out >= o.beta) return true;
    }
    return false;
  }
  for (const SetOption& o : m.set_options) {
    bool covered = true;
    for (int a : o.hidden_inputs) {
      if (!hidden.Test(a)) {
        covered = false;
        break;
      }
    }
    if (covered) {
      for (int a : o.hidden_outputs) {
        if (!hidden.Test(a)) {
          covered = false;
          break;
        }
      }
    }
    if (covered) return true;
  }
  return false;
}

std::vector<int> RequiredPrivatizations(const SecureViewInstance& inst,
                                        const Bitset64& hidden) {
  std::vector<int> out;
  for (int i : inst.PublicModules()) {
    const SvModule& m = inst.modules[static_cast<size_t>(i)];
    bool touched = false;
    for (int a : m.inputs) {
      if (hidden.Test(a)) {
        touched = true;
        break;
      }
    }
    if (!touched) {
      for (int a : m.outputs) {
        if (hidden.Test(a)) {
          touched = true;
          break;
        }
      }
    }
    if (touched) out.push_back(i);
  }
  return out;
}

SecureViewSolution CompleteSolution(const SecureViewInstance& inst,
                                    const Bitset64& hidden) {
  SecureViewSolution sol;
  sol.hidden = hidden;
  sol.privatized = RequiredPrivatizations(inst, hidden);
  return sol;
}

bool IsFeasible(const SecureViewInstance& inst,
                const SecureViewSolution& solution) {
  for (int i : inst.PrivateModules()) {
    if (!ModuleSatisfied(inst, i, solution.hidden)) return false;
  }
  std::set<int> privatized(solution.privatized.begin(),
                           solution.privatized.end());
  for (int i : RequiredPrivatizations(inst, solution.hidden)) {
    if (privatized.count(i) == 0) return false;
  }
  return true;
}

std::vector<int> UnsatisfiedModules(const SecureViewInstance& inst,
                                    const Bitset64& hidden) {
  std::vector<int> out;
  for (int i : inst.PrivateModules()) {
    if (!ModuleSatisfied(inst, i, hidden)) out.push_back(i);
  }
  return out;
}

Bitset64 CheapestAdditionForOption(const SecureViewInstance& inst,
                                   int module_index, int option_index,
                                   const Bitset64& hidden) {
  const SvModule& m = inst.modules[static_cast<size_t>(module_index)];
  PV_CHECK(!m.is_public);
  std::vector<int> additions;
  if (inst.kind == ConstraintKind::kCardinality) {
    const CardOption& o =
        m.card_options[static_cast<size_t>(option_index)];
    int hidden_in = HiddenCount(m.inputs, hidden);
    int hidden_out = HiddenCount(m.outputs, hidden);
    additions = CheapestMissing(inst, m.inputs, hidden, o.alpha - hidden_in);
    std::vector<int> out_adds =
        CheapestMissing(inst, m.outputs, hidden, o.beta - hidden_out);
    additions.insert(additions.end(), out_adds.begin(), out_adds.end());
  } else {
    const SetOption& o = m.set_options[static_cast<size_t>(option_index)];
    for (int a : o.hidden_inputs) {
      if (!hidden.Test(a)) additions.push_back(a);
    }
    for (int a : o.hidden_outputs) {
      if (!hidden.Test(a)) additions.push_back(a);
    }
  }
  return Bitset64::Of(inst.num_attrs, additions);
}

int NumOptions(const SecureViewInstance& inst, int module_index) {
  const SvModule& m = inst.modules[static_cast<size_t>(module_index)];
  return inst.kind == ConstraintKind::kCardinality
             ? static_cast<int>(m.card_options.size())
             : static_cast<int>(m.set_options.size());
}

Bitset64 CheapestSatisfyingAddition(const SecureViewInstance& inst,
                                    int module_index, const Bitset64& hidden) {
  double best_cost = std::numeric_limits<double>::infinity();
  Bitset64 best(inst.num_attrs);
  for (int j = 0; j < NumOptions(inst, module_index); ++j) {
    Bitset64 addition =
        CheapestAdditionForOption(inst, module_index, j, hidden);
    double cost = inst.AttrCost(addition);
    if (cost < best_cost) {
      best_cost = cost;
      best = addition;
    }
  }
  PV_CHECK_MSG(best_cost < std::numeric_limits<double>::infinity(),
               "no satisfying option for module "
                   << inst.modules[static_cast<size_t>(module_index)].name);
  return best;
}

}  // namespace provview
