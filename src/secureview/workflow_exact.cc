#include "secureview/workflow_exact.h"

#include <cmath>
#include <string>
#include <utility>

#include "privacy/feasible_sets.h"
#include "privacy/possible_worlds.h"
#include "privacy/safety_memo.h"
#include "secureview/bnb_oracle.h"
#include "secureview/from_workflow.h"
#include "secureview/ilp_encoding.h"

namespace provview {

WorkflowExactResult SolveExactForWorkflow(const Workflow& workflow,
                                          const WorkflowExactOptions& options) {
  WorkflowExactResult out;

  // One shared memo per private module, every one bound to its own
  // namespace of one verdict cache. Derivation fills the cache; the
  // memo-backed oracle (and any later call against the same cache) reads
  // it back.
  std::shared_ptr<VerdictCache> cache = options.cache;
  std::vector<std::shared_ptr<SafetyMemo>> memos;
  if (options.kind == ConstraintKind::kSet) {
    if (cache == nullptr) cache = std::make_shared<VerdictCache>();
    memos.resize(static_cast<size_t>(workflow.num_modules()));
    for (int i : workflow.PrivateModuleIndices()) {
      uint32_t ns = cache->RegisterNamespace(
          workflow.module(i).name() + "/exact");
      memos[static_cast<size_t>(i)] = std::make_shared<SafetyMemo>(
          workflow.module(i), Module::kDefaultMaterializeRows, cache, ns);
    }
  }

  std::vector<int64_t> gammas(static_cast<size_t>(workflow.num_modules()),
                              options.gamma);
  out.instance = InstanceFromWorkflow(workflow, gammas, options.kind, memos);

  ExactOptions exact = options.exact;
  if (options.fix_useless_attrs) {
    std::vector<int> useless = UselessAttrs(out.instance);
    exact.fix_visible.insert(exact.fix_visible.end(), useless.begin(),
                             useless.end());
    out.fixed_attrs = std::move(useless);
  }

  if (options.analyze_feasible_sets) {
    // A (no-op) control turns an over-budget execution space into a typed
    // status on the tables instead of an abort.
    ExecControl guard;
    WorkflowTablesOptions topts;
    topts.max_executions = options.analysis_max_executions;
    topts.materialize_threshold = options.analysis_max_executions;
    topts.control = &guard;
    std::shared_ptr<const WorkflowTables> tables =
        BuildWorkflowTables(workflow, topts);
    if (tables != nullptr && tables->status.ok() && tables->log_materialized) {
      FeasibleSetAnalysis analysis = AnalyzeFeasibleSets(
          *tables, Bitset64::All(workflow.num_attrs()), {});
      out.analysis_constant_attrs = 0;
      for (int a : workflow.used_attrs().ToVector()) {
        if (analysis.feasible_values[static_cast<size_t>(a)].size() == 1) {
          ++out.analysis_constant_attrs;
        }
      }
    }
  }

  // The memo-backed oracle routes node satisfaction checks through the
  // shared cache; SolveExact installs the plain instance-level oracle
  // itself otherwise (ExactOptions::oracle).
  SvEncoding oracle_enc;
  if (options.memo_oracle && options.kind == ConstraintKind::kSet &&
      !exact.bnb.oracle) {
    oracle_enc = EncodeSecureView(out.instance);
    for (int a : exact.fix_visible) {
      oracle_enc.lp.SetVarBounds(oracle_enc.x_var[static_cast<size_t>(a)],
                                 0.0, 0.0);
    }
    exact.bnb.oracle = MakeMemoBackedBnbOracle(&out.instance, &oracle_enc,
                                               memos, options.gamma);
  }

  out.result = SolveExact(out.instance, exact);

  // A usable solution exists when the solve completed, or when a trip
  // still carried a feasible incumbent (finite proven gap).
  const bool have_solution =
      out.result.status.ok() ||
      (!out.result.status.ok() && std::isfinite(out.result.gap));
  if (options.verify_semantics && have_solution) {
    out.semantics_verified = VerifySolutionSemantics(
        workflow, out.result.solution, options.gamma);
  }
  return out;
}

}  // namespace provview
