// Combinatorial model of the workflow Secure-View problem (§4.2, §5.2).
// An instance lists the workflow's attributes (with hiding costs), its
// modules (with input/output attribute sets, public flags and privatization
// costs), and per-private-module requirement lists in one of the paper's
// two forms:
//   - cardinality constraints: L_i = ⟨(α_i^j, β_i^j)⟩ — hiding ANY α_i^j
//     inputs and β_i^j outputs of m_i satisfies m_i;
//   - set constraints: L_i = ⟨(I_i^j, O_i^j)⟩ — hiding the specific subset
//     I_i^j ∪ O_i^j satisfies m_i.
// A solution hides an attribute subset V̄ and privatizes a set P̄ of public
// modules; §5.2's cost model charges c(a) per hidden attribute plus c(m)
// per privatized module. All-private workflows (§4) are the special case
// with no public modules.
#ifndef PROVVIEW_SECUREVIEW_INSTANCE_H_
#define PROVVIEW_SECUREVIEW_INSTANCE_H_

#include <string>
#include <vector>

#include "common/bitset64.h"
#include "common/status.h"

namespace provview {

/// Which requirement form the instance carries.
enum class ConstraintKind { kCardinality, kSet };

/// One cardinality option (α, β).
struct CardOption {
  int alpha = 0;
  int beta = 0;
};

/// One set option: hide exactly these inputs and outputs (subsets of the
/// module's I_i / O_i, as attribute indices into the instance universe).
struct SetOption {
  std::vector<int> hidden_inputs;
  std::vector<int> hidden_outputs;
};

/// A module of a Secure-View instance.
struct SvModule {
  std::string name;
  std::vector<int> inputs;   ///< attribute indices
  std::vector<int> outputs;  ///< attribute indices
  bool is_public = false;
  double privatization_cost = 0.0;
  /// Requirement list (empty for public modules, which carry no privacy
  /// requirement of their own).
  std::vector<CardOption> card_options;
  std::vector<SetOption> set_options;
};

/// A full Secure-View instance.
struct SecureViewInstance {
  ConstraintKind kind = ConstraintKind::kCardinality;
  int num_attrs = 0;
  std::vector<double> attr_cost;  ///< c(a), size num_attrs
  std::vector<SvModule> modules;

  int num_modules() const { return static_cast<int>(modules.size()); }

  /// ℓ_max: longest requirement list over private modules.
  int MaxListLength() const;

  /// γ of Definition 3 within this instance: max number of modules
  /// consuming a single attribute.
  int DataSharingDegree() const;

  /// Σ c(a) over a hidden set.
  double AttrCost(const Bitset64& hidden) const;

  /// Indices of private modules (those carrying requirements).
  std::vector<int> PrivateModules() const;
  std::vector<int> PublicModules() const;

  /// Structural sanity: attribute indices in range, options within module
  /// attribute sets, private modules have non-empty requirement lists of
  /// the declared kind.
  Status Validate() const;
};

/// A candidate solution: hidden attributes plus privatized public modules.
struct SecureViewSolution {
  Bitset64 hidden;              ///< over [0, num_attrs)
  std::vector<int> privatized;  ///< indices of privatized public modules

  double AttrCost(const SecureViewInstance& inst) const {
    return inst.AttrCost(hidden);
  }
  double PrivatizationCost(const SecureViewInstance& inst) const;
  double TotalCost(const SecureViewInstance& inst) const {
    return AttrCost(inst) + PrivatizationCost(inst);
  }
};

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_INSTANCE_H_
