// Combinatorial fathoming oracle plugged into the branch-and-bound engine
// (BnbOptions::oracle): from a node's variable box it derives the forced
// hidden / forced visible attribute sets and answers, without any simplex
// work,
//   - infeasible:  some private module cannot be satisfied by ANY hidden
//                  set available inside the box;
//   - resolved:    every private module is already satisfied by the forced
//                  hidden set — the box optimum is the completed forced
//                  solution, whose exact cost closes the subtree and whose
//                  decoded point seeds the incumbent;
//   - bounded:     otherwise, forced cost + a disjoint-module packing of
//                  cheapest completions is a valid lower bound: modules
//                  whose remaining payment universes (attributes any of
//                  their options could still charge for) are pairwise
//                  disjoint cannot share a hidden attribute, so their
//                  cheapest completions sum. Overlapping modules are
//                  packed greedily (most expensive first), which always
//                  dominates the single largest completion.
// The default oracle checks module satisfaction against the instance's
// requirement lists. The memo-backed variant answers kSet satisfaction
// through SafetyMemo::IsSafe instead — semantically identical (the
// requirement list is exactly the memo's minimal-safe-set antichain) but
// routed through the shared VerdictCache, so B&B node checks and instance
// derivation settle into one verdict store.
#ifndef PROVVIEW_SECUREVIEW_BNB_ORACLE_H_
#define PROVVIEW_SECUREVIEW_BNB_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/branch_and_bound.h"
#include "secureview/ilp_encoding.h"
#include "secureview/instance.h"

namespace provview {

class SafetyMemo;

/// Instance-level oracle. `inst` and `enc` are borrowed and must outlive
/// every call; the returned callable is pure and thread-safe.
BnbOracle MakeSecureViewBnbOracle(const SecureViewInstance* inst,
                                  const SvEncoding* enc);

/// Memo-backed variant (kSet instances): satisfaction of private module i
/// is answered by memos[i]->IsSafe(forced_hidden, gamma). `memos` is
/// indexed by module; entries for public modules are ignored and may be
/// null. Root memos are required (concurrent reads).
BnbOracle MakeMemoBackedBnbOracle(
    const SecureViewInstance* inst, const SvEncoding* enc,
    std::vector<std::shared_ptr<SafetyMemo>> memos, int64_t gamma);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_BNB_ORACLE_H_
