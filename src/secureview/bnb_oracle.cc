#include "secureview/bnb_oracle.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "privacy/safety_memo.h"
#include "secureview/feasibility.h"

namespace provview {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cheapest cost of completing option `option` of module `module` from the
// forced hidden set h1, using only attributes outside the forced visible
// set h0. +inf when the box rules the option out.
double OptionCompletionCost(const SecureViewInstance& inst, int module,
                            int option, const Bitset64& h1,
                            const Bitset64& h0) {
  const SvModule& m = inst.modules[static_cast<size_t>(module)];
  if (inst.kind == ConstraintKind::kSet) {
    const SetOption& o = m.set_options[static_cast<size_t>(option)];
    double cost = 0.0;
    for (const auto* side : {&o.hidden_inputs, &o.hidden_outputs}) {
      for (int a : *side) {
        if (h0.Test(a)) return kInf;  // a required attr is forced visible
        if (!h1.Test(a)) cost += inst.attr_cost[static_cast<size_t>(a)];
      }
    }
    return cost;
  }
  // Cardinality: need alpha hidden inputs and beta hidden outputs; take
  // the cheapest eligible attributes (exact for a single option).
  const CardOption& o = m.card_options[static_cast<size_t>(option)];
  auto side_cost = [&](const std::vector<int>& attrs, int need) -> double {
    int have = 0;
    std::vector<double> candidates;
    for (int a : attrs) {
      if (h1.Test(a)) {
        ++have;
      } else if (!h0.Test(a)) {
        candidates.push_back(inst.attr_cost[static_cast<size_t>(a)]);
      }
    }
    int missing = need - have;
    if (missing <= 0) return 0.0;
    if (missing > static_cast<int>(candidates.size())) return kInf;
    std::nth_element(candidates.begin(),
                     candidates.begin() + (missing - 1), candidates.end());
    double cost = 0.0;
    for (int k = 0; k < missing; ++k) cost += candidates[static_cast<size_t>(k)];
    return cost;
  };
  double in_cost = side_cost(m.inputs, o.alpha);
  if (in_cost == kInf) return kInf;
  double out_cost = side_cost(m.outputs, o.beta);
  if (out_cost == kInf) return kInf;
  return in_cost + out_cost;
}

// Shared oracle body; `satisfied` answers "is private module i satisfied
// by the forced hidden set h1?" and must be thread-safe.
BnbNodeCut Evaluate(const SecureViewInstance& inst, const SvEncoding& enc,
                    const std::function<bool(int, const Bitset64&)>& satisfied,
                    const std::vector<double>& lb,
                    const std::vector<double>& ub) {
  BnbNodeCut cut;
  Bitset64 h1(inst.num_attrs);  // forced hidden
  Bitset64 h0(inst.num_attrs);  // forced visible
  for (int a = 0; a < inst.num_attrs; ++a) {
    int v = enc.x_var[static_cast<size_t>(a)];
    if (lb[static_cast<size_t>(v)] > 0.5) h1.Set(a);
    if (ub[static_cast<size_t>(v)] < 0.5) h0.Set(a);
  }
  Bitset64 potential = Bitset64::All(inst.num_attrs);
  for (int a : h0.ToVector()) potential.Reset(a);

  // Per unsatisfied module: its cheapest completion cost and its payment
  // universe — every attribute a completion of any option could still pay
  // for (outside the forced hidden set, whose cost is already in
  // forced_cost). Modules whose universes are pairwise DISJOINT cannot
  // share a single hidden attribute, so their cheapest completions SUM to
  // a valid lower bound — far stronger on wide layered workflows than the
  // max over modules (the packing's first pick), which is all that is
  // sound for overlapping universes.
  struct Unsat {
    int module;
    double cheapest;
    Bitset64 universe;
  };
  std::vector<Unsat> unsat;
  bool all_satisfied = true;
  for (int i = 0; i < inst.num_modules(); ++i) {
    const SvModule& m = inst.modules[static_cast<size_t>(i)];
    if (m.is_public) continue;
    if (satisfied(i, h1)) continue;
    all_satisfied = false;
    // Monotonicity: a module unsatisfiable by every non-forced-visible
    // attribute is unsatisfiable by any hidden set inside the box.
    if (!ModuleSatisfied(inst, i, potential)) {
      cut.infeasible = true;
      return cut;
    }
    Unsat u;
    u.module = i;
    u.cheapest = kInf;
    u.universe = Bitset64(inst.num_attrs);
    for (int j = 0; j < NumOptions(inst, i); ++j) {
      double c = OptionCompletionCost(inst, i, j, h1, h0);
      if (c == kInf) continue;
      u.cheapest = std::min(u.cheapest, c);
      if (inst.kind == ConstraintKind::kSet) {
        const SetOption& o = m.set_options[static_cast<size_t>(j)];
        for (const auto* side : {&o.hidden_inputs, &o.hidden_outputs}) {
          for (int a : *side) {
            if (!h1.Test(a)) u.universe.Set(a);
          }
        }
      }
    }
    if (u.cheapest == kInf) {
      cut.infeasible = true;
      return cut;
    }
    if (inst.kind == ConstraintKind::kCardinality) {
      // Any non-forced input/output may be picked to meet a count.
      for (const auto* side : {&m.inputs, &m.outputs}) {
        for (int a : *side) {
          if (!h1.Test(a) && !h0.Test(a)) u.universe.Set(a);
        }
      }
    }
    unsat.push_back(std::move(u));
  }
  // Greedy packing, most expensive module first (deterministic: stable
  // sort, ties by module index from construction order).
  std::stable_sort(unsat.begin(), unsat.end(),
                   [](const Unsat& a, const Unsat& b) {
                     return a.cheapest > b.cheapest;
                   });
  double packed_completion = 0.0;
  Bitset64 packed_attrs(inst.num_attrs);
  for (const Unsat& u : unsat) {
    if (u.universe.Intersects(packed_attrs)) continue;
    packed_completion += u.cheapest;
    packed_attrs |= u.universe;
  }

  // Privatizations forced by the box: a hidden attribute adjacent to a
  // public module forces its w (coupling w_i >= x_b), and the box may pin
  // w directly. A pinned-zero w clashing with a forced privatization makes
  // the box empty.
  double forced_cost = inst.AttrCost(h1);
  std::vector<bool> forced_w(static_cast<size_t>(inst.num_modules()), false);
  for (int i : RequiredPrivatizations(inst, h1)) {
    forced_w[static_cast<size_t>(i)] = true;
  }
  for (int i = 0; i < inst.num_modules(); ++i) {
    int w = enc.w_var[static_cast<size_t>(i)];
    if (w < 0) continue;
    if (forced_w[static_cast<size_t>(i)] && ub[static_cast<size_t>(w)] < 0.5) {
      cut.infeasible = true;
      return cut;
    }
    if (lb[static_cast<size_t>(w)] > 0.5) forced_w[static_cast<size_t>(i)] = true;
    if (forced_w[static_cast<size_t>(i)]) {
      forced_cost +=
          inst.modules[static_cast<size_t>(i)].privatization_cost;
    }
  }

  if (all_satisfied) {
    // Every point of the box pays at least the forced cost, and the forced
    // solution itself is globally feasible: the subtree is resolved.
    cut.resolved = true;
    cut.objective = forced_cost;
    cut.x.assign(static_cast<size_t>(enc.lp.num_vars()), 0.0);
    for (int a : h1.ToVector()) {
      cut.x[static_cast<size_t>(enc.x_var[static_cast<size_t>(a)])] = 1.0;
    }
    for (int i = 0; i < inst.num_modules(); ++i) {
      int w = enc.w_var[static_cast<size_t>(i)];
      if (w >= 0 && forced_w[static_cast<size_t>(i)]) {
        cut.x[static_cast<size_t>(w)] = 1.0;
      }
    }
    return cut;
  }
  cut.lower_bound = forced_cost + packed_completion;
  return cut;
}

}  // namespace

BnbOracle MakeSecureViewBnbOracle(const SecureViewInstance* inst,
                                  const SvEncoding* enc) {
  return [inst, enc](const std::vector<double>& lb,
                     const std::vector<double>& ub) {
    return Evaluate(*inst, *enc,
                    [inst](int i, const Bitset64& h1) {
                      return ModuleSatisfied(*inst, i, h1);
                    },
                    lb, ub);
  };
}

BnbOracle MakeMemoBackedBnbOracle(
    const SecureViewInstance* inst, const SvEncoding* enc,
    std::vector<std::shared_ptr<SafetyMemo>> memos, int64_t gamma) {
  PV_CHECK_MSG(inst->kind == ConstraintKind::kSet,
               "memo-backed oracle targets set-constraint instances");
  auto shared = std::make_shared<std::vector<std::shared_ptr<SafetyMemo>>>(
      std::move(memos));
  return [inst, enc, shared, gamma](const std::vector<double>& lb,
                                    const std::vector<double>& ub) {
    auto satisfied = [inst, shared, gamma](int i, const Bitset64& h1) {
      const std::shared_ptr<SafetyMemo>& memo =
          (*shared)[static_cast<size_t>(i)];
      if (memo == nullptr) return ModuleSatisfied(*inst, i, h1);
      SafeSearchStats stats;  // per-call: the shared VerdictCache keeps the
                              // cross-call state, stats stay thread-local
      return memo->IsSafe(h1, gamma, &stats);
    };
    return Evaluate(*inst, *enc, satisfied, lb, ub);
  };
}

}  // namespace provview
