// Plain-text serialization for Secure-View instances and solutions, so
// instances can be exported from a workflow system, archived next to
// experiment outputs, and re-solved later. Format is line-oriented and
// versioned; parsing returns Status errors rather than aborting.
//
//   provview-instance v1
//   kind cardinality            # or: set
//   attrs 5
//   costs 1 2 3 4 5
//   module m0 private 0
//   inputs 0 1
//   outputs 2
//   option card 1 0             # cardinality option (alpha beta)
//   option card 0 1
//   module pub public 7.5
//   inputs 2
//   outputs 3
//   end
//
// Set options use: `option set in 0 1 out 2` (either part may be empty).
#ifndef PROVVIEW_SECUREVIEW_SERIALIZATION_H_
#define PROVVIEW_SECUREVIEW_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "secureview/instance.h"

namespace provview {

/// Renders an instance in the format above. Inverse of ParseInstance.
std::string SerializeInstance(const SecureViewInstance& inst);

/// Parses the format above; validates the result before returning it.
Result<SecureViewInstance> ParseInstance(const std::string& text);

/// One-line solution rendering: "hidden 1 3 5 | privatized 0 2".
std::string SerializeSolution(const SecureViewSolution& solution);

/// Parses SerializeSolution output; `num_attrs` sizes the hidden bitset.
Result<SecureViewSolution> ParseSolution(const std::string& text,
                                         int num_attrs);

// ---------------------------------------------------------------------------
// Binary wire format (the podsd payload encoding). Little-endian, length-
// prefixed, and fully bounds-checked on the way in: every count is capped
// before any allocation, every read validates the remaining length, and the
// decoded instance is structurally Validate()d before it is returned — so a
// truncated, hostile, or garbage byte string yields Status::InvalidArgument,
// never an over-read, huge allocation, or abort.
// ---------------------------------------------------------------------------

/// Hard caps on decoded sizes (counts beyond these are rejected as hostile
/// input before anything is allocated).
inline constexpr uint32_t kMaxBinaryAttrs = 1u << 20;
inline constexpr uint32_t kMaxBinaryModules = 1u << 16;
inline constexpr uint32_t kMaxBinaryOptions = 1u << 16;
inline constexpr uint32_t kMaxBinaryNameLen = 1u << 12;

/// Appends the binary rendering of `inst` to `out`.
void SerializeInstanceBinary(const SecureViewInstance& inst, std::string* out);

/// Decodes SerializeInstanceBinary output (and requires every byte of
/// `bytes` to be consumed). Validates the result before returning it.
Result<SecureViewInstance> DeserializeInstanceBinary(std::string_view bytes);

/// Appends the binary rendering of `solution` to `out`.
void SerializeSolutionBinary(const SecureViewSolution& solution,
                             std::string* out);

/// Decodes SerializeSolutionBinary output; `num_attrs` sizes the hidden
/// bitset and bounds the decoded attribute indices.
Result<SecureViewSolution> DeserializeSolutionBinary(std::string_view bytes,
                                                     int num_attrs);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_SERIALIZATION_H_
