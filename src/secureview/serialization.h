// Plain-text serialization for Secure-View instances and solutions, so
// instances can be exported from a workflow system, archived next to
// experiment outputs, and re-solved later. Format is line-oriented and
// versioned; parsing returns Status errors rather than aborting.
//
//   provview-instance v1
//   kind cardinality            # or: set
//   attrs 5
//   costs 1 2 3 4 5
//   module m0 private 0
//   inputs 0 1
//   outputs 2
//   option card 1 0             # cardinality option (alpha beta)
//   option card 0 1
//   module pub public 7.5
//   inputs 2
//   outputs 3
//   end
//
// Set options use: `option set in 0 1 out 2` (either part may be empty).
#ifndef PROVVIEW_SECUREVIEW_SERIALIZATION_H_
#define PROVVIEW_SECUREVIEW_SERIALIZATION_H_

#include <string>

#include "secureview/instance.h"

namespace provview {

/// Renders an instance in the format above. Inverse of ParseInstance.
std::string SerializeInstance(const SecureViewInstance& inst);

/// Parses the format above; validates the result before returning it.
Result<SecureViewInstance> ParseInstance(const std::string& text);

/// One-line solution rendering: "hidden 1 3 5 | privatized 0 2".
std::string SerializeSolution(const SecureViewSolution& solution);

/// Parses SerializeSolution output; `num_attrs` sizes the hidden bitset.
Result<SecureViewSolution> ParseSolution(const std::string& text,
                                         int num_attrs);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_SERIALIZATION_H_
