// Plain-text serialization for Secure-View instances and solutions, so
// instances can be exported from a workflow system, archived next to
// experiment outputs, and re-solved later. Format is line-oriented and
// versioned; parsing returns Status errors rather than aborting.
//
//   provview-instance v1
//   kind cardinality            # or: set
//   attrs 5
//   costs 1 2 3 4 5
//   module m0 private 0
//   inputs 0 1
//   outputs 2
//   option card 1 0             # cardinality option (alpha beta)
//   option card 0 1
//   module pub public 7.5
//   inputs 2
//   outputs 3
//   end
//
// Set options use: `option set in 0 1 out 2` (either part may be empty).
#ifndef PROVVIEW_SECUREVIEW_SERIALIZATION_H_
#define PROVVIEW_SECUREVIEW_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "secureview/instance.h"
#include "workflow/workflow.h"

namespace provview {

/// Renders an instance in the format above. Inverse of ParseInstance.
std::string SerializeInstance(const SecureViewInstance& inst);

/// Parses the format above; validates the result before returning it.
Result<SecureViewInstance> ParseInstance(const std::string& text);

/// One-line solution rendering: "hidden 1 3 5 | privatized 0 2".
std::string SerializeSolution(const SecureViewSolution& solution);

/// Parses SerializeSolution output; `num_attrs` sizes the hidden bitset.
Result<SecureViewSolution> ParseSolution(const std::string& text,
                                         int num_attrs);

// ---------------------------------------------------------------------------
// Binary wire format (the podsd payload encoding). Little-endian, length-
// prefixed, and fully bounds-checked on the way in: every count is capped
// before any allocation, every read validates the remaining length, and the
// decoded instance is structurally Validate()d before it is returned — so a
// truncated, hostile, or garbage byte string yields Status::InvalidArgument,
// never an over-read, huge allocation, or abort.
// ---------------------------------------------------------------------------

/// Hard caps on decoded sizes (counts beyond these are rejected as hostile
/// input before anything is allocated).
inline constexpr uint32_t kMaxBinaryAttrs = 1u << 20;
inline constexpr uint32_t kMaxBinaryModules = 1u << 16;
inline constexpr uint32_t kMaxBinaryOptions = 1u << 16;
inline constexpr uint32_t kMaxBinaryNameLen = 1u << 12;

/// Appends the binary rendering of `inst` to `out`.
void SerializeInstanceBinary(const SecureViewInstance& inst, std::string* out);

/// Decodes SerializeInstanceBinary output (and requires every byte of
/// `bytes` to be consumed). Validates the result before returning it.
Result<SecureViewInstance> DeserializeInstanceBinary(std::string_view bytes);

/// Appends the binary rendering of `solution` to `out`.
void SerializeSolutionBinary(const SecureViewSolution& solution,
                             std::string* out);

/// Decodes SerializeSolutionBinary output; `num_attrs` sizes the hidden
/// bitset and bounds the decoded attribute indices.
Result<SecureViewSolution> DeserializeSolutionBinary(std::string_view bytes,
                                                     int num_attrs);

// ---------------------------------------------------------------------------
// Binary WORKFLOW codec (the podsd REGISTER payload). Module functions are
// arbitrary C++ and cannot travel over the wire, so a serialized workflow
// carries each module EXTENSIONALLY: the catalog (name / domain size / cost
// per attribute) plus, per module, its wiring and the output tuple of every
// point of its input domain in odometer order — inputs are implied by the
// position, so the decoded table is a total function by construction
// (TableModule::Eval on a missing input is a fatal error a hostile partial
// table could otherwise trigger inside a daemon). Same discipline as the
// instance codec: every count capped before allocation, every value range-
// checked against the catalog, and the decoded workflow must pass
// Workflow::Validate() before it is returned.
// ---------------------------------------------------------------------------

/// Caps on decoded workflows. Tighter than the instance caps because every
/// module ships its full extension: the per-module row cap bounds the
/// decode-side table build, and rows * outputs u32 values bound the bytes.
inline constexpr uint32_t kMaxWorkflowAttrs = 4096;
inline constexpr uint32_t kMaxWorkflowModules = 1024;
inline constexpr uint32_t kMaxWorkflowModuleArity = 32;
inline constexpr uint32_t kMaxWorkflowTableRows = 1u << 16;
inline constexpr int kMaxWorkflowAttrDomain = 1 << 20;

/// A decoded workflow and the catalog that keeps it alive (Workflow borrows
/// the catalog via shared_ptr; the pair travels together).
struct WorkflowBundle {
  CatalogPtr catalog;
  WorkflowPtr workflow;
};

/// Appends the binary rendering of `workflow` to `out`. Fails (without
/// touching `out`) when a module's input domain exceeds
/// kMaxWorkflowTableRows — such modules cannot ship extensionally.
Status SerializeWorkflowBinary(const Workflow& workflow, std::string* out);

/// Decodes SerializeWorkflowBinary output (every byte must be consumed).
/// The result is a fully validated workflow over fresh TableModules whose
/// relations are value-identical to the serialized ones — certification
/// verdicts against it are byte-identical to the original workflow's.
Result<WorkflowBundle> DeserializeWorkflowBinary(std::string_view bytes);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_SERIALIZATION_H_
