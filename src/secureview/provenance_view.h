// The artifact the workflow owner actually ships: a provenance view.
// Bundles a workflow with a Secure-View solution (hidden attributes +
// privatized public modules) and answers the queries the paper says the
// view still supports (§1, Related Work): exact values of visible data,
// which module produced which item, and whether two data items depend on
// each other — everything except the hidden values and the identities of
// privatized modules.
#ifndef PROVVIEW_SECUREVIEW_PROVENANCE_VIEW_H_
#define PROVVIEW_SECUREVIEW_PROVENANCE_VIEW_H_

#include <string>
#include <vector>

#include "secureview/instance.h"
#include "workflow/workflow.h"

namespace provview {

/// Non-owning facade over a workflow + solution. The workflow must outlive
/// the view.
class ProvenanceView {
 public:
  ProvenanceView(const Workflow* workflow, SecureViewSolution solution);

  const Workflow& workflow() const { return *workflow_; }
  const SecureViewSolution& solution() const { return solution_; }
  const Bitset64& hidden() const { return solution_.hidden; }
  Bitset64 visible() const { return solution_.hidden.Complement(); }

  bool IsVisible(AttrId id) const;
  bool IsPrivatized(int module_index) const;

  /// Visible attribute ids in increasing order (used attributes only).
  std::vector<AttrId> VisibleAttrs() const;

  /// π_V of the full provenance relation — what a user downloads.
  Relation Materialize(int64_t max_rows = 1 << 22) const;

  /// π_V of an execution log over the given initial inputs.
  Relation MaterializeOn(const std::vector<Tuple>& initial_inputs) const;

  /// Name shown to users for a module: real name for visible modules,
  /// an anonymized placeholder for privatized ones (renaming is the §5
  /// privatization mechanism).
  std::string ModuleDisplayName(int module_index) const;

  /// Display name of the module that produced attribute `id`, or
  /// "(external input)" for initial inputs. Works for hidden attributes
  /// too — the paper's view keeps all structural information.
  std::string ProducerDisplayName(AttrId id) const;

  /// True if `downstream` transitively depends on `upstream` through the
  /// module DAG ("whether two visible data items depend on each other").
  bool Depends(AttrId downstream, AttrId upstream) const;

  /// Σ c(a) over hidden attributes — the utility lost to users.
  double LostUtility() const;

 private:
  const Workflow* workflow_;
  SecureViewSolution solution_;
  std::vector<bool> privatized_;  // per module index
};

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_PROVENANCE_VIEW_H_
