// Secure-View solvers:
//   SolveExact           — branch-and-bound on the ILP encoding (the OPT
//                          that approximation ratios are measured against).
//   SolveBruteForce      — subset enumeration, for cross-checking on tiny
//                          instances.
//   SolveByLpRounding    — Algorithm 1 (Theorem 5): randomized rounding of
//                          the LP relaxation with the B_i^min repair step;
//                          O(log n)-approximation for cardinality
//                          constraints in all-private workflows.
//   SolveByThresholdRounding — Appendix B.5.1 / C.4: deterministic
//                          rounding at 1/ℓ_max; ℓ_max-approximation for set
//                          constraints (also with privatization costs).
//   SolveGreedyPerModule — union of per-module cheapest options; the
//                          (γ+1)-approximation of Theorem 7.
//   SolveGreedyCoverage  — global cost-effectiveness greedy baseline.
#ifndef PROVVIEW_SECUREVIEW_SOLVERS_H_
#define PROVVIEW_SECUREVIEW_SOLVERS_H_

#include <cstdint>

#include "common/exec_control.h"
#include "lp/branch_and_bound.h"
#include "secureview/instance.h"

namespace provview {

/// Common result shape. `lower_bound` is a proven lower bound on OPT when
/// the solver produces one (exact: OPT itself; LP-based: the relaxation
/// objective), else 0. `gap` = cost - lower_bound: 0 means proven optimal,
/// and a deadlined / node-budgeted SolveExact reports the finite gap its
/// incumbent was proven to be within.
struct SvResult {
  Status status;
  SecureViewSolution solution;
  double cost = 0.0;
  double lower_bound = 0.0;
  double gap = 0.0;
  int64_t work = 0;  ///< solver-specific effort (nodes / iterations / trials)
};

/// Knobs for the exact solver beyond the raw branch-and-bound ones.
struct ExactOptions {
  BnbOptions bnb;
  /// Seed the incumbent with min(SolveGreedyPerModule, SolveByLpRounding)
  /// before the search: B&B prunes against a real upper bound from node
  /// one, and a deadline trip always has a feasible solution to return.
  bool warm_start = true;
  /// Rounding trials for the warm start's SolveByLpRounding leg; 0 skips
  /// the LP leg entirely (greedy only — no simplex before the search).
  int warm_rounding_trials = 3;
  /// Install the combinatorial fathoming oracle (bnb_oracle.h) so safe /
  /// doomed subtrees close without simplex work. Ignored when bnb.oracle is
  /// already set by the caller (e.g. the memo-backed workflow variant).
  bool oracle = true;
  /// Attributes pinned visible (x_a := 0) before the search — sound when
  /// hiding them can never help (they appear in no requirement option;
  /// see UselessAttrs / SolveExactForWorkflow).
  std::vector<int> fix_visible;
};

/// Attributes that appear in no requirement option of any private module:
/// hiding one only adds cost (and possibly privatizations), so pinning
/// them visible preserves the exact optimum.
std::vector<int> UselessAttrs(const SecureViewInstance& inst);

/// Exact optimum via branch-and-bound on the ILP encoding, with warm-start
/// pruning per `options`. A tripped deadline / node budget returns the
/// typed status WITH the best feasible solution found and the proven
/// optimality gap.
SvResult SolveExact(const SecureViewInstance& inst,
                    const ExactOptions& options = {});

/// Raw engine entry point: no warm start, `options` passed through.
SvResult SolveExact(const SecureViewInstance& inst, const BnbOptions& options);

/// Exact optimum via enumeration of all subsets of requirement-relevant
/// attributes (≤ 22 of them). `control` is polled between blocks of masks.
SvResult SolveBruteForce(const SecureViewInstance& inst,
                         const ExecControl* control = nullptr);

/// Options for the Algorithm-1 randomized rounding.
struct RoundingOptions {
  double scale = 2.0;   ///< c in Pr[hide b] = min{1, c · x_b · ln n}
  int trials = 7;       ///< independent rounding trials; best kept
  uint64_t seed = 42;
  SimplexOptions simplex;
  /// Deadline/cancel token; also installed into the simplex when its own
  /// control is unset.
  const ExecControl* control = nullptr;
};

/// Algorithm 1: LP relaxation + randomized rounding + per-module repair.
/// Works for both constraint kinds (the paper analyzes the cardinality
/// case). Always returns a feasible solution; `lower_bound` is the LP
/// optimum.
SvResult SolveByLpRounding(const SecureViewInstance& inst,
                           const RoundingOptions& options = {});

/// Deterministic threshold rounding at 1/ℓ_max (set constraints; Theorem 6
/// and Appendix C.4). Requires inst.kind == kSet.
SvResult SolveByThresholdRounding(const SecureViewInstance& inst,
                                  const SimplexOptions& options = {});

/// Union of per-module cheapest options — the (γ+1)-approximation of
/// Theorem 7 (and Example 5's "standalone union" behavior under workflow
/// bridging). `control` is polled once per module.
SvResult SolveGreedyPerModule(const SecureViewInstance& inst,
                              const ExecControl* control = nullptr);

/// Global greedy: repeatedly commits the cheapest per-module satisfying
/// addition with the best (marginal cost / newly satisfied modules) ratio.
/// `control` is polled once per committed addition.
SvResult SolveGreedyCoverage(const SecureViewInstance& inst,
                             const ExecControl* control = nullptr);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_SOLVERS_H_
