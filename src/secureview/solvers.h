// Secure-View solvers:
//   SolveExact           — branch-and-bound on the ILP encoding (the OPT
//                          that approximation ratios are measured against).
//   SolveBruteForce      — subset enumeration, for cross-checking on tiny
//                          instances.
//   SolveByLpRounding    — Algorithm 1 (Theorem 5): randomized rounding of
//                          the LP relaxation with the B_i^min repair step;
//                          O(log n)-approximation for cardinality
//                          constraints in all-private workflows.
//   SolveByThresholdRounding — Appendix B.5.1 / C.4: deterministic
//                          rounding at 1/ℓ_max; ℓ_max-approximation for set
//                          constraints (also with privatization costs).
//   SolveGreedyPerModule — union of per-module cheapest options; the
//                          (γ+1)-approximation of Theorem 7.
//   SolveGreedyCoverage  — global cost-effectiveness greedy baseline.
#ifndef PROVVIEW_SECUREVIEW_SOLVERS_H_
#define PROVVIEW_SECUREVIEW_SOLVERS_H_

#include <cstdint>

#include "lp/branch_and_bound.h"
#include "secureview/instance.h"

namespace provview {

/// Common result shape. `lower_bound` is a proven lower bound on OPT when
/// the solver produces one (exact: OPT itself; LP-based: the relaxation
/// objective), else 0.
struct SvResult {
  Status status;
  SecureViewSolution solution;
  double cost = 0.0;
  double lower_bound = 0.0;
  int64_t work = 0;  ///< solver-specific effort (nodes / iterations / trials)
};

/// Exact optimum via branch-and-bound on the ILP encoding.
SvResult SolveExact(const SecureViewInstance& inst,
                    const BnbOptions& options = {});

/// Exact optimum via enumeration of all subsets of requirement-relevant
/// attributes (≤ 22 of them).
SvResult SolveBruteForce(const SecureViewInstance& inst);

/// Options for the Algorithm-1 randomized rounding.
struct RoundingOptions {
  double scale = 2.0;   ///< c in Pr[hide b] = min{1, c · x_b · ln n}
  int trials = 7;       ///< independent rounding trials; best kept
  uint64_t seed = 42;
  SimplexOptions simplex;
};

/// Algorithm 1: LP relaxation + randomized rounding + per-module repair.
/// Works for both constraint kinds (the paper analyzes the cardinality
/// case). Always returns a feasible solution; `lower_bound` is the LP
/// optimum.
SvResult SolveByLpRounding(const SecureViewInstance& inst,
                           const RoundingOptions& options = {});

/// Deterministic threshold rounding at 1/ℓ_max (set constraints; Theorem 6
/// and Appendix C.4). Requires inst.kind == kSet.
SvResult SolveByThresholdRounding(const SecureViewInstance& inst,
                                  const SimplexOptions& options = {});

/// Union of per-module cheapest options — the (γ+1)-approximation of
/// Theorem 7 (and Example 5's "standalone union" behavior under workflow
/// bridging).
SvResult SolveGreedyPerModule(const SecureViewInstance& inst);

/// Global greedy: repeatedly commits the cheapest per-module satisfying
/// addition with the best (marginal cost / newly satisfied modules) ratio.
SvResult SolveGreedyCoverage(const SecureViewInstance& inst);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_SOLVERS_H_
