// Bridge from executable workflows to combinatorial Secure-View instances.
// For each private module the §3 standalone searches derive its requirement
// list from its actual functionality:
//   - set constraints: the antichain of minimal safe hidden subsets
//     (Theorem 4 makes any per-module choice compose into workflow privacy);
//   - cardinality constraints: the minimal safe (α, β) frontier.
// Public modules are carried over with their privatization costs
// (Theorem 8 / §5.2).
#ifndef PROVVIEW_SECUREVIEW_FROM_WORKFLOW_H_
#define PROVVIEW_SECUREVIEW_FROM_WORKFLOW_H_

#include <memory>

#include "secureview/instance.h"
#include "workflow/workflow.h"

namespace provview {

class SafetyMemo;

/// Builds the Secure-View instance of `workflow` for privacy target Γ.
/// Attribute indices coincide with catalog attribute ids. Every private
/// module must have at least one safe option (hiding all its attributes is
/// checked as a fallback); otherwise this aborts — such a module cannot be
/// made Γ-private at all.
SecureViewInstance InstanceFromWorkflow(const Workflow& workflow,
                                        int64_t gamma, ConstraintKind kind);

/// Heterogeneous privacy targets: one Γ_i per module index (entries for
/// public modules are ignored). The paper notes (§2.4) that all results
/// carry over unchanged to per-module requirements.
SecureViewInstance InstanceFromWorkflow(const Workflow& workflow,
                                        const std::vector<int64_t>& gammas,
                                        ConstraintKind kind);

/// As above, but kSet derivations run on caller-provided SafetyMemos
/// (indexed by module; entries for public modules may be null). Passing
/// memos bound to a shared VerdictCache (see SafetyMemo's cache-namespace
/// constructor) makes the derivation verdicts persist past this call —
/// SolveExactForWorkflow reuses the same memos for its B&B safety oracle,
/// so node fathoming and derivation settle into one store. A null entry
/// for a private module falls back to a private per-derivation memo.
SecureViewInstance InstanceFromWorkflow(
    const Workflow& workflow, const std::vector<int64_t>& gammas,
    ConstraintKind kind,
    const std::vector<std::shared_ptr<SafetyMemo>>& memos);

/// The Example-5 baseline: each private module independently hides its own
/// minimum-cost standalone-safe subset; the workflow hides the union
/// (and privatizes the touched public modules). Theorem 4/8 guarantee
/// feasibility; Example 5 shows the cost can be Ω(n) · OPT.
SecureViewSolution UnionOfStandaloneOptima(const Workflow& workflow,
                                           int64_t gamma);

/// End-to-end check tying the optimizer back to the semantics: certifies
/// (via the Theorem 4/8 sufficient condition) that `solution` makes every
/// private module Γ-standalone-private and privatizes every public module
/// it must. Returns true iff certified.
bool VerifySolutionSemantics(const Workflow& workflow,
                             const SecureViewSolution& solution,
                             int64_t gamma);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_FROM_WORKFLOW_H_
