#include "secureview/provenance_view.h"

#include <functional>

namespace provview {

ProvenanceView::ProvenanceView(const Workflow* workflow,
                               SecureViewSolution solution)
    : workflow_(workflow), solution_(std::move(solution)) {
  PV_CHECK(workflow_ != nullptr);
  PV_CHECK_MSG(workflow_->validated(), "workflow must be validated");
  PV_CHECK_MSG(solution_.hidden.size() == workflow_->catalog()->size(),
               "solution universe mismatch");
  privatized_.assign(static_cast<size_t>(workflow_->num_modules()), false);
  for (int i : solution_.privatized) {
    PV_CHECK(i >= 0 && i < workflow_->num_modules());
    PV_CHECK_MSG(workflow_->module(i).is_public(),
                 "only public modules can be privatized");
    privatized_[static_cast<size_t>(i)] = true;
  }
}

bool ProvenanceView::IsVisible(AttrId id) const {
  return !solution_.hidden.Test(id);
}

bool ProvenanceView::IsPrivatized(int module_index) const {
  PV_CHECK(module_index >= 0 && module_index < workflow_->num_modules());
  return privatized_[static_cast<size_t>(module_index)];
}

std::vector<AttrId> ProvenanceView::VisibleAttrs() const {
  std::vector<AttrId> out;
  for (AttrId id = 0; id < workflow_->catalog()->size(); ++id) {
    if (workflow_->used_attrs().Test(id) && IsVisible(id)) out.push_back(id);
  }
  return out;
}

Relation ProvenanceView::Materialize(int64_t max_rows) const {
  return workflow_->ProvenanceRelation(max_rows).ProjectSet(visible());
}

Relation ProvenanceView::MaterializeOn(
    const std::vector<Tuple>& initial_inputs) const {
  return workflow_->ProvenanceOn(initial_inputs).ProjectSet(visible());
}

std::string ProvenanceView::ModuleDisplayName(int module_index) const {
  PV_CHECK(module_index >= 0 && module_index < workflow_->num_modules());
  if (privatized_[static_cast<size_t>(module_index)]) {
    return "private-" + std::to_string(module_index);
  }
  return workflow_->module(module_index).name();
}

std::string ProvenanceView::ProducerDisplayName(AttrId id) const {
  int producer = workflow_->ProducerOf(id);
  if (producer < 0) return "(external input)";
  return ModuleDisplayName(producer);
}

bool ProvenanceView::Depends(AttrId downstream, AttrId upstream) const {
  PV_CHECK(downstream >= 0 && downstream < workflow_->catalog()->size());
  PV_CHECK(upstream >= 0 && upstream < workflow_->catalog()->size());
  if (downstream == upstream) return true;
  // DFS from `upstream` through consumer modules.
  std::vector<bool> attr_seen(
      static_cast<size_t>(workflow_->catalog()->size()), false);
  std::function<bool(AttrId)> reach = [&](AttrId from) {
    if (from == downstream) return true;
    if (attr_seen[static_cast<size_t>(from)]) return false;
    attr_seen[static_cast<size_t>(from)] = true;
    for (int consumer : workflow_->ConsumersOf(from)) {
      for (AttrId out : workflow_->module(consumer).outputs()) {
        if (reach(out)) return true;
      }
    }
    return false;
  };
  return reach(upstream);
}

double ProvenanceView::LostUtility() const {
  return workflow_->AttrCost(solution_.hidden);
}

}  // namespace provview
