#include "secureview/from_workflow.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/thread_pool.h"
#include "privacy/safe_subset_search.h"
#include "privacy/workflow_privacy.h"

namespace provview {

SecureViewInstance InstanceFromWorkflow(const Workflow& workflow,
                                        int64_t gamma, ConstraintKind kind) {
  return InstanceFromWorkflow(
      workflow,
      std::vector<int64_t>(static_cast<size_t>(workflow.num_modules()),
                           gamma),
      kind);
}

SecureViewInstance InstanceFromWorkflow(const Workflow& workflow,
                                        const std::vector<int64_t>& gammas,
                                        ConstraintKind kind) {
  return InstanceFromWorkflow(workflow, gammas, kind, {});
}

SecureViewInstance InstanceFromWorkflow(
    const Workflow& workflow, const std::vector<int64_t>& gammas,
    ConstraintKind kind,
    const std::vector<std::shared_ptr<SafetyMemo>>& memos) {
  PV_CHECK_MSG(static_cast<int>(gammas.size()) == workflow.num_modules(),
               "one gamma per module expected");
  PV_CHECK_MSG(memos.empty() ||
                   static_cast<int>(memos.size()) == workflow.num_modules(),
               "one memo slot per module expected");
  const AttributeCatalog& catalog = *workflow.catalog();
  SecureViewInstance inst;
  inst.kind = kind;
  inst.num_attrs = catalog.size();
  inst.attr_cost.reserve(static_cast<size_t>(catalog.size()));
  for (AttrId id = 0; id < catalog.size(); ++id) {
    inst.attr_cost.push_back(catalog.Cost(id));
  }
  // Derive every private module's requirement list in parallel: one task
  // per private module on a shared pool, each owning one SafetyMemo (its
  // materialized relation plus verdict cache) for the whole derivation.
  // Sequentially this shares nothing across modules and dominates instance
  // construction on real workflows.
  const int n = workflow.num_modules();
  std::vector<std::vector<SetOption>> set_options(static_cast<size_t>(n));
  std::vector<std::vector<CardOption>> card_options(static_cast<size_t>(n));
  const std::vector<int> private_modules = workflow.PrivateModuleIndices();
  auto derive = [&](int i) {
    const Module& m = workflow.module(i);
    const int64_t gamma = gammas[static_cast<size_t>(i)];
    if (kind == ConstraintKind::kSet) {
      // A shared memo (bound to a VerdictCache namespace) keeps the
      // derivation verdicts alive for the caller; otherwise the memo is
      // private to this derivation, the historical behavior.
      SafetyMemo* memo = nullptr;
      std::unique_ptr<SafetyMemo> own;
      if (!memos.empty() && memos[static_cast<size_t>(i)] != nullptr) {
        memo = memos[static_cast<size_t>(i)].get();
      } else {
        own = std::make_unique<SafetyMemo>(m);
        memo = own.get();
      }
      SafeSearchStats stats;
      std::vector<Bitset64> minimal = MinimalSafeHiddenSets(
          memo, m.inputs(), m.outputs(), catalog.size(), gamma, &stats);
      PV_CHECK_MSG(!minimal.empty(),
                   "module " << m.name() << " cannot reach gamma " << gamma);
      std::set<AttrId> in_set(m.inputs().begin(), m.inputs().end());
      for (const Bitset64& hidden : minimal) {
        SetOption option;
        for (int a : hidden.ToVector()) {
          if (in_set.count(a) != 0) {
            option.hidden_inputs.push_back(a);
          } else {
            option.hidden_outputs.push_back(a);
          }
        }
        set_options[static_cast<size_t>(i)].push_back(std::move(option));
      }
    } else {
      std::vector<CardinalityPair> frontier =
          MinimalSafeCardinalityPairs(m, gamma);
      PV_CHECK_MSG(!frontier.empty(),
                   "module " << m.name()
                             << " has no safe cardinality pair for gamma "
                             << gamma);
      for (const CardinalityPair& p : frontier) {
        card_options[static_cast<size_t>(i)].push_back(
            CardOption{p.alpha, p.beta});
      }
    }
  };
  const int threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(ThreadPool::DefaultThreads()),
      private_modules.size()));
  if (threads <= 1) {
    for (int i : private_modules) derive(i);
  } else {
    ThreadPool pool(threads);
    for (int i : private_modules) {
      pool.Submit([&derive, i] { derive(i); });
    }
    pool.Wait();
  }

  for (int i = 0; i < n; ++i) {
    const Module& m = workflow.module(i);
    SvModule spec;
    spec.name = m.name();
    spec.inputs.assign(m.inputs().begin(), m.inputs().end());
    spec.outputs.assign(m.outputs().begin(), m.outputs().end());
    spec.is_public = m.is_public();
    spec.privatization_cost = m.is_public() ? m.privatization_cost() : 0.0;
    spec.set_options = std::move(set_options[static_cast<size_t>(i)]);
    spec.card_options = std::move(card_options[static_cast<size_t>(i)]);
    inst.modules.push_back(std::move(spec));
  }
  Status st = inst.Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  return inst;
}

SecureViewSolution UnionOfStandaloneOptima(const Workflow& workflow,
                                           int64_t gamma) {
  std::vector<Bitset64> per_module;
  for (int i : workflow.PrivateModuleIndices()) {
    MinCostSafeResult r = MinCostSafeHiddenSet(workflow.module(i), gamma);
    PV_CHECK_MSG(r.found, "module " << workflow.module(i).name()
                                    << " cannot reach gamma " << gamma);
    per_module.push_back(r.hidden);
  }
  ComposedSolution composed =
      ComposeStandaloneSolutions(workflow, per_module);
  SecureViewSolution sol;
  sol.hidden = composed.hidden;
  sol.privatized = composed.privatized_modules;
  return sol;
}

bool VerifySolutionSemantics(const Workflow& workflow,
                             const SecureViewSolution& solution,
                             int64_t gamma) {
  PrivacyCertificate cert =
      CertifyWorkflowPrivacy(workflow, solution.hidden, gamma);
  if (!cert.certified) return false;
  std::set<int> privatized(solution.privatized.begin(),
                           solution.privatized.end());
  for (int i : cert.required_privatizations) {
    if (privatized.count(i) == 0) return false;
  }
  return true;
}

}  // namespace provview
