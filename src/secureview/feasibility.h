// Feasibility checking and solution completion for Secure-View instances.
#ifndef PROVVIEW_SECUREVIEW_FEASIBILITY_H_
#define PROVVIEW_SECUREVIEW_FEASIBILITY_H_

#include "secureview/instance.h"

namespace provview {

/// True if hidden satisfies private module `module_index`'s requirement
/// list (∃ an option met by `hidden`).
bool ModuleSatisfied(const SecureViewInstance& inst, int module_index,
                     const Bitset64& hidden);

/// Public modules that must be privatized for `hidden` to be safe
/// (Theorem 8 / IP constraint (21): every public module with a hidden
/// input or output attribute).
std::vector<int> RequiredPrivatizations(const SecureViewInstance& inst,
                                        const Bitset64& hidden);

/// Builds the canonical solution induced by a hidden attribute set:
/// privatizes exactly the required public modules.
SecureViewSolution CompleteSolution(const SecureViewInstance& inst,
                                    const Bitset64& hidden);

/// Full feasibility: every private module satisfied AND every public
/// module with a hidden adjacent attribute is privatized.
bool IsFeasible(const SecureViewInstance& inst,
                const SecureViewSolution& solution);

/// Indices of private modules NOT satisfied by `hidden`.
std::vector<int> UnsatisfiedModules(const SecureViewInstance& inst,
                                    const Bitset64& hidden);

/// Minimum-cost attribute set whose addition to `hidden` realizes option
/// `option_index` of private module `module_index`, counting only
/// attributes not already hidden.
Bitset64 CheapestAdditionForOption(const SecureViewInstance& inst,
                                   int module_index, int option_index,
                                   const Bitset64& hidden);

/// Minimum-cost attribute set whose addition to `hidden` satisfies private
/// module `module_index` (the B_i^min repair step of Algorithm 1):
/// cheapest completion over all options, counting only attributes not
/// already hidden. Always exists for a valid instance.
Bitset64 CheapestSatisfyingAddition(const SecureViewInstance& inst,
                                    int module_index, const Bitset64& hidden);

/// Number of options in module `module_index`'s requirement list (of the
/// instance's constraint kind).
int NumOptions(const SecureViewInstance& inst, int module_index);

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_FEASIBILITY_H_
