#include "secureview/ilp_encoding.h"

#include "secureview/feasibility.h"

namespace provview {

namespace {

// Shared scaffolding: x_b per attribute, w_i per public module with the
// C.4 coupling constraints w_i ≥ x_b.
void EncodeCommon(const SecureViewInstance& inst, SvEncoding* enc) {
  enc->x_var.reserve(static_cast<size_t>(inst.num_attrs));
  for (int b = 0; b < inst.num_attrs; ++b) {
    enc->x_var.push_back(enc->lp.AddUnitVariable(
        inst.attr_cost[static_cast<size_t>(b)], "x_" + std::to_string(b)));
    enc->integer_vars.push_back(enc->x_var.back());
  }
  enc->w_var.assign(static_cast<size_t>(inst.num_modules()), -1);
  for (int i : inst.PublicModules()) {
    const SvModule& m = inst.modules[static_cast<size_t>(i)];
    int w = enc->lp.AddUnitVariable(m.privatization_cost,
                                    "w_" + std::to_string(i));
    enc->w_var[static_cast<size_t>(i)] = w;
    enc->integer_vars.push_back(w);
    auto couple = [&](int b) {
      // w_i - x_b ≥ 0.
      enc->lp.AddConstraint({{w, 1.0}, {enc->x_var[static_cast<size_t>(b)], -1.0}},
                            ConstraintSense::kGe, 0.0);
    };
    for (int b : m.inputs) couple(b);
    for (int b : m.outputs) couple(b);
  }
  enc->r_var.assign(static_cast<size_t>(inst.num_modules()), {});
}

// Shared: allocates r_ij with the pick-one constraint (1); returns the
// per-option variable ids for module i.
std::vector<int> AddOptionVars(const SecureViewInstance& inst, int i,
                               SvEncoding* enc) {
  const SvModule& m = inst.modules[static_cast<size_t>(i)];
  const int li = static_cast<int>(m.card_options.size());
  auto& r_of = enc->r_var[static_cast<size_t>(i)];
  std::vector<std::pair<int, double>> pick_one;
  for (int j = 0; j < li; ++j) {
    int r = enc->lp.AddUnitVariable(
        0.0, "r_" + std::to_string(i) + "_" + std::to_string(j));
    r_of.push_back(r);
    enc->integer_vars.push_back(r);
    pick_one.emplace_back(r, 1.0);
  }
  enc->lp.AddConstraint(std::move(pick_one), ConstraintSense::kGe, 1.0);
  return r_of;
}

// Appendix-B.4 "direct" ablation: Σ_{b∈I_i} x_b ≥ α_ij r_ij and the
// output analogue, with no per-option y/z accounting.
void EncodeCardinalityDirect(const SecureViewInstance& inst,
                             SvEncoding* enc) {
  for (int i : inst.PrivateModules()) {
    const SvModule& m = inst.modules[static_cast<size_t>(i)];
    std::vector<int> r_of = AddOptionVars(inst, i, enc);
    for (size_t j = 0; j < m.card_options.size(); ++j) {
      const CardOption& o = m.card_options[j];
      std::vector<std::pair<int, double>> in_terms, out_terms;
      for (int b : m.inputs) {
        in_terms.emplace_back(enc->x_var[static_cast<size_t>(b)], 1.0);
      }
      in_terms.emplace_back(r_of[j], -static_cast<double>(o.alpha));
      enc->lp.AddConstraint(std::move(in_terms), ConstraintSense::kGe, 0.0);
      for (int b : m.outputs) {
        out_terms.emplace_back(enc->x_var[static_cast<size_t>(b)], 1.0);
      }
      out_terms.emplace_back(r_of[j], -static_cast<double>(o.beta));
      enc->lp.AddConstraint(std::move(out_terms), ConstraintSense::kGe, 0.0);
    }
  }
}

void EncodeCardinalityImpl(const SecureViewInstance& inst, SvEncoding* enc,
                           bool with_coupling);

void EncodeCardinality(const SecureViewInstance& inst, SvEncoding* enc) {
  EncodeCardinalityImpl(inst, enc, /*with_coupling=*/true);
}

void EncodeCardinalityImpl(const SecureViewInstance& inst, SvEncoding* enc,
                           bool with_coupling) {
  for (int i : inst.PrivateModules()) {
    const SvModule& m = inst.modules[static_cast<size_t>(i)];
    const int li = static_cast<int>(m.card_options.size());
    // (1): Σ_j r_ij ≥ 1 (inside AddOptionVars).
    std::vector<int> r_of = AddOptionVars(inst, i, enc);

    // y_bij / z_bij with constraints (2)-(7).
    // y_col[b_pos][j], z_col[b_pos][j].
    std::vector<std::vector<int>> y_col(m.inputs.size()),
        z_col(m.outputs.size());
    for (size_t bp = 0; bp < m.inputs.size(); ++bp) {
      for (int j = 0; j < li; ++j) {
        y_col[bp].push_back(enc->lp.AddUnitVariable(0.0));
      }
    }
    for (size_t bp = 0; bp < m.outputs.size(); ++bp) {
      for (int j = 0; j < li; ++j) {
        z_col[bp].push_back(enc->lp.AddUnitVariable(0.0));
      }
    }
    for (int j = 0; j < li; ++j) {
      const CardOption& o = m.card_options[static_cast<size_t>(j)];
      // (2): Σ_b y_bij - α_ij r_ij ≥ 0.
      std::vector<std::pair<int, double>> terms;
      for (size_t bp = 0; bp < m.inputs.size(); ++bp) {
        terms.emplace_back(y_col[bp][static_cast<size_t>(j)], 1.0);
      }
      terms.emplace_back(r_of[static_cast<size_t>(j)],
                         -static_cast<double>(o.alpha));
      enc->lp.AddConstraint(std::move(terms), ConstraintSense::kGe, 0.0);
      // (3): Σ_b z_bij - β_ij r_ij ≥ 0.
      terms.clear();
      for (size_t bp = 0; bp < m.outputs.size(); ++bp) {
        terms.emplace_back(z_col[bp][static_cast<size_t>(j)], 1.0);
      }
      terms.emplace_back(r_of[static_cast<size_t>(j)],
                         -static_cast<double>(o.beta));
      enc->lp.AddConstraint(std::move(terms), ConstraintSense::kGe, 0.0);
    }
    // (4): Σ_j y_bij ≤ x_b; (6): y_bij ≤ r_ij (coupling, ablatable).
    for (size_t bp = 0; bp < m.inputs.size(); ++bp) {
      std::vector<std::pair<int, double>> sum_terms;
      for (int j = 0; j < li; ++j) {
        sum_terms.emplace_back(y_col[bp][static_cast<size_t>(j)], 1.0);
        if (with_coupling) {
          enc->lp.AddConstraint({{y_col[bp][static_cast<size_t>(j)], 1.0},
                                 {r_of[static_cast<size_t>(j)], -1.0}},
                                ConstraintSense::kLe, 0.0);
        }
      }
      sum_terms.emplace_back(
          enc->x_var[static_cast<size_t>(m.inputs[bp])], -1.0);
      enc->lp.AddConstraint(std::move(sum_terms), ConstraintSense::kLe, 0.0);
    }
    // (5): Σ_j z_bij ≤ x_b; (7): z_bij ≤ r_ij (coupling, ablatable).
    for (size_t bp = 0; bp < m.outputs.size(); ++bp) {
      std::vector<std::pair<int, double>> sum_terms;
      for (int j = 0; j < li; ++j) {
        sum_terms.emplace_back(z_col[bp][static_cast<size_t>(j)], 1.0);
        if (with_coupling) {
          enc->lp.AddConstraint({{z_col[bp][static_cast<size_t>(j)], 1.0},
                                 {r_of[static_cast<size_t>(j)], -1.0}},
                                ConstraintSense::kLe, 0.0);
        }
      }
      sum_terms.emplace_back(
          enc->x_var[static_cast<size_t>(m.outputs[bp])], -1.0);
      enc->lp.AddConstraint(std::move(sum_terms), ConstraintSense::kLe, 0.0);
    }
  }
}

void EncodeSet(const SecureViewInstance& inst, SvEncoding* enc) {
  for (int i : inst.PrivateModules()) {
    const SvModule& m = inst.modules[static_cast<size_t>(i)];
    const int li = static_cast<int>(m.set_options.size());
    auto& r_of = enc->r_var[static_cast<size_t>(i)];
    std::vector<std::pair<int, double>> pick_one;
    for (int j = 0; j < li; ++j) {
      int r = enc->lp.AddUnitVariable(
          0.0, "r_" + std::to_string(i) + "_" + std::to_string(j));
      r_of.push_back(r);
      enc->integer_vars.push_back(r);
      pick_one.emplace_back(r, 1.0);
    }
    // (15): Σ_j r_ij ≥ 1.
    enc->lp.AddConstraint(std::move(pick_one), ConstraintSense::kGe, 1.0);
    // (16): x_b ≥ r_ij for every b in the option.
    for (int j = 0; j < li; ++j) {
      const SetOption& o = m.set_options[static_cast<size_t>(j)];
      auto couple = [&](int b) {
        enc->lp.AddConstraint({{enc->x_var[static_cast<size_t>(b)], 1.0},
                               {r_of[static_cast<size_t>(j)], -1.0}},
                              ConstraintSense::kGe, 0.0);
      };
      for (int b : o.hidden_inputs) couple(b);
      for (int b : o.hidden_outputs) couple(b);
    }
  }
}

}  // namespace

SvEncoding EncodeSecureView(const SecureViewInstance& inst) {
  Status st = inst.Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  SvEncoding enc;
  EncodeCommon(inst, &enc);
  if (inst.kind == ConstraintKind::kCardinality) {
    EncodeCardinality(inst, &enc);
  } else {
    EncodeSet(inst, &enc);
  }
  return enc;
}

SvEncoding EncodeCardinalityVariant(const SecureViewInstance& inst,
                                    CardEncodingVariant variant) {
  PV_CHECK_MSG(inst.kind == ConstraintKind::kCardinality,
               "ablation variants are cardinality-only");
  Status st = inst.Validate();
  PV_CHECK_MSG(st.ok(), st.ToString());
  SvEncoding enc;
  EncodeCommon(inst, &enc);
  switch (variant) {
    case CardEncodingVariant::kFull:
      EncodeCardinalityImpl(inst, &enc, /*with_coupling=*/true);
      break;
    case CardEncodingVariant::kNoCoupling:
      EncodeCardinalityImpl(inst, &enc, /*with_coupling=*/false);
      break;
    case CardEncodingVariant::kDirect:
      EncodeCardinalityDirect(inst, &enc);
      break;
  }
  return enc;
}

SecureViewSolution DecodeSolution(const SecureViewInstance& inst,
                                  const SvEncoding& enc,
                                  const std::vector<double>& x,
                                  double threshold) {
  Bitset64 hidden(inst.num_attrs);
  for (int b = 0; b < inst.num_attrs; ++b) {
    if (x[static_cast<size_t>(enc.x_var[static_cast<size_t>(b)])] >=
        threshold) {
      hidden.Set(b);
    }
  }
  return CompleteSolution(inst, hidden);
}

}  // namespace provview
