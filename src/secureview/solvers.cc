#include "secureview/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "secureview/bnb_oracle.h"
#include "secureview/feasibility.h"
#include "secureview/ilp_encoding.h"

namespace provview {

namespace {

SvResult MakeResult(const SecureViewInstance& inst,
                    SecureViewSolution solution) {
  SvResult result;
  result.cost = solution.TotalCost(inst);
  result.gap = result.cost;  // nothing proven: gap is the whole cost
  result.solution = std::move(solution);
  result.status = Status::OK();
  return result;
}

// Shared tail of both SolveExact overloads: decode the engine outcome,
// falling back to `warm` (the warm-start solution, if any) when the engine
// never beat it, and convert the engine's bound into a usable gap.
SvResult FinishExact(const SecureViewInstance& inst, const SvEncoding& enc,
                     BnbResult ilp, const SecureViewSolution* warm) {
  SvResult result;
  result.work = ilp.nodes_explored;
  result.status = ilp.status;
  if (!ilp.x.empty()) {
    result.solution = DecodeSolution(inst, enc, ilp.x);
  } else if (warm != nullptr && std::isfinite(ilp.objective)) {
    // Empty x with a finite objective: the warm solution was never beaten.
    result.solution = *warm;
  } else {
    // No feasible point at all (infeasible instance, or a trip before the
    // first incumbent).
    result.gap = std::numeric_limits<double>::infinity();
    return result;
  }
  PV_CHECK_MSG(IsFeasible(inst, result.solution),
               "exact ILP produced infeasible Secure-View solution");
  result.cost = result.solution.TotalCost(inst);
  if (ilp.status.ok()) {
    result.lower_bound = result.cost;
    result.gap = 0.0;
  } else {
    // Attribute and privatization costs are nonnegative, so 0 is always a
    // valid floor: the reported gap stays finite whenever an incumbent
    // exists, which is what makes a deadlined solve actionable.
    result.lower_bound = std::max(0.0, ilp.lower_bound);
    result.gap = result.cost - result.lower_bound;
  }
  return result;
}

}  // namespace

std::vector<int> UselessAttrs(const SecureViewInstance& inst) {
  std::vector<bool> used(static_cast<size_t>(inst.num_attrs), false);
  for (const SvModule& m : inst.modules) {
    if (m.is_public) continue;
    if (inst.kind == ConstraintKind::kSet) {
      for (const SetOption& o : m.set_options) {
        for (int a : o.hidden_inputs) used[static_cast<size_t>(a)] = true;
        for (int a : o.hidden_outputs) used[static_cast<size_t>(a)] = true;
      }
    } else {
      // Any input (output) may be picked to meet a positive alpha (beta).
      for (const CardOption& o : m.card_options) {
        if (o.alpha > 0) {
          for (int a : m.inputs) used[static_cast<size_t>(a)] = true;
        }
        if (o.beta > 0) {
          for (int a : m.outputs) used[static_cast<size_t>(a)] = true;
        }
      }
    }
  }
  std::vector<int> useless;
  for (int a = 0; a < inst.num_attrs; ++a) {
    if (!used[static_cast<size_t>(a)]) useless.push_back(a);
  }
  return useless;
}

SvResult SolveExact(const SecureViewInstance& inst,
                    const ExactOptions& options) {
  SvEncoding enc = EncodeSecureView(inst);
  for (int a : options.fix_visible) {
    PV_CHECK_MSG(a >= 0 && a < inst.num_attrs, "bad fixed attribute " << a);
    enc.lp.SetVarBounds(enc.x_var[static_cast<size_t>(a)], 0.0, 0.0);
  }
  BnbOptions bnb = options.bnb;
  if (options.oracle && !bnb.oracle) {
    bnb.oracle = MakeSecureViewBnbOracle(&inst, &enc);
  }
  SecureViewSolution warm_sol;
  bool have_warm = false;
  if (options.warm_start) {
    // The greedy leg runs uncontrolled on purpose: it is linear in the
    // instance, and it is what guarantees a deadline-doomed solve still
    // returns a feasible incumbent (with gap = cost) instead of nothing.
    SvResult greedy = SolveGreedyPerModule(inst);
    if (greedy.status.ok()) {
      warm_sol = std::move(greedy.solution);
      bnb.warm_objective = std::min(bnb.warm_objective, greedy.cost);
      have_warm = true;
    }
    if (options.warm_rounding_trials > 0) {
      RoundingOptions ropt;
      ropt.trials = options.warm_rounding_trials;
      ropt.simplex = bnb.simplex;
      ropt.control = bnb.control;
      SvResult rounded = SolveByLpRounding(inst, ropt);
      if (rounded.status.ok() && (!have_warm || rounded.cost < bnb.warm_objective)) {
        warm_sol = std::move(rounded.solution);
        bnb.warm_objective = rounded.cost;
        have_warm = true;
      }
    }
  }
  BnbResult ilp = SolveIlp(enc.lp, enc.integer_vars, bnb);
  return FinishExact(inst, enc, std::move(ilp),
                     have_warm ? &warm_sol : nullptr);
}

SvResult SolveExact(const SecureViewInstance& inst, const BnbOptions& options) {
  SvEncoding enc = EncodeSecureView(inst);
  BnbResult ilp = SolveIlp(enc.lp, enc.integer_vars, options);
  return FinishExact(inst, enc, std::move(ilp), /*warm=*/nullptr);
}

SvResult SolveBruteForce(const SecureViewInstance& inst,
                         const ExecControl* control) {
  // Only attributes that appear in some requirement option can help
  // satisfy modules; all others only add cost or force privatization.
  std::set<int> relevant_set;
  for (const SvModule& m : inst.modules) {
    if (m.is_public) continue;
    if (inst.kind == ConstraintKind::kCardinality) {
      // Any of the module's attributes may be used to meet (α, β).
      for (const CardOption& o : m.card_options) {
        if (o.alpha > 0) {
          relevant_set.insert(m.inputs.begin(), m.inputs.end());
        }
        if (o.beta > 0) {
          relevant_set.insert(m.outputs.begin(), m.outputs.end());
        }
      }
    } else {
      for (const SetOption& o : m.set_options) {
        relevant_set.insert(o.hidden_inputs.begin(), o.hidden_inputs.end());
        relevant_set.insert(o.hidden_outputs.begin(), o.hidden_outputs.end());
      }
    }
  }
  std::vector<int> relevant(relevant_set.begin(), relevant_set.end());
  const int k = static_cast<int>(relevant.size());
  PV_CHECK_MSG(k <= 22, "brute force limited to 22 relevant attributes");

  SvResult result;
  double best = std::numeric_limits<double>::infinity();
  const uint64_t total = uint64_t{1} << k;
  for (uint64_t mask = 0; mask < total; ++mask) {
    if (control != nullptr && (mask & 0xFFFu) == 0 && control->ExpiredNow()) {
      result.status = control->Check();
      result.cost = best;
      result.gap = std::numeric_limits<double>::infinity();
      return result;
    }
    Bitset64 hidden(inst.num_attrs);
    for (int i = 0; i < k; ++i) {
      if ((mask >> i) & 1u) hidden.Set(relevant[static_cast<size_t>(i)]);
    }
    if (!UnsatisfiedModules(inst, hidden).empty()) continue;
    SecureViewSolution sol = CompleteSolution(inst, hidden);
    double cost = sol.TotalCost(inst);
    if (cost < best) {
      best = cost;
      result.solution = std::move(sol);
    }
    ++result.work;
  }
  if (best == std::numeric_limits<double>::infinity()) {
    result.status = Status::Infeasible("no subset satisfies all modules");
    return result;
  }
  result.cost = best;
  result.lower_bound = best;
  result.gap = 0.0;
  result.status = Status::OK();
  return result;
}

SvResult SolveByLpRounding(const SecureViewInstance& inst,
                           const RoundingOptions& options) {
  SvEncoding enc = EncodeSecureView(inst);
  SimplexOptions simplex = options.simplex;
  if (simplex.control == nullptr) simplex.control = options.control;
  LpSolution lp = SolveLp(enc.lp, simplex);
  SvResult result;
  if (!lp.status.ok()) {
    result.status = lp.status;
    return result;
  }
  result.lower_bound = lp.objective;

  const int n = std::max(2, inst.num_modules());
  const double log_n = std::log(static_cast<double>(n));
  Rng rng(options.seed);

  double best = std::numeric_limits<double>::infinity();
  SecureViewSolution best_sol;
  for (int trial = 0; trial < options.trials; ++trial) {
    if (options.control != nullptr && trial > 0 &&
        options.control->ExpiredNow()) {
      break;  // keep the best trial finished so far
    }
    // Step 2 of Algorithm 1: independent rounding with probability
    // min{1, scale · x_b · ln n}.
    Bitset64 hidden(inst.num_attrs);
    for (int b = 0; b < inst.num_attrs; ++b) {
      double xb = lp.x[static_cast<size_t>(enc.x_var[static_cast<size_t>(b)])];
      if (rng.NextBernoulli(std::min(1.0, options.scale * xb * log_n))) {
        hidden.Set(b);
      }
    }
    // Step 3: repair every unsatisfied module with its cheapest addition.
    for (int i : UnsatisfiedModules(inst, hidden)) {
      hidden |= CheapestSatisfyingAddition(inst, i, hidden);
      ++result.work;
    }
    SecureViewSolution sol = CompleteSolution(inst, hidden);
    PV_CHECK(IsFeasible(inst, sol));
    double cost = sol.TotalCost(inst);
    if (cost < best) {
      best = cost;
      best_sol = std::move(sol);
    }
  }
  result.solution = std::move(best_sol);
  result.cost = best;
  result.gap = best - result.lower_bound;
  result.status = Status::OK();
  return result;
}

SvResult SolveByThresholdRounding(const SecureViewInstance& inst,
                                  const SimplexOptions& options) {
  PV_CHECK_MSG(inst.kind == ConstraintKind::kSet,
               "threshold rounding targets set constraints");
  SvEncoding enc = EncodeSecureView(inst);
  LpSolution lp = SolveLp(enc.lp, options);
  SvResult result;
  if (!lp.status.ok()) {
    result.status = lp.status;
    return result;
  }
  result.lower_bound = lp.objective;
  const int lmax = std::max(1, inst.MaxListLength());
  const double threshold = 1.0 / static_cast<double>(lmax) - 1e-7;
  result.solution = DecodeSolution(inst, enc, lp.x, threshold);
  PV_CHECK_MSG(IsFeasible(inst, result.solution),
               "threshold rounding produced infeasible solution");
  result.cost = result.solution.TotalCost(inst);
  result.gap = result.cost - result.lower_bound;
  result.work = lp.iterations;
  result.status = Status::OK();
  return result;
}

SvResult SolveGreedyPerModule(const SecureViewInstance& inst,
                              const ExecControl* control) {
  Bitset64 hidden(inst.num_attrs);
  for (int i : inst.PrivateModules()) {
    if (control != nullptr && control->ExpiredNow()) {
      SvResult result;
      result.status = control->Check();
      return result;
    }
    // The cheapest satisfying addition from an empty context is exactly the
    // module's cheapest option.
    hidden |= CheapestSatisfyingAddition(inst, i, Bitset64(inst.num_attrs));
  }
  PV_CHECK(UnsatisfiedModules(inst, hidden).empty());
  return MakeResult(inst, CompleteSolution(inst, hidden));
}

SvResult SolveGreedyCoverage(const SecureViewInstance& inst,
                             const ExecControl* control) {
  Bitset64 hidden(inst.num_attrs);
  SvResult result;
  std::vector<int> unsatisfied = UnsatisfiedModules(inst, hidden);
  while (!unsatisfied.empty()) {
    if (control != nullptr && control->ExpiredNow()) {
      result.status = control->Check();
      return result;
    }
    double best_ratio = std::numeric_limits<double>::infinity();
    Bitset64 best_addition(inst.num_attrs);
    std::set<int> before(RequiredPrivatizations(inst, hidden).begin(),
                         RequiredPrivatizations(inst, hidden).end());
    // Candidate moves: for every unsatisfied module, the cheapest
    // completion of EACH of its options (a shared expensive attribute can
    // beat a private cheap one once its coverage is counted — Example 5).
    for (int i : unsatisfied) {
      for (int j = 0; j < NumOptions(inst, i); ++j) {
        Bitset64 addition = CheapestAdditionForOption(inst, i, j, hidden);
        // Marginal cost: new attributes + newly forced privatizations.
        Bitset64 merged = hidden | addition;
        double marginal = inst.AttrCost(addition);
        for (int p : RequiredPrivatizations(inst, merged)) {
          if (before.count(p) == 0) {
            marginal +=
                inst.modules[static_cast<size_t>(p)].privatization_cost;
          }
        }
        int gained = 0;
        for (int u : unsatisfied) {
          if (ModuleSatisfied(inst, u, merged)) ++gained;
        }
        PV_CHECK(gained >= 1);
        double ratio = marginal / static_cast<double>(gained);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_addition = addition;
        }
      }
    }
    hidden |= best_addition;
    ++result.work;
    unsatisfied = UnsatisfiedModules(inst, hidden);
  }
  SvResult final_result = MakeResult(inst, CompleteSolution(inst, hidden));
  final_result.work = result.work;
  return final_result;
}

}  // namespace provview
