#include "secureview/solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "secureview/feasibility.h"
#include "secureview/ilp_encoding.h"

namespace provview {

namespace {

SvResult MakeResult(const SecureViewInstance& inst,
                    SecureViewSolution solution) {
  SvResult result;
  result.cost = solution.TotalCost(inst);
  result.solution = std::move(solution);
  result.status = Status::OK();
  return result;
}

}  // namespace

SvResult SolveExact(const SecureViewInstance& inst, const BnbOptions& options) {
  SvEncoding enc = EncodeSecureView(inst);
  BnbResult ilp = SolveIlp(enc.lp, enc.integer_vars, options);
  SvResult result;
  if (!ilp.status.ok() && ilp.x.empty()) {
    result.status = ilp.status;
    return result;
  }
  result.solution = DecodeSolution(inst, enc, ilp.x);
  PV_CHECK_MSG(IsFeasible(inst, result.solution),
               "exact ILP produced infeasible Secure-View solution");
  result.cost = result.solution.TotalCost(inst);
  result.lower_bound = ilp.status.ok() ? result.cost : 0.0;
  result.work = ilp.nodes_explored;
  result.status = ilp.status;
  return result;
}

SvResult SolveBruteForce(const SecureViewInstance& inst) {
  // Only attributes that appear in some requirement option can help
  // satisfy modules; all others only add cost or force privatization.
  std::set<int> relevant_set;
  for (const SvModule& m : inst.modules) {
    if (m.is_public) continue;
    if (inst.kind == ConstraintKind::kCardinality) {
      // Any of the module's attributes may be used to meet (α, β).
      for (const CardOption& o : m.card_options) {
        if (o.alpha > 0) {
          relevant_set.insert(m.inputs.begin(), m.inputs.end());
        }
        if (o.beta > 0) {
          relevant_set.insert(m.outputs.begin(), m.outputs.end());
        }
      }
    } else {
      for (const SetOption& o : m.set_options) {
        relevant_set.insert(o.hidden_inputs.begin(), o.hidden_inputs.end());
        relevant_set.insert(o.hidden_outputs.begin(), o.hidden_outputs.end());
      }
    }
  }
  std::vector<int> relevant(relevant_set.begin(), relevant_set.end());
  const int k = static_cast<int>(relevant.size());
  PV_CHECK_MSG(k <= 22, "brute force limited to 22 relevant attributes");

  SvResult result;
  double best = std::numeric_limits<double>::infinity();
  const uint64_t total = uint64_t{1} << k;
  for (uint64_t mask = 0; mask < total; ++mask) {
    Bitset64 hidden(inst.num_attrs);
    for (int i = 0; i < k; ++i) {
      if ((mask >> i) & 1u) hidden.Set(relevant[static_cast<size_t>(i)]);
    }
    if (!UnsatisfiedModules(inst, hidden).empty()) continue;
    SecureViewSolution sol = CompleteSolution(inst, hidden);
    double cost = sol.TotalCost(inst);
    if (cost < best) {
      best = cost;
      result.solution = std::move(sol);
    }
    ++result.work;
  }
  if (best == std::numeric_limits<double>::infinity()) {
    result.status = Status::Infeasible("no subset satisfies all modules");
    return result;
  }
  result.cost = best;
  result.lower_bound = best;
  result.status = Status::OK();
  return result;
}

SvResult SolveByLpRounding(const SecureViewInstance& inst,
                           const RoundingOptions& options) {
  SvEncoding enc = EncodeSecureView(inst);
  LpSolution lp = SolveLp(enc.lp, options.simplex);
  SvResult result;
  if (!lp.status.ok()) {
    result.status = lp.status;
    return result;
  }
  result.lower_bound = lp.objective;

  const int n = std::max(2, inst.num_modules());
  const double log_n = std::log(static_cast<double>(n));
  Rng rng(options.seed);

  double best = std::numeric_limits<double>::infinity();
  SecureViewSolution best_sol;
  for (int trial = 0; trial < options.trials; ++trial) {
    // Step 2 of Algorithm 1: independent rounding with probability
    // min{1, scale · x_b · ln n}.
    Bitset64 hidden(inst.num_attrs);
    for (int b = 0; b < inst.num_attrs; ++b) {
      double xb = lp.x[static_cast<size_t>(enc.x_var[static_cast<size_t>(b)])];
      if (rng.NextBernoulli(std::min(1.0, options.scale * xb * log_n))) {
        hidden.Set(b);
      }
    }
    // Step 3: repair every unsatisfied module with its cheapest addition.
    for (int i : UnsatisfiedModules(inst, hidden)) {
      hidden |= CheapestSatisfyingAddition(inst, i, hidden);
      ++result.work;
    }
    SecureViewSolution sol = CompleteSolution(inst, hidden);
    PV_CHECK(IsFeasible(inst, sol));
    double cost = sol.TotalCost(inst);
    if (cost < best) {
      best = cost;
      best_sol = std::move(sol);
    }
  }
  result.solution = std::move(best_sol);
  result.cost = best;
  result.status = Status::OK();
  return result;
}

SvResult SolveByThresholdRounding(const SecureViewInstance& inst,
                                  const SimplexOptions& options) {
  PV_CHECK_MSG(inst.kind == ConstraintKind::kSet,
               "threshold rounding targets set constraints");
  SvEncoding enc = EncodeSecureView(inst);
  LpSolution lp = SolveLp(enc.lp, options);
  SvResult result;
  if (!lp.status.ok()) {
    result.status = lp.status;
    return result;
  }
  result.lower_bound = lp.objective;
  const int lmax = std::max(1, inst.MaxListLength());
  const double threshold = 1.0 / static_cast<double>(lmax) - 1e-7;
  result.solution = DecodeSolution(inst, enc, lp.x, threshold);
  PV_CHECK_MSG(IsFeasible(inst, result.solution),
               "threshold rounding produced infeasible solution");
  result.cost = result.solution.TotalCost(inst);
  result.work = lp.iterations;
  result.status = Status::OK();
  return result;
}

SvResult SolveGreedyPerModule(const SecureViewInstance& inst) {
  Bitset64 hidden(inst.num_attrs);
  for (int i : inst.PrivateModules()) {
    // The cheapest satisfying addition from an empty context is exactly the
    // module's cheapest option.
    hidden |= CheapestSatisfyingAddition(inst, i, Bitset64(inst.num_attrs));
  }
  PV_CHECK(UnsatisfiedModules(inst, hidden).empty());
  return MakeResult(inst, CompleteSolution(inst, hidden));
}

SvResult SolveGreedyCoverage(const SecureViewInstance& inst) {
  Bitset64 hidden(inst.num_attrs);
  SvResult result;
  std::vector<int> unsatisfied = UnsatisfiedModules(inst, hidden);
  while (!unsatisfied.empty()) {
    double best_ratio = std::numeric_limits<double>::infinity();
    Bitset64 best_addition(inst.num_attrs);
    std::set<int> before(RequiredPrivatizations(inst, hidden).begin(),
                         RequiredPrivatizations(inst, hidden).end());
    // Candidate moves: for every unsatisfied module, the cheapest
    // completion of EACH of its options (a shared expensive attribute can
    // beat a private cheap one once its coverage is counted — Example 5).
    for (int i : unsatisfied) {
      for (int j = 0; j < NumOptions(inst, i); ++j) {
        Bitset64 addition = CheapestAdditionForOption(inst, i, j, hidden);
        // Marginal cost: new attributes + newly forced privatizations.
        Bitset64 merged = hidden | addition;
        double marginal = inst.AttrCost(addition);
        for (int p : RequiredPrivatizations(inst, merged)) {
          if (before.count(p) == 0) {
            marginal +=
                inst.modules[static_cast<size_t>(p)].privatization_cost;
          }
        }
        int gained = 0;
        for (int u : unsatisfied) {
          if (ModuleSatisfied(inst, u, merged)) ++gained;
        }
        PV_CHECK(gained >= 1);
        double ratio = marginal / static_cast<double>(gained);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_addition = addition;
        }
      }
    }
    hidden |= best_addition;
    ++result.work;
    unsatisfied = UnsatisfiedModules(inst, hidden);
  }
  SvResult final_result = MakeResult(inst, CompleteSolution(inst, hidden));
  final_result.work = result.work;
  return final_result;
}

}  // namespace provview
