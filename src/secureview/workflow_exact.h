// End-to-end exact optimization of a workflow's min-cost secure view,
// wiring the whole pruning stack together (docs/optimizer.md):
//
//   workflow --(shared-memo derivation)--> SecureViewInstance
//            --(useless-attr fixing, warm start, safety oracle)--> SolveExact
//            --(Theorem 4/8 certification)--> verified SvResult
//
// The same per-module SafetyMemos serve the requirement-list derivation and
// (memo_oracle mode) the B&B node oracle, all settling into one shared
// VerdictCache — verdicts computed while deriving the instance fathom
// search nodes later, and persist across calls when the caller passes a
// long-lived cache (the podsd model). AnalyzeFeasibleSets optionally runs
// as corroboration on small execution spaces: attributes it proves
// log-constant are reported (they should all already be fixed by the
// requirement-list rule, which is the soundness anchor).
#ifndef PROVVIEW_SECUREVIEW_WORKFLOW_EXACT_H_
#define PROVVIEW_SECUREVIEW_WORKFLOW_EXACT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "privacy/verdict_cache.h"
#include "secureview/instance.h"
#include "secureview/solvers.h"
#include "workflow/workflow.h"

namespace provview {

struct WorkflowExactOptions {
  int64_t gamma = 2;
  ConstraintKind kind = ConstraintKind::kSet;
  /// Solver knobs (warm start, oracle, threads, deadline live in here).
  ExactOptions exact;
  /// Shared verdict store; one namespace per private module is registered.
  /// Null = a private unbounded cache owned by this call.
  std::shared_ptr<VerdictCache> cache;
  /// kSet only: answer oracle satisfaction checks through
  /// SafetyMemo::IsSafe (the shared cache) instead of the requirement
  /// lists. Same verdicts either way — the lists are the memo's minimal
  /// antichain — so this trades list scans for cache traffic.
  bool memo_oracle = false;
  /// Pin visible every attribute no requirement option uses (sound: hiding
  /// one can only add cost).
  bool fix_useless_attrs = true;
  /// Run AnalyzeFeasibleSets as a cross-check when the execution space
  /// fits; purely diagnostic (see analysis_constant_attrs).
  bool analyze_feasible_sets = false;
  int64_t analysis_max_executions = int64_t{1} << 18;
  /// Certify the winning solution via the Theorem 4/8 sufficient condition.
  bool verify_semantics = true;
};

struct WorkflowExactResult {
  SvResult result;
  /// The derived instance (reusable for approximation-ratio comparisons).
  SecureViewInstance instance;
  /// Attributes pinned visible before the search.
  std::vector<int> fixed_attrs;
  /// Attributes AnalyzeFeasibleSets proved constant across every
  /// consistent world (singleton feasible set); -1 when the analysis was
  /// skipped (disabled, streamed log, or space too large).
  int analysis_constant_attrs = -1;
  /// True when the solution was certified Γ-private (Theorem 4/8).
  bool semantics_verified = false;
};

/// Derives the instance and solves it exactly with the full pruning stack.
WorkflowExactResult SolveExactForWorkflow(
    const Workflow& workflow, const WorkflowExactOptions& options = {});

}  // namespace provview

#endif  // PROVVIEW_SECUREVIEW_WORKFLOW_EXACT_H_
