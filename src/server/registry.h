// Named workflows a podsd instance serves. Module functions are arbitrary
// C++ and cannot travel over the wire intensionally, so the daemon certifies
// against registered workflows: the fixed-seed built-ins compiled in at
// startup, plus workflows REGISTERed over the wire as extensional tables
// (the SerializeWorkflowBinary codec). The registry owns ONE VerdictCache
// shared by every registered workflow — each entry binds a
// WorkflowCacheNamespace into it, so repeated certifications of the same
// workflow (across requests AND connections) answer from settled verdicts
// instead of re-running Algorithm 2, and a byte budget on the cache bounds
// the daemon's total verdict memory (eviction only forgets verdicts).
//
// Thread-safety: the map is guarded by a shared_mutex (REGISTER/UNREGISTER
// take it exclusive, every lookup shared) and entries are handed out as
// shared_ptr — a request certifying against a workflow keeps its entry
// alive even if a concurrent UNREGISTER drops it from the map mid-flight.
// The cache itself is striped-locked and safe for concurrent
// certifications.
#ifndef PROVVIEW_SERVER_REGISTRY_H_
#define PROVVIEW_SERVER_REGISTRY_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "privacy/verdict_cache.h"
#include "privacy/workflow_privacy.h"
#include "workflow/workflow.h"

namespace provview {

/// One served workflow: ownership bundle + its namespaces in the shared
/// verdict cache.
struct RegisteredWorkflow {
  std::string name;
  CatalogPtr catalog;      ///< keeps the workflow's catalog alive
  WorkflowPtr workflow;
  std::unique_ptr<WorkflowCacheNamespace> verdicts;
};

class WorkflowRegistry {
 public:
  /// Unbounded shared cache (the historical daemon behavior).
  WorkflowRegistry();
  /// Shared cache under `config` — set config.byte_budget to cap the
  /// daemon's total verdict memory across all workflows.
  explicit WorkflowRegistry(const VerdictCacheConfig& config);

  /// Takes ownership; replaces any previous entry of the same name. The
  /// startup registration path (built-ins, test fixtures).
  void Register(std::string name, CatalogPtr catalog, WorkflowPtr workflow);

  /// The wire REGISTER path: like Register but a duplicate name is a typed
  /// rejection (replacing a workflow other connections may be certifying
  /// against must be an explicit UNREGISTER + REGISTER).
  Status TryRegister(std::string name, CatalogPtr catalog,
                     WorkflowPtr workflow);

  /// Drops an entry; NOT_FOUND when the name is unknown. In-flight
  /// requests holding the entry's shared_ptr finish against it safely.
  Status Unregister(const std::string& name);

  /// nullptr when the name is unknown (the caller maps this to NOT_FOUND).
  /// The returned entry stays valid even if concurrently unregistered.
  std::shared_ptr<const RegisteredWorkflow> Find(
      const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

  /// The cache all registered workflows share (never null).
  VerdictCache* verdict_cache() const { return cache_.get(); }

  /// Registers the built-in paper workflows under fixed seeds, so every
  /// daemon instance serves the same families the benches and tests use:
  /// fig1, prop2-chain, one-one-chain, diamond, example7-chain.
  void RegisterBuiltins();

 private:
  std::shared_ptr<RegisteredWorkflow> MakeEntry(std::string name,
                                                CatalogPtr catalog,
                                                WorkflowPtr workflow);

  std::shared_ptr<VerdictCache> cache_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<RegisteredWorkflow>> entries_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_REGISTRY_H_
