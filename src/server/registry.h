// Named workflows a podsd instance serves. Module functions are arbitrary
// C++ and cannot travel over the wire, so the daemon certifies against
// pre-registered workflows: a CERTIFY request names one and supplies only
// the hidden attribute set and Γ. The registry owns ONE VerdictCache
// shared by every registered workflow — each entry binds a
// WorkflowCacheNamespace into it, so repeated certifications of the same
// workflow (across requests AND connections) answer from settled verdicts
// instead of re-running Algorithm 2, and a byte budget on the cache bounds
// the daemon's total verdict memory (eviction only forgets verdicts).
//
// The registry is immutable once the daemon starts serving (Register is
// not thread-safe; Find is lock-free and safe from any number of
// connection threads afterwards; the cache itself is striped-locked and
// safe for concurrent certifications).
#ifndef PROVVIEW_SERVER_REGISTRY_H_
#define PROVVIEW_SERVER_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "privacy/verdict_cache.h"
#include "privacy/workflow_privacy.h"
#include "workflow/workflow.h"

namespace provview {

/// One served workflow: ownership bundle + its namespaces in the shared
/// verdict cache.
struct RegisteredWorkflow {
  std::string name;
  CatalogPtr catalog;      ///< keeps the workflow's catalog alive
  WorkflowPtr workflow;
  std::unique_ptr<WorkflowCacheNamespace> verdicts;
};

class WorkflowRegistry {
 public:
  /// Unbounded shared cache (the historical daemon behavior).
  WorkflowRegistry();
  /// Shared cache under `config` — set config.byte_budget to cap the
  /// daemon's total verdict memory across all workflows.
  explicit WorkflowRegistry(const VerdictCacheConfig& config);

  /// Takes ownership; replaces any previous entry of the same name.
  void Register(std::string name, CatalogPtr catalog, WorkflowPtr workflow);

  /// nullptr when the name is unknown (the caller maps this to NOT_FOUND).
  const RegisteredWorkflow* Find(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const { return entries_.size(); }

  /// The cache all registered workflows share (never null).
  VerdictCache* verdict_cache() const { return cache_.get(); }

  /// Registers the built-in paper workflows under fixed seeds, so every
  /// daemon instance serves the same families the benches and tests use:
  /// fig1, prop2-chain, one-one-chain, diamond, example7-chain.
  void RegisterBuiltins();

 private:
  std::shared_ptr<VerdictCache> cache_;
  std::map<std::string, std::unique_ptr<RegisteredWorkflow>> entries_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_REGISTRY_H_
