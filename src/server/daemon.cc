#include "server/daemon.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "server/connection.h"
#include "server/reactor.h"

namespace provview {

PodsDaemon::PodsDaemon(WorkflowRegistry* registry)
    : PodsDaemon(registry, Options{}) {}

PodsDaemon::PodsDaemon(WorkflowRegistry* registry, const Options& options)
    : registry_(registry),
      options_(options),
      admission_(options.max_pending, options.memory_budget) {}

PodsDaemon::~PodsDaemon() { Stop(); }

RequestContext PodsDaemon::MakeContext(bool caller_helps,
                                       int reactor_threads) {
  RequestContext ctx;
  ctx.registry = registry_;
  ctx.stats = &stats_;
  ctx.executor = executor_.get();
  ctx.admission = &admission_;
  ctx.reactor_threads = reactor_threads;
  ctx.caller_helps = caller_helps;
  return ctx;
}

Status PodsDaemon::Start(uint16_t port) {
  if (options_.use_task_graph && executor_ == nullptr) {
    const int workers = options_.engine_threads > 0
                            ? options_.engine_threads
                            : ThreadPool::DefaultThreads() - 1;
    if (workers > 0) {
      // No executor-level gate: request admission is the daemon's single
      // saturation point now (admission_ in MakeContext).
      executor_ = std::make_unique<TaskGraphExecutor>(workers);
    }
    // workers == 0: single-core host — helping alone covers it, so skip the
    // executor and let requests run inline.
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, /*backlog=*/64) != 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status s =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(bound.sin_port);
  if (options_.use_reactor) {
    reactor_ = std::make_unique<Reactor>(
        MakeContext(/*caller_helps=*/false, options_.reactor_threads),
        options_.reactor_threads);
    reactor_->Start();
  }
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PodsDaemon::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // ECONNABORTED et al. are per-connection noise; everything else
      // (including the shutdown() from Stop) ends the loop.
      if (errno == ECONNABORTED) continue;
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (reactor_ != nullptr) {
      reactor_->AddConnection(fd);  // takes ownership
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    const size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(
        [this, fd, slot] { ServeConnection(fd, slot); });
  }
}

void PodsDaemon::ServeConnection(int fd, size_t slot) {
  {
    // Connection owns (and closes) fd; its destructor also bumps the
    // connections_closed counter.
    Connection conn(fd, MakeContext(/*caller_helps=*/true,
                                    /*reactor_threads=*/0));
    conn.Run();
  }
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_[slot] = -1;  // fd is closed; Stop must not shut it down again
}

void PodsDaemon::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A previous Stop already ran (or is running); just make sure the
    // acceptor is joined before returning.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (reactor_ != nullptr) {
    // Severs every reactor connection AND waits until each dispatched
    // request's detached engine task has finished — only then is the
    // executor safe to tear down.
    reactor_->Stop();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblocks recv()
    }
  }
  // Threads only exit their slots' fds; joining outside the lock is safe
  // because no new threads are created once stopping_ is set.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_threads_.clear();
    conn_fds_.clear();
  }
  // Every in-flight request is drained (reactor) or joined (legacy): the
  // shared executor can now be torn down.
  executor_.reset();
  reactor_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace provview
