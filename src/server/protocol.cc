#include "server/protocol.h"

#include "common/wire.h"

namespace provview {

void EncodeFrameHeader(const FrameHeader& h, std::string* out) {
  WireWriter w(out);
  w.PutU32(h.magic);
  w.PutU16(h.version);
  w.PutU16(h.type);
  w.PutU32(h.request_id);
  w.PutU32(h.body_len);
}

Status DecodeFrameHeader(std::string_view bytes, FrameHeader* out) {
  if (bytes.size() != kFrameHeaderSize) {
    return Status::InvalidArgument("frame header must be " +
                                   std::to_string(kFrameHeaderSize) +
                                   " bytes");
  }
  WireReader r(bytes);
  PV_RETURN_IF_ERROR(r.ReadU32(&out->magic));
  PV_RETURN_IF_ERROR(r.ReadU16(&out->version));
  PV_RETURN_IF_ERROR(r.ReadU16(&out->type));
  PV_RETURN_IF_ERROR(r.ReadU32(&out->request_id));
  PV_RETURN_IF_ERROR(r.ReadU32(&out->body_len));
  if (out->magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (out->version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(out->version));
  }
  if (out->body_len > kMaxBodyLen) {
    return Status::InvalidArgument("frame body of " +
                                   std::to_string(out->body_len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxBodyLen) + " cap");
  }
  return Status::OK();
}

uint16_t WireCodeOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kDeadlineExceeded:
      return 3;
    case StatusCode::kResourceExhausted:
      return 4;
    default:
      return 5;  // everything else surfaces as INTERNAL on the wire
  }
}

StatusCode StatusCodeFromWire(uint16_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kDeadlineExceeded;
    case 4:
      return StatusCode::kResourceExhausted;
    default:
      return StatusCode::kInternal;
  }
}

void EncodeStatusPrefix(const Status& status, std::string* out) {
  WireWriter w(out);
  w.PutU16(WireCodeOf(status.code()));
  w.PutString(status.ok() ? std::string_view() : status.message());
}

namespace {

// Caps a status message a peer sends us; a hostile server/client cannot
// make the other side hold megabytes of "error text".
constexpr uint32_t kMaxStatusMessageLen = 4096;

}  // namespace

Status ParseResponseBody(std::string_view body, Status* status,
                         std::string_view* payload) {
  WireReader r(body);
  uint16_t wire;
  PV_RETURN_IF_ERROR(r.ReadU16(&wire));
  std::string message;
  PV_RETURN_IF_ERROR(r.ReadString(&message, kMaxStatusMessageLen));
  const StatusCode code = StatusCodeFromWire(wire);
  *status = code == StatusCode::kOk ? Status::OK()
                                    : Status(code, std::move(message));
  *payload = body.substr(r.position());
  return Status::OK();
}

void EncodeCertifyRequest(const CertifyRequest& req, bool batch,
                          std::string* body) {
  WireWriter w(body);
  w.PutString(req.workflow);
  w.PutI64(req.deadline_ms);
  w.PutI64(req.memory_budget);
  if (batch) w.PutU32(static_cast<uint32_t>(req.items.size()));
  for (const CertifyItem& item : req.items) {
    w.PutI64(item.gamma);
    w.PutU32(static_cast<uint32_t>(item.hidden_attrs.size()));
    for (uint32_t a : item.hidden_attrs) w.PutU32(a);
  }
}

Status DecodeCertifyRequest(std::string_view body, bool batch,
                            CertifyRequest* out) {
  WireReader r(body);
  PV_RETURN_IF_ERROR(r.ReadString(&out->workflow, kMaxWorkflowNameLen));
  PV_RETURN_IF_ERROR(r.ReadI64(&out->deadline_ms));
  PV_RETURN_IF_ERROR(r.ReadI64(&out->memory_budget));
  if (out->deadline_ms < 0) {
    return Status::InvalidArgument("negative deadline_ms");
  }
  if (out->memory_budget < 0) {
    return Status::InvalidArgument("negative memory budget");
  }
  uint32_t count = 1;
  if (batch) {
    PV_RETURN_IF_ERROR(r.ReadU32(&count));
    if (count > kMaxCertifyItems) {
      return Status::InvalidArgument("batch of " + std::to_string(count) +
                                     " items exceeds the " +
                                     std::to_string(kMaxCertifyItems) +
                                     " cap");
    }
  }
  out->items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CertifyItem item;
    PV_RETURN_IF_ERROR(r.ReadI64(&item.gamma));
    if (item.gamma < 1) {
      return Status::InvalidArgument("gamma must be >= 1, got " +
                                     std::to_string(item.gamma));
    }
    uint32_t num_hidden;
    PV_RETURN_IF_ERROR(r.ReadU32(&num_hidden));
    if (num_hidden > kMaxHiddenAttrs) {
      return Status::InvalidArgument("hidden set of " +
                                     std::to_string(num_hidden) +
                                     " attrs exceeds the cap");
    }
    if (r.remaining() < static_cast<size_t>(num_hidden) * sizeof(uint32_t)) {
      return Status::InvalidArgument("truncated hidden attr list");
    }
    item.hidden_attrs.reserve(num_hidden);
    for (uint32_t j = 0; j < num_hidden; ++j) {
      uint32_t a;
      PV_RETURN_IF_ERROR(r.ReadU32(&a));
      item.hidden_attrs.push_back(a);
    }
    out->items.push_back(std::move(item));
  }
  return r.ExpectEnd();
}

void EncodeCertifyResponse(const CertifyResponse& resp, std::string* body) {
  WireWriter w(body);
  w.PutU64(resp.checker_calls);
  w.PutU64(resp.cache_hits);
  w.PutU32(static_cast<uint32_t>(resp.entries.size()));
  for (const CertifyEntry& e : resp.entries) {
    w.PutU8(e.certified ? 1 : 0);
    w.PutU32(static_cast<uint32_t>(e.module_gammas.size()));
    for (int64_t g : e.module_gammas) w.PutI64(g);
    w.PutU32(static_cast<uint32_t>(e.required_privatizations.size()));
    for (uint32_t m : e.required_privatizations) w.PutU32(m);
  }
}

Status DecodeCertifyResponse(std::string_view payload, CertifyResponse* out) {
  WireReader r(payload);
  PV_RETURN_IF_ERROR(r.ReadU64(&out->checker_calls));
  PV_RETURN_IF_ERROR(r.ReadU64(&out->cache_hits));
  uint32_t count;
  PV_RETURN_IF_ERROR(r.ReadU32(&count));
  if (count > kMaxCertifyItems) {
    return Status::InvalidArgument("entry count exceeds the cap");
  }
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CertifyEntry e;
    uint8_t certified;
    PV_RETURN_IF_ERROR(r.ReadU8(&certified));
    if (certified > 1) return Status::InvalidArgument("bad certified flag");
    e.certified = certified == 1;
    uint32_t num_gammas;
    PV_RETURN_IF_ERROR(r.ReadU32(&num_gammas));
    if (r.remaining() < static_cast<size_t>(num_gammas) * sizeof(int64_t)) {
      return Status::InvalidArgument("truncated module gamma list");
    }
    e.module_gammas.reserve(num_gammas);
    for (uint32_t j = 0; j < num_gammas; ++j) {
      int64_t g;
      PV_RETURN_IF_ERROR(r.ReadI64(&g));
      e.module_gammas.push_back(g);
    }
    uint32_t num_priv;
    PV_RETURN_IF_ERROR(r.ReadU32(&num_priv));
    if (r.remaining() < static_cast<size_t>(num_priv) * sizeof(uint32_t)) {
      return Status::InvalidArgument("truncated privatization list");
    }
    e.required_privatizations.reserve(num_priv);
    for (uint32_t j = 0; j < num_priv; ++j) {
      uint32_t m;
      PV_RETURN_IF_ERROR(r.ReadU32(&m));
      e.required_privatizations.push_back(m);
    }
    out->entries.push_back(std::move(e));
  }
  return r.ExpectEnd();
}

void EncodeRegisterRequest(const RegisterRequest& req, std::string* body) {
  WireWriter w(body);
  w.PutString(req.name);
  body->append(req.workflow_bytes);
}

Status DecodeRegisterRequest(std::string_view body, RegisterRequest* out) {
  WireReader r(body);
  PV_RETURN_IF_ERROR(r.ReadString(&out->name, kMaxWorkflowNameLen));
  if (out->name.empty()) {
    return Status::InvalidArgument("empty workflow name");
  }
  if (r.remaining() == 0) {
    return Status::InvalidArgument("missing workflow bytes");
  }
  out->workflow_bytes.assign(body.substr(r.position()));
  return Status::OK();
}

void EncodeRegisterResponse(const RegisterResponse& resp, std::string* body) {
  WireWriter w(body);
  w.PutU32(resp.num_attrs);
  w.PutU32(resp.num_modules);
  w.PutU32(resp.num_private_modules);
}

Status DecodeRegisterResponse(std::string_view payload,
                              RegisterResponse* out) {
  WireReader r(payload);
  PV_RETURN_IF_ERROR(r.ReadU32(&out->num_attrs));
  PV_RETURN_IF_ERROR(r.ReadU32(&out->num_modules));
  PV_RETURN_IF_ERROR(r.ReadU32(&out->num_private_modules));
  return r.ExpectEnd();
}

void EncodeUnregisterRequest(const std::string& name, std::string* body) {
  WireWriter w(body);
  w.PutString(name);
}

Status DecodeUnregisterRequest(std::string_view body, std::string* name) {
  WireReader r(body);
  PV_RETURN_IF_ERROR(r.ReadString(name, kMaxWorkflowNameLen));
  if (name->empty()) {
    return Status::InvalidArgument("empty workflow name");
  }
  return r.ExpectEnd();
}

void EncodeStatResponse(const StatSnapshot& stats, std::string* body) {
  WireWriter w(body);
  w.PutU32(static_cast<uint32_t>(stats.size()));
  for (const auto& [key, value] : stats) {
    w.PutString(key);
    w.PutU64(value);
  }
}

Status DecodeStatResponse(std::string_view payload, StatSnapshot* out) {
  WireReader r(payload);
  uint32_t count;
  PV_RETURN_IF_ERROR(r.ReadU32(&count));
  if (count > 4096) {
    return Status::InvalidArgument("stat count exceeds the cap");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    uint64_t value;
    PV_RETURN_IF_ERROR(r.ReadString(&key, 256));
    PV_RETURN_IF_ERROR(r.ReadU64(&value));
    out->emplace_back(std::move(key), value);
  }
  return r.ExpectEnd();
}

std::string BuildResponseFrame(uint16_t request_type, uint32_t request_id,
                               const Status& status,
                               std::string_view payload) {
  std::string body;
  EncodeStatusPrefix(status, &body);
  if (status.ok()) body.append(payload.data(), payload.size());
  FrameHeader h;
  h.type = static_cast<uint16_t>(request_type | kResponseBit);
  h.request_id = request_id;
  h.body_len = static_cast<uint32_t>(body.size());
  std::string frame;
  frame.reserve(kFrameHeaderSize + body.size());
  EncodeFrameHeader(h, &frame);
  frame += body;
  return frame;
}

std::string BuildRequestFrame(MessageType type, uint32_t request_id,
                              std::string_view body) {
  FrameHeader h;
  h.type = static_cast<uint16_t>(type);
  h.request_id = request_id;
  h.body_len = static_cast<uint32_t>(body.size());
  std::string frame;
  frame.reserve(kFrameHeaderSize + body.size());
  EncodeFrameHeader(h, &frame);
  frame.append(body.data(), body.size());
  return frame;
}

}  // namespace provview
