// Request-level admission control for podsd: ONE queue-depth gate and ONE
// memory pool shared by every in-flight request, replacing the per-request
// ceilings as the daemon's saturation story. A request is admitted
// (charging items + 1 depth units) before any engine work starts and
// released on every exit path; when the gate is full the daemon answers a
// typed RESOURCE_EXHAUSTED carrying the current depth, instead of queueing
// unboundedly. The memory pool (a MemoryBudget) is attached to each
// admitted request's ExecControl, so engine byte charges draw from the
// daemon-wide pool AND the request's own optional ceiling; exhausting the
// pool degrades only the charging request. Everything here is surfaced in
// STAT (admission_* keys).
#ifndef PROVVIEW_SERVER_ADMISSION_H_
#define PROVVIEW_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/exec_control.h"
#include "common/status.h"

namespace provview {

class AdmissionController {
 public:
  /// `max_depth` bounds the summed depth units of admitted requests;
  /// `memory_bytes` <= 0 leaves the shared pool unbounded.
  AdmissionController(int64_t max_depth, int64_t memory_bytes)
      : max_depth_(max_depth), memory_(memory_bytes) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Reserves `units` of depth; RESOURCE_EXHAUSTED (with the current depth
  /// in the message) when the gate cannot cover them. Balanced by
  /// Release() on every exit path of the admitted request.
  Status Admit(int64_t units) {
    int64_t cur = depth_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur + units > max_depth_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "daemon saturated: admission depth " + std::to_string(cur) +
            " of " + std::to_string(max_depth_) + " units");
      }
      if (depth_.compare_exchange_weak(cur, cur + units,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        break;
      }
    }
    const int64_t now = cur + units;
    int64_t peak = peak_depth_.load(std::memory_order_relaxed);
    while (now > peak && !peak_depth_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }

  void Release(int64_t units) {
    depth_.fetch_sub(units, std::memory_order_acq_rel);
  }

  int64_t depth() const { return depth_.load(std::memory_order_relaxed); }
  int64_t peak_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }
  int64_t max_depth() const { return max_depth_; }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// The daemon-wide engine-byte pool; attach to each admitted request's
  /// ExecControl via set_shared_budget().
  MemoryBudget* memory() { return &memory_; }
  const MemoryBudget& memory() const { return memory_; }

 private:
  const int64_t max_depth_;
  std::atomic<int64_t> depth_{0};
  std::atomic<int64_t> peak_depth_{0};
  std::atomic<uint64_t> rejected_{0};
  MemoryBudget memory_;
};

/// RAII for the depth gate: admitted units are released on every exit path
/// of a request handler.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  AdmissionSlot(AdmissionController* controller, int64_t units)
      : controller_(controller), units_(units) {}
  AdmissionSlot(AdmissionSlot&& o) noexcept
      : controller_(o.controller_), units_(o.units_) {
    o.controller_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& o) noexcept {
    if (this != &o) {
      reset();
      controller_ = o.controller_;
      units_ = o.units_;
      o.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { reset(); }

  void reset() {
    if (controller_ != nullptr) controller_->Release(units_);
    controller_ = nullptr;
  }

 private:
  AdmissionController* controller_ = nullptr;
  int64_t units_ = 0;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_ADMISSION_H_
