#include "server/handler.h"

#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitset64.h"
#include "common/exec_control.h"
#include "common/task_graph.h"
#include "privacy/workflow_privacy.h"
#include "secureview/serialization.h"

namespace provview {

namespace {

std::string HandleCertify(const RequestContext& ctx,
                          const FrameHeader& header, std::string_view body,
                          bool batch) {
  DaemonStats* stats = ctx.stats;
  const auto fail = [&](const Status& status) {
    stats->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  };

  CertifyRequest req;
  const Status decoded = DecodeCertifyRequest(body, batch, &req);
  if (!decoded.ok()) return fail(decoded);

  const std::shared_ptr<const RegisteredWorkflow> entry =
      ctx.registry->Find(req.workflow);
  if (entry == nullptr) {
    return fail(Status::NotFound("unknown workflow '" + req.workflow + "'"));
  }
  const Workflow& workflow = *entry->workflow;
  const int num_attrs = workflow.catalog()->size();

  std::vector<WorkflowCertificationRequest> requests;
  requests.reserve(req.items.size());
  for (const CertifyItem& item : req.items) {
    WorkflowCertificationRequest r;
    r.gamma = item.gamma;
    r.hidden = Bitset64(num_attrs);
    for (uint32_t a : item.hidden_attrs) {
      if (a >= static_cast<uint32_t>(num_attrs)) {
        return fail(Status::InvalidArgument(
            "hidden attr " + std::to_string(a) + " out of range for '" +
            req.workflow + "' (" + std::to_string(num_attrs) + " attrs)"));
      }
      r.hidden.Set(static_cast<int>(a));
    }
    requests.push_back(std::move(r));
  }

  // Request-level admission: one depth unit per item plus one for the
  // request itself, against the gate EVERY in-flight request shares.
  const int64_t units = static_cast<int64_t>(req.items.size()) + 1;
  const Status admitted = ctx.admission->Admit(units);
  if (!admitted.ok()) return fail(admitted);
  AdmissionSlot slot(ctx.admission, units);

  // Per-request control: deadline and (optional) own ceiling live exactly
  // as long as this request; a trip cannot leak into the next one. Engine
  // byte charges additionally draw from the daemon-wide admission pool.
  ExecControl control;
  if (req.deadline_ms > 0) control.set_deadline_ms(req.deadline_ms);
  if (req.memory_budget > 0) control.set_memory_budget(req.memory_budget);
  control.set_shared_budget(ctx.admission->memory());

  WorkflowBatchOptions opts;
  opts.control = &control;
  if (ctx.executor != nullptr) {
    opts.executor = ctx.executor;
    opts.num_threads =
        ctx.executor->num_threads() + (ctx.caller_helps ? 1 : 0);
  } else {
    opts.num_threads = 1;  // inline: the daemon's parallelism is connections
  }
  WorkflowBatchResult result = CertifyWorkflowBatch(
      workflow, requests, opts, entry->verdicts.get());

  stats->memo_checker_calls.fetch_add(
      static_cast<uint64_t>(result.stats.checker_calls),
      std::memory_order_relaxed);
  stats->memo_cache_hits.fetch_add(
      static_cast<uint64_t>(result.stats.cache_hits),
      std::memory_order_relaxed);
  stats->RecordPeakRequestBytes(static_cast<uint64_t>(control.peak_bytes()));

  if (!result.status.ok()) return fail(result.status);

  CertifyResponse resp;
  resp.checker_calls = static_cast<uint64_t>(result.stats.checker_calls);
  resp.cache_hits = static_cast<uint64_t>(result.stats.cache_hits);
  resp.entries.reserve(result.entries.size());
  for (const WorkflowBatchEntry& e : result.entries) {
    CertifyEntry out;
    out.certified = e.certificate.certified;
    out.module_gammas = e.certificate.module_gammas;
    for (int m : e.certificate.required_privatizations) {
      out.required_privatizations.push_back(static_cast<uint32_t>(m));
    }
    stats->items_certified.fetch_add(out.certified ? 1 : 0,
                                     std::memory_order_relaxed);
    stats->items_rejected.fetch_add(out.certified ? 0 : 1,
                                    std::memory_order_relaxed);
    resp.entries.push_back(std::move(out));
  }
  std::string payload;
  EncodeCertifyResponse(resp, &payload);
  const Status ok = Status::OK();
  stats->RecordOutcome(ok);
  return BuildResponseFrame(header.type, header.request_id, ok, payload);
}

std::string HandleRegister(const RequestContext& ctx,
                           const FrameHeader& header, std::string_view body) {
  const auto fail = [&](const Status& status) {
    ctx.stats->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  };
  RegisterRequest req;
  const Status decoded = DecodeRegisterRequest(body, &req);
  if (!decoded.ok()) return fail(decoded);

  // Decoding megabytes of tables and building the model is engine-class
  // work: it passes the same gate as certification (one depth unit).
  const Status admitted = ctx.admission->Admit(1);
  if (!admitted.ok()) return fail(admitted);
  AdmissionSlot slot(ctx.admission, 1);

  Result<WorkflowBundle> bundle = DeserializeWorkflowBinary(req.workflow_bytes);
  if (!bundle.ok()) return fail(bundle.status());

  RegisterResponse resp;
  resp.num_attrs = static_cast<uint32_t>(bundle.value().workflow->num_attrs());
  resp.num_modules =
      static_cast<uint32_t>(bundle.value().workflow->num_modules());
  resp.num_private_modules = static_cast<uint32_t>(
      bundle.value().workflow->PrivateModuleIndices().size());

  const Status registered = ctx.registry->TryRegister(
      req.name, std::move(bundle.value().catalog),
      std::move(bundle.value().workflow));
  if (!registered.ok()) return fail(registered);

  std::string payload;
  EncodeRegisterResponse(resp, &payload);
  const Status ok = Status::OK();
  ctx.stats->RecordOutcome(ok);
  return BuildResponseFrame(header.type, header.request_id, ok, payload);
}

std::string HandleUnregister(const RequestContext& ctx,
                             const FrameHeader& header,
                             std::string_view body) {
  std::string name;
  Status status = DecodeUnregisterRequest(body, &name);
  if (status.ok()) status = ctx.registry->Unregister(name);
  ctx.stats->RecordOutcome(status);
  return BuildResponseFrame(header.type, header.request_id, status);
}

}  // namespace

std::string HandleFrame(const RequestContext& ctx, const FrameHeader& header,
                        std::string_view body) {
  DaemonStats* stats = ctx.stats;
  // Request-level catch wall: whatever happens past this point poisons one
  // reply, not the daemon. PV_CHECK aborts cannot be caught — which is why
  // every engine entered from here runs in service mode (ExecControl
  // attached) and every external byte is decoded by abort-free codecs.
  try {
    switch (static_cast<MessageType>(header.type)) {
      case MessageType::kPing: {
        stats->ping_requests.fetch_add(1, std::memory_order_relaxed);
        const Status ok = Status::OK();
        stats->RecordOutcome(ok);
        return BuildResponseFrame(header.type, header.request_id, ok);
      }
      case MessageType::kStat: {
        stats->stat_requests.fetch_add(1, std::memory_order_relaxed);
        DaemonStats::StatContext sc;
        sc.cache = ctx.registry->verdict_cache();
        sc.admission = ctx.admission;
        sc.workflows_registered =
            static_cast<uint64_t>(ctx.registry->size());
        sc.reactor_threads = static_cast<uint64_t>(ctx.reactor_threads);
        std::string payload;
        EncodeStatResponse(stats->Snapshot(sc), &payload);
        const Status ok = Status::OK();
        stats->RecordOutcome(ok);
        return BuildResponseFrame(header.type, header.request_id, ok,
                                  payload);
      }
      case MessageType::kCertify:
        stats->certify_requests.fetch_add(1, std::memory_order_relaxed);
        return HandleCertify(ctx, header, body, /*batch=*/false);
      case MessageType::kCertifyBatch:
        stats->batch_requests.fetch_add(1, std::memory_order_relaxed);
        return HandleCertify(ctx, header, body, /*batch=*/true);
      case MessageType::kRegister:
        stats->register_requests.fetch_add(1, std::memory_order_relaxed);
        return HandleRegister(ctx, header, body);
      case MessageType::kUnregister:
        stats->unregister_requests.fetch_add(1, std::memory_order_relaxed);
        return HandleUnregister(ctx, header, body);
      default: {
        const Status status = Status::InvalidArgument(
            "unknown request type " + std::to_string(header.type));
        stats->RecordOutcome(status);
        return BuildResponseFrame(header.type, header.request_id, status);
      }
    }
  } catch (const std::exception& e) {
    const Status status =
        Status::Internal(std::string("request failed: ") + e.what());
    stats->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  } catch (...) {
    const Status status = Status::Internal("request failed");
    stats->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  }
}

}  // namespace provview
