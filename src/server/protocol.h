// podsd wire protocol: length-prefixed binary frames over a byte stream.
//
// Every message is one frame — a fixed 16-byte header followed by a body of
// exactly `body_len` bytes:
//
//   offset  size  field
//   0       4     magic       'PODS' (0x53444F50, little-endian)
//   4       2     version     protocol version (currently 1)
//   6       2     type        request type; responses set bit 15
//   8       4     request_id  echoed verbatim in the response
//   12      4     body_len    bytes of body that follow (<= kMaxBodyLen)
//
// Every RESPONSE body starts with a status prefix — u16 wire status code +
// length-prefixed message string — followed by the type-specific payload
// (present only when the status is OK). This is the error-isolation seam:
// a malformed body, unknown workflow, tripped deadline or engine failure
// all come back as a status-bearing response on the same connection; only
// an unparseable HEADER (bad magic/version, oversized body_len) ends the
// connection, because framing can no longer be trusted after it.
//
// All multi-byte integers are little-endian (WireWriter/WireReader).
#ifndef PROVVIEW_SERVER_PROTOCOL_H_
#define PROVVIEW_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace provview {

inline constexpr uint32_t kFrameMagic = 0x53444F50;  // "PODS"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
/// Largest body either side accepts. A forged body_len beyond this is a
/// framing error (connection closes), not an allocation.
inline constexpr uint32_t kMaxBodyLen = 4u << 20;
/// Set on the `type` field of every response frame.
inline constexpr uint16_t kResponseBit = 0x8000;

/// Request types. Responses carry `type | kResponseBit`.
enum class MessageType : uint16_t {
  kPing = 1,          ///< liveness probe; empty body both ways
  kStat = 2,          ///< introspection; response lists key/value counters
  kCertify = 3,       ///< one certification request
  kCertifyBatch = 4,  ///< many certification requests, one engine pass
  kRegister = 5,      ///< bind a serialized workflow under a new name
  kUnregister = 6,    ///< drop a wire-registered workflow by name
};

struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint16_t version = kProtocolVersion;
  uint16_t type = 0;
  uint32_t request_id = 0;
  uint32_t body_len = 0;
};

/// Appends the 16-byte header encoding.
void EncodeFrameHeader(const FrameHeader& h, std::string* out);

/// Decodes and validates a header (magic, version, body_len cap). `bytes`
/// must hold exactly kFrameHeaderSize bytes. A non-OK return means the
/// stream is unframeable and the connection must close.
Status DecodeFrameHeader(std::string_view bytes, FrameHeader* out);

// -- status prefix ----------------------------------------------------------

/// StatusCode <-> u16 wire code. Unknown wire codes decode as kInternal.
uint16_t WireCodeOf(StatusCode code);
StatusCode StatusCodeFromWire(uint16_t wire);

/// Appends the response status prefix (wire code + message).
void EncodeStatusPrefix(const Status& status, std::string* out);

/// Splits a response body into its decoded status and the payload bytes
/// that follow. Non-OK only when the body itself is malformed; the
/// response's own (possibly error) status lands in `*status`.
Status ParseResponseBody(std::string_view body, Status* status,
                         std::string_view* payload);

// -- certification ----------------------------------------------------------

/// One certification item: a privacy target and a candidate hidden set
/// (attribute ids into the workflow's catalog).
struct CertifyItem {
  int64_t gamma = 1;
  std::vector<uint32_t> hidden_attrs;
};

/// Body of CERTIFY (exactly one item) and CERTIFY_BATCH (any number).
struct CertifyRequest {
  std::string workflow;      ///< registered workflow name
  int64_t deadline_ms = 0;   ///< per-request deadline; 0 = none
  int64_t memory_budget = 0; ///< engine memory budget in bytes; 0 = none
  std::vector<CertifyItem> items;
};

/// Caps on decoded certification requests (pre-allocation rejection).
inline constexpr uint32_t kMaxCertifyItems = 4096;
inline constexpr uint32_t kMaxHiddenAttrs = 1u << 16;
inline constexpr uint32_t kMaxWorkflowNameLen = 256;

void EncodeCertifyRequest(const CertifyRequest& req, bool batch,
                          std::string* body);
Status DecodeCertifyRequest(std::string_view body, bool batch,
                            CertifyRequest* out);

/// Per-item verdict of a certification response.
struct CertifyEntry {
  bool certified = false;
  std::vector<int64_t> module_gammas;
  std::vector<uint32_t> required_privatizations;
};

/// OK-payload of CERTIFY / CERTIFY_BATCH responses.
struct CertifyResponse {
  std::vector<CertifyEntry> entries;  ///< aligned with the request items
  uint64_t checker_calls = 0;
  uint64_t cache_hits = 0;
};

void EncodeCertifyResponse(const CertifyResponse& resp, std::string* body);
Status DecodeCertifyResponse(std::string_view payload, CertifyResponse* out);

// -- registration -----------------------------------------------------------

/// Body of REGISTER: the handle to serve the workflow under, then the
/// SerializeWorkflowBinary bytes (no inner length prefix — the frame's
/// body_len bounds them). The workflow bytes are validated by the workflow
/// codec, which applies the same bounds-checked decoder discipline as this
/// layer before any model object is built.
struct RegisterRequest {
  std::string name;
  std::string workflow_bytes;
};

void EncodeRegisterRequest(const RegisterRequest& req, std::string* body);
Status DecodeRegisterRequest(std::string_view body, RegisterRequest* out);

/// OK-payload of a REGISTER response: shape of the accepted workflow.
struct RegisterResponse {
  uint32_t num_attrs = 0;
  uint32_t num_modules = 0;
  uint32_t num_private_modules = 0;
};

void EncodeRegisterResponse(const RegisterResponse& resp, std::string* body);
Status DecodeRegisterResponse(std::string_view payload, RegisterResponse* out);

/// Body of UNREGISTER: just the handle. The response carries no payload.
void EncodeUnregisterRequest(const std::string& name, std::string* body);
Status DecodeUnregisterRequest(std::string_view body, std::string* name);

// -- stat -------------------------------------------------------------------

using StatSnapshot = std::vector<std::pair<std::string, uint64_t>>;

void EncodeStatResponse(const StatSnapshot& stats, std::string* body);
Status DecodeStatResponse(std::string_view payload, StatSnapshot* out);

// -- convenience ------------------------------------------------------------

/// Builds a complete response frame: header + status prefix + payload
/// (payload is appended only when `status` is OK).
std::string BuildResponseFrame(uint16_t request_type, uint32_t request_id,
                               const Status& status,
                               std::string_view payload = {});

/// Builds a complete request frame.
std::string BuildRequestFrame(MessageType type, uint32_t request_id,
                              std::string_view body = {});

}  // namespace provview

#endif  // PROVVIEW_SERVER_PROTOCOL_H_
