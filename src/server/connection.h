// One connected podsd client on the legacy blocking front-end: a dedicated
// thread reads frames, dispatches requests through the shared HandleFrame
// core, and writes responses — and is the daemon's error-isolation
// boundary. The discipline (borrowed from memcached): validate every
// external byte at this layer, convert every failure into a per-connection
// or per-request error, and never let one client's input take down the
// process or another client's request.
//
//   failure                          blast radius
//   ------------------------------   -------------------------------------
//   bad magic / version / body_len   error response, THIS connection closes
//   unknown request type             error response, connection survives
//   malformed request body           error response, connection survives
//   unknown workflow name            NOT_FOUND response, connection survives
//   deadline / memory budget trip    typed response, connection survives
//   admission gate saturated         RESOURCE_EXHAUSTED, connection survives
//   engine exception                 INTERNAL response, connection survives
//   peer hangs up mid-frame          connection closes quietly
#ifndef PROVVIEW_SERVER_CONNECTION_H_
#define PROVVIEW_SERVER_CONNECTION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/handler.h"
#include "server/protocol.h"

namespace provview {

class Connection {
 public:
  /// Takes ownership of `fd` (closed when Run returns). Everything in `ctx`
  /// must outlive the connection. ctx.caller_helps should be true here:
  /// this connection's thread is free to help the shared executor run the
  /// request's own task graph.
  Connection(int fd, const RequestContext& ctx);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Serves frames until the peer closes, a framing error poisons the
  /// stream, or the daemon shuts the socket down.
  void Run();

 private:
  bool ReadExact(char* buf, size_t n);
  bool WriteAll(std::string_view bytes);

  int fd_;
  RequestContext ctx_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_CONNECTION_H_
