// One connected podsd client: reads frames, dispatches requests, writes
// responses — and is the daemon's error-isolation boundary. The discipline
// (borrowed from memcached): validate every external byte at this layer,
// convert every failure into a per-connection or per-request error, and
// never let one client's input take down the process or another client's
// request.
//
//   failure                          blast radius
//   ------------------------------   -------------------------------------
//   bad magic / version / body_len   error response, THIS connection closes
//   unknown request type             error response, connection survives
//   malformed request body           error response, connection survives
//   unknown workflow name            NOT_FOUND response, connection survives
//   deadline / memory budget trip    typed response, connection survives
//   engine exception                 INTERNAL response, connection survives
//   peer hangs up mid-frame          connection closes quietly
#ifndef PROVVIEW_SERVER_CONNECTION_H_
#define PROVVIEW_SERVER_CONNECTION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "server/registry.h"
#include "server/stats.h"

namespace provview {

class TaskGraphExecutor;

class Connection {
 public:
  /// Takes ownership of `fd` (closed when Run returns). `registry` and
  /// `stats` must outlive the connection. `executor`, when non-null, is the
  /// daemon's shared engine executor: certify requests pass its admission
  /// gate (items + 1 units; RESOURCE_EXHAUSTED when saturated) and submit
  /// their task graphs into it, this thread helping. Null = requests run
  /// inline on this thread (the historical single-threaded engine mode).
  Connection(int fd, const WorkflowRegistry* registry, DaemonStats* stats,
             TaskGraphExecutor* executor = nullptr);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Serves frames until the peer closes, a framing error poisons the
  /// stream, or the daemon shuts the socket down.
  void Run();

 private:
  bool ReadExact(char* buf, size_t n);
  bool WriteAll(std::string_view bytes);

  /// Dispatches one well-framed request; returns the response frame.
  /// Exceptions from the engines are caught inside (the request-level
  /// catch wall) and become INTERNAL responses.
  std::string HandleRequest(const FrameHeader& header, std::string_view body);

  std::string HandleCertify(const FrameHeader& header, std::string_view body,
                            bool batch);

  int fd_;
  const WorkflowRegistry* registry_;
  DaemonStats* stats_;
  TaskGraphExecutor* executor_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_CONNECTION_H_
