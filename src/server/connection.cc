#include "server/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace provview {

Connection::Connection(int fd, const RequestContext& ctx)
    : fd_(fd), ctx_(ctx) {
  ctx_.stats->connections_opened.fetch_add(1, std::memory_order_relaxed);
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
  ctx_.stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
}

bool Connection::ReadExact(char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd_, buf + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // peer closed or socket shut down
  }
  ctx_.stats->bytes_received.fetch_add(n, std::memory_order_relaxed);
  return true;
}

bool Connection::WriteAll(std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t sent = ::send(fd_, bytes.data() + done, bytes.size() - done,
                                MSG_NOSIGNAL);
    if (sent > 0) {
      done += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  ctx_.stats->bytes_sent.fetch_add(bytes.size(), std::memory_order_relaxed);
  return true;
}

void Connection::Run() {
  std::string body;
  for (;;) {
    char header_buf[kFrameHeaderSize];
    if (!ReadExact(header_buf, sizeof(header_buf))) return;
    FrameHeader header;
    const Status framing = DecodeFrameHeader(
        std::string_view(header_buf, sizeof(header_buf)), &header);
    if (!framing.ok()) {
      // The stream can no longer be trusted (the next "frame" could start
      // anywhere): report once and close THIS connection. Other
      // connections are untouched.
      ctx_.stats->rejected_frames.fetch_add(1, std::memory_order_relaxed);
      ctx_.stats->RecordOutcome(framing);
      WriteAll(BuildResponseFrame(header.type, header.request_id, framing));
      return;
    }
    body.resize(header.body_len);
    if (header.body_len > 0 && !ReadExact(body.data(), body.size())) return;
    const std::string response = HandleFrame(ctx_, header, body);
    if (!WriteAll(response)) return;
  }
}

}  // namespace provview
