#include "server/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <exception>
#include <vector>

#include "common/bitset64.h"
#include "common/exec_control.h"
#include "common/task_graph.h"
#include "privacy/workflow_privacy.h"

namespace provview {

Connection::Connection(int fd, const WorkflowRegistry* registry,
                       DaemonStats* stats, TaskGraphExecutor* executor)
    : fd_(fd), registry_(registry), stats_(stats), executor_(executor) {
  stats_->connections_opened.fetch_add(1, std::memory_order_relaxed);
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
  stats_->connections_closed.fetch_add(1, std::memory_order_relaxed);
}

bool Connection::ReadExact(char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd_, buf + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // peer closed or socket shut down
  }
  stats_->bytes_received.fetch_add(n, std::memory_order_relaxed);
  return true;
}

bool Connection::WriteAll(std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t sent = ::send(fd_, bytes.data() + done, bytes.size() - done,
                                MSG_NOSIGNAL);
    if (sent > 0) {
      done += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  stats_->bytes_sent.fetch_add(bytes.size(), std::memory_order_relaxed);
  return true;
}

void Connection::Run() {
  std::string body;
  for (;;) {
    char header_buf[kFrameHeaderSize];
    if (!ReadExact(header_buf, sizeof(header_buf))) return;
    FrameHeader header;
    const Status framing = DecodeFrameHeader(
        std::string_view(header_buf, sizeof(header_buf)), &header);
    if (!framing.ok()) {
      // The stream can no longer be trusted (the next "frame" could start
      // anywhere): report once and close THIS connection. Other
      // connections are untouched.
      stats_->rejected_frames.fetch_add(1, std::memory_order_relaxed);
      stats_->RecordOutcome(framing);
      WriteAll(BuildResponseFrame(header.type, header.request_id, framing));
      return;
    }
    body.resize(header.body_len);
    if (header.body_len > 0 && !ReadExact(body.data(), body.size())) return;
    const std::string response = HandleRequest(header, body);
    if (!WriteAll(response)) return;
  }
}

std::string Connection::HandleRequest(const FrameHeader& header,
                                      std::string_view body) {
  // Request-level catch wall: whatever happens past this point poisons one
  // reply, not the daemon. PV_CHECK aborts cannot be caught — which is why
  // every engine entered from here runs in service mode (ExecControl
  // attached) where guards return typed Status instead.
  try {
    switch (static_cast<MessageType>(header.type)) {
      case MessageType::kPing: {
        stats_->ping_requests.fetch_add(1, std::memory_order_relaxed);
        const Status ok = Status::OK();
        stats_->RecordOutcome(ok);
        return BuildResponseFrame(header.type, header.request_id, ok);
      }
      case MessageType::kStat: {
        stats_->stat_requests.fetch_add(1, std::memory_order_relaxed);
        std::string payload;
        EncodeStatResponse(stats_->Snapshot(registry_->verdict_cache()),
                           &payload);
        const Status ok = Status::OK();
        stats_->RecordOutcome(ok);
        return BuildResponseFrame(header.type, header.request_id, ok,
                                  payload);
      }
      case MessageType::kCertify:
        stats_->certify_requests.fetch_add(1, std::memory_order_relaxed);
        return HandleCertify(header, body, /*batch=*/false);
      case MessageType::kCertifyBatch:
        stats_->batch_requests.fetch_add(1, std::memory_order_relaxed);
        return HandleCertify(header, body, /*batch=*/true);
      default: {
        const Status status = Status::InvalidArgument(
            "unknown request type " + std::to_string(header.type));
        stats_->RecordOutcome(status);
        return BuildResponseFrame(header.type, header.request_id, status);
      }
    }
  } catch (const std::exception& e) {
    const Status status =
        Status::Internal(std::string("request failed: ") + e.what());
    stats_->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  } catch (...) {
    const Status status = Status::Internal("request failed");
    stats_->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  }
}

std::string Connection::HandleCertify(const FrameHeader& header,
                                      std::string_view body, bool batch) {
  const auto fail = [&](const Status& status) {
    stats_->RecordOutcome(status);
    return BuildResponseFrame(header.type, header.request_id, status);
  };

  CertifyRequest req;
  const Status decoded = DecodeCertifyRequest(body, batch, &req);
  if (!decoded.ok()) return fail(decoded);

  const RegisteredWorkflow* entry = registry_->Find(req.workflow);
  if (entry == nullptr) {
    return fail(Status::NotFound("unknown workflow '" + req.workflow + "'"));
  }
  const Workflow& workflow = *entry->workflow;
  const int num_attrs = workflow.catalog()->size();

  std::vector<WorkflowCertificationRequest> requests;
  requests.reserve(req.items.size());
  for (const CertifyItem& item : req.items) {
    WorkflowCertificationRequest r;
    r.gamma = item.gamma;
    r.hidden = Bitset64(num_attrs);
    for (uint32_t a : item.hidden_attrs) {
      if (a >= static_cast<uint32_t>(num_attrs)) {
        return fail(Status::InvalidArgument(
            "hidden attr " + std::to_string(a) + " out of range for '" +
            req.workflow + "' (" + std::to_string(num_attrs) + " attrs)"));
      }
      r.hidden.Set(static_cast<int>(a));
    }
    requests.push_back(std::move(r));
  }

  // Per-request control: deadline and budget live exactly as long as this
  // request; a trip cannot leak into the next one.
  ExecControl control;
  if (req.deadline_ms > 0) control.set_deadline_ms(req.deadline_ms);
  if (req.memory_budget > 0) control.set_memory_budget(req.memory_budget);

  WorkflowBatchOptions opts;
  opts.control = &control;
  AdmissionTicket ticket;
  if (executor_ != nullptr) {
    // Shared-executor mode: pass the admission gate (one unit per item plus
    // one for the request), then submit the batch's task graph into the
    // daemon-wide executor with this thread helping.
    const int64_t units = static_cast<int64_t>(req.items.size()) + 1;
    if (!executor_->TryAdmit(units)) {
      return fail(Status::ResourceExhausted(
          "daemon saturated: admission gate full (max_pending " +
          std::to_string(executor_->max_pending()) + " units)"));
    }
    ticket = AdmissionTicket(executor_, units);
    opts.executor = executor_;
    opts.num_threads = executor_->num_threads() + 1;  // workers + this thread
  } else {
    opts.num_threads = 1;  // inline: the daemon's parallelism is connections
  }
  WorkflowBatchResult result =
      CertifyWorkflowBatch(workflow, requests, opts, entry->verdicts.get());

  stats_->memo_checker_calls.fetch_add(
      static_cast<uint64_t>(result.stats.checker_calls),
      std::memory_order_relaxed);
  stats_->memo_cache_hits.fetch_add(
      static_cast<uint64_t>(result.stats.cache_hits),
      std::memory_order_relaxed);
  stats_->RecordPeakRequestBytes(
      static_cast<uint64_t>(control.peak_bytes()));

  if (!result.status.ok()) return fail(result.status);

  CertifyResponse resp;
  resp.checker_calls = static_cast<uint64_t>(result.stats.checker_calls);
  resp.cache_hits = static_cast<uint64_t>(result.stats.cache_hits);
  resp.entries.reserve(result.entries.size());
  for (const WorkflowBatchEntry& e : result.entries) {
    CertifyEntry out;
    out.certified = e.certificate.certified;
    out.module_gammas = e.certificate.module_gammas;
    for (int m : e.certificate.required_privatizations) {
      out.required_privatizations.push_back(static_cast<uint32_t>(m));
    }
    stats_->items_certified.fetch_add(out.certified ? 1 : 0,
                                      std::memory_order_relaxed);
    stats_->items_rejected.fetch_add(out.certified ? 0 : 1,
                                     std::memory_order_relaxed);
    resp.entries.push_back(std::move(out));
  }
  std::string payload;
  EncodeCertifyResponse(resp, &payload);
  const Status ok = Status::OK();
  stats_->RecordOutcome(ok);
  return BuildResponseFrame(header.type, header.request_id, ok, payload);
}

}  // namespace provview
