// Minimal blocking client for the podsd wire protocol. Used by podsctl,
// the throughput bench, and the e2e/fault-injection tests — which is why it
// exposes the raw frame layer (SendRaw / RecvResponse) next to the typed
// calls: the tests need to inject malformed bytes and watch the daemon's
// typed replies.
//
// Transport failures (connect, short read/write, peer close) come back as
// INTERNAL; a response's own error status is returned verbatim, so e.g.
// Certify on a doomed deadline returns DEADLINE_EXCEEDED — exactly what the
// daemon sent.
#ifndef PROVVIEW_SERVER_CLIENT_H_
#define PROVVIEW_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/protocol.h"

namespace provview {

class PodsClient {
 public:
  PodsClient() = default;
  ~PodsClient();

  PodsClient(const PodsClient&) = delete;
  PodsClient& operator=(const PodsClient&) = delete;

  /// Connects to 127.0.0.1:`port`.
  Status Connect(uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Typed round-trips. Each sends one request and blocks for its response.
  Status Ping();
  Status Stat(StatSnapshot* out);
  /// `batch` selects CERTIFY_BATCH (any item count) vs CERTIFY (exactly 1).
  Status Certify(const CertifyRequest& req, bool batch, CertifyResponse* out);
  /// Registers a serialized workflow (SerializeWorkflowBinary bytes) under
  /// `name`; the daemon's decode summary comes back in `*out` when
  /// non-null. INVALID_ARGUMENT on a duplicate name or rejected bytes.
  Status Register(const std::string& name, std::string_view workflow_bytes,
                  RegisterResponse* out = nullptr);
  /// NOT_FOUND when `name` is not registered.
  Status Unregister(const std::string& name);

  // -- raw frame layer (fault-injection tests) ------------------------------

  /// Writes arbitrary bytes on the socket — valid frames or garbage.
  Status SendRaw(std::string_view bytes);
  /// Reads one response frame (header + body). INTERNAL on transport
  /// failure / peer close.
  Status RecvResponse(FrameHeader* header, std::string* body);
  /// SendRaw + RecvResponse + ParseResponseBody: returns the response's own
  /// status and leaves the OK-payload in `*payload`.
  Status RoundTrip(std::string_view frame, std::string* payload);

 private:
  int fd_ = -1;
  uint32_t next_request_id_ = 1;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_CLIENT_H_
