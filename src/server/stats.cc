#include "server/stats.h"

namespace provview {

void DaemonStats::RecordOutcome(const Status& status) {
  requests_total.fetch_add(1, std::memory_order_relaxed);
  if (status.ok()) {
    requests_ok.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  requests_error.fetch_add(1, std::memory_order_relaxed);
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      resource_exhausted.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
      invalid_requests.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

StatSnapshot DaemonStats::Snapshot() const {
  const auto get = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  return StatSnapshot{
      {"connections_opened", get(connections_opened)},
      {"connections_closed", get(connections_closed)},
      {"rejected_frames", get(rejected_frames)},
      {"requests_total", get(requests_total)},
      {"requests_ok", get(requests_ok)},
      {"requests_error", get(requests_error)},
      {"ping_requests", get(ping_requests)},
      {"stat_requests", get(stat_requests)},
      {"certify_requests", get(certify_requests)},
      {"batch_requests", get(batch_requests)},
      {"items_certified", get(items_certified)},
      {"items_rejected", get(items_rejected)},
      {"memo_checker_calls", get(memo_checker_calls)},
      {"memo_cache_hits", get(memo_cache_hits)},
      {"deadline_exceeded", get(deadline_exceeded)},
      {"resource_exhausted", get(resource_exhausted)},
      {"invalid_requests", get(invalid_requests)},
      {"bytes_received", get(bytes_received)},
      {"bytes_sent", get(bytes_sent)},
      {"peak_request_bytes", peak_request_bytes()},
  };
}

}  // namespace provview
