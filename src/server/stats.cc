#include "server/stats.h"

#include <string>

#include "privacy/verdict_cache.h"
#include "server/admission.h"

namespace provview {

void DaemonStats::RecordOutcome(const Status& status) {
  requests_total.fetch_add(1, std::memory_order_relaxed);
  if (status.ok()) {
    requests_ok.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  requests_error.fetch_add(1, std::memory_order_relaxed);
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      resource_exhausted.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
      invalid_requests.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

StatSnapshot DaemonStats::Snapshot(const VerdictCache* cache) const {
  StatContext ctx;
  ctx.cache = cache;
  return Snapshot(ctx);
}

StatSnapshot DaemonStats::Snapshot(const StatContext& ctx) const {
  const VerdictCache* cache = ctx.cache;
  const auto get = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  StatSnapshot snap{
      {"connections_opened", get(connections_opened)},
      {"connections_closed", get(connections_closed)},
      {"rejected_frames", get(rejected_frames)},
      {"requests_total", get(requests_total)},
      {"requests_ok", get(requests_ok)},
      {"requests_error", get(requests_error)},
      {"ping_requests", get(ping_requests)},
      {"stat_requests", get(stat_requests)},
      {"certify_requests", get(certify_requests)},
      {"batch_requests", get(batch_requests)},
      {"items_certified", get(items_certified)},
      {"items_rejected", get(items_rejected)},
      {"memo_checker_calls", get(memo_checker_calls)},
      {"memo_cache_hits", get(memo_cache_hits)},
      {"deadline_exceeded", get(deadline_exceeded)},
      {"resource_exhausted", get(resource_exhausted)},
      {"invalid_requests", get(invalid_requests)},
      {"bytes_received", get(bytes_received)},
      {"bytes_sent", get(bytes_sent)},
      {"peak_request_bytes", peak_request_bytes()},
  };
  const auto u64 = [](int64_t v) {
    return v < 0 ? uint64_t{0} : static_cast<uint64_t>(v);
  };
  if (cache != nullptr || ctx.admission != nullptr) {
    snap.emplace_back("stat_version",
                      ctx.admission != nullptr ? uint64_t{3} : uint64_t{2});
  }
  if (cache != nullptr) {
    const VerdictCacheStats cs = cache->Stats();
    snap.emplace_back("verdict_cache_byte_budget",
                      cache->bounded() ? u64(cs.byte_budget) : uint64_t{0});
    snap.emplace_back("verdict_cache_bytes", u64(cs.bytes_in_use));
    snap.emplace_back("verdict_cache_peak_bytes", u64(cs.peak_bytes));
    snap.emplace_back("verdict_cache_namespaces", u64(cs.namespaces));
    const auto per_class = [&](const char* prefix,
                               const VerdictCacheStats::PerClass& c) {
      const std::string p = std::string("verdict_cache_") + prefix;
      snap.emplace_back(p + "_hits", u64(c.hits));
      snap.emplace_back(p + "_misses", u64(c.misses));
      snap.emplace_back(p + "_inserts", u64(c.inserts));
      snap.emplace_back(p + "_evictions", u64(c.evictions));
      snap.emplace_back(p + "_bytes", u64(c.bytes));
      snap.emplace_back(p + "_entries", u64(c.entries));
    };
    per_class("signature", cs.signature);
    per_class("projection", cs.projection);
  }
  if (ctx.admission != nullptr) {
    // stat_version 3: wire registration, request-level admission, reactor.
    const AdmissionController& adm = *ctx.admission;
    snap.emplace_back("workflows_registered", ctx.workflows_registered);
    snap.emplace_back("register_requests", get(register_requests));
    snap.emplace_back("unregister_requests", get(unregister_requests));
    snap.emplace_back("admission_depth", u64(adm.depth()));
    snap.emplace_back("admission_peak_depth", u64(adm.peak_depth()));
    snap.emplace_back("admission_max_depth", u64(adm.max_depth()));
    snap.emplace_back("admission_rejected", adm.rejected());
    const MemoryBudget& pool = adm.memory();
    snap.emplace_back("admission_memory_budget",
                      pool.bounded() ? u64(pool.budget()) : uint64_t{0});
    snap.emplace_back("admission_memory_bytes", u64(pool.bytes_in_use()));
    snap.emplace_back("admission_memory_peak_bytes", u64(pool.peak_bytes()));
    snap.emplace_back("admission_memory_exhausted", pool.exhausted_charges());
    snap.emplace_back("reactor_threads", ctx.reactor_threads);
  }
  return snap;
}

}  // namespace provview
