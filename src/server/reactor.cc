#include "server/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/task_graph.h"

namespace provview {

namespace {
constexpr int kMaxEpollEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

Reactor::Reactor(const RequestContext& ctx, int num_threads) : ctx_(ctx) {
  ctx_.caller_helps = false;  // dispatched handlers run ON executor workers
  if (num_threads < 1) num_threads = 1;
  ctx_.reactor_threads = num_threads;
  shards_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Reactor::~Reactor() { Stop(); }

void Reactor::Start() {
  if (started_) return;
  started_ = true;
  for (auto& shard : shards_) {
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->event_fd;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev);
    shard->thread = std::thread(&Reactor::RunShard, this, shard.get());
  }
}

void Reactor::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Not started, or a second Stop: still wait out any in-flight drain.
    if (started_) {
      std::unique_lock<std::mutex> lock(drain_mu_);
      drain_cv_.wait(lock, [&] {
        return in_flight_.load(std::memory_order_acquire) == 0;
      });
    }
    return;
  }
  for (auto& shard : shards_) Wake(shard.get());
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Detached engine tasks may still be running handlers; their completion
  // posts land in queues nobody reads (memory stays valid — the shards
  // outlive this wait). Only once they are all done is it safe for the
  // daemon to destroy the executor.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [&] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (int fd : shard->pending_adds) ::close(fd);
      shard->pending_adds.clear();
      shard->completions.clear();
    }
    for (auto& [fd, conn] : shard->conns) {
      conn->closed = true;
      ::close(fd);
      ctx_.stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
    }
    shard->conns.clear();
    if (shard->event_fd >= 0) ::close(shard->event_fd);
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    shard->event_fd = shard->epoll_fd = -1;
  }
}

void Reactor::AddConnection(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  Shard* shard =
      shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
              shards_.size()]
          .get();
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pending_adds.push_back(fd);
  }
  Wake(shard);
}

void Reactor::Wake(Shard* shard) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(shard->event_fd, &one, sizeof(one));
}

void Reactor::RunShard(Shard* shard) {
  epoll_event events[kMaxEpollEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(shard->epoll_fd, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == shard->event_fd) {
        uint64_t drained;
        while (::read(shard->event_fd, &drained, sizeof(drained)) > 0) {
        }
        DrainQueues(shard);
        continue;
      }
      const auto it = shard->conns.find(events[i].data.fd);
      if (it == shard->conns.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Peer gone. If a request is mid-engine its completion finds
        // conn->closed and drops the reply.
        CloseConn(shard, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(shard, conn);
      if (conn->closed) continue;
      if (events[i].events & EPOLLOUT) FlushWrites(shard, conn);
    }
  }
}

void Reactor::DrainQueues(Shard* shard) {
  std::vector<int> adds;
  std::vector<std::pair<std::shared_ptr<Conn>, std::string>> done;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    adds.swap(shard->pending_adds);
    done.swap(shard->completions);
  }
  for (int fd : adds) RegisterConn(shard, fd);
  for (auto& [conn, response] : done) {
    if (conn->closed) continue;
    conn->busy = false;
    Enqueue(shard, conn, std::move(response));
    if (conn->closed || conn->close_after_write) continue;
    if (!(conn->events & EPOLLIN)) {
      UpdateEvents(shard, conn, conn->events | EPOLLIN);
    }
    // Pipelined requests may already be fully buffered in inbuf — the
    // socket will never go readable for them, so parse again now.
    ParseFrames(shard, conn);
  }
}

void Reactor::RegisterConn(Shard* shard, int fd) {
  int flag = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->events = EPOLLIN;
  epoll_event ev{};
  ev.events = conn->events;
  ev.data.fd = fd;
  if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  shard->conns.emplace(fd, std::move(conn));
  ctx_.stats->connections_opened.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::UpdateEvents(Shard* shard, const std::shared_ptr<Conn>& conn,
                           uint32_t events) {
  conn->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn->fd;
  ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Reactor::CloseConn(Shard* shard, const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  shard->conns.erase(conn->fd);
  ctx_.stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::HandleReadable(Shard* shard,
                             const std::shared_ptr<Conn>& conn) {
  char buf[kReadChunk];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(got));
      ctx_.stats->bytes_received.fetch_add(static_cast<uint64_t>(got),
                                           std::memory_order_relaxed);
      if (got < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(shard, conn);  // peer closed or hard error
    return;
  }
  if (!conn->busy && !conn->close_after_write) ParseFrames(shard, conn);
}

void Reactor::ParseFrames(Shard* shard, const std::shared_ptr<Conn>& conn) {
  while (!conn->busy && !conn->close_after_write &&
         conn->inbuf.size() >= kFrameHeaderSize) {
    FrameHeader header;
    const Status framing = DecodeFrameHeader(
        std::string_view(conn->inbuf.data(), kFrameHeaderSize), &header);
    if (!framing.ok()) {
      // Same discipline as the legacy front-end: the stream can no longer
      // be trusted, so answer once, flush, and close THIS connection.
      ctx_.stats->rejected_frames.fetch_add(1, std::memory_order_relaxed);
      ctx_.stats->RecordOutcome(framing);
      conn->close_after_write = true;
      UpdateEvents(shard, conn, conn->events & ~uint32_t{EPOLLIN});
      Enqueue(shard, conn,
              BuildResponseFrame(header.type, header.request_id, framing));
      return;
    }
    const size_t frame_len = kFrameHeaderSize + header.body_len;
    if (conn->inbuf.size() < frame_len) return;  // await the rest
    std::string body = conn->inbuf.substr(kFrameHeaderSize, header.body_len);
    conn->inbuf.erase(0, frame_len);
    Dispatch(shard, conn, header, std::move(body));
  }
}

void Reactor::Dispatch(Shard* shard, const std::shared_ptr<Conn>& conn,
                       const FrameHeader& header, std::string body) {
  if (ctx_.executor == nullptr) {
    // No engine pool: run the handler inline on the reactor thread (the
    // single-threaded engine mode; certification blocks this shard only).
    Enqueue(shard, conn, HandleFrame(ctx_, header, std::move(body)));
    return;
  }
  conn->busy = true;
  UpdateEvents(shard, conn, conn->events & ~uint32_t{EPOLLIN});
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  ctx_.executor->SubmitDetached(
      [this, shard, conn, header, body = std::move(body)]() {
        std::string response = HandleFrame(ctx_, header, body);
        {
          std::lock_guard<std::mutex> lock(shard->mu);
          shard->completions.emplace_back(conn, std::move(response));
        }
        Wake(shard);
        if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(drain_mu_);
          drain_cv_.notify_all();
        }
      });
}

void Reactor::Enqueue(Shard* shard, const std::shared_ptr<Conn>& conn,
                      std::string bytes) {
  conn->outq.push_back(std::move(bytes));
  FlushWrites(shard, conn);
}

void Reactor::FlushWrites(Shard* shard, const std::shared_ptr<Conn>& conn) {
  while (!conn->outq.empty()) {
    const std::string& front = conn->outq.front();
    while (conn->outpos < front.size()) {
      const ssize_t sent =
          ::send(conn->fd, front.data() + conn->outpos,
                 front.size() - conn->outpos, MSG_NOSIGNAL);
      if (sent > 0) {
        conn->outpos += static_cast<size_t>(sent);
        ctx_.stats->bytes_sent.fetch_add(static_cast<uint64_t>(sent),
                                         std::memory_order_relaxed);
        continue;
      }
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!(conn->events & EPOLLOUT)) {
          UpdateEvents(shard, conn, conn->events | EPOLLOUT);
        }
        return;  // kernel buffer full; epoll resumes us
      }
      CloseConn(shard, conn);
      return;
    }
    conn->outpos = 0;
    conn->outq.pop_front();
  }
  if (conn->events & EPOLLOUT) {
    UpdateEvents(shard, conn, conn->events & ~uint32_t{EPOLLOUT});
  }
  if (conn->close_after_write) CloseConn(shard, conn);
}

}  // namespace provview
