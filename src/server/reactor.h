// Epoll reactor front-end for podsd: a FIXED pool of reactor threads
// multiplexes every connection, so the daemon's thread count is bounded by
// --reactor-threads (plus engine workers), not by connection count — a
// thousand idle monitors cost a thousand fds and some buffer state, zero
// threads. Each reactor thread owns one epoll instance, an eventfd wakeup,
// and the connections sharded onto it (round-robin at accept); ALL
// epoll_ctl and connection-state mutation for a shard happens on its own
// thread, so connection state needs no locks.
//
// Per connection, a frame-reassembly state machine accumulates bytes until
// a full header+body is buffered, then dispatches the request. With a
// shared executor the dispatch is a detached engine task (the reactor
// thread never blocks on engine work); its response is posted back to the
// owning shard's completion queue and written by the reactor. One request
// is in flight per connection — EPOLLIN stays disarmed while busy, which
// is the natural per-connection backpressure (the kernel socket buffer
// absorbs pipelined requests until the reply goes out).
//
// The blast-radius table matches the legacy front-end exactly (both call
// the same HandleFrame core): a framing error gets one error response and
// closes that connection; every other failure is a typed response on a
// surviving connection.
#ifndef PROVVIEW_SERVER_REACTOR_H_
#define PROVVIEW_SERVER_REACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/handler.h"

namespace provview {

class Reactor {
 public:
  /// `ctx` is the daemon's request context; the reactor forces
  /// caller_helps = false (dispatched handlers run ON executor workers,
  /// which already count toward engine parallelism). `num_threads` < 1 is
  /// clamped to 1.
  Reactor(const RequestContext& ctx, int num_threads);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void Start();

  /// Stops reactor threads, waits for in-flight dispatched requests to
  /// drain (their completions are dropped), then closes every connection.
  /// Idempotent. The daemon must call this BEFORE destroying the executor.
  void Stop();

  /// Hands an accepted socket to a shard (round-robin). Takes ownership of
  /// `fd`; makes it nonblocking. Called from the acceptor thread.
  void AddConnection(int fd);

  int num_threads() const { return static_cast<int>(shards_.size()); }

 private:
  /// Per-connection state, touched only by the owning shard's thread
  /// (completions cross threads as {shared_ptr<Conn>, bytes} messages; the
  /// `closed` flag makes a completion for an already-closed connection a
  /// safe no-op even if the fd number was reused).
  struct Conn {
    int fd = -1;
    std::string inbuf;          ///< frame-reassembly buffer
    std::deque<std::string> outq;
    size_t outpos = 0;          ///< progress into outq.front()
    uint32_t events = 0;        ///< current epoll interest mask
    bool busy = false;          ///< one request in flight; EPOLLIN disarmed
    bool close_after_write = false;  ///< framing error: flush, then close
    bool closed = false;
  };

  /// One reactor thread's world. Queues are the only cross-thread surface.
  struct Shard {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::map<int, std::shared_ptr<Conn>> conns;  ///< fd -> state
    std::mutex mu;  ///< guards the two queues below
    std::vector<int> pending_adds;
    std::vector<std::pair<std::shared_ptr<Conn>, std::string>> completions;
  };

  void RunShard(Shard* shard);
  void Wake(Shard* shard);
  void RegisterConn(Shard* shard, int fd);
  void UpdateEvents(Shard* shard, const std::shared_ptr<Conn>& conn,
                    uint32_t events);
  void CloseConn(Shard* shard, const std::shared_ptr<Conn>& conn);
  void HandleReadable(Shard* shard, const std::shared_ptr<Conn>& conn);
  /// Consumes complete frames from inbuf; dispatches at most one request
  /// (then the connection is busy until its completion).
  void ParseFrames(Shard* shard, const std::shared_ptr<Conn>& conn);
  void Dispatch(Shard* shard, const std::shared_ptr<Conn>& conn,
                const FrameHeader& header, std::string body);
  void Enqueue(Shard* shard, const std::shared_ptr<Conn>& conn,
               std::string bytes);
  /// Writes as much of outq as the socket takes; arms/disarms EPOLLOUT and
  /// honors close_after_write.
  void FlushWrites(Shard* shard, const std::shared_ptr<Conn>& conn);
  void DrainQueues(Shard* shard);

  RequestContext ctx_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_shard_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Dispatched-but-uncompleted requests; Stop() drains this to zero
  /// before tearing down, so no detached engine task ever touches a dead
  /// reactor.
  std::atomic<int64_t> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_REACTOR_H_
