#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace provview {

namespace {

bool ReadExactFd(int fd, char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, buf + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteAllFd(int fd, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t sent =
        ::send(fd, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    if (sent > 0) {
      done += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

PodsClient::~PodsClient() { Close(); }

Status PodsClient::Connect(uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status s =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    Close();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void PodsClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PodsClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Internal("not connected");
  if (!WriteAllFd(fd_, bytes)) {
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status PodsClient::RecvResponse(FrameHeader* header, std::string* body) {
  if (fd_ < 0) return Status::Internal("not connected");
  char header_buf[kFrameHeaderSize];
  if (!ReadExactFd(fd_, header_buf, sizeof(header_buf))) {
    return Status::Internal("connection closed while reading header");
  }
  const Status framing = DecodeFrameHeader(
      std::string_view(header_buf, sizeof(header_buf)), header);
  if (!framing.ok()) return framing;
  body->resize(header->body_len);
  if (header->body_len > 0 && !ReadExactFd(fd_, body->data(), body->size())) {
    return Status::Internal("connection closed while reading body");
  }
  return Status::OK();
}

Status PodsClient::RoundTrip(std::string_view frame, std::string* payload) {
  Status s = SendRaw(frame);
  if (!s.ok()) return s;
  FrameHeader header;
  std::string body;
  s = RecvResponse(&header, &body);
  if (!s.ok()) return s;
  Status response_status;
  std::string_view payload_view;
  s = ParseResponseBody(body, &response_status, &payload_view);
  if (!s.ok()) return s;
  if (payload != nullptr) payload->assign(payload_view);
  return response_status;
}

Status PodsClient::Ping() {
  return RoundTrip(BuildRequestFrame(MessageType::kPing, next_request_id_++),
                   nullptr);
}

Status PodsClient::Stat(StatSnapshot* out) {
  std::string payload;
  const Status s = RoundTrip(
      BuildRequestFrame(MessageType::kStat, next_request_id_++), &payload);
  if (!s.ok()) return s;
  return DecodeStatResponse(payload, out);
}

Status PodsClient::Certify(const CertifyRequest& req, bool batch,
                           CertifyResponse* out) {
  std::string body;
  EncodeCertifyRequest(req, batch, &body);
  const MessageType type =
      batch ? MessageType::kCertifyBatch : MessageType::kCertify;
  std::string payload;
  const Status s = RoundTrip(
      BuildRequestFrame(type, next_request_id_++, body), &payload);
  if (!s.ok()) return s;
  return DecodeCertifyResponse(payload, out);
}

Status PodsClient::Register(const std::string& name,
                            std::string_view workflow_bytes,
                            RegisterResponse* out) {
  RegisterRequest req;
  req.name = name;
  req.workflow_bytes.assign(workflow_bytes);
  std::string body;
  EncodeRegisterRequest(req, &body);
  std::string payload;
  const Status s = RoundTrip(
      BuildRequestFrame(MessageType::kRegister, next_request_id_++, body),
      &payload);
  if (!s.ok()) return s;
  if (out == nullptr) return Status::OK();
  return DecodeRegisterResponse(payload, out);
}

Status PodsClient::Unregister(const std::string& name) {
  std::string body;
  EncodeUnregisterRequest(name, &body);
  return RoundTrip(
      BuildRequestFrame(MessageType::kUnregister, next_request_id_++, body),
      nullptr);
}

}  // namespace provview
