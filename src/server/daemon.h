// podsd: a long-lived certification daemon. Listens on a local TCP port,
// serves the podsd wire protocol, and isolates every fault to the
// connection or request that caused it — the process degrades (typed error
// responses, closed connections) instead of dying.
//
// Threading model: one acceptor thread plus one thread per connection.
// Certification parallelism inside a request is deliberately off
// (num_threads = 1); the daemon's concurrency axis is connections, and the
// WorkflowMemoBank's per-module locks keep concurrent requests against the
// same workflow cache-coherent.
//
// Stop() is safe from any thread and idempotent: it shuts down the listen
// socket (unblocking accept), then shuts down every live connection socket
// (unblocking their reads), then joins all threads.
#ifndef PROVVIEW_SERVER_DAEMON_H_
#define PROVVIEW_SERVER_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/registry.h"
#include "server/stats.h"

namespace provview {

class PodsDaemon {
 public:
  /// `registry` must outlive the daemon and be fully populated before
  /// Start() — it is read lock-free by connection threads.
  explicit PodsDaemon(const WorkflowRegistry* registry);
  ~PodsDaemon();

  PodsDaemon(const PodsDaemon&) = delete;
  PodsDaemon& operator=(const PodsDaemon&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read back
  /// via port()) and starts the acceptor thread.
  Status Start(uint16_t port = 0);

  /// Stops accepting, severs live connections, joins all threads.
  void Stop();

  uint16_t port() const { return port_; }
  const DaemonStats& stats() const { return stats_; }
  DaemonStats* mutable_stats() { return &stats_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd, size_t slot);

  const WorkflowRegistry* registry_;
  DaemonStats stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  // Live connection sockets, indexed by slot; -1 once a connection ends.
  // Guarded by mu_ (Stop shuts these down to unblock reads).
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_DAEMON_H_
