// podsd: a long-lived certification daemon. Listens on a local TCP port,
// serves the podsd wire protocol, and isolates every fault to the
// connection or request that caused it — the process degrades (typed error
// responses, closed connections) instead of dying.
//
// Threading model: one acceptor thread plus one thread per connection,
// plus (by default) one shared work-stealing TaskGraphExecutor that every
// connection submits its request's task graph into — connection threads
// help run their own graphs, so engine parallelism is work-conserving
// across concurrent requests instead of per-request pools. A bounded
// admission gate rejects work with RESOURCE_EXHAUSTED when the daemon is
// saturated. On single-core hosts (or with use_task_graph off) requests run
// inline on their connection thread, the historical model; either way the
// registry's shared VerdictCache (striped shard locks, byte-budgeted
// eviction) keeps concurrent requests against the same workflow
// cache-coherent without per-module mutexes.
//
// Stop() is safe from any thread and idempotent: it shuts down the listen
// socket (unblocking accept), then shuts down every live connection socket
// (unblocking their reads), then joins all threads.
#ifndef PROVVIEW_SERVER_DAEMON_H_
#define PROVVIEW_SERVER_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/registry.h"
#include "server/stats.h"

namespace provview {

class TaskGraphExecutor;

class PodsDaemon {
 public:
  struct Options {
    /// Submit certification work into one daemon-wide task-graph executor
    /// (connection threads help run their own graphs). Off = every request
    /// runs inline on its connection thread, the historical model.
    bool use_task_graph = true;
    /// Executor worker threads. 0 = hardware concurrency minus one (the
    /// helping connection thread makes up the difference); when that
    /// resolves to zero workers — a single-core host — no executor is
    /// created and requests run inline.
    int engine_threads = 0;
    /// Admission-gate capacity in request items: a certify request charges
    /// items + 1 units up front and is rejected with RESOURCE_EXHAUSTED
    /// when the gate is full, instead of queueing unboundedly.
    int64_t max_pending = 4096;
  };

  /// `registry` must outlive the daemon and be fully populated before
  /// Start() — it is read lock-free by connection threads.
  explicit PodsDaemon(const WorkflowRegistry* registry);
  PodsDaemon(const WorkflowRegistry* registry, const Options& options);
  ~PodsDaemon();

  PodsDaemon(const PodsDaemon&) = delete;
  PodsDaemon& operator=(const PodsDaemon&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read back
  /// via port()) and starts the acceptor thread.
  Status Start(uint16_t port = 0);

  /// Stops accepting, severs live connections, joins all threads.
  void Stop();

  uint16_t port() const { return port_; }
  const DaemonStats& stats() const { return stats_; }
  DaemonStats* mutable_stats() { return &stats_; }
  /// The shared engine executor; null when requests run inline.
  TaskGraphExecutor* executor() { return executor_.get(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd, size_t slot);

  const WorkflowRegistry* registry_;
  Options options_;
  DaemonStats stats_;
  // Created in Start(), destroyed in Stop() after every connection thread
  // (and thus every in-flight Run) has been joined.
  std::unique_ptr<TaskGraphExecutor> executor_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  // Live connection sockets, indexed by slot; -1 once a connection ends.
  // Guarded by mu_ (Stop shuts these down to unblock reads).
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_DAEMON_H_
