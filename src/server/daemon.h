// podsd: a long-lived certification daemon. Listens on a local TCP port,
// serves the podsd wire protocol, and isolates every fault to the
// connection or request that caused it — the process degrades (typed error
// responses, closed connections) instead of dying.
//
// Threading model: one acceptor thread, a connection front-end, and (by
// default) one shared work-stealing TaskGraphExecutor running the engine
// work of every request. The default front-end is an epoll REACTOR: a
// fixed pool of --reactor-threads threads multiplexes all connections, so
// total thread count is bounded regardless of how many clients connect
// (a thousand idle monitors cost zero threads); requests are dispatched
// onto the executor as detached tasks and replies written back by the
// reactor. The legacy thread-per-connection front-end survives behind
// use_reactor = false (podsd --no-reactor) for A/B comparison — both call
// the same HandleFrame core, so responses are byte-identical.
//
// Saturation is request-level, not per-request: ONE admission gate
// (queue-depth units) and ONE memory pool are shared by every in-flight
// request, whichever front-end carried it. A request that cannot be
// admitted gets a typed RESOURCE_EXHAUSTED carrying the current depth;
// engine byte charges draw from the shared pool in addition to any
// per-request ceiling the client set. Both surface in STAT (admission_*).
//
// Stop() is safe from any thread and idempotent: it shuts down the listen
// socket (unblocking accept), stops the front-end (severing connections,
// draining in-flight requests), then tears down the executor.
#ifndef PROVVIEW_SERVER_DAEMON_H_
#define PROVVIEW_SERVER_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/admission.h"
#include "server/handler.h"
#include "server/registry.h"
#include "server/stats.h"

namespace provview {

class Reactor;
class TaskGraphExecutor;

class PodsDaemon {
 public:
  struct Options {
    /// Submit certification work into one daemon-wide task-graph executor.
    /// Off = every request runs inline on the thread that carried it, the
    /// historical model.
    bool use_task_graph = true;
    /// Executor worker threads. 0 = hardware concurrency minus one (the
    /// helping connection thread makes up the difference); when that
    /// resolves to zero workers — a single-core host — no executor is
    /// created and requests run inline.
    int engine_threads = 0;
    /// Admission-gate capacity in depth units, shared by ALL in-flight
    /// requests: a certify request charges items + 1 units up front, a
    /// REGISTER charges 1, and either is rejected with RESOURCE_EXHAUSTED
    /// (carrying the current depth) when the gate cannot cover it.
    int64_t max_pending = 4096;
    /// Daemon-wide engine-byte pool shared by all in-flight requests
    /// (attached to each request's ExecControl alongside its optional own
    /// ceiling). <= 0 = unbounded.
    int64_t memory_budget = 0;
    /// Epoll reactor front-end (default): thread count bounded by
    /// reactor_threads, not connection count. Off = legacy
    /// thread-per-connection (podsd --no-reactor).
    bool use_reactor = true;
    int reactor_threads = 2;
  };

  /// `registry` must outlive the daemon and have its built-ins populated
  /// before Start(); wire REGISTER/UNREGISTER mutate it afterwards behind
  /// its own lock.
  explicit PodsDaemon(WorkflowRegistry* registry);
  PodsDaemon(WorkflowRegistry* registry, const Options& options);
  ~PodsDaemon();

  PodsDaemon(const PodsDaemon&) = delete;
  PodsDaemon& operator=(const PodsDaemon&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read back
  /// via port()) and starts the front-end and acceptor threads.
  Status Start(uint16_t port = 0);

  /// Stops accepting, severs live connections, drains in-flight requests,
  /// joins all threads.
  void Stop();

  uint16_t port() const { return port_; }
  const DaemonStats& stats() const { return stats_; }
  DaemonStats* mutable_stats() { return &stats_; }
  /// The shared engine executor; null when requests run inline.
  TaskGraphExecutor* executor() { return executor_.get(); }
  const AdmissionController& admission() const { return admission_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd, size_t slot);
  RequestContext MakeContext(bool caller_helps, int reactor_threads);

  WorkflowRegistry* registry_;
  Options options_;
  DaemonStats stats_;
  AdmissionController admission_;
  // Created in Start(), destroyed in Stop() after the front-end has
  // drained every in-flight request.
  std::unique_ptr<TaskGraphExecutor> executor_;
  std::unique_ptr<Reactor> reactor_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  // Legacy front-end state: live connection sockets, indexed by slot; -1
  // once a connection ends. Guarded by mu_ (Stop shuts these down to
  // unblock reads).
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_DAEMON_H_
