#include "server/registry.h"

#include <utility>

#include "common/rng.h"
#include "generators/families.h"
#include "workflow/fig1_workflow.h"

namespace provview {

WorkflowRegistry::WorkflowRegistry()
    : cache_(std::make_shared<VerdictCache>()) {}

WorkflowRegistry::WorkflowRegistry(const VerdictCacheConfig& config)
    : cache_(std::make_shared<VerdictCache>(config)) {}

std::shared_ptr<RegisteredWorkflow> WorkflowRegistry::MakeEntry(
    std::string name, CatalogPtr catalog, WorkflowPtr workflow) {
  // Built OUTSIDE the registry lock: binding the cache namespaces walks the
  // workflow's private modules, and lookups must not wait on that.
  auto entry = std::make_shared<RegisteredWorkflow>();
  entry->name = std::move(name);
  entry->catalog = std::move(catalog);
  entry->workflow = std::move(workflow);
  entry->verdicts = std::make_unique<WorkflowCacheNamespace>(
      *entry->workflow, cache_, entry->name);
  return entry;
}

void WorkflowRegistry::Register(std::string name, CatalogPtr catalog,
                                WorkflowPtr workflow) {
  auto entry =
      MakeEntry(std::move(name), std::move(catalog), std::move(workflow));
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_[entry->name] = std::move(entry);
}

Status WorkflowRegistry::TryRegister(std::string name, CatalogPtr catalog,
                                     WorkflowPtr workflow) {
  auto entry =
      MakeEntry(std::move(name), std::move(catalog), std::move(workflow));
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = entries_.emplace(entry->name, nullptr);
  if (!inserted) {
    return Status::InvalidArgument("workflow '" + entry->name +
                                   "' is already registered; unregister it "
                                   "first");
  }
  it->second = std::move(entry);
  return Status::OK();
}

Status WorkflowRegistry::Unregister(const std::string& name) {
  std::shared_ptr<RegisteredWorkflow> doomed;  // destroyed after the lock
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown workflow '" + name + "'");
  }
  doomed = std::move(it->second);
  entries_.erase(it);
  return Status::OK();
}

std::shared_ptr<const RegisteredWorkflow> WorkflowRegistry::Find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::string> WorkflowRegistry::Names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

size_t WorkflowRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

void WorkflowRegistry::RegisterBuiltins() {
  {
    Fig1Workflow fig1 = MakeFig1Workflow();
    Register("fig1", fig1.catalog, std::move(fig1.workflow));
  }
  {
    Prop2Chain chain = MakeProp2Chain(/*k=*/2);
    Register("prop2-chain", chain.catalog, std::move(chain.workflow));
  }
  {
    Rng rng(0x706f6473u);  // fixed seed: same workflow in every daemon
    OneOneChain chain = MakeOneOneChain(/*stages=*/3, /*k=*/2, &rng);
    Register("one-one-chain", chain.catalog, std::move(chain.workflow));
  }
  {
    Rng rng(0x706f6474u);
    DiamondWorkflow diamond =
        MakeDiamondWorkflow(/*k=*/2, /*with_tail=*/false, &rng);
    Register("diamond", diamond.catalog, std::move(diamond.workflow));
  }
  {
    Rng rng(0x706f6475u);
    Example7Chain chain = MakeExample7Chain(/*k=*/2, &rng);
    Register("example7-chain", chain.catalog, std::move(chain.workflow));
  }
}

}  // namespace provview
