#include "server/registry.h"

#include <utility>

#include "common/rng.h"
#include "generators/families.h"
#include "workflow/fig1_workflow.h"

namespace provview {

WorkflowRegistry::WorkflowRegistry()
    : cache_(std::make_shared<VerdictCache>()) {}

WorkflowRegistry::WorkflowRegistry(const VerdictCacheConfig& config)
    : cache_(std::make_shared<VerdictCache>(config)) {}

void WorkflowRegistry::Register(std::string name, CatalogPtr catalog,
                                WorkflowPtr workflow) {
  auto entry = std::make_unique<RegisteredWorkflow>();
  entry->name = name;
  entry->catalog = std::move(catalog);
  entry->workflow = std::move(workflow);
  entry->verdicts = std::make_unique<WorkflowCacheNamespace>(
      *entry->workflow, cache_, entry->name);
  entries_[std::move(name)] = std::move(entry);
}

const RegisteredWorkflow* WorkflowRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> WorkflowRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void WorkflowRegistry::RegisterBuiltins() {
  {
    Fig1Workflow fig1 = MakeFig1Workflow();
    Register("fig1", fig1.catalog, std::move(fig1.workflow));
  }
  {
    Prop2Chain chain = MakeProp2Chain(/*k=*/2);
    Register("prop2-chain", chain.catalog, std::move(chain.workflow));
  }
  {
    Rng rng(0x706f6473u);  // fixed seed: same workflow in every daemon
    OneOneChain chain = MakeOneOneChain(/*stages=*/3, /*k=*/2, &rng);
    Register("one-one-chain", chain.catalog, std::move(chain.workflow));
  }
  {
    Rng rng(0x706f6474u);
    DiamondWorkflow diamond =
        MakeDiamondWorkflow(/*k=*/2, /*with_tail=*/false, &rng);
    Register("diamond", diamond.catalog, std::move(diamond.workflow));
  }
  {
    Rng rng(0x706f6475u);
    Example7Chain chain = MakeExample7Chain(/*k=*/2, &rng);
    Register("example7-chain", chain.catalog, std::move(chain.workflow));
  }
}

}  // namespace provview
