// Daemon-wide counters behind the STAT request. All fields are relaxed
// atomics bumped from connection threads; Snapshot() reads them without a
// lock (each counter is individually consistent — STAT is monitoring, not
// accounting, exactly like memcached's `stats`).
#ifndef PROVVIEW_SERVER_STATS_H_
#define PROVVIEW_SERVER_STATS_H_

#include <atomic>
#include <cstdint>

#include "server/protocol.h"

namespace provview {

class AdmissionController;
class VerdictCache;

class DaemonStats {
 public:
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_closed{0};
  /// Frames whose header failed validation (bad magic/version, oversized
  /// body_len) — each one also closes its connection.
  std::atomic<uint64_t> rejected_frames{0};

  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_error{0};
  std::atomic<uint64_t> ping_requests{0};
  std::atomic<uint64_t> stat_requests{0};
  std::atomic<uint64_t> certify_requests{0};
  std::atomic<uint64_t> batch_requests{0};
  std::atomic<uint64_t> register_requests{0};
  std::atomic<uint64_t> unregister_requests{0};

  /// Per-item verdicts across all certification responses.
  std::atomic<uint64_t> items_certified{0};
  std::atomic<uint64_t> items_rejected{0};
  /// Aggregated SafetyMemo counters (the shared verdict cache at work).
  std::atomic<uint64_t> memo_checker_calls{0};
  std::atomic<uint64_t> memo_cache_hits{0};

  /// Typed-failure tallies.
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> resource_exhausted{0};
  std::atomic<uint64_t> invalid_requests{0};

  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};

  /// Records one request's peak engine-charged bytes; keeps the max.
  void RecordPeakRequestBytes(uint64_t peak) {
    uint64_t cur = peak_request_bytes_.load(std::memory_order_relaxed);
    while (peak > cur && !peak_request_bytes_.compare_exchange_weak(
                             cur, peak, std::memory_order_relaxed)) {
    }
  }
  uint64_t peak_request_bytes() const {
    return peak_request_bytes_.load(std::memory_order_relaxed);
  }

  /// Classifies a finished request into the ok/error + typed-failure
  /// counters.
  void RecordOutcome(const Status& status);

  /// Everything beyond the counters that the STAT snapshot reports: the
  /// shared verdict cache, the admission controller, the live registry
  /// size, and the reactor thread count (0 = legacy thread-per-connection
  /// mode). All optional — absent members skip their section.
  struct StatContext {
    const VerdictCache* cache = nullptr;
    const AdmissionController* admission = nullptr;
    uint64_t workflows_registered = 0;
    uint64_t reactor_threads = 0;
  };

  /// Key/value rendering for the STAT response (stable key order). When
  /// `cache` is non-null, appends the versioned verdict-cache section:
  /// a `stat_version` marker followed by `verdict_cache_*` keys. Sections
  /// are append-only — parsers keying off names (podsctl) never break, and
  /// `stat_version` tells newer tooling which sections to expect
  /// (2 = verdict cache; 3 = + registration/admission/reactor).
  StatSnapshot Snapshot(const VerdictCache* cache = nullptr) const;
  StatSnapshot Snapshot(const StatContext& ctx) const;

 private:
  std::atomic<uint64_t> peak_request_bytes_{0};
};

}  // namespace provview

#endif  // PROVVIEW_SERVER_STATS_H_
