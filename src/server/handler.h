// The daemon's request core, shared by both connection front-ends: the
// legacy blocking thread-per-connection loop (connection.h) and the epoll
// reactor (reactor.h) parse frames their own way, then hand every
// well-framed request here. One implementation means one blast-radius
// table: malformed body / unknown type / unknown workflow / tripped
// control / engine exception all become the same typed response bytes no
// matter which front-end carried the frame — which is what lets the
// reactor-vs-legacy A/B equivalence test compare responses byte for byte.
#ifndef PROVVIEW_SERVER_HANDLER_H_
#define PROVVIEW_SERVER_HANDLER_H_

#include <string>
#include <string_view>

#include "server/admission.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "server/stats.h"

namespace provview {

class TaskGraphExecutor;

/// Everything a request needs, owned by the daemon and outliving every
/// connection.
struct RequestContext {
  WorkflowRegistry* registry = nullptr;
  DaemonStats* stats = nullptr;
  /// Shared engine executor; null = engines run inline on the calling
  /// thread (single-core hosts / use_task_graph off).
  TaskGraphExecutor* executor = nullptr;
  /// The request-level admission gate + shared memory pool (never null).
  AdmissionController* admission = nullptr;
  /// Reported in STAT; 0 = legacy thread-per-connection mode.
  int reactor_threads = 0;
  /// True when the calling thread is free to help the executor run its own
  /// graph (a dedicated connection thread). False when the caller IS an
  /// executor worker (the reactor dispatch path) — it already counts.
  bool caller_helps = true;
};

/// Dispatches one well-framed request and returns the complete response
/// frame. Exceptions from the engines are caught inside (the request-level
/// catch wall) and become INTERNAL responses; this never throws.
std::string HandleFrame(const RequestContext& ctx, const FrameHeader& header,
                        std::string_view body);

}  // namespace provview

#endif  // PROVVIEW_SERVER_HANDLER_H_
