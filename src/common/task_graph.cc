#include "common/task_graph.h"

#include <algorithm>

namespace provview {

namespace {

// Which executor (and which of its slots) the current thread pushes to:
// workers pin their own deque for life, Run() callers adopt the shared
// inbox slot for the duration of HelpUntilDone(). Everyone else lands in
// the inbox via the nullptr default.
thread_local TaskGraphExecutor* tls_executor = nullptr;
thread_local int tls_slot = -1;

}  // namespace

// ----------------------------------------------------------------- graph --

TaskGraph::TaskId TaskGraph::Add(std::function<void()> fn,
                                 const std::vector<TaskId>& deps) {
  PV_CHECK_MSG(!ran_, "TaskGraph::Add after Run");
  const TaskId id = static_cast<TaskId>(tasks_.size());
  auto task = std::make_unique<Task>();
  task->fn = std::move(fn);
  task->graph = this;
  tasks_.push_back(std::move(task));
  for (TaskId dep : deps) AddDep(id, dep);
  return id;
}

void TaskGraph::AddDep(TaskId task, TaskId dep) {
  PV_CHECK_MSG(!ran_, "TaskGraph::AddDep after Run");
  PV_CHECK(task >= 0 && task < size());
  PV_CHECK(dep >= 0 && dep < size());
  PV_CHECK_MSG(task != dep, "task cannot depend on itself");
  tasks_[static_cast<size_t>(dep)]->succs.push_back(task);
  tasks_[static_cast<size_t>(task)]->pending.fetch_add(
      1, std::memory_order_relaxed);
}

void TaskGraph::CaptureError(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (first_error_ == nullptr) first_error_ = std::move(error);
  }
  cancelled_.store(true, std::memory_order_release);
}

Status TaskGraph::Finish() {
  done_.store(true, std::memory_order_release);
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = first_error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
  if (control_ != nullptr) return control_->Check();
  return Status::OK();
}

Status TaskGraph::RunInline(const ExecControl* control) {
  PV_CHECK_MSG(!ran_, "TaskGraph is single-shot");
  ran_ = true;
  control_ = control;
  std::deque<Task*> ready;
  for (const auto& t : tasks_) {
    if (t->pending.load(std::memory_order_relaxed) == 0) ready.push_back(t.get());
  }
  int64_t executed = 0;
  while (!ready.empty()) {
    Task* t = ready.front();
    ready.pop_front();
    if (!ShouldSkip()) {
      try {
        t->fn();
      } catch (...) {
        CaptureError(std::current_exception());
      }
    }
    ++executed;
    for (TaskId s : t->succs) {
      Task* succ = tasks_[static_cast<size_t>(s)].get();
      if (succ->pending.fetch_sub(1, std::memory_order_relaxed) == 1) {
        ready.push_back(succ);
      }
    }
  }
  PV_CHECK_MSG(executed == static_cast<int64_t>(tasks_.size()),
               "task graph has a dependency cycle");
  return Finish();
}

Status TaskGraph::Run(TaskGraphExecutor* executor, const ExecControl* control) {
  if (executor == nullptr) return RunInline(control);
  PV_CHECK_MSG(!ran_, "TaskGraph is single-shot");
  ran_ = true;
  control_ = control;
  if (tasks_.empty()) return Finish();
  remaining_.store(static_cast<int64_t>(tasks_.size()),
                   std::memory_order_relaxed);
  std::vector<Task*> seeds;  // ascending id: deterministic seeding order
  for (const auto& t : tasks_) {
    if (t->pending.load(std::memory_order_relaxed) == 0) seeds.push_back(t.get());
  }
  PV_CHECK_MSG(!seeds.empty(), "task graph has a dependency cycle");
  for (Task* t : seeds) executor->Push(t);
  executor->HelpUntilDone(this);
  return Finish();
}

// -------------------------------------------------------------- executor --

TaskGraphExecutor::TaskGraphExecutor(int num_threads, int64_t max_pending)
    : slots_(static_cast<size_t>(std::max(1, num_threads)) + 1),
      max_pending_(max_pending) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskGraphExecutor::~TaskGraphExecutor() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Graph tasks are owned by their graphs, but detached tasks own
  // themselves: any still queued at teardown are discarded unrun.
  for (Slot& slot : slots_) {
    for (TaskGraph::Task* t : slot.q) {
      if (t->graph == nullptr) delete t;
    }
  }
}

void TaskGraphExecutor::SubmitDetached(std::function<void()> fn) {
  auto* t = new TaskGraph::Task;
  t->fn = std::move(fn);
  t->graph = nullptr;
  Push(t);
}

bool TaskGraphExecutor::TryAdmit(int64_t units) {
  int64_t cur = admitted_.load(std::memory_order_relaxed);
  while (true) {
    if (cur + units > max_pending_) return false;
    if (admitted_.compare_exchange_weak(cur, cur + units,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
}

void TaskGraphExecutor::Release(int64_t units) {
  admitted_.fetch_sub(units, std::memory_order_acq_rel);
}

void TaskGraphExecutor::Push(TaskGraph::Task* t) {
  const int slot = (tls_executor == this && tls_slot >= 0)
                       ? tls_slot
                       : static_cast<int>(workers_.size());
  {
    std::lock_guard<std::mutex> lock(slots_[static_cast<size_t>(slot)].mu);
    slots_[static_cast<size_t>(slot)].q.push_back(t);
  }
  ready_.fetch_add(1, std::memory_order_release);
  // Lock/notify under wake_mu_ so a sleeper that just evaluated its
  // predicate cannot miss this wakeup.
  std::lock_guard<std::mutex> lock(wake_mu_);
  wake_cv_.notify_one();
}

TaskGraph::Task* TaskGraphExecutor::Grab(int home) {
  const int n = static_cast<int>(slots_.size());
  for (int i = 0; i < n; ++i) {
    Slot& slot = slots_[static_cast<size_t>((home + i) % n)];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.q.empty()) continue;
    TaskGraph::Task* t;
    if (i == 0) {  // own deque: newest first (locality)
      t = slot.q.back();
      slot.q.pop_back();
    } else {  // steal the oldest
      t = slot.q.front();
      slot.q.pop_front();
    }
    ready_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  return nullptr;
}

void TaskGraphExecutor::Execute(TaskGraph::Task* t) {
  TaskGraph* g = t->graph;
  if (g == nullptr) {
    // Detached task (SubmitDetached): self-owned, nothing to touch after
    // the body — it may be the last thing keeping its captures alive.
    try {
      t->fn();
    } catch (...) {
    }
    delete t;
    return;
  }
  if (!g->ShouldSkip()) {
    try {
      t->fn();
    } catch (...) {
      g->CaptureError(std::current_exception());
    }
  }
  for (TaskGraph::TaskId s : t->succs) {
    TaskGraph::Task* succ = g->tasks_[static_cast<size_t>(s)].get();
    // acq_rel: the last predecessor's decrement synchronizes with every
    // earlier one, so the successor body sees all predecessor writes.
    if (succ->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Push(succ);
    }
  }
  if (g->remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g->done_.store(true, std::memory_order_release);
    // Wake every sleeper: the graph's helper may be parked here.
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
}

void TaskGraphExecutor::HelpUntilDone(TaskGraph* graph) {
  TaskGraphExecutor* const saved_executor = tls_executor;
  const int saved_slot = tls_slot;
  int home = tls_slot;
  if (tls_executor != this || tls_slot < 0) {
    // External caller: adopt the shared inbox for the helping span so its
    // releases land somewhere stealable.
    home = static_cast<int>(workers_.size());
    tls_executor = this;
    tls_slot = home;
  }
  while (!graph->done_.load(std::memory_order_acquire)) {
    TaskGraph::Task* t = Grab(home);
    if (t != nullptr) {
      Execute(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return graph->done_.load(std::memory_order_acquire) ||
             ready_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_executor = saved_executor;
  tls_slot = saved_slot;
}

void TaskGraphExecutor::WorkerLoop(int self) {
  tls_executor = this;
  tls_slot = self;
  for (;;) {
    TaskGraph::Task* t = Grab(self);
    if (t != nullptr) {
      Execute(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             ready_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

}  // namespace provview
