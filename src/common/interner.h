// Tuple interning: maps value vectors to dense int32 ids so that hot loops
// (possible-worlds enumeration, Algorithm-2 grouping) compare and hash plain
// integers instead of lexicographically comparing std::vector<int32_t>s.
// Ids are assigned densely in first-seen order, which makes them directly
// usable as indices into side arrays (counts, seen-flags, out-set bitmaps).
#ifndef PROVVIEW_COMMON_INTERNER_H_
#define PROVVIEW_COMMON_INTERNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace provview {

/// Hash for int32 value vectors (Fibonacci-style mixing). Shared by the
/// interner and any map keyed directly by tuples.
struct TupleVectorHasher {
  size_t operator()(const std::vector<int32_t>& t) const {
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (int32_t v : t) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v)) +
           0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

/// Bidirectional map between tuples and dense int32 ids. Ids run 0..size()-1
/// in first-insertion order. Not thread-safe; build once, then share
/// read-only (Find / TupleOf are const).
class TupleInterner {
 public:
  TupleInterner() = default;

  /// Id of `t`, inserting it if new.
  int32_t Intern(const std::vector<int32_t>& t);

  /// Id of `t`, or -1 if it was never interned. Never inserts.
  int32_t Find(const std::vector<int32_t>& t) const;

  /// The tuple with id `id` (0 <= id < size()).
  const std::vector<int32_t>& TupleOf(int32_t id) const {
    PV_CHECK_MSG(id >= 0 && id < size(), "bad interned id " << id);
    return tuples_[static_cast<size_t>(id)];
  }

  int32_t size() const { return static_cast<int32_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  void Reserve(size_t n);

 private:
  std::unordered_map<std::vector<int32_t>, int32_t, TupleVectorHasher> ids_;
  std::vector<std::vector<int32_t>> tuples_;
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_INTERNER_H_
