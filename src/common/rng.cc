#include "common/rng.h"

#include <algorithm>

namespace provview {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PV_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % bound;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PV_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  PV_CHECK(count >= 0 && count <= n);
  std::vector<int> pool = RandomPermutation(n);
  pool.resize(static_cast<size_t>(count));
  std::sort(pool.begin(), pool.end());
  return pool;
}

std::vector<int> Rng::RandomPermutation(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  Shuffle(&v);
  return v;
}

}  // namespace provview
