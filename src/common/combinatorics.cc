#include "common/combinatorics.h"

#include <limits>

namespace provview {

namespace {
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
}  // namespace

int64_t SaturatingMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kMax / b) return kMax;
  return a * b;
}

int64_t SaturatingPow(int64_t radix, int exp) {
  PV_CHECK(radix >= 0 && exp >= 0);
  int64_t result = 1;
  for (int i = 0; i < exp; ++i) result = SaturatingMul(result, radix);
  return result;
}

int64_t SaturatingProduct(const std::vector<int64_t>& v) {
  int64_t result = 1;
  for (int64_t x : v) result = SaturatingMul(result, x);
  return result;
}

int64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result * (n - k + i) / i stays integral at every step.
    result = SaturatingMul(result, n - k + i);
    if (result == kMax) return kMax;
    result /= i;
  }
  return result;
}

MixedRadixCounter::MixedRadixCounter(std::vector<int> radices)
    : radices_(std::move(radices)) {
  for (int r : radices_) PV_CHECK_MSG(r >= 1, "radix must be >= 1, got " << r);
  values_.assign(radices_.size(), 0);
}

int64_t MixedRadixCounter::Cardinality() const {
  int64_t total = 1;
  for (int r : radices_) total = SaturatingMul(total, r);
  return total;
}

bool MixedRadixCounter::Advance() {
  for (size_t i = 0; i < radices_.size(); ++i) {
    if (values_[i] + 1 < radices_[i]) {
      ++values_[i];
      return true;
    }
    values_[i] = 0;
  }
  return false;  // wrapped around
}

void MixedRadixCounter::Reset() { values_.assign(radices_.size(), 0); }

void ForEachSubset(int n, const std::function<void(const Bitset64&)>& fn) {
  PV_CHECK_MSG(n >= 0 && n <= 30, "subset enumeration limited to n <= 30");
  const uint64_t total = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < total; ++mask) {
    Bitset64 s(n);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) s.Set(i);
    }
    fn(s);
  }
}

void ForEachSubsetOf(const Bitset64& universe,
                     const std::function<void(const Bitset64&)>& fn) {
  std::vector<int> members = universe.ToVector();
  const int m = static_cast<int>(members.size());
  PV_CHECK_MSG(m <= 30, "subset enumeration limited to |universe| <= 30");
  const uint64_t total = uint64_t{1} << m;
  for (uint64_t mask = 0; mask < total; ++mask) {
    Bitset64 s(universe.size());
    for (int i = 0; i < m; ++i) {
      if ((mask >> i) & 1u) s.Set(members[static_cast<size_t>(i)]);
    }
    fn(s);
  }
}

std::vector<Bitset64> SubsetsOfSize(int n, int k) {
  std::vector<Bitset64> out;
  ForEachSubsetOfSizeRange(n, k, 0, BinomialCoefficient(n, k),
                           [&out](const Bitset64& s) { out.push_back(s); });
  return out;
}

void ForEachSubsetOfSizeRange(int n, int k, int64_t begin, int64_t end,
                              const std::function<void(const Bitset64&)>& fn) {
  ForEachSubsetOfSizeRangeWhile(n, k, begin, end, [&fn](const Bitset64& s) {
    fn(s);
    return true;
  });
}

void ForEachSubsetOfSizeRangeWhile(
    int n, int k, int64_t begin, int64_t end,
    const std::function<bool(const Bitset64&)>& fn) {
  if (k < 0 || k > n || begin >= end) return;
  PV_CHECK(begin >= 0 && end <= BinomialCoefficient(n, k));
  // Unrank `begin` in the combinatorial number system: position j's element
  // is the smallest c such that fewer than `rank` combinations start with a
  // smaller one, i.e. subtract C(n - 1 - c, k - 1 - j) blocks while they
  // fit.
  std::vector<int> idx(static_cast<size_t>(k));
  int64_t rank = begin;
  int c = 0;
  for (int j = 0; j < k; ++j) {
    for (;; ++c) {
      const int64_t block = BinomialCoefficient(n - 1 - c, k - 1 - j);
      if (rank < block) break;
      rank -= block;
    }
    idx[static_cast<size_t>(j)] = c++;
  }
  for (int64_t r = begin; r < end; ++r) {
    if (!fn(Bitset64::Of(n, idx))) return;
    // Advance the combination (standard lexicographic successor).
    int i = k - 1;
    while (i >= 0 && idx[static_cast<size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

int64_t EncodeMixedRadix(const std::vector<int32_t>& t,
                         const std::vector<int>& radices) {
  PV_CHECK(t.size() == radices.size());
  int64_t code = 0;
  for (size_t i = t.size(); i-- > 0;) {
    PV_CHECK(t[i] >= 0 && t[i] < radices[i]);
    code = code * radices[i] + t[i];
  }
  return code;
}

std::vector<int32_t> DecodeMixedRadix(int64_t code,
                                      const std::vector<int>& radices) {
  std::vector<int32_t> t(radices.size());
  for (size_t i = 0; i < radices.size(); ++i) {
    t[i] = static_cast<int32_t>(code % radices[i]);
    code /= radices[i];
  }
  PV_CHECK_MSG(code == 0, "code out of range for radices");
  return t;
}

}  // namespace provview
