#include "common/bitset64.h"

#include <bit>
#include <sstream>

namespace provview {

Bitset64 Bitset64::Of(int size, const std::vector<int>& members) {
  Bitset64 b(size);
  for (int m : members) b.Set(m);
  return b;
}

Bitset64 Bitset64::All(int size) {
  Bitset64 b(size);
  for (size_t i = 0; i < b.blocks_.size(); ++i) b.blocks_[i] = ~uint64_t{0};
  // Mask off bits beyond the universe in the last block.
  int rem = size % 64;
  if (rem != 0 && !b.blocks_.empty()) {
    b.blocks_.back() &= (uint64_t{1} << rem) - 1;
  }
  return b;
}

int Bitset64::count() const {
  int total = 0;
  for (uint64_t blk : blocks_) total += std::popcount(blk);
  return total;
}

std::vector<int> Bitset64::ToVector() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count()));
  for (size_t bi = 0; bi < blocks_.size(); ++bi) {
    uint64_t blk = blocks_[bi];
    while (blk != 0) {
      int bit = std::countr_zero(blk);
      out.push_back(static_cast<int>(bi * 64) + bit);
      blk &= blk - 1;
    }
  }
  return out;
}

int Bitset64::First() const {
  for (size_t bi = 0; bi < blocks_.size(); ++bi) {
    if (blocks_[bi] != 0) {
      return static_cast<int>(bi * 64) + std::countr_zero(blocks_[bi]);
    }
  }
  return -1;
}

int Bitset64::NextAfter(int i) const {
  int start = i + 1;
  if (start >= size_) return -1;
  size_t bi = static_cast<size_t>(start) / 64;
  uint64_t blk = blocks_[bi] & (~uint64_t{0} << (start % 64));
  while (true) {
    if (blk != 0) {
      return static_cast<int>(bi * 64) + std::countr_zero(blk);
    }
    ++bi;
    if (bi >= blocks_.size()) return -1;
    blk = blocks_[bi];
  }
}

bool Bitset64::Intersects(const Bitset64& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] & other.blocks_[i]) return true;
  }
  return false;
}

bool Bitset64::IsSubsetOf(const Bitset64& other) const {
  CheckCompatible(other);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] & ~other.blocks_[i]) return false;
  }
  return true;
}

Bitset64& Bitset64::operator|=(const Bitset64& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] |= other.blocks_[i];
  return *this;
}

Bitset64& Bitset64::operator&=(const Bitset64& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= other.blocks_[i];
  return *this;
}

Bitset64& Bitset64::operator^=(const Bitset64& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] ^= other.blocks_[i];
  return *this;
}

Bitset64& Bitset64::Subtract(const Bitset64& other) {
  CheckCompatible(other);
  for (size_t i = 0; i < blocks_.size(); ++i) blocks_[i] &= ~other.blocks_[i];
  return *this;
}

Bitset64 Bitset64::Complement() const {
  Bitset64 out = All(size_);
  out.Subtract(*this);
  return out;
}

bool Bitset64::operator<(const Bitset64& other) const {
  if (size_ != other.size_) return size_ < other.size_;
  // Compare from most-significant block down for a stable total order.
  for (size_t i = blocks_.size(); i-- > 0;) {
    if (blocks_[i] != other.blocks_[i]) return blocks_[i] < other.blocks_[i];
  }
  return false;
}

std::string Bitset64::ToString() const {
  std::ostringstream oss;
  oss << "{";
  bool first = true;
  for (int m : ToVector()) {
    if (!first) oss << ", ";
    oss << m;
    first = false;
  }
  oss << "}";
  return oss.str();
}

uint64_t Bitset64::Hash() const {
  uint64_t h = 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(size_);
  for (uint64_t blk : blocks_) {
    h ^= blk + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace provview
