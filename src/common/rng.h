// Deterministic, fast pseudo-random number generation (xoshiro256**).
// All randomized components of the library (instance generators, randomized
// rounding) take an explicit Rng so experiments are reproducible from a seed.
#ifndef PROVVIEW_COMMON_RNG_H_
#define PROVVIEW_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace provview {

/// xoshiro256** seeded via splitmix64. Not cryptographic; deterministic
/// across platforms, which matters for reproducible experiments.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `count` distinct values from [0, n) in increasing order.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// A uniformly random permutation of [0, n).
  std::vector<int> RandomPermutation(int n);

 private:
  uint64_t s_[4];
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_RNG_H_
