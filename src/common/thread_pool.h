// Minimal work-distributing thread pool for the privacy enumerators: a fixed
// set of worker threads draining a task queue, in the style of concurrencpp's
// thread-pool executor but without the coroutine machinery. Used to shard
// possible-worlds enumeration over the first slot's feasible codes; workers
// accumulate into private partials that the caller merges, so no task-level
// synchronization is needed beyond Wait().
#ifndef PROVVIEW_COMMON_THREAD_POOL_H_
#define PROVVIEW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace provview {

/// Fixed-size thread pool. Tasks are void() callables; exceptions must not
/// escape a task (PV_CHECK aborts, consistent with the library's policy).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int DefaultThreads();

  /// Resolves an options-style thread count: 0 means auto (hardware
  /// concurrency), anything else is clamped to >= 1. The single policy
  /// shared by every `num_threads` knob in the library.
  static int Resolve(int requested);

  /// Runs fn(shard, begin, end) over `num_shards` contiguous ranges
  /// partitioning [0, total), one task per shard, and waits for completion.
  /// With num_shards <= 1 (or total fitting one shard) runs inline on the
  /// calling thread — zero pool overhead for small inputs.
  void ShardedFor(int64_t total, int num_shards,
                  const std::function<void(int shard, int64_t begin,
                                           int64_t end)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): everything drained
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_THREAD_POOL_H_
