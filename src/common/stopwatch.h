// Wall-clock stopwatch for the experiment harnesses.
#ifndef PROVVIEW_COMMON_STOPWATCH_H_
#define PROVVIEW_COMMON_STOPWATCH_H_

#include <chrono>

namespace provview {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_STOPWATCH_H_
