// Small combinatorial helpers shared by the privacy checkers and generators:
// mixed-radix counters over attribute domains, subset enumeration, and
// integer powers with overflow saturation.
#ifndef PROVVIEW_COMMON_COMBINATORICS_H_
#define PROVVIEW_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitset64.h"

namespace provview {

/// a * b for non-negative operands, saturating at INT64_MAX instead of
/// overflowing. The single shared definition of the privacy checkers'
/// world-count arithmetic.
int64_t SaturatingMul(int64_t a, int64_t b);

/// radix^exp, saturating at INT64_MAX instead of overflowing.
int64_t SaturatingPow(int64_t radix, int exp);

/// Product of v's entries, saturating at INT64_MAX.
int64_t SaturatingProduct(const std::vector<int64_t>& v);

/// Binomial coefficient C(n, k) saturating at INT64_MAX.
int64_t BinomialCoefficient(int n, int k);

/// Mixed-radix odometer: enumerates every tuple of the product space
/// ∏_i [0, radices[i]). Starts at all-zeros; Advance() steps to the next
/// tuple and returns false after wrapping past the last one.
class MixedRadixCounter {
 public:
  explicit MixedRadixCounter(std::vector<int> radices);

  const std::vector<int32_t>& values() const { return values_; }

  /// Total number of tuples (saturating).
  int64_t Cardinality() const;

  /// Steps to the next tuple; returns false when the space is exhausted.
  bool Advance();

  /// Resets to the all-zeros tuple.
  void Reset();

 private:
  std::vector<int> radices_;
  std::vector<int32_t> values_;
};

/// Invokes `fn` on every subset of the universe [0, n). 2^n invocations;
/// intended for the small per-module attribute counts (k ≤ ~20) that the
/// paper's exhaustive standalone search targets.
void ForEachSubset(int n, const std::function<void(const Bitset64&)>& fn);

/// Invokes `fn` on every subset of `universe` (a set over [0, n)).
void ForEachSubsetOf(const Bitset64& universe,
                     const std::function<void(const Bitset64&)>& fn);

/// All subsets of [0, n) of exactly size k, in lexicographic order.
std::vector<Bitset64> SubsetsOfSize(int n, int k);

/// Invokes `fn` on the size-k subsets of [0, n) whose lexicographic rank
/// (the order SubsetsOfSize materializes) lies in [begin, end). The first
/// combination is unranked via the combinatorial number system, then the
/// walk steps through lexicographic successors — so contiguous rank ranges
/// partition the level exactly, which is how the sharded subset-lattice
/// searches split one cardinality level across worker threads without
/// materializing C(n, k) bitsets.
void ForEachSubsetOfSizeRange(int n, int k, int64_t begin, int64_t end,
                              const std::function<void(const Bitset64&)>& fn);

/// As above, but `fn` returns false to stop the walk early (the
/// short-circuiting AND/OR scans of the cardinality search).
void ForEachSubsetOfSizeRangeWhile(
    int n, int k, int64_t begin, int64_t end,
    const std::function<bool(const Bitset64&)>& fn);

/// Encodes tuple `t` in the mixed-radix system `radices` (little-endian:
/// t[0] is the least-significant digit). Result < ∏ radices.
int64_t EncodeMixedRadix(const std::vector<int32_t>& t,
                         const std::vector<int>& radices);

/// Inverse of EncodeMixedRadix.
std::vector<int32_t> DecodeMixedRadix(int64_t code,
                                      const std::vector<int>& radices);

}  // namespace provview

#endif  // PROVVIEW_COMMON_COMBINATORICS_H_
