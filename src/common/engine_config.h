// Shared execution knobs of the privacy engines. Every engine used to
// re-declare its own num_threads / use_task_graph / materialize_threshold
// triplet, which drifted (different defaults, different doc comments) and
// made it impossible to thread one configuration through a pipeline of
// engine calls. EngineConfig is the single definition; the per-engine
// option structs (WorkflowTablesOptions, SubsetSearchOptions,
// WorkflowEnumerationOptions, WorkflowBatchOptions) embed it as a base, so
// the historical field names (`opts.num_threads`, ...) keep working as
// aliases for one release while call sites migrate.
#ifndef PROVVIEW_COMMON_ENGINE_CONFIG_H_
#define PROVVIEW_COMMON_ENGINE_CONFIG_H_

#include <cstdint>

namespace provview {

class ExecControl;
class TaskGraphExecutor;

/// Execution knobs common to every privacy engine. Engines read the subset
/// that applies to them and document any engine-specific interpretation in
/// their derived options struct.
struct EngineConfig {
  /// Worker threads. 0 = hardware concurrency, 1 = fully sequential.
  int num_threads = 1;

  /// Run sharded work on the dependency-aware task-graph executor
  /// (default). Off = the historical fork-join path, kept for A/B
  /// equivalence and bench races. Engines without a task-graph mode yet
  /// (world enumeration) accept but ignore the flag.
  bool use_task_graph = true;

  /// Module domains of at most this many rows use the materialized
  /// relation fast path; larger domains stream rows from the module's
  /// function per pass. Mirrors Module::kDefaultMaterializeRows.
  int64_t materialize_threshold = int64_t{1} << 22;

  /// Optional shared executor (e.g. the daemon's). nullptr = a private
  /// executor per call sized so the calling thread plus its workers total
  /// num_threads runners.
  TaskGraphExecutor* executor = nullptr;

  /// Optional deadline/cancellation/memory-budget token (service mode).
  /// Engines poll it at chunk/level boundaries and surface a trip as a
  /// typed Status instead of a PV_CHECK abort.
  const ExecControl* control = nullptr;
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_ENGINE_CONFIG_H_
