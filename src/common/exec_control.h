// Cooperative cancellation, deadlines and memory budgets for the privacy
// engines. A long-lived service cannot afford PV_CHECK-abort or unbounded
// walks: each request carries an ExecControl, the sharded hot loops poll it
// at chunk boundaries (an atomic load on the fast path; the clock is read
// only every `kClockStride` polls), and a tripped control makes the engine
// stop and surface a typed Status — DEADLINE_EXCEEDED for deadlines and
// external cancellation, RESOURCE_EXHAUSTED for memory-budget overruns —
// instead of running forever or taking the process down.
//
// One ExecControl is shared by every shard of a request (all members are
// atomics); it is NOT reusable across requests — make a fresh one per
// request so a tripped state never leaks into the next call.
#ifndef PROVVIEW_COMMON_EXEC_CONTROL_H_
#define PROVVIEW_COMMON_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace provview {

/// A long-lived byte pool shared by MANY requests at once (the daemon's
/// request-level admission budget), in contrast to the per-request ceiling
/// inside ExecControl. Attach one to each request's control with
/// ExecControl::set_shared_budget: engine charges then draw from both, and
/// exhausting the POOL trips only the charging request (typed
/// RESOURCE_EXHAUSTED), never the pool itself — the pool recovers as other
/// requests release their bytes.
class MemoryBudget {
 public:
  /// `bytes` <= 0 means unbounded (every charge succeeds).
  explicit MemoryBudget(int64_t bytes)
      : budget_(bytes > 0 ? bytes : std::numeric_limits<int64_t>::max()),
        bounded_(bytes > 0) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool bounded() const { return bounded_; }
  int64_t budget() const { return budget_; }

  /// Reserves `bytes` from the pool; false (and nothing reserved) when the
  /// pool cannot cover them. Balanced by Release().
  bool TryCharge(int64_t bytes) {
    if (bytes <= 0) return true;
    int64_t used = bytes_in_use_.load(std::memory_order_relaxed);
    for (;;) {
      if (used > budget_ - bytes) {
        exhausted_charges_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (bytes_in_use_.compare_exchange_weak(used, used + bytes,
                                              std::memory_order_relaxed)) {
        break;
      }
    }
    const int64_t now_used = used + bytes;
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now_used > peak &&
           !peak_bytes_.compare_exchange_weak(peak, now_used,
                                              std::memory_order_relaxed)) {
    }
    return true;
  }

  void Release(int64_t bytes) {
    if (bytes <= 0) return;
    bytes_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t bytes_in_use() const {
    return bytes_in_use_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  /// Charges refused because the pool was exhausted.
  uint64_t exhausted_charges() const {
    return exhausted_charges_.load(std::memory_order_relaxed);
  }

 private:
  const int64_t budget_;
  const bool bounded_;
  std::atomic<int64_t> bytes_in_use_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<uint64_t> exhausted_charges_{0};
};

/// Per-request cancellation token: deadline + external cancel flag + memory
/// budget. Thread-safe; cheap to poll from many shards concurrently.
class ExecControl {
 public:
  ExecControl() = default;

  // All members are atomics, so the class is neither copyable nor movable:
  // configure a control in place, then share its address with every shard.

  /// Arms a deadline `ms` milliseconds from now (ms <= 0 trips on the first
  /// poll — the "deadline-doomed" request shape).
  void set_deadline_ms(int64_t ms) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms));
  }

  /// Arms the deadline. Call before handing the control to an engine.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Arms the memory budget (bytes of engine-tracked allocations).
  void set_memory_budget(int64_t bytes) {
    memory_budget_.store(bytes, std::memory_order_relaxed);
  }

  /// Additionally draws every charge from `shared` (a pool spanning many
  /// concurrent requests). A charge the pool cannot cover trips THIS
  /// control with RESOURCE_EXHAUSTED; the pool itself carries no trip
  /// state. Set before handing the control to an engine; the pool must
  /// outlive the request.
  void set_shared_budget(MemoryBudget* shared) { shared_budget_ = shared; }

  /// External cancellation (connection dropped, daemon shutting down).
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Cheap poll for the hot loops: true once the control has tripped
  /// (cancelled, past the deadline, or over the memory budget). The
  /// deadline clock is only consulted every `kClockStride` calls per
  /// calling thread, so polling per iteration stays nearly free.
  bool Expired() const {
    if (tripped_.load(std::memory_order_relaxed)) return true;
    if (cancelled_.load(std::memory_order_relaxed)) {
      trip(StatusCode::kDeadlineExceeded);
      return true;
    }
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    thread_local uint32_t stride = 0;
    if (++stride % kClockStride != 0) return false;
    return CheckDeadlineNow();
  }

  /// Like Expired() but always reads the clock — use at request entry and
  /// at coarse boundaries (level barriers, chunk ends).
  bool ExpiredNow() const {
    if (tripped_.load(std::memory_order_relaxed)) return true;
    if (cancelled_.load(std::memory_order_relaxed)) {
      trip(StatusCode::kDeadlineExceeded);
      return true;
    }
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    return CheckDeadlineNow();
  }

  /// Charges `bytes` against the memory budget. Returns false — and trips
  /// the control with RESOURCE_EXHAUSTED — if the charge would exceed it.
  /// Balanced by Release(); engines charge their dominant allocations
  /// (execution logs, per-shard walk state) so the ceiling is enforced on
  /// measured bytes, not guesses.
  bool TryCharge(int64_t bytes) const;

  /// Returns previously charged bytes to the budget.
  void Release(int64_t bytes) const;

  int64_t bytes_in_use() const {
    return bytes_in_use_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  /// OK while the control has not tripped; afterwards the typed reason:
  /// DeadlineExceeded (deadline or Cancel()) or ResourceExhausted (budget).
  Status Check() const;

 private:
  static constexpr uint32_t kClockStride = 1024;

  bool CheckDeadlineNow() const {
    const int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    if (now >= deadline_ns_.load(std::memory_order_relaxed)) {
      trip(StatusCode::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  void trip(StatusCode code) const {
    StatusCode expected = StatusCode::kOk;
    trip_code_.compare_exchange_strong(expected, code,
                                       std::memory_order_acq_rel);
    tripped_.store(true, std::memory_order_release);
  }

  std::atomic<bool> has_deadline_{false};
  std::atomic<int64_t> deadline_ns_{std::numeric_limits<int64_t>::max()};
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> tripped_{false};
  mutable std::atomic<StatusCode> trip_code_{StatusCode::kOk};
  std::atomic<int64_t> memory_budget_{std::numeric_limits<int64_t>::max()};
  mutable std::atomic<int64_t> bytes_in_use_{0};
  mutable std::atomic<int64_t> peak_bytes_{0};
  MemoryBudget* shared_budget_ = nullptr;  // set before engines run
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_EXEC_CONTROL_H_
