#include "common/thread_pool.h"

#include <algorithm>

namespace provview {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::Resolve(int requested) {
  return std::max(1, requested == 0 ? DefaultThreads() : requested);
}

void ThreadPool::ShardedFor(
    int64_t total, int num_shards,
    const std::function<void(int shard, int64_t begin, int64_t end)>& fn) {
  if (total <= 0) return;
  const int shards = static_cast<int>(
      std::min<int64_t>(std::max(1, num_shards), total));
  if (shards == 1) {
    fn(0, 0, total);
    return;
  }
  const int64_t chunk = (total + shards - 1) / shards;
  for (int s = 0; s < shards; ++s) {
    const int64_t begin = static_cast<int64_t>(s) * chunk;
    if (begin >= total) break;  // ceil division can leave trailing shards empty
    const int64_t end = std::min(total, begin + chunk);
    Submit([fn, s, begin, end] { fn(s, begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace provview
