// Dependency-aware task executor replacing the fork-join barriers of
// thread_pool.h on the engine hot paths. A TaskGraph is a one-shot DAG of
// void() tasks with explicit predecessor edges; a TaskGraphExecutor is a
// long-lived set of workers with per-worker deques and steal-on-empty, in
// the spirit of concurrencpp's thread-pool executor but with dependency
// counting instead of coroutines. The properties the engines rely on:
//
//   * A task runs only after every predecessor finished; completion of the
//     last predecessor releases the successor onto the completing worker's
//     own deque (locality), from where idle workers steal.
//   * Run() callers always help: the calling thread drains tasks alongside
//     the workers until its graph completes. This is what makes nested
//     Run() from inside a task deadlock-free (the nested caller works
//     instead of parking while holding its worker), keeps the executor
//     work-conserving, and means a 1-worker executor plus its caller are
//     two runners.
//   * Cooperative cancellation at task boundaries: the graph's ExecControl
//     is checked before every task body; once tripped (or once any task
//     throws), remaining bodies are skipped while dependency bookkeeping
//     still runs to completion, so Run() always returns. The first
//     exception is rethrown from Run(); a tripped control surfaces as its
//     typed Status.
//   * A bounded admission gate (TryAdmit/Release) for service callers:
//     podsd admits a request's units before submitting engine work and
//     rejects with RESOURCE_EXHAUSTED when the daemon is saturated,
//     instead of queueing unboundedly.
//
// Determinism: the executor schedules tasks in a nondeterministic order, so
// deterministic results are the *graph builder's* job — tasks write to
// disjoint slots and dedicated merge/absorb tasks combine them in a fixed
// order (see safe_subset_search.cc and docs/task_graph.md). RunInline()
// executes the same graph fully sequentially in task-id-seeded FIFO order:
// the zero-overhead path for resolved num_threads == 1.
#ifndef PROVVIEW_COMMON_TASK_GRAPH_H_
#define PROVVIEW_COMMON_TASK_GRAPH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/exec_control.h"
#include "common/status.h"

namespace provview {

class TaskGraphExecutor;

/// One-shot dependency DAG of void() tasks. Build with Add()/AddDep(), then
/// Run() exactly once. Not thread-safe during construction; tasks must not
/// call Add() on their own graph.
class TaskGraph {
 public:
  using TaskId = int;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task depending on `deps` (each an id returned earlier). Edges
  /// must keep the graph acyclic — a cycle is a fatal builder bug and is
  /// detected by Run()/RunInline().
  TaskId Add(std::function<void()> fn, const std::vector<TaskId>& deps = {});

  /// Adds the edge dep -> task after both exist. Call before Run().
  void AddDep(TaskId task, TaskId dep);

  int size() const { return static_cast<int>(tasks_.size()); }

  /// Executes the graph on `executor`, the calling thread helping until the
  /// graph completes. executor == nullptr degrades to RunInline(). Returns
  /// OK, or the control's typed Status if it tripped mid-graph; rethrows
  /// the first task exception. Single-shot.
  Status Run(TaskGraphExecutor* executor, const ExecControl* control = nullptr);

  /// Fully sequential execution on the calling thread: ready tasks run in
  /// deterministic FIFO order seeded by ascending task id. Same skip /
  /// error semantics as Run().
  Status RunInline(const ExecControl* control = nullptr);

 private:
  friend class TaskGraphExecutor;

  struct Task {
    std::function<void()> fn;
    TaskGraph* graph = nullptr;
    std::vector<TaskId> succs;
    std::atomic<int64_t> pending{0};  // unfinished predecessors
  };

  // True once task bodies must be skipped (error or tripped control); the
  // bookkeeping still drains every task so Run() terminates.
  bool ShouldSkip() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (control_ != nullptr && control_->ExpiredNow()) return true;
    return false;
  }
  void CaptureError(std::exception_ptr error);
  Status Finish();

  std::vector<std::unique_ptr<Task>> tasks_;
  const ExecControl* control_ = nullptr;
  bool ran_ = false;

  std::atomic<bool> cancelled_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;  // guarded by error_mu_

  std::atomic<int64_t> remaining_{0};
  std::atomic<bool> done_{false};
};

/// Long-lived work-stealing executor: `num_threads` background workers,
/// each with its own deque, plus a shared inbox deque for submissions from
/// non-worker threads. Graphs from many callers interleave on one executor
/// (the podsd sharing model); helping callers keep it work-conserving.
/// Destroy only after every Run() has returned.
class TaskGraphExecutor {
 public:
  explicit TaskGraphExecutor(
      int num_threads,
      int64_t max_pending = std::numeric_limits<int64_t>::max());
  ~TaskGraphExecutor();

  TaskGraphExecutor(const TaskGraphExecutor&) = delete;
  TaskGraphExecutor& operator=(const TaskGraphExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn` on some worker without blocking the caller and without a
  /// graph: the task owns itself and is deleted after its body returns
  /// (exceptions are swallowed — a detached body must do its own error
  /// delivery, e.g. the reactor completion path). The caller must keep the
  /// executor alive until every detached body has finished; bodies still
  /// queued when the executor is destroyed are discarded unrun.
  void SubmitDetached(std::function<void()> fn);

  /// Admission gate: reserves `units` of pending capacity, or returns false
  /// when the reservation would exceed max_pending. Callers that got true
  /// must Release() the same units when their work retires. Purely a
  /// counter — the executor does not count tasks itself, so callers choose
  /// the unit (podsd charges one unit per request item).
  bool TryAdmit(int64_t units);
  void Release(int64_t units);
  int64_t admitted_units() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  int64_t max_pending() const { return max_pending_; }

 private:
  friend class TaskGraph;

  struct Slot {
    std::mutex mu;
    std::deque<TaskGraph::Task*> q;  // guarded by mu
  };

  // Pushes a ready task: a worker (or adopted helper) pushes to its own
  // deque, anyone else to the shared inbox; then wakes one sleeper.
  void Push(TaskGraph::Task* t);
  // Pops from `home` (LIFO end for locality) or steals (FIFO end) from the
  // other slots; nullptr when everything is empty.
  TaskGraph::Task* Grab(int home);
  // Runs one task: skip-or-execute the body, release successors, retire the
  // graph when this was its last task.
  void Execute(TaskGraph::Task* t);
  // The Run() caller's loop: drain tasks (any graph's — work conservation)
  // until `graph` completes.
  void HelpUntilDone(TaskGraph* graph);
  void WorkerLoop(int self);

  std::vector<Slot> slots_;  // one per worker + trailing shared inbox
  std::vector<std::thread> workers_;
  std::atomic<int64_t> ready_{0};  // tasks sitting in some deque
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};

  const int64_t max_pending_;
  std::atomic<int64_t> admitted_{0};
};

/// RAII for the admission gate: admitted units are released on every exit
/// path of a request handler.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(TaskGraphExecutor* executor, int64_t units)
      : executor_(executor), units_(units) {}
  AdmissionTicket(AdmissionTicket&& o) noexcept
      : executor_(o.executor_), units_(o.units_) {
    o.executor_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& o) noexcept {
    if (this != &o) {
      reset();
      executor_ = o.executor_;
      units_ = o.units_;
      o.executor_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { reset(); }

  void reset() {
    if (executor_ != nullptr) executor_->Release(units_);
    executor_ = nullptr;
  }

 private:
  TaskGraphExecutor* executor_ = nullptr;
  int64_t units_ = 0;
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_TASK_GRAPH_H_
