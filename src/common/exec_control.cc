#include "common/exec_control.h"

namespace provview {

bool ExecControl::TryCharge(int64_t bytes) const {
  if (bytes <= 0) return true;
  if (shared_budget_ != nullptr && !shared_budget_->TryCharge(bytes)) {
    // The POOL is out, not this request's own ceiling — but the trip lands
    // here, on the request doing the charging, so only it degrades.
    trip(StatusCode::kResourceExhausted);
    return false;
  }
  const int64_t budget = memory_budget_.load(std::memory_order_relaxed);
  int64_t used = bytes_in_use_.load(std::memory_order_relaxed);
  for (;;) {
    if (used > budget - bytes) {
      if (shared_budget_ != nullptr) shared_budget_->Release(bytes);
      trip(StatusCode::kResourceExhausted);
      return false;
    }
    if (bytes_in_use_.compare_exchange_weak(used, used + bytes,
                                            std::memory_order_relaxed)) {
      break;
    }
  }
  const int64_t now_used = used + bytes;
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now_used > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now_used,
                                            std::memory_order_relaxed)) {
  }
  return true;
}

void ExecControl::Release(int64_t bytes) const {
  if (bytes <= 0) return;
  bytes_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
  if (shared_budget_ != nullptr) shared_budget_->Release(bytes);
}

Status ExecControl::Check() const {
  if (!tripped_.load(std::memory_order_acquire)) return Status::OK();
  switch (trip_code_.load(std::memory_order_acquire)) {
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted("memory budget exhausted");
    default:
      return Status::DeadlineExceeded(cancelled() ? "request cancelled"
                                                  : "deadline exceeded");
  }
}

}  // namespace provview
