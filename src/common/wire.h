// Bounds-checked little-endian binary encoding, the byte-level substrate of
// the podsd wire protocol and the binary instance/solution serializers.
// WireWriter appends into a std::string; WireReader is a cursor over a byte
// span whose every Read* validates the remaining length first — truncated or
// hostile input yields Status::InvalidArgument, never an over-read. Nothing
// here aborts: this layer exists so that ALL external bytes are validated at
// the boundary (memcached's error-isolation discipline) before any engine
// code sees them.
#ifndef PROVVIEW_COMMON_WIRE_H_
#define PROVVIEW_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace provview {

/// Appends fixed-width little-endian fields to a growing byte string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string* out_;
};

/// Cursor over immutable bytes; every read is bounds-checked and returns
/// Status::InvalidArgument on truncation. The reader never touches bytes
/// past `size()`, so feeding it an arbitrary prefix of a valid message is
/// always safe (the malformed-input corpus test exercises exactly this).
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  Status ReadU8(uint8_t* v) { return ReadLE(v); }
  Status ReadU16(uint16_t* v) { return ReadLE(v); }
  Status ReadU32(uint32_t* v) { return ReadLE(v); }
  Status ReadU64(uint64_t* v) { return ReadLE(v); }
  Status ReadI64(int64_t* v) {
    uint64_t bits;
    PV_RETURN_IF_ERROR(ReadLE(&bits));
    *v = static_cast<int64_t>(bits);
    return Status::OK();
  }
  Status ReadDouble(double* v) {
    uint64_t bits;
    PV_RETURN_IF_ERROR(ReadLE(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  /// u32 length prefix + bytes; rejects prefixes longer than the remaining
  /// input or than `max_len` (so a hostile 4 GiB length can neither
  /// over-read nor force a huge allocation).
  Status ReadString(std::string* v, uint32_t max_len);

  /// Requires every byte to have been consumed (trailing garbage is a
  /// protocol error, not padding).
  Status ExpectEnd() const {
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing bytes after message body");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Status ReadLE(T* v) {
    if (remaining() < sizeof(T)) {
      return Status::InvalidArgument("truncated input: need " +
                                     std::to_string(sizeof(T)) +
                                     " bytes, have " +
                                     std::to_string(remaining()));
    }
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += sizeof(T);
    *v = out;
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_WIRE_H_
