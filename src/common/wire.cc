#include "common/wire.h"

namespace provview {

Status WireReader::ReadString(std::string* v, uint32_t max_len) {
  uint32_t len;
  PV_RETURN_IF_ERROR(ReadU32(&len));
  if (len > max_len) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds limit " +
                                   std::to_string(max_len));
  }
  if (remaining() < len) {
    return Status::InvalidArgument(
        "truncated string: declared " + std::to_string(len) +
        " bytes, have " + std::to_string(remaining()));
  }
  v->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

}  // namespace provview
