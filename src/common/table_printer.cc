#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/status.h"

namespace provview {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PV_CHECK(!headers_.empty());
}

TablePrinter& TablePrinter::NewRow() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::AddCell(const std::string& value) {
  PV_CHECK_MSG(!rows_.empty(), "call NewRow() before AddCell()");
  PV_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflows headers");
  rows_.back().push_back(value);
  return *this;
}

TablePrinter& TablePrinter::AddCell(const char* value) {
  return AddCell(std::string(value));
}

TablePrinter& TablePrinter::AddCell(int64_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddCell(int value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddCell(size_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddCell(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return AddCell(oss.str());
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(const std::string& title, std::ostream& os) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace provview
