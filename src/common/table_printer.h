// Console table formatting used by the benchmark harnesses to print the
// per-experiment result tables recorded in EXPERIMENTS.md.
#ifndef PROVVIEW_COMMON_TABLE_PRINTER_H_
#define PROVVIEW_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace provview {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Numeric convenience overloads format with sensible precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill its cells left to right.
  TablePrinter& NewRow();
  TablePrinter& AddCell(const std::string& value);
  TablePrinter& AddCell(const char* value);
  TablePrinter& AddCell(int64_t value);
  TablePrinter& AddCell(int value);
  TablePrinter& AddCell(size_t value);
  TablePrinter& AddCell(double value, int precision = 3);

  /// Renders the table to `os` with a header rule and aligned columns.
  void Print(std::ostream& os = std::cout) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("=== title ===") used to delimit experiment
/// output in the bench binaries.
void PrintBanner(const std::string& title, std::ostream& os = std::cout);

}  // namespace provview

#endif  // PROVVIEW_COMMON_TABLE_PRINTER_H_
