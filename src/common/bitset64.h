// Dynamic bitset over 64-bit blocks, used throughout the library to represent
// attribute sets (visible/hidden subsets V, V̄ of a workflow's attributes).
// Attribute universes in this domain are small (tens to a few hundred bits),
// so a compact inline-friendly representation with set algebra is ideal.
#ifndef PROVVIEW_COMMON_BITSET64_H_
#define PROVVIEW_COMMON_BITSET64_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace provview {

/// Fixed-universe dynamic bitset with value semantics and full set algebra.
/// All binary operations require both operands to have the same universe
/// size (checked).
class Bitset64 {
 public:
  Bitset64() : size_(0) {}
  explicit Bitset64(int size) : size_(size) {
    PV_CHECK(size >= 0);
    blocks_.assign(static_cast<size_t>((size + 63) / 64), 0);
  }

  /// Builds a set over [0, size) containing exactly `members`.
  static Bitset64 Of(int size, const std::vector<int>& members);

  /// The full set over [0, size).
  static Bitset64 All(int size);

  int size() const { return size_; }
  bool empty() const { return count() == 0; }

  bool Test(int i) const {
    CheckIndex(i);
    return (blocks_[static_cast<size_t>(i) / 64] >>
            (static_cast<size_t>(i) % 64)) & 1u;
  }
  void Set(int i) {
    CheckIndex(i);
    blocks_[static_cast<size_t>(i) / 64] |= (uint64_t{1} << (i % 64));
  }
  void Reset(int i) {
    CheckIndex(i);
    blocks_[static_cast<size_t>(i) / 64] &= ~(uint64_t{1} << (i % 64));
  }
  void Assign(int i, bool value) { value ? Set(i) : Reset(i); }
  void Clear() { blocks_.assign(blocks_.size(), 0); }

  /// Number of set bits.
  int count() const;

  /// Membership list in increasing order.
  std::vector<int> ToVector() const;

  /// Index of the lowest set bit, or -1 if empty.
  int First() const;

  /// Index of the lowest set bit strictly greater than i, or -1.
  int NextAfter(int i) const;

  bool Intersects(const Bitset64& other) const;
  bool IsSubsetOf(const Bitset64& other) const;

  Bitset64& operator|=(const Bitset64& other);
  Bitset64& operator&=(const Bitset64& other);
  Bitset64& operator^=(const Bitset64& other);

  /// Set difference: removes every member of `other`.
  Bitset64& Subtract(const Bitset64& other);

  /// Complement within the universe [0, size).
  Bitset64 Complement() const;

  friend Bitset64 operator|(Bitset64 a, const Bitset64& b) { return a |= b; }
  friend Bitset64 operator&(Bitset64 a, const Bitset64& b) { return a &= b; }
  friend Bitset64 operator^(Bitset64 a, const Bitset64& b) { return a ^= b; }

  /// a \ b.
  friend Bitset64 Difference(Bitset64 a, const Bitset64& b) {
    return a.Subtract(b);
  }

  bool operator==(const Bitset64& other) const {
    return size_ == other.size_ && blocks_ == other.blocks_;
  }
  bool operator!=(const Bitset64& other) const { return !(*this == other); }

  /// Strict weak order so sets can key std::map / sort.
  bool operator<(const Bitset64& other) const;

  /// E.g. "{0, 3, 5}".
  std::string ToString() const;

  /// 64-bit mix of the contents, for hashing.
  uint64_t Hash() const;

  /// Raw little-endian block words, for serialization (size is determined
  /// by the universe: (size() + 63) / 64 words).
  const std::vector<uint64_t>& blocks() const { return blocks_; }

 private:
  void CheckIndex(int i) const {
    PV_CHECK_MSG(i >= 0 && i < size_,
                 "bit index " << i << " out of range [0," << size_ << ")");
  }
  void CheckCompatible(const Bitset64& other) const {
    PV_CHECK_MSG(size_ == other.size_, "bitset universe mismatch: "
                                           << size_ << " vs " << other.size_);
  }
  int size_;
  std::vector<uint64_t> blocks_;
};

struct Bitset64Hasher {
  size_t operator()(const Bitset64& b) const {
    return static_cast<size_t>(b.Hash());
  }
};

}  // namespace provview

#endif  // PROVVIEW_COMMON_BITSET64_H_
