#include "common/interner.h"

namespace provview {

int32_t TupleInterner::Intern(const std::vector<int32_t>& t) {
  auto [it, inserted] = ids_.emplace(t, static_cast<int32_t>(tuples_.size()));
  if (inserted) tuples_.push_back(t);
  return it->second;
}

int32_t TupleInterner::Find(const std::vector<int32_t>& t) const {
  auto it = ids_.find(t);
  return it == ids_.end() ? -1 : it->second;
}

void TupleInterner::Reserve(size_t n) {
  ids_.reserve(n);
  tuples_.reserve(n);
}

}  // namespace provview
