// Lightweight Status / Result error-handling primitives, in the style used by
// storage engines (RocksDB, Arrow): recoverable failures are returned as
// values, never thrown; programming errors abort via PV_CHECK.
#ifndef PROVVIEW_COMMON_STATUS_H_
#define PROVVIEW_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace provview {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  kInfeasible,   ///< optimization problem has no feasible solution
  kUnbounded,    ///< LP objective is unbounded
  kTimeout,      ///< solver hit its iteration/node budget
  kDeadlineExceeded,  ///< cooperative deadline/cancellation tripped
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Value-semantics status object. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result<T> holds either a T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : payload_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(payload_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << status().ToString() << "\n";
      std::abort();
    }
  }
  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

/// Fatal assertion for invariants; active in all build types.
#define PV_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::provview::internal::CheckFailed(__FILE__, __LINE__, #expr, "");  \
    }                                                                    \
  } while (0)

#define PV_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pv_oss_;                                          \
      pv_oss_ << msg; /* NOLINT */                                         \
      ::provview::internal::CheckFailed(__FILE__, __LINE__, #expr,         \
                                        pv_oss_.str());                    \
    }                                                                      \
  } while (0)

/// Propagates a non-OK Status out of the current function.
#define PV_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::provview::Status pv_st_ = (expr);     \
    if (!pv_st_.ok()) return pv_st_;        \
  } while (0)

}  // namespace provview

#endif  // PROVVIEW_COMMON_STATUS_H_
