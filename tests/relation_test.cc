#include <gtest/gtest.h>

#include "relation/relation.h"

namespace provview {
namespace {

CatalogPtr MakeCatalog() {
  auto catalog = std::make_shared<AttributeCatalog>();
  catalog->Add("a", 2, 1.0);
  catalog->Add("b", 3, 2.0);
  catalog->Add("c", 2, 0.5);
  return catalog;
}

TEST(AttributeCatalogTest, AddAndLookup) {
  auto catalog = MakeCatalog();
  EXPECT_EQ(catalog->size(), 3);
  EXPECT_EQ(catalog->Name(0), "a");
  EXPECT_EQ(catalog->DomainSize(1), 3);
  EXPECT_DOUBLE_EQ(catalog->Cost(2), 0.5);
  ASSERT_TRUE(catalog->Find("b").ok());
  EXPECT_EQ(catalog->Find("b").value(), 1);
  EXPECT_FALSE(catalog->Find("zz").ok());
  EXPECT_TRUE(catalog->Contains("c"));
  EXPECT_FALSE(catalog->Contains("d"));
}

TEST(AttributeCatalogTest, SetCost) {
  auto catalog = MakeCatalog();
  catalog->SetCost(0, 7.5);
  EXPECT_DOUBLE_EQ(catalog->Cost(0), 7.5);
}

TEST(SchemaTest, PositionsAndSets) {
  auto catalog = MakeCatalog();
  Schema s(catalog, {2, 0});
  EXPECT_EQ(s.arity(), 2);
  EXPECT_EQ(s.attr(0), 2);
  EXPECT_EQ(s.PositionOf(2), 0);
  EXPECT_EQ(s.PositionOf(0), 1);
  EXPECT_EQ(s.PositionOf(1), -1);
  EXPECT_TRUE(s.ContainsAttr(0));
  EXPECT_FALSE(s.ContainsAttr(1));
  EXPECT_EQ(s.AttrSet().ToVector(), (std::vector<int>{0, 2}));
  EXPECT_EQ(s.DomainSizes(), (std::vector<int>{2, 2}));
  EXPECT_EQ(s.ProductSpaceSize(), 4);
  EXPECT_EQ(s.ToString(), "(c, a)");
}

TEST(RelationTest, AddRowValidatesArityAndDomain) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {0, 1}));
  r.AddRow({1, 2});
  EXPECT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.At(r.rows()[0], 1), 2);
}

TEST(RelationTest, ProjectDeduplicates) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {0, 1}));
  r.AddRow({0, 0});
  r.AddRow({0, 1});
  r.AddRow({1, 0});
  Relation p = r.Project({0});
  EXPECT_EQ(p.num_rows(), 2);
  EXPECT_TRUE(p.ContainsRow({0}));
  EXPECT_TRUE(p.ContainsRow({1}));
}

TEST(RelationTest, ProjectReordersColumns) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {0, 1}));
  r.AddRow({1, 2});
  Relation p = r.Project({1, 0});
  EXPECT_EQ(p.schema().attr(0), 1);
  EXPECT_EQ(p.rows()[0], (Tuple{2, 1}));
}

TEST(RelationTest, ProjectSetUsesCatalogOrder) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {1, 0, 2}));
  r.AddRow({2, 1, 0});
  Relation p = r.ProjectSet(Bitset64::Of(3, {0, 2}));
  // Schema order follows the relation's own attr order filtered: (1,0,2)
  // restricted to {0,2} keeps order (0 then 2)? Attr order in schema is
  // (b, a, c); filtered to {a, c} in that traversal order: a then c.
  EXPECT_EQ(p.schema().attrs(), (std::vector<AttrId>{0, 2}));
  EXPECT_EQ(p.rows()[0], (Tuple{1, 0}));
}

TEST(RelationTest, NaturalJoinOnSharedAttr) {
  auto catalog = MakeCatalog();
  Relation left(Schema(catalog, {0, 1}));
  left.AddRow({0, 1});
  left.AddRow({1, 2});
  Relation right(Schema(catalog, {1, 2}));
  right.AddRow({1, 0});
  right.AddRow({1, 1});
  right.AddRow({2, 1});
  Relation joined = left.NaturalJoin(right);
  EXPECT_EQ(joined.schema().attrs(), (std::vector<AttrId>{0, 1, 2}));
  EXPECT_EQ(joined.num_rows(), 3);
  EXPECT_TRUE(joined.ContainsRow({0, 1, 0}));
  EXPECT_TRUE(joined.ContainsRow({0, 1, 1}));
  EXPECT_TRUE(joined.ContainsRow({1, 2, 1}));
}

TEST(RelationTest, NaturalJoinDisjointIsCrossProduct) {
  auto catalog = MakeCatalog();
  Relation left(Schema(catalog, {0}));
  left.AddRow({0});
  left.AddRow({1});
  Relation right(Schema(catalog, {2}));
  right.AddRow({0});
  right.AddRow({1});
  EXPECT_EQ(left.NaturalJoin(right).num_rows(), 4);
}

TEST(RelationTest, DistinctRemovesDuplicates) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {0}));
  r.AddRow({1});
  r.AddRow({1});
  r.AddRow({0});
  Relation d = r.Distinct();
  EXPECT_EQ(d.num_rows(), 2);
  EXPECT_EQ(d.rows()[0], (Tuple{0}));  // sorted
}

TEST(RelationTest, SatisfiesFd) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {0, 1}));
  r.AddRow({0, 1});
  r.AddRow({1, 2});
  EXPECT_TRUE(r.SatisfiesFd({0}, {1}));
  r.AddRow({0, 2});  // conflicts with (0 -> 1)
  EXPECT_FALSE(r.SatisfiesFd({0}, {1}));
  // Duplicate consistent rows are fine.
  Relation r2(Schema(catalog, {0, 1}));
  r2.AddRow({0, 1});
  r2.AddRow({0, 1});
  EXPECT_TRUE(r2.SatisfiesFd({0}, {1}));
}

TEST(RelationTest, EqualsAsSetIgnoresOrderAndDuplicates) {
  auto catalog = MakeCatalog();
  Relation a(Schema(catalog, {0, 2}));
  a.AddRow({0, 1});
  a.AddRow({1, 0});
  Relation b(Schema(catalog, {0, 2}));
  b.AddRow({1, 0});
  b.AddRow({0, 1});
  b.AddRow({0, 1});
  EXPECT_TRUE(a.EqualsAsSet(b));
  b.AddRow({1, 1});
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(RelationTest, ToStringHasHeaderAndValues) {
  auto catalog = MakeCatalog();
  Relation r(Schema(catalog, {0, 1}));
  r.AddRow({1, 2});
  std::string s = r.ToString();
  EXPECT_NE(s.find("a b"), std::string::npos);
  EXPECT_NE(s.find("1 2"), std::string::npos);
}

}  // namespace
}  // namespace provview
