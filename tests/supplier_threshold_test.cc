// The materialize/stream cutoff boundary: a module whose domain size sits
// exactly at the threshold must certify through the materialized path, one
// row below through the streaming path, and — because both backends walk
// the same rows in the same order through the same cache logic — the two
// paths must produce identical verdicts AND identical SafeSearchStats.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "module/module_library.h"
#include "privacy/safe_subset_search.h"
#include "privacy/safety_memo.h"
#include "privacy/standalone_privacy.h"

namespace provview {
namespace {

bool StatsEqual(const SafeSearchStats& a, const SafeSearchStats& b) {
  return a.subsets_examined == b.subsets_examined &&
         a.checker_calls == b.checker_calls && a.cache_hits == b.cache_hits &&
         a.signature_hits == b.signature_hits &&
         a.projection_hits == b.projection_hits;
}

// The fixture: |Dom| = 4 * 2 * 4 = 32, the exact cutoff value the tests
// pass as materialize_threshold.
struct BoundaryFixture {
  static constexpr int64_t kCutoff = 32;

  BoundaryFixture() {
    catalog = std::make_shared<AttributeCatalog>();
    in = {catalog->Add("i0", 4), catalog->Add("i1", 2), catalog->Add("i2", 4)};
    out = {catalog->Add("o0", 2), catalog->Add("o1", 3)};
    Rng rng(4242);
    module = MakeRandomFunction("boundary", catalog, in, out, &rng);
  }

  CatalogPtr catalog;
  std::vector<AttrId> in, out;
  ModulePtr module;
};

TEST(SupplierThresholdTest, DomainAtCutoffMaterializesOneBelowStreams) {
  BoundaryFixture fx;
  ASSERT_EQ(fx.module->DomainSize(), BoundaryFixture::kCutoff);
  EXPECT_TRUE(fx.module->View(BoundaryFixture::kCutoff).materialized());
  EXPECT_FALSE(fx.module->View(BoundaryFixture::kCutoff - 1).materialized());
  SafetyMemo at(*fx.module, BoundaryFixture::kCutoff);
  SafetyMemo below(*fx.module, BoundaryFixture::kCutoff - 1);
  EXPECT_FALSE(at.streaming());
  EXPECT_TRUE(below.streaming());
}

TEST(SupplierThresholdTest, BothPathsCertifyIdenticallyWithIdenticalStats) {
  BoundaryFixture fx;
  SafetyMemo materialized(*fx.module, BoundaryFixture::kCutoff);
  SafetyMemo streaming(*fx.module, BoundaryFixture::kCutoff - 1);
  SafeSearchStats mat_stats, stream_stats;
  // Drive both memos through the same query sequence: every hidden subset
  // of the module's attributes, at several Γ levels. Level-1 and level-2
  // hits must fall on exactly the same queries in both modes.
  std::vector<AttrId> local = fx.in;
  local.insert(local.end(), fx.out.begin(), fx.out.end());
  const int k = static_cast<int>(local.size());
  for (int mask = 0; mask < (1 << k); ++mask) {
    Bitset64 hidden(fx.catalog->size());
    for (int j = 0; j < k; ++j) {
      if ((mask >> j) & 1) hidden.Set(local[static_cast<size_t>(j)]);
    }
    EXPECT_EQ(materialized.MaxGamma(hidden, &mat_stats),
              streaming.MaxGamma(hidden, &stream_stats))
        << "mask " << mask;
    for (int64_t gamma : {1, 2, 8}) {
      EXPECT_EQ(materialized.IsSafe(hidden, gamma, &mat_stats),
                streaming.IsSafe(hidden, gamma, &stream_stats))
          << "mask " << mask << " gamma " << gamma;
    }
  }
  EXPECT_TRUE(StatsEqual(mat_stats, stream_stats));
  EXPECT_GT(mat_stats.cache_hits, 0);  // the memo actually memoized
}

TEST(SupplierThresholdTest, SubsetSearchesAgreeAcrossTheCutoff) {
  BoundaryFixture fx;
  for (int64_t gamma : {2, 6}) {
    SafeSearchStats mat_stats, stream_stats;
    std::vector<Bitset64> mat = MinimalSafeHiddenSets(
        *fx.module, gamma, &mat_stats, BoundaryFixture::kCutoff);
    std::vector<Bitset64> stream = MinimalSafeHiddenSets(
        *fx.module, gamma, &stream_stats, BoundaryFixture::kCutoff - 1);
    EXPECT_EQ(mat, stream) << "gamma " << gamma;
    EXPECT_TRUE(StatsEqual(mat_stats, stream_stats)) << "gamma " << gamma;
    EXPECT_EQ(
        MinimalSafeCardinalityPairs(*fx.module, gamma,
                                    BoundaryFixture::kCutoff),
        MinimalSafeCardinalityPairs(*fx.module, gamma,
                                    BoundaryFixture::kCutoff - 1))
        << "gamma " << gamma;
    EXPECT_EQ(MaxStandaloneGamma(*fx.module, Bitset64(fx.catalog->size()),
                                 BoundaryFixture::kCutoff),
              MaxStandaloneGamma(*fx.module, Bitset64(fx.catalog->size()),
                                 BoundaryFixture::kCutoff - 1));
  }
}

}  // namespace
}  // namespace provview
