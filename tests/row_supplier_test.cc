// Unit tests for the streaming row abstraction: materialized and
// function-backed suppliers must yield identical row sequences, RelationView
// must pick the backend exactly at the materialization threshold, and the
// execution supplier must reproduce the provenance relation (including over
// sharded execution ranges).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "module/module_library.h"
#include "privacy/possible_worlds.h"
#include "relation/row_supplier.h"
#include "workflow/execution_supplier.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

// Collects a full pass of `rows` as flat values.
std::vector<Value> Drain(RowSupplier* rows, int64_t block_rows) {
  std::vector<Value> all, block;
  rows->Reset();
  int64_t n;
  while ((n = rows->NextBlock(&block, block_rows)) > 0) {
    all.insert(all.end(), block.begin(), block.end());
  }
  return all;
}

// Flattens a relation's rows in storage order.
std::vector<Value> Flatten(const Relation& rel) {
  std::vector<Value> all;
  for (const Tuple& row : rel.rows()) {
    all.insert(all.end(), row.begin(), row.end());
  }
  return all;
}

ModulePtr MakeTestModule(uint64_t seed) {
  auto catalog = std::make_shared<AttributeCatalog>();
  std::vector<AttrId> in = {catalog->Add("i0", 3), catalog->Add("i1", 2),
                            catalog->Add("i2", 2)};
  std::vector<AttrId> out = {catalog->Add("o0", 2), catalog->Add("o1", 3)};
  Rng rng(seed);
  return MakeRandomFunction("m", catalog, in, out, &rng);
}

TEST(RowSupplierTest, ModuleSupplierMatchesFullRelation) {
  ModulePtr m = MakeTestModule(7);
  const std::vector<Value> expected = Flatten(m->FullRelation());
  ModuleRowSupplier streaming(*m);
  EXPECT_EQ(streaming.total_rows(), m->DomainSize());
  for (int64_t block_rows : {1, 3, 5, 64, 4096}) {
    EXPECT_EQ(Drain(&streaming, block_rows), expected)
        << "block " << block_rows;
  }
}

TEST(RowSupplierTest, MaterializedSupplierMatchesRelation) {
  ModulePtr m = MakeTestModule(11);
  Relation rel = m->FullRelation();
  MaterializedRowSupplier rows(rel);
  EXPECT_EQ(rows.total_rows(), rel.num_rows());
  EXPECT_EQ(Drain(&rows, 7), Flatten(rel));
  // A second pass after Reset yields the identical sequence.
  EXPECT_EQ(Drain(&rows, 1000), Flatten(rel));
}

TEST(RowSupplierTest, ViewPicksBackendAtThreshold) {
  ModulePtr m = MakeTestModule(13);
  const int64_t dom = m->DomainSize();  // 12
  RelationView at = m->View(/*materialize_threshold=*/dom);
  EXPECT_TRUE(at.materialized());
  ASSERT_NE(at.relation(), nullptr);
  EXPECT_EQ(at.num_rows(), dom);

  RelationView below = m->View(/*materialize_threshold=*/dom - 1);
  EXPECT_FALSE(below.materialized());
  EXPECT_EQ(below.relation(), nullptr);
  EXPECT_EQ(below.num_rows(), dom);

  // Both backends stream the same rows in the same order, and a streaming
  // view opens independent passes.
  std::unique_ptr<RowSupplier> a = at.NewSupplier();
  std::unique_ptr<RowSupplier> b = below.NewSupplier();
  std::unique_ptr<RowSupplier> c = below.NewSupplier();
  const std::vector<Value> rows_a = Drain(a.get(), 5);
  EXPECT_EQ(rows_a, Drain(b.get(), 3));
  EXPECT_EQ(rows_a, Drain(c.get(), 12));
  EXPECT_EQ(at.schema().attrs(), below.schema().attrs());
}

TEST(RowSupplierTest, ConstantModuleStreamsSingleRow) {
  auto catalog = std::make_shared<AttributeCatalog>();
  AttrId o = catalog->Add("o", 4);
  ModulePtr m = MakeConstant("c", catalog, {}, {o}, {3});
  ModuleRowSupplier rows(*m);
  std::vector<Value> block;
  EXPECT_EQ(rows.NextBlock(&block, 10), 1);
  EXPECT_EQ(block, (std::vector<Value>{3}));
  EXPECT_EQ(rows.NextBlock(&block, 10), 0);
}

TEST(RowSupplierTest, ExecutionSupplierMatchesProvenanceRelation) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Relation prov = fig.workflow->ProvenanceRelation();
  ExecutionSupplier rows(*fig.workflow);
  EXPECT_EQ(rows.schema().attrs(), prov.schema().attrs());
  EXPECT_EQ(rows.total_rows(), prov.num_rows());
  for (int64_t block_rows : {1, 3, 4096}) {
    EXPECT_EQ(Drain(&rows, block_rows), Flatten(prov))
        << "block " << block_rows;
  }
}

TEST(RowSupplierTest, ExecutionSupplierRangesPartitionTheLog) {
  Fig1Workflow fig = MakeFig1Workflow();
  const Relation prov = fig.workflow->ProvenanceRelation();
  const int64_t execs = prov.num_rows();  // 4
  std::vector<Value> all;
  for (int64_t begin = 0; begin < execs; begin += 2) {
    ExecutionSupplier shard(*fig.workflow, begin,
                            std::min<int64_t>(begin + 2, execs));
    std::vector<Value> part = Drain(&shard, 1);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_EQ(all, Flatten(prov));
}

TEST(RowSupplierTest, EmptyTrailingExecutionRangeYieldsNoRows) {
  // begin == end == total sits past the last decodable odometer position; a
  // shard with that range must stream zero rows instead of aborting.
  Fig1Workflow fig = MakeFig1Workflow();
  std::shared_ptr<const ExecutionPlan> plan =
      ExecutionSupplier::MakePlan(*fig.workflow);
  ExecutionSupplier empty(plan, plan->total_execs, plan->total_execs);
  std::vector<Value> block;
  EXPECT_EQ(empty.total_rows(), 0);
  EXPECT_EQ(empty.NextBlock(&block, 4), 0);
  empty.Reset();
  EXPECT_EQ(empty.NextBlock(&block, 4), 0);
}

TEST(RowSupplierTest, ExecutionSupplierInputCodesMatchLog) {
  Fig1Workflow fig = MakeFig1Workflow();
  ExecutionSupplier rows(*fig.workflow);
  std::shared_ptr<const WorkflowTables> tables =
      BuildWorkflowTables(*fig.workflow);
  std::vector<Value> block;
  const size_t arity = static_cast<size_t>(rows.schema().arity());
  int64_t e = 0, n;
  while ((n = rows.NextBlock(&block, 3)) > 0) {
    for (int64_t r = 0; r < n; ++r, ++e) {
      const Value* row = &block[static_cast<size_t>(r) * arity];
      for (int i = 0; i < tables->num_modules; ++i) {
        EXPECT_EQ(rows.InputCodeOf(row, i),
                  tables->orig_in_code[static_cast<size_t>(e) *
                                           static_cast<size_t>(
                                               tables->num_modules) +
                                       static_cast<size_t>(i)])
            << "exec " << e << " module " << i;
      }
    }
  }
}

}  // namespace
}  // namespace provview
