#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "common/rng.h"
#include <algorithm>
#include "privacy/lower_bounds.h"
#include "privacy/standalone_privacy.h"

namespace provview {
namespace {

// ---------------------------------------------------------------------
// CNF helper.
// ---------------------------------------------------------------------
TEST(CnfTest, EvalAndSatisfiability) {
  // (x0 ∨ x1) ∧ (¬x0 ∨ x2)
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {{1, 2}, {-1, 3}};
  EXPECT_TRUE(f.Eval({0, 1, 0}));
  EXPECT_FALSE(f.Eval({0, 0, 1}));
  EXPECT_TRUE(f.Eval({1, 0, 1}));
  EXPECT_FALSE(f.Eval({1, 0, 0}));
  EXPECT_TRUE(f.IsSatisfiable());
}

TEST(CnfTest, UnsatisfiableFormula) {
  // x0 ∧ ¬x0.
  CnfFormula f;
  f.num_vars = 1;
  f.clauses = {{1}, {-1}};
  EXPECT_FALSE(f.IsSatisfiable());
}

TEST(CnfTest, EmptyFormulaIsSatisfiable) {
  CnfFormula f;
  f.num_vars = 2;
  EXPECT_TRUE(f.IsSatisfiable());
  EXPECT_TRUE(f.Eval({0, 0}));
}

// ---------------------------------------------------------------------
// Theorem 1: set-disjointness gadget.
// ---------------------------------------------------------------------
TEST(DisjointnessGadgetTest, IntersectingSetsAreSafe) {
  DisjointnessGadget g = MakeDisjointnessGadget(6, {0, 2, 4}, {1, 2, 5});
  // A ∩ B = {2} ≠ ∅ → the view is 2-private.
  const Module& m = *g.module;
  EXPECT_TRUE(IsStandaloneSafe(g.relation, m.inputs(), m.outputs(), g.view, 2));
}

TEST(DisjointnessGadgetTest, DisjointSetsAreUnsafe) {
  DisjointnessGadget g = MakeDisjointnessGadget(6, {0, 2, 4}, {1, 3, 5});
  const Module& m = *g.module;
  EXPECT_FALSE(
      IsStandaloneSafe(g.relation, m.inputs(), m.outputs(), g.view, 2));
  EXPECT_EQ(MaxStandaloneGamma(g.relation, m.inputs(), m.outputs(), g.view),
            1);
}

TEST(DisjointnessGadgetTest, EquivalenceOverRandomSets) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int universe = 8;
    std::vector<int> a, b;
    for (int i = 0; i < universe; ++i) {
      if (rng.NextBernoulli(0.4)) a.push_back(i);
      if (rng.NextBernoulli(0.4)) b.push_back(i);
    }
    bool intersect = false;
    for (int i : a) {
      if (std::find(b.begin(), b.end(), i) != b.end()) intersect = true;
    }
    DisjointnessGadget g = MakeDisjointnessGadget(universe, a, b);
    const Module& m = *g.module;
    EXPECT_EQ(
        IsStandaloneSafe(g.relation, m.inputs(), m.outputs(), g.view, 2),
        intersect)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Theorem 2: UNSAT gadget.
// ---------------------------------------------------------------------
TEST(UnsatGadgetTest, UnsatisfiableMeansSafe) {
  CnfFormula f;  // x0 ∧ ¬x0 ∧ (x1 ∨ x1)
  f.num_vars = 2;
  f.clauses = {{1}, {-1}, {2}};
  ASSERT_FALSE(f.IsSatisfiable());
  UnsatGadget g = MakeUnsatGadget(f);
  EXPECT_TRUE(IsStandaloneSafe(*g.module, g.view, 2));
}

TEST(UnsatGadgetTest, SatisfiableMeansUnsafe) {
  CnfFormula f;  // (x0 ∨ x1)
  f.num_vars = 2;
  f.clauses = {{1, 2}};
  ASSERT_TRUE(f.IsSatisfiable());
  UnsatGadget g = MakeUnsatGadget(f);
  EXPECT_FALSE(IsStandaloneSafe(*g.module, g.view, 2));
}

TEST(UnsatGadgetTest, EquivalenceOverRandomFormulas) {
  Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    CnfFormula f;
    f.num_vars = 4;
    const int num_clauses = 2 + static_cast<int>(rng.NextBelow(8));
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      int width = 1 + static_cast<int>(rng.NextBelow(3));
      for (int v : rng.SampleWithoutReplacement(f.num_vars, width)) {
        clause.push_back(rng.NextBernoulli(0.5) ? (v + 1) : -(v + 1));
      }
      f.clauses.push_back(std::move(clause));
    }
    UnsatGadget g = MakeUnsatGadget(f);
    EXPECT_EQ(IsStandaloneSafe(*g.module, g.view, 2), !f.IsSatisfiable())
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Theorem 3: the adversary pair m1 / m2 and properties (P1)/(P2).
// ---------------------------------------------------------------------
class AdversaryPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ℓ = 8, A = {0, 1, 2, 3}.
    pair_ = MakeAdversaryPair(8, {0, 1, 2, 3});
  }
  AdversaryPair pair_;
};

TEST_F(AdversaryPairTest, FunctionsDifferOnlyInsideA) {
  // m1 and m2 agree whenever some 1 lies outside A; they differ exactly on
  // inputs with >= 2 ones all inside A.
  MixedRadixCounter counter(std::vector<int>(8, 2));
  int differing = 0;
  do {
    Tuple x = counter.values();
    Tuple o1 = pair_.m1->Eval(x);
    Tuple o2 = pair_.m2->Eval(x);
    int ones = 0, inside = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      ones += x[i];
      if (x[i] != 0 && i < 4) ++inside;
    }
    if (ones >= 2 && inside == ones) {
      EXPECT_EQ(o1[0], 1);
      EXPECT_EQ(o2[0], 0);
      ++differing;
    } else {
      EXPECT_EQ(o1, o2);
    }
  } while (counter.Advance());
  // C(4,2)+C(4,3)+C(4,4) = 6+4+1 inputs with >=2 ones, all inside A.
  EXPECT_EQ(differing, 11);
}

TEST_F(AdversaryPairTest, PropertyP1SmallVisibleSetsSafeForBoth) {
  // (P1): every visible input set with |V| < ℓ/4 = 2 is safe.
  for (const Bitset64& combo : SubsetsOfSize(8, 1)) {
    std::vector<int> visible = combo.ToVector();
    EXPECT_TRUE(AdversaryVisibleInputsSafe(*pair_.m1, visible));
    EXPECT_TRUE(AdversaryVisibleInputsSafe(*pair_.m2, visible));
  }
  EXPECT_TRUE(AdversaryVisibleInputsSafe(*pair_.m1, {}));
  EXPECT_TRUE(AdversaryVisibleInputsSafe(*pair_.m2, {}));
}

TEST_F(AdversaryPairTest, PropertyP2LargeVisibleSetsUnsafeForM1) {
  // (P2) for m1: every visible input set with |V| >= ℓ/4 = 2 is unsafe.
  for (int size = 2; size <= 4; ++size) {
    for (const Bitset64& combo : SubsetsOfSize(8, size)) {
      EXPECT_FALSE(AdversaryVisibleInputsSafe(*pair_.m1, combo.ToVector()))
          << combo.ToString();
    }
  }
}

TEST_F(AdversaryPairTest, M2SafeExactlyOnSubsetsOfA) {
  // For m2, a visible set of size >= 2 is safe iff it is a subset of A —
  // the exponentially-hidden needle of the Theorem-3 adversary argument.
  Bitset64 a_set = Bitset64::Of(8, pair_.special_set);
  for (int size = 2; size <= 4; ++size) {
    for (const Bitset64& combo : SubsetsOfSize(8, size)) {
      bool safe = AdversaryVisibleInputsSafe(*pair_.m2, combo.ToVector());
      EXPECT_EQ(safe, combo.IsSubsetOf(a_set)) << combo.ToString();
    }
  }
}

TEST_F(AdversaryPairTest, FullSpecialSetIsSafeForM2) {
  EXPECT_TRUE(AdversaryVisibleInputsSafe(*pair_.m2, pair_.special_set));
  EXPECT_FALSE(AdversaryVisibleInputsSafe(*pair_.m1, pair_.special_set));
}

}  // namespace
}  // namespace provview
