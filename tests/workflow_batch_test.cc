// Batch certification driver: CertifyWorkflowBatch must agree with the
// one-at-a-time CertifyWorkflowPrivacy / GroundTruthWorkflowGamma paths
// while actually sharing work (memo hits across requests), at any thread
// count.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "generators/families.h"
#include "generators/random_workflow.h"
#include "privacy/workflow_privacy.h"

namespace provview {
namespace {

// Every subset of the workflow's used attributes as a hidden-set request.
std::vector<WorkflowCertificationRequest> AllSubsetRequests(
    const Workflow& workflow, int64_t gamma) {
  const int universe = workflow.catalog()->size();
  std::vector<int> used = workflow.used_attrs().ToVector();
  std::vector<WorkflowCertificationRequest> requests;
  for (uint64_t mask = 0; mask < (uint64_t{1} << used.size()); ++mask) {
    Bitset64 hidden(universe);
    for (size_t b = 0; b < used.size(); ++b) {
      if ((mask >> b) & 1u) hidden.Set(used[b]);
    }
    requests.push_back(WorkflowCertificationRequest{hidden, gamma});
  }
  return requests;
}

TEST(WorkflowBatchTest, MatchesPerRequestCertification) {
  Rng rng(7);
  RandomWorkflowOptions options;
  options.num_modules = 3;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  WorkflowBatchResult batch = CertifyWorkflowBatch(*g.workflow, requests);
  ASSERT_EQ(batch.entries.size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    PrivacyCertificate single = CertifyWorkflowPrivacy(
        *g.workflow, requests[r].hidden, requests[r].gamma);
    const PrivacyCertificate& batched = batch.entries[r].certificate;
    EXPECT_EQ(single.certified, batched.certified) << "request " << r;
    EXPECT_EQ(single.module_gammas, batched.module_gammas) << "request " << r;
    EXPECT_EQ(single.required_privatizations,
              batched.required_privatizations)
        << "request " << r;
  }
}

TEST(WorkflowBatchTest, SharesVerdictsAcrossRequests) {
  Rng rng(11);
  RandomWorkflowOptions options;
  options.num_modules = 2;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  WorkflowBatchResult batch = CertifyWorkflowBatch(*g.workflow, requests);
  // Each request touches every private module once; without sharing that
  // would be |requests| × |private| checker calls. Hidden sets differing
  // only outside a module's attributes (and projection-equal ones) must
  // answer from the memo.
  const int64_t lookups = batch.stats.checker_calls + batch.stats.cache_hits;
  EXPECT_EQ(lookups,
            static_cast<int64_t>(requests.size() *
                                 g.workflow->PrivateModuleIndices().size()));
  EXPECT_GT(batch.stats.cache_hits, 0);
  EXPECT_LT(batch.stats.checker_calls, lookups / 2);
  EXPECT_GT(batch.stats.HitRate(), 0.5);
}

TEST(WorkflowBatchTest, ThreadCountsAgree) {
  Rng rng(13);
  RandomWorkflowOptions options;
  options.num_modules = 4;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  WorkflowBatchOptions sequential;
  sequential.num_threads = 1;
  WorkflowBatchOptions parallel;
  parallel.num_threads = 4;
  WorkflowBatchResult a =
      CertifyWorkflowBatch(*g.workflow, requests, sequential);
  WorkflowBatchResult b = CertifyWorkflowBatch(*g.workflow, requests, parallel);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t r = 0; r < a.entries.size(); ++r) {
    EXPECT_EQ(a.entries[r].certificate.certified,
              b.entries[r].certificate.certified);
    EXPECT_EQ(a.entries[r].certificate.module_gammas,
              b.entries[r].certificate.module_gammas);
  }
  EXPECT_EQ(a.stats.checker_calls, b.stats.checker_calls);
}

TEST(WorkflowBatchTest, GroundTruthMatchesSingleCalls) {
  Rng rng(19);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  const Module& priv = chain.workflow->module(chain.bijection_index);
  Bitset64 input_hidden(chain.catalog->size());
  for (AttrId id : priv.inputs()) input_hidden.Set(id);
  Bitset64 nothing_hidden(chain.catalog->size());

  std::vector<WorkflowCertificationRequest> requests = {
      {input_hidden, 4}, {input_hidden, 1}, {nothing_hidden, 2}};
  WorkflowBatchOptions opts;
  opts.with_ground_truth = true;
  opts.visible_public_modules = {chain.constant_index};
  WorkflowBatchResult batch =
      CertifyWorkflowBatch(*chain.workflow, requests, opts);
  ASSERT_EQ(batch.entries.size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    const int64_t truth = GroundTruthWorkflowGamma(
        *chain.workflow, requests[r].hidden, {chain.constant_index});
    EXPECT_EQ(batch.entries[r].ground_truth_private,
              truth >= requests[r].gamma)
        << "request " << r;
  }
  // Example 7's point: standalone-certified but not workflow-private while
  // the public constant stays visible.
  EXPECT_TRUE(batch.entries[0].certificate.certified);
  EXPECT_FALSE(batch.entries[0].ground_truth_private);
}

}  // namespace
}  // namespace provview
