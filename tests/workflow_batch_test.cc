// Batch certification driver: CertifyWorkflowBatch must agree with the
// one-at-a-time CertifyWorkflowPrivacy / GroundTruthWorkflowGamma paths
// while actually sharing work (memo hits across requests), at any thread
// count.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "generators/families.h"
#include "generators/random_workflow.h"
#include "privacy/workflow_privacy.h"

namespace provview {
namespace {

// Every subset of the workflow's used attributes as a hidden-set request.
std::vector<WorkflowCertificationRequest> AllSubsetRequests(
    const Workflow& workflow, int64_t gamma) {
  const int universe = workflow.catalog()->size();
  std::vector<int> used = workflow.used_attrs().ToVector();
  std::vector<WorkflowCertificationRequest> requests;
  for (uint64_t mask = 0; mask < (uint64_t{1} << used.size()); ++mask) {
    Bitset64 hidden(universe);
    for (size_t b = 0; b < used.size(); ++b) {
      if ((mask >> b) & 1u) hidden.Set(used[b]);
    }
    requests.push_back(WorkflowCertificationRequest{hidden, gamma});
  }
  return requests;
}

TEST(WorkflowBatchTest, MatchesPerRequestCertification) {
  Rng rng(7);
  RandomWorkflowOptions options;
  options.num_modules = 3;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  WorkflowBatchResult batch = CertifyWorkflowBatch(*g.workflow, requests);
  ASSERT_EQ(batch.entries.size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    PrivacyCertificate single = CertifyWorkflowPrivacy(
        *g.workflow, requests[r].hidden, requests[r].gamma);
    const PrivacyCertificate& batched = batch.entries[r].certificate;
    EXPECT_EQ(single.certified, batched.certified) << "request " << r;
    EXPECT_EQ(single.module_gammas, batched.module_gammas) << "request " << r;
    EXPECT_EQ(single.required_privatizations,
              batched.required_privatizations)
        << "request " << r;
  }
}

TEST(WorkflowBatchTest, SharesVerdictsAcrossRequests) {
  Rng rng(11);
  RandomWorkflowOptions options;
  options.num_modules = 2;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  WorkflowBatchResult batch = CertifyWorkflowBatch(*g.workflow, requests);
  // Each request touches every private module once; without sharing that
  // would be |requests| × |private| checker calls. Hidden sets differing
  // only outside a module's attributes (and projection-equal ones) must
  // answer from the memo.
  const int64_t lookups = batch.stats.checker_calls + batch.stats.cache_hits;
  EXPECT_EQ(lookups,
            static_cast<int64_t>(requests.size() *
                                 g.workflow->PrivateModuleIndices().size()));
  EXPECT_GT(batch.stats.cache_hits, 0);
  EXPECT_LT(batch.stats.checker_calls, lookups / 2);
  EXPECT_GT(batch.stats.HitRate(), 0.5);
}

TEST(WorkflowBatchTest, ThreadCountsAgree) {
  Rng rng(13);
  RandomWorkflowOptions options;
  options.num_modules = 4;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  WorkflowBatchOptions sequential;
  sequential.num_threads = 1;
  WorkflowBatchOptions parallel;
  parallel.num_threads = 4;
  WorkflowBatchResult a =
      CertifyWorkflowBatch(*g.workflow, requests, sequential);
  WorkflowBatchResult b = CertifyWorkflowBatch(*g.workflow, requests, parallel);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t r = 0; r < a.entries.size(); ++r) {
    EXPECT_EQ(a.entries[r].certificate.certified,
              b.entries[r].certificate.certified);
    EXPECT_EQ(a.entries[r].certificate.module_gammas,
              b.entries[r].certificate.module_gammas);
  }
  EXPECT_EQ(a.stats.checker_calls, b.stats.checker_calls);
}

TEST(WorkflowBatchTest, TaskGraphOnOffFieldIdentical) {
  // Randomized on/off equivalence: the task-graph driver (per-module request
  // chains + per-request verdict tasks + overlapped ground truth) must be
  // field-identical to the historical fork-join driver — entries AND stats —
  // at every thread count.
  for (uint64_t seed : {uint64_t{13}, uint64_t{101}, uint64_t{977}}) {
    Rng rng(seed);
    RandomWorkflowOptions options;
    options.num_modules = 4;
    options.max_inputs = 2;
    options.max_outputs = 1;
    GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
    std::vector<WorkflowCertificationRequest> requests =
        AllSubsetRequests(*g.workflow, 2);

    for (int threads : {1, 2, 4}) {
      WorkflowBatchOptions on, off;
      on.num_threads = threads;
      on.use_task_graph = true;
      on.with_ground_truth = true;
      off = on;
      off.use_task_graph = false;
      WorkflowBatchResult a = CertifyWorkflowBatch(*g.workflow, requests, on);
      WorkflowBatchResult b = CertifyWorkflowBatch(*g.workflow, requests, off);
      ASSERT_TRUE(a.status.ok()) << a.status.ToString();
      ASSERT_TRUE(b.status.ok()) << b.status.ToString();
      ASSERT_EQ(a.entries.size(), b.entries.size());
      for (size_t r = 0; r < a.entries.size(); ++r) {
        EXPECT_EQ(a.entries[r].certificate.certified,
                  b.entries[r].certificate.certified)
            << "seed " << seed << " threads " << threads << " request " << r;
        EXPECT_EQ(a.entries[r].certificate.module_gammas,
                  b.entries[r].certificate.module_gammas);
        EXPECT_EQ(a.entries[r].certificate.required_privatizations,
                  b.entries[r].certificate.required_privatizations);
        EXPECT_EQ(a.entries[r].ground_truth_private,
                  b.entries[r].ground_truth_private);
      }
      EXPECT_EQ(a.stats.checker_calls, b.stats.checker_calls)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(WorkflowBatchTest, TaskGraphSharesBankAcrossBatches) {
  // The memo bank carries verdicts across task-graph batches exactly as it
  // does across fork-join batches: a second identical batch answers fully
  // from the memo in both modes.
  Rng rng(29);
  RandomWorkflowOptions options;
  options.num_modules = 3;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  std::vector<WorkflowCertificationRequest> requests =
      AllSubsetRequests(*g.workflow, 2);

  for (bool use_graph : {true, false}) {
    WorkflowCacheNamespace bank(*g.workflow);
    WorkflowBatchOptions opts;
    opts.num_threads = 2;
    opts.use_task_graph = use_graph;
    WorkflowBatchResult first =
        CertifyWorkflowBatch(*g.workflow, requests, opts, &bank);
    WorkflowBatchResult second =
        CertifyWorkflowBatch(*g.workflow, requests, opts, &bank);
    ASSERT_TRUE(first.status.ok());
    ASSERT_TRUE(second.status.ok());
    EXPECT_GT(first.stats.checker_calls, 0) << "use_task_graph " << use_graph;
    EXPECT_EQ(second.stats.checker_calls, 0) << "use_task_graph " << use_graph;
    EXPECT_GT(second.stats.cache_hits, 0) << "use_task_graph " << use_graph;
    for (size_t r = 0; r < requests.size(); ++r) {
      EXPECT_EQ(first.entries[r].certificate.certified,
                second.entries[r].certificate.certified);
    }
  }
}

TEST(WorkflowBatchTest, GroundTruthMatchesSingleCalls) {
  Rng rng(19);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  const Module& priv = chain.workflow->module(chain.bijection_index);
  Bitset64 input_hidden(chain.catalog->size());
  for (AttrId id : priv.inputs()) input_hidden.Set(id);
  Bitset64 nothing_hidden(chain.catalog->size());

  std::vector<WorkflowCertificationRequest> requests = {
      {input_hidden, 4}, {input_hidden, 1}, {nothing_hidden, 2}};
  WorkflowBatchOptions opts;
  opts.with_ground_truth = true;
  opts.visible_public_modules = {chain.constant_index};
  WorkflowBatchResult batch =
      CertifyWorkflowBatch(*chain.workflow, requests, opts);
  ASSERT_EQ(batch.entries.size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    const int64_t truth = GroundTruthWorkflowGamma(
        *chain.workflow, requests[r].hidden, {chain.constant_index});
    EXPECT_EQ(batch.entries[r].ground_truth_private,
              truth >= requests[r].gamma)
        << "request " << r;
  }
  // Example 7's point: standalone-certified but not workflow-private while
  // the public constant stays visible.
  EXPECT_TRUE(batch.entries[0].certificate.certified);
  EXPECT_FALSE(batch.entries[0].ground_truth_private);
}

}  // namespace
}  // namespace provview
