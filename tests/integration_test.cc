// End-to-end integration sweeps: random executable workflows through the
// complete pipeline — requirement derivation, every solver, Theorem-4/8
// certification, ground-truth world enumeration (where feasible), the
// Lemma-1 flip construction, and the published ProvenanceView.
#include <gtest/gtest.h>

#include "generators/random_workflow.h"
#include "privacy/flip_world.h"
#include "privacy/standalone_privacy.h"
#include "privacy/workflow_privacy.h"
#include "secureview/feasibility.h"
#include "secureview/from_workflow.h"
#include "secureview/provenance_view.h"
#include "secureview/solvers.h"

namespace provview {
namespace {

struct PipelineCase {
  int seed;
  ConstraintKind kind;
  double public_fraction;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, FullPipelineConsistent) {
  const PipelineCase& pc = GetParam();
  Rng rng(static_cast<uint64_t>(pc.seed) * 131 + 7);
  RandomWorkflowOptions opt;
  opt.num_modules = 5;
  opt.max_inputs = 2;
  opt.max_outputs = 2;
  opt.public_fraction = pc.public_fraction;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  Workflow& w = *gen.workflow;
  if (w.PrivateModuleIndices().empty()) GTEST_SKIP();

  const int64_t gamma = 2;
  SecureViewInstance inst = InstanceFromWorkflow(w, gamma, pc.kind);

  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  SvResult greedy = SolveGreedyPerModule(inst);
  SvResult coverage = SolveGreedyCoverage(inst);
  RoundingOptions ro;
  ro.seed = static_cast<uint64_t>(pc.seed);
  SvResult rounding = SolveByLpRounding(inst, ro);
  ASSERT_TRUE(rounding.status.ok());

  for (const SvResult* r : {&exact, &greedy, &coverage, &rounding}) {
    EXPECT_TRUE(IsFeasible(inst, r->solution));
    EXPECT_TRUE(VerifySolutionSemantics(w, r->solution, gamma));
    EXPECT_GE(r->cost, exact.cost - 1e-6);
  }

  // Published view: consistent costs and column counts.
  ProvenanceView view(&w, exact.solution);
  EXPECT_DOUBLE_EQ(view.LostUtility(), exact.solution.AttrCost(inst));
  Relation published = view.Materialize();
  EXPECT_EQ(published.schema().arity(),
            static_cast<int>(view.VisibleAttrs().size()));
  // The published view never exposes a hidden attribute.
  for (AttrId id : published.schema().attrs()) {
    EXPECT_TRUE(view.IsVisible(id));
  }
}

std::vector<PipelineCase> MakePipelineCases() {
  std::vector<PipelineCase> cases;
  for (int seed = 0; seed < 4; ++seed) {
    cases.push_back({seed, ConstraintKind::kSet, 0.0});
    cases.push_back({seed, ConstraintKind::kCardinality, 0.0});
    cases.push_back({seed, ConstraintKind::kSet, 0.4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomWorkflows, PipelineTest,
                         ::testing::ValuesIn(MakePipelineCases()));

// Lemma 1 as a property over random all-private workflows: every candidate
// output that the counting semantics admits for a target module has a flip
// workflow realizing it as a genuine possible world.
class FlipPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlipPropertyTest, EveryOutHasFlipWitness) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 29);
  RandomWorkflowOptions opt;
  opt.num_modules = 3;
  opt.max_inputs = 2;
  opt.max_outputs = 2;
  GeneratedWorkflow gen = MakeRandomWorkflow(opt, &rng);
  Workflow& w = *gen.workflow;
  Relation original = w.ProvenanceRelation();

  // Target a rotating module; hide one of its attributes.
  const int target_index = GetParam() % w.num_modules();
  const Module& target = w.module(target_index);
  Relation rel = target.FullRelation();
  std::vector<AttrId> pq_attrs = target.inputs();
  pq_attrs.insert(pq_attrs.end(), target.outputs().begin(),
                  target.outputs().end());
  Bitset64 hidden(w.catalog()->size());
  hidden.Set(target.outputs()[0]);
  if (target.num_inputs() > 0) hidden.Set(target.inputs()[0]);
  Bitset64 visible = hidden.Complement();

  for (const Tuple& row : rel.SortedDistinctRows()) {
    Tuple x = rel.ProjectRow(row, target.inputs());
    for (const Tuple& y :
         OutSet(rel, target.inputs(), target.outputs(), visible, x)) {
      bool witnessed = false;
      for (const Tuple& wrow : rel.SortedDistinctRows()) {
        Tuple xp = rel.ProjectRow(wrow, target.inputs());
        Tuple yp = rel.ProjectRow(wrow, target.outputs());
        Tuple p = x;
        p.insert(p.end(), y.begin(), y.end());
        Tuple q = xp;
        q.insert(q.end(), yp.begin(), yp.end());
        // Lemma 2 witness requires visible agreement between p and q.
        bool agrees = true;
        for (size_t i = 0; i < pq_attrs.size(); ++i) {
          if (visible.Test(pq_attrs[i]) && p[i] != q[i]) {
            agrees = false;
            break;
          }
        }
        if (!agrees) continue;
        WorkflowPtr flipped = BuildFlipWorkflow(w, pq_attrs, p, q);
        if (flipped->module(target_index).Eval(x) != y) continue;
        Relation world = flipped->ProvenanceRelation();
        if (original.ProjectSet(visible).EqualsAsSet(
                world.ProjectSet(visible))) {
          witnessed = true;
          break;
        }
      }
      EXPECT_TRUE(witnessed) << "missing flip witness (module "
                             << target.name() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace provview
