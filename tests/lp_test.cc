#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace provview {
namespace {

TEST(SimplexTest, TrivialTwoVariableLp) {
  // min x + y  s.t.  x + 2y >= 4, 3x + y >= 6, x,y >= 0.
  // Optimum at intersection: x = 8/5, y = 6/5, objective 14/5.
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  int y = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 2.0}}, ConstraintSense::kGe, 4.0);
  lp.AddConstraint({{x, 3.0}, {y, 1.0}}, ConstraintSense::kGe, 6.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok()) << s.status;
  EXPECT_NEAR(s.objective, 14.0 / 5.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<size_t>(x)], 1.6, 1e-7);
  EXPECT_NEAR(s.x[static_cast<size_t>(y)], 1.2, 1e-7);
  EXPECT_LT(lp.MaxViolation(s.x), 1e-7);
}

TEST(SimplexTest, MaximizationViaNegatedCosts) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ⇔  min -3x - 2y.
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, -3.0);
  int y = lp.AddVariable(0, LinearProgram::kInf, -2.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kLe, 4.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLe, 2.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, -10.0, 1e-7);  // x=2, y=2
}

TEST(SimplexTest, EqualityConstraints) {
  // min 2x + 3y s.t. x + y = 5, x - y = 1 → x=3, y=2, obj 12.
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 2.0);
  int y = lp.AddVariable(0, LinearProgram::kInf, 3.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kEq, 5.0);
  lp.AddConstraint({{x, 1.0}, {y, -1.0}}, ConstraintSense::kEq, 1.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<size_t>(x)], 3.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasibility) {
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLe, 1.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGe, 2.0);
  EXPECT_EQ(SolveLp(lp).status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, -1.0);  // maximize x
  lp.AddConstraint({{x, -1.0}}, ConstraintSense::kLe, 0.0);
  EXPECT_EQ(SolveLp(lp).status.code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, RespectsUpperBounds) {
  // min -x with x in [0, 3].
  LinearProgram lp;
  int x = lp.AddVariable(0, 3.0, -1.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[static_cast<size_t>(x)], 3.0, 1e-7);
}

TEST(SimplexTest, RespectsNonZeroLowerBounds) {
  // min x + y with x in [2, 10], y in [1, 10], x + y >= 5.
  LinearProgram lp;
  int x = lp.AddVariable(2.0, 10.0, 1.0);
  int y = lp.AddVariable(1.0, 10.0, 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, ConstraintSense::kGe, 5.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
  EXPECT_GE(s.x[static_cast<size_t>(x)], 2.0 - 1e-9);
  EXPECT_GE(s.x[static_cast<size_t>(y)], 1.0 - 1e-9);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // x - y <= -1 with min x (x,y in [0,5]): x can be 0 with y >= 1.
  LinearProgram lp;
  int x = lp.AddVariable(0, 5.0, 1.0);
  int y = lp.AddVariable(0, 5.0, 0.0);
  lp.AddConstraint({{x, 1.0}, {y, -1.0}}, ConstraintSense::kLe, -1.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.objective, 0.0, 1e-7);
  EXPECT_GE(s.x[static_cast<size_t>(y)], 1.0 - 1e-7);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Multiple redundant constraints through the same vertex.
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  int y = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  for (int i = 0; i < 6; ++i) {
    lp.AddConstraint({{x, 1.0 + i}, {y, 1.0}}, ConstraintSense::kGe, 1.0);
  }
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_LT(lp.MaxViolation(s.x), 1e-7);
}

TEST(SimplexTest, DuplicateTermsAccumulate) {
  // x appearing twice in a constraint: 2x >= 4 effectively.
  LinearProgram lp;
  int x = lp.AddVariable(0, LinearProgram::kInf, 1.0);
  lp.AddConstraint({{x, 1.0}, {x, 1.0}}, ConstraintSense::kGe, 4.0);
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok());
  EXPECT_NEAR(s.x[static_cast<size_t>(x)], 2.0, 1e-7);
}

TEST(SimplexTest, ObjectiveAndViolationHelpers) {
  LinearProgram lp;
  int x = lp.AddVariable(0, 1.0, 2.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kGe, 0.5);
  EXPECT_DOUBLE_EQ(lp.Objective({0.5}), 1.0);
  EXPECT_NEAR(lp.MaxViolation({0.25}), 0.25, 1e-12);
  EXPECT_NEAR(lp.MaxViolation({2.0}), 1.0, 1e-12);  // ub violated by 1
}

// Random LPs: simplex solutions must always be feasible, and adding a
// redundant constraint must not change the optimum.
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, FeasibleAndStableUnderRedundancy) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 997 + 3);
  LinearProgram lp;
  const int n = 4 + static_cast<int>(rng.NextBelow(5));
  for (int v = 0; v < n; ++v) {
    lp.AddVariable(0.0, 1.0, 0.5 + rng.NextDouble() * 4.0);
  }
  const int m = 3 + static_cast<int>(rng.NextBelow(6));
  for (int c = 0; c < m; ++c) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      if (rng.NextBernoulli(0.6)) {
        terms.emplace_back(v, 0.5 + rng.NextDouble());
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    // rhs small enough to keep the instance feasible under x <= 1.
    lp.AddConstraint(terms, ConstraintSense::kGe,
                     0.3 * static_cast<double>(terms.size()) * 0.5);
  }
  LpSolution s = SolveLp(lp);
  ASSERT_TRUE(s.status.ok()) << s.status;
  EXPECT_LT(lp.MaxViolation(s.x), 1e-6);
  // A dominated constraint must not move the optimum.
  lp.AddConstraint({{0, 1.0}}, ConstraintSense::kGe, -1.0);
  LpSolution s2 = SolveLp(lp);
  ASSERT_TRUE(s2.status.ok());
  EXPECT_NEAR(s.objective, s2.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace provview
