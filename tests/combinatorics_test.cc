#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/combinatorics.h"

namespace provview {
namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

TEST(SaturatingPowTest, SmallValues) {
  EXPECT_EQ(SaturatingPow(2, 10), 1024);
  EXPECT_EQ(SaturatingPow(3, 0), 1);
  EXPECT_EQ(SaturatingPow(0, 5), 0);
  EXPECT_EQ(SaturatingPow(1, 1000), 1);
}

TEST(SaturatingPowTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(SaturatingPow(2, 63), kMax);
  EXPECT_EQ(SaturatingPow(10, 40), kMax);
}

TEST(SaturatingProductTest, Basic) {
  EXPECT_EQ(SaturatingProduct({2, 3, 4}), 24);
  EXPECT_EQ(SaturatingProduct({}), 1);
  EXPECT_EQ(SaturatingProduct({5, 0, 7}), 0);
  EXPECT_EQ(SaturatingProduct({int64_t{1} << 40, int64_t{1} << 40}), kMax);
}

TEST(BinomialTest, KnownValues) {
  EXPECT_EQ(BinomialCoefficient(5, 2), 10);
  EXPECT_EQ(BinomialCoefficient(10, 0), 1);
  EXPECT_EQ(BinomialCoefficient(10, 10), 1);
  EXPECT_EQ(BinomialCoefficient(10, 11), 0);
  EXPECT_EQ(BinomialCoefficient(10, -1), 0);
  EXPECT_EQ(BinomialCoefficient(52, 5), 2598960);
}

TEST(MixedRadixCounterTest, EnumeratesWholeSpace) {
  MixedRadixCounter c({2, 3, 2});
  EXPECT_EQ(c.Cardinality(), 12);
  std::set<std::vector<int32_t>> seen;
  do {
    seen.insert(c.values());
  } while (c.Advance());
  EXPECT_EQ(seen.size(), 12u);
}

TEST(MixedRadixCounterTest, ResetRestarts) {
  MixedRadixCounter c({3});
  c.Advance();
  EXPECT_EQ(c.values()[0], 1);
  c.Reset();
  EXPECT_EQ(c.values()[0], 0);
}

TEST(MixedRadixCounterTest, EmptyRadicesSingleTuple) {
  MixedRadixCounter c({});
  EXPECT_EQ(c.Cardinality(), 1);
  EXPECT_FALSE(c.Advance());
}

TEST(MixedRadixCounterTest, UnitRadixDegenerate) {
  MixedRadixCounter c({1, 1});
  EXPECT_EQ(c.Cardinality(), 1);
  EXPECT_FALSE(c.Advance());
}

TEST(ForEachSubsetTest, CountsPowerSet) {
  int count = 0;
  ForEachSubset(5, [&](const Bitset64&) { ++count; });
  EXPECT_EQ(count, 32);
}

TEST(ForEachSubsetTest, AllSubsetsDistinct) {
  std::set<std::vector<int>> seen;
  ForEachSubset(6, [&](const Bitset64& s) { seen.insert(s.ToVector()); });
  EXPECT_EQ(seen.size(), 64u);
}

TEST(ForEachSubsetOfTest, RespectsUniverse) {
  Bitset64 universe = Bitset64::Of(10, {2, 5, 9});
  int count = 0;
  ForEachSubsetOf(universe, [&](const Bitset64& s) {
    EXPECT_TRUE(s.IsSubsetOf(universe));
    ++count;
  });
  EXPECT_EQ(count, 8);
}

TEST(SubsetsOfSizeTest, CountsMatchBinomial) {
  for (int n = 0; n <= 8; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(static_cast<int64_t>(SubsetsOfSize(n, k).size()),
                BinomialCoefficient(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(SubsetsOfSizeTest, EachSubsetHasRightSize) {
  for (const Bitset64& s : SubsetsOfSize(7, 3)) EXPECT_EQ(s.count(), 3);
}

TEST(SubsetsOfSizeTest, OutOfRangeEmpty) {
  EXPECT_TRUE(SubsetsOfSize(3, 4).empty());
  EXPECT_TRUE(SubsetsOfSize(3, -1).empty());
}

TEST(MixedRadixCodecTest, RoundTripsAllTuples) {
  std::vector<int> radices = {3, 2, 4};
  MixedRadixCounter c(radices);
  std::set<int64_t> codes;
  do {
    int64_t code = EncodeMixedRadix(c.values(), radices);
    EXPECT_GE(code, 0);
    EXPECT_LT(code, 24);
    codes.insert(code);
    EXPECT_EQ(DecodeMixedRadix(code, radices), c.values());
  } while (c.Advance());
  EXPECT_EQ(codes.size(), 24u);
}

TEST(MixedRadixCodecTest, LittleEndianConvention) {
  // t[0] is least significant.
  EXPECT_EQ(EncodeMixedRadix({1, 0}, {2, 3}), 1);
  EXPECT_EQ(EncodeMixedRadix({0, 1}, {2, 3}), 2);
  EXPECT_EQ(EncodeMixedRadix({1, 2}, {2, 3}), 5);
}

TEST(SubsetsOfSizeTest, RangeEnumerationMatchesMaterializedOrder) {
  for (int n : {5, 8, 12}) {
    for (int k = 0; k <= n; ++k) {
      const std::vector<Bitset64> all = SubsetsOfSize(n, k);
      const int64_t total = BinomialCoefficient(n, k);
      ASSERT_EQ(static_cast<int64_t>(all.size()), total);
      // Full range reproduces the materialized walk.
      std::vector<Bitset64> walked;
      ForEachSubsetOfSizeRange(n, k, 0, total,
                               [&](const Bitset64& s) { walked.push_back(s); });
      EXPECT_EQ(walked, all) << "n=" << n << " k=" << k;
      // Arbitrary contiguous shards partition the level exactly.
      std::vector<Bitset64> sharded;
      const int64_t cut1 = total / 3, cut2 = (2 * total) / 3;
      for (auto [b, e] : {std::pair<int64_t, int64_t>{0, cut1},
                          {cut1, cut2},
                          {cut2, total}}) {
        ForEachSubsetOfSizeRange(
            n, k, b, e, [&](const Bitset64& s) { sharded.push_back(s); });
      }
      EXPECT_EQ(sharded, all) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace provview
