// VerdictCache invariants: measured-byte budget enforcement, first-wins
// inserts, per-class accounting — and the contract the memo layer builds
// on: eviction only FORGETS verdicts. A memo over a byte-starved cache
// must produce field-identical results to one over an unbounded cache and
// to the cache-less baseline, and the shards must survive concurrent
// hammering from many threads while never exceeding the budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "generators/random_workflow.h"
#include "module/module_library.h"
#include "privacy/safe_subset_search.h"
#include "privacy/safety_memo.h"
#include "privacy/verdict_cache.h"
#include "privacy/workflow_privacy.h"

namespace provview {
namespace {

std::string Key(uint64_t i) {
  return "key-" + std::to_string(i * 0x9e3779b97f4a7c15ull);
}

// Deterministic per-key verdict so any cache hit can be validated.
int64_t GammaOf(uint64_t i) { return static_cast<int64_t>(i % 97) + 1; }

TEST(VerdictCacheTest, InsertAndLookupAcrossNamespacesAndClasses) {
  VerdictCache cache;
  const uint32_t ns_a = cache.RegisterNamespace("a");
  const uint32_t ns_b = cache.RegisterNamespace("b");
  ASSERT_NE(ns_a, ns_b);

  EXPECT_TRUE(cache.Insert(ns_a, VerdictKeyClass::kSignature, "k", 7));
  int64_t gamma = 0;
  EXPECT_TRUE(cache.Lookup(ns_a, VerdictKeyClass::kSignature, "k", &gamma));
  EXPECT_EQ(gamma, 7);
  // Same key bytes, different namespace or class: distinct entries.
  EXPECT_FALSE(cache.Lookup(ns_b, VerdictKeyClass::kSignature, "k", &gamma));
  EXPECT_FALSE(cache.Lookup(ns_a, VerdictKeyClass::kProjection, "k", &gamma));
  EXPECT_TRUE(cache.Insert(ns_a, VerdictKeyClass::kProjection, "k", 9));
  EXPECT_TRUE(cache.Lookup(ns_a, VerdictKeyClass::kProjection, "k", &gamma));
  EXPECT_EQ(gamma, 9);
  EXPECT_EQ(cache.Stats().namespaces, 2);
}

TEST(VerdictCacheTest, FirstInsertWins) {
  // Verdicts are pure functions of their key: a second insert of the same
  // key is a no-op, never an overwrite.
  VerdictCache cache;
  const uint32_t ns = cache.RegisterNamespace("memo");
  EXPECT_TRUE(cache.Insert(ns, VerdictKeyClass::kSignature, "k", 3));
  EXPECT_FALSE(cache.Insert(ns, VerdictKeyClass::kSignature, "k", 5));
  int64_t gamma = 0;
  ASSERT_TRUE(cache.Lookup(ns, VerdictKeyClass::kSignature, "k", &gamma));
  EXPECT_EQ(gamma, 3);
}

TEST(VerdictCacheTest, PerClassStatsTally) {
  VerdictCache cache;
  const uint32_t ns = cache.RegisterNamespace("memo");
  int64_t gamma = 0;
  cache.Lookup(ns, VerdictKeyClass::kSignature, "s", &gamma);  // miss
  cache.Insert(ns, VerdictKeyClass::kSignature, "s", 2);
  cache.Lookup(ns, VerdictKeyClass::kSignature, "s", &gamma);  // hit
  cache.Insert(ns, VerdictKeyClass::kProjection, "p", 4);

  const VerdictCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.signature.misses, 1);
  EXPECT_EQ(stats.signature.hits, 1);
  EXPECT_EQ(stats.signature.inserts, 1);
  EXPECT_EQ(stats.signature.entries, 1);
  EXPECT_EQ(stats.projection.inserts, 1);
  EXPECT_EQ(stats.projection.entries, 1);
  // Measured accounting: entries charge real bytes, and the split adds up.
  EXPECT_GT(stats.signature.bytes, 0);
  EXPECT_GT(stats.projection.bytes, 0);
  EXPECT_GE(stats.bytes_in_use, stats.signature.bytes);
  EXPECT_GE(stats.peak_bytes, stats.bytes_in_use);
  EXPECT_FALSE(cache.bounded());
}

TEST(VerdictCacheTest, UnboundedCacheNeverEvicts) {
  VerdictCache cache;
  const uint32_t ns = cache.RegisterNamespace("memo");
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.Insert(ns, VerdictKeyClass::kSignature, Key(i), GammaOf(i));
  }
  int64_t gamma = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        cache.Lookup(ns, VerdictKeyClass::kSignature, Key(i), &gamma));
    EXPECT_EQ(gamma, GammaOf(i));
  }
  const VerdictCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.signature.evictions, 0);
  EXPECT_EQ(stats.signature.entries, 1000);
}

TEST(VerdictCacheTest, MeasuredBytesNeverExceedBudget) {
  VerdictCacheConfig config;
  config.byte_budget = 8192;
  config.num_shards = 2;
  VerdictCache cache(config);
  ASSERT_TRUE(cache.bounded());
  const uint32_t ns = cache.RegisterNamespace("memo");
  for (uint64_t i = 0; i < 2000; ++i) {
    cache.Insert(ns, VerdictKeyClass::kSignature, Key(i), GammaOf(i));
    ASSERT_LE(cache.bytes_in_use(), config.byte_budget) << "after insert "
                                                        << i;
  }
  const VerdictCacheStats stats = cache.Stats();
  EXPECT_GT(stats.signature.evictions, 0);
  EXPECT_LT(stats.signature.entries, 2000);
  // Whatever survived is still correct — eviction only forgets.
  int64_t gamma = 0;
  int64_t survivors = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    if (cache.Lookup(ns, VerdictKeyClass::kSignature, Key(i), &gamma)) {
      ++survivors;
      ASSERT_EQ(gamma, GammaOf(i)) << "key " << i;
    }
  }
  EXPECT_GT(survivors, 0);
}

TEST(VerdictCacheTest, RepeatedHitsSurviveScanEviction) {
  // Segmented LRU: a hot key promoted to the protected segment outlives a
  // one-pass scan of cold keys through probation.
  VerdictCacheConfig config;
  config.byte_budget = 4096;
  config.num_shards = 1;
  VerdictCache cache(config);
  const uint32_t ns = cache.RegisterNamespace("memo");
  cache.Insert(ns, VerdictKeyClass::kSignature, "hot", 42);
  int64_t gamma = 0;
  ASSERT_TRUE(cache.Lookup(ns, VerdictKeyClass::kSignature, "hot", &gamma));
  for (uint64_t i = 0; i < 500; ++i) {
    cache.Insert(ns, VerdictKeyClass::kSignature, Key(i), GammaOf(i));
  }
  ASSERT_GT(cache.Stats().signature.evictions, 0);
  ASSERT_TRUE(cache.Lookup(ns, VerdictKeyClass::kSignature, "hot", &gamma));
  EXPECT_EQ(gamma, 42);
}

// ----------------------------------------------------------------------
// Randomized eviction-equivalence: for random modules, the subset search
// over (a) the cache-less private-memo baseline, (b) a shared unbounded
// cache, and (c) a byte-starved cache must return identical minimal sets —
// and (b) must match (a)'s SafeSearchStats field for field, since an
// unbounded cache can never forget. (c) may re-run the checker (forgotten
// verdicts) but never changes a verdict.
// ----------------------------------------------------------------------
TEST(VerdictCacheEquivalenceTest, EvictionOnlyForgetsNeverCorrupts) {
  for (uint64_t seed : {uint64_t{11}, uint64_t{223}, uint64_t{4099}}) {
    Rng rng(seed);
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    for (int i = 0; i < 4; ++i) {
      in.push_back(catalog->Add("i" + std::to_string(i)));
    }
    for (int o = 0; o < 3; ++o) {
      out.push_back(catalog->Add("o" + std::to_string(o)));
    }
    ModulePtr m = MakeRandomFunction("f", catalog, in, out, &rng);
    const int universe = catalog->size();
    const int64_t gamma = 2 + static_cast<int64_t>(rng.NextBelow(4));

    for (int threads : {1, 4}) {
      SubsetSearchOptions opts;
      opts.num_threads = threads;
      opts.min_parallel_subsets = 0;

      SafetyMemo baseline(*m);
      SafeSearchStats base_stats;
      std::vector<Bitset64> want = MinimalSafeHiddenSets(
          &baseline, m->inputs(), m->outputs(), universe, gamma, &base_stats,
          opts);

      auto unbounded = std::make_shared<VerdictCache>();
      SafetyMemo shared_memo(*m, Module::kDefaultMaterializeRows, unbounded,
                             unbounded->RegisterNamespace("m"));
      SafeSearchStats shared_stats;
      std::vector<Bitset64> got_shared = MinimalSafeHiddenSets(
          &shared_memo, m->inputs(), m->outputs(), universe, gamma,
          &shared_stats, opts);

      VerdictCacheConfig tiny_config;
      tiny_config.byte_budget = 2048;
      tiny_config.num_shards = 1;
      auto tiny = std::make_shared<VerdictCache>(tiny_config);
      SafetyMemo tiny_memo(*m, Module::kDefaultMaterializeRows, tiny,
                           tiny->RegisterNamespace("m"));
      SafeSearchStats tiny_stats;
      std::vector<Bitset64> got_tiny = MinimalSafeHiddenSets(
          &tiny_memo, m->inputs(), m->outputs(), universe, gamma,
          &tiny_stats, opts);

      EXPECT_EQ(got_shared, want) << "seed " << seed << " threads "
                                  << threads;
      EXPECT_EQ(got_tiny, want) << "seed " << seed << " threads " << threads;
      // Unbounded cache = the exact historical memo, stats and all.
      EXPECT_EQ(shared_stats.subsets_examined, base_stats.subsets_examined);
      EXPECT_EQ(shared_stats.checker_calls, base_stats.checker_calls)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(shared_stats.cache_hits, base_stats.cache_hits);
      EXPECT_EQ(shared_stats.signature_hits, base_stats.signature_hits);
      EXPECT_EQ(shared_stats.projection_hits, base_stats.projection_hits);
      // A starved cache can only trade hits for checker re-runs.
      EXPECT_EQ(tiny_stats.subsets_examined, base_stats.subsets_examined);
      EXPECT_GE(tiny_stats.checker_calls, base_stats.checker_calls);
      EXPECT_LE(tiny_memo.cache()->bytes_in_use(), tiny_config.byte_budget);
    }
  }
}

TEST(VerdictCacheEquivalenceTest, RandomProbesAgreeUnderAnyBudget) {
  // Direct MaxGamma probes (no search structure): every budget answers
  // every probe with the same Γ.
  for (uint64_t seed : {uint64_t{3}, uint64_t{777}}) {
    Rng rng(seed);
    auto catalog = std::make_shared<AttributeCatalog>();
    std::vector<AttrId> in, out;
    for (int i = 0; i < 3; ++i) {
      in.push_back(catalog->Add("i" + std::to_string(i)));
    }
    for (int o = 0; o < 3; ++o) {
      out.push_back(catalog->Add("o" + std::to_string(o)));
    }
    ModulePtr m = MakeRandomFunction("f", catalog, in, out, &rng);

    SafetyMemo baseline(*m);
    VerdictCacheConfig tiny_config;
    tiny_config.byte_budget = 2048;
    tiny_config.num_shards = 1;
    auto tiny = std::make_shared<VerdictCache>(tiny_config);
    SafetyMemo tiny_memo(*m, Module::kDefaultMaterializeRows, tiny,
                         tiny->RegisterNamespace("m"));

    for (int probe = 0; probe < 200; ++probe) {
      Bitset64 hidden(catalog->size());
      for (AttrId a : m->AttrSet().ToVector()) {
        if (rng.NextBernoulli(0.5)) hidden.Set(a);
      }
      SafeSearchStats s1, s2;
      EXPECT_EQ(baseline.MaxGamma(hidden, &s1),
                tiny_memo.MaxGamma(hidden, &s2))
          << "seed " << seed << " probe " << probe;
    }
    EXPECT_LE(tiny->bytes_in_use(), tiny_config.byte_budget);
  }
}

// ----------------------------------------------------------------------
// Concurrent hammer: many threads, one byte-starved cache. Run under TSan
// in CI. Correctness bar: no data race, every observed verdict matches the
// key's deterministic value, and the measured bytes settle under budget.
// ----------------------------------------------------------------------
TEST(VerdictCacheHammerTest, ConcurrentInsertLookupUnderTinyBudget) {
  VerdictCacheConfig config;
  config.byte_budget = 16384;
  config.num_shards = 4;
  VerdictCache cache(config);
  const uint32_t ns = cache.RegisterNamespace("hammer");

  const int kThreads = 8;
  const int kOps = 4000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0xabcdef12u + static_cast<uint64_t>(t));
      for (int op = 0; op < kOps; ++op) {
        const uint64_t i = rng.NextBelow(512);
        const VerdictKeyClass klass = (i & 1) != 0
                                          ? VerdictKeyClass::kProjection
                                          : VerdictKeyClass::kSignature;
        int64_t gamma = 0;
        if (cache.Lookup(ns, klass, Key(i), &gamma)) {
          // A hit must carry the key's one true verdict.
          ASSERT_EQ(gamma, GammaOf(i)) << "thread " << t << " op " << op;
        } else {
          cache.Insert(ns, klass, Key(i), GammaOf(i));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_LE(cache.bytes_in_use(), config.byte_budget);
  const VerdictCacheStats stats = cache.Stats();
  EXPECT_GT(stats.signature.hits + stats.projection.hits, 0);
  EXPECT_GT(stats.signature.evictions + stats.projection.evictions, 0);
}

TEST(VerdictCacheHammerTest, ConcurrentBatchesShareBudgetedCache) {
  // Daemon shape: concurrent CertifyWorkflowBatch calls against ONE
  // workflow's namespaces in a byte-budgeted shared cache, racing the
  // evictor. Every thread must reproduce the cache-less reference batch.
  Rng rng(97);
  RandomWorkflowOptions options;
  options.num_modules = 3;
  options.max_inputs = 2;
  options.max_outputs = 1;
  GeneratedWorkflow g = MakeRandomWorkflow(options, &rng);
  const int universe = g.workflow->catalog()->size();
  std::vector<int> used = g.workflow->used_attrs().ToVector();
  std::vector<WorkflowCertificationRequest> requests;
  for (uint64_t mask = 0; mask < (uint64_t{1} << used.size()); ++mask) {
    Bitset64 hidden(universe);
    for (size_t b = 0; b < used.size(); ++b) {
      if ((mask >> b) & 1u) hidden.Set(used[b]);
    }
    requests.push_back(WorkflowCertificationRequest{hidden, 2});
  }

  WorkflowBatchOptions opts;
  opts.num_threads = 2;
  const WorkflowBatchResult want =
      CertifyWorkflowBatch(*g.workflow, requests, opts);
  ASSERT_TRUE(want.status.ok());

  VerdictCacheConfig config;
  config.byte_budget = 8192;
  config.num_shards = 2;
  auto cache = std::make_shared<VerdictCache>(config);
  WorkflowCacheNamespace verdicts(*g.workflow, cache);

  const int kThreads = 4;
  std::vector<WorkflowBatchResult> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      results[t] = CertifyWorkflowBatch(*g.workflow, requests, opts,
                                        &verdicts);
    });
  }
  for (std::thread& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].status.ok()) << "thread " << t;
    ASSERT_EQ(results[t].entries.size(), want.entries.size());
    for (size_t r = 0; r < want.entries.size(); ++r) {
      EXPECT_EQ(results[t].entries[r].certificate.certified,
                want.entries[r].certificate.certified)
          << "thread " << t << " request " << r;
      EXPECT_EQ(results[t].entries[r].certificate.module_gammas,
                want.entries[r].certificate.module_gammas)
          << "thread " << t << " request " << r;
    }
  }
  EXPECT_LE(cache->bytes_in_use(), config.byte_budget);
}

}  // namespace
}  // namespace provview
