#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace provview {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::NotFound("").code(),
      Status::OutOfRange("").code(),       Status::FailedPrecondition("").code(),
      Status::Unimplemented("").code(),    Status::ResourceExhausted("").code(),
      Status::Internal("").code(),         Status::Infeasible("").code(),
      Status::Unbounded("").code(),        Status::Timeout("").code()};
  EXPECT_EQ(codes.size(), 10u);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream oss;
  oss << Status::Infeasible("no solution");
  EXPECT_EQ(oss.str(), "Infeasible: no solution");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughOnSuccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextBelowHitsEveryResidue) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> sample = rng.SampleWithoutReplacement(10, 4);
    ASSERT_EQ(sample.size(), 4u);
    for (size_t i = 1; i < sample.size(); ++i) {
      EXPECT_LT(sample[i - 1], sample[i]);
    }
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(RngTest, RandomPermutationIsPermutation) {
  Rng rng(31);
  std::vector<int> perm = rng.RandomPermutation(20);
  std::set<int> elems(perm.begin(), perm.end());
  EXPECT_EQ(elems.size(), 20u);
  EXPECT_EQ(*elems.begin(), 0);
  EXPECT_EQ(*elems.rbegin(), 19);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.NewRow().AddCell("alpha").AddCell(int64_t{12});
  t.NewRow().AddCell("b").AddCell(3.14159, 2);
  std::ostringstream oss;
  t.Print(oss);
  std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, BannerContainsTitle) {
  std::ostringstream oss;
  PrintBanner("Experiment E1", oss);
  EXPECT_NE(oss.str().find("Experiment E1"), std::string::npos);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace provview
