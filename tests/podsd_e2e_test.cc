// End-to-end fault-injection suite for podsd (the ISSUE acceptance bar):
// several concurrent connections fire a randomized mix of valid, malformed,
// oversized, and deadline-doomed requests at one daemon. Valid responses
// must be byte-identical to what a direct CertifyWorkflowBatch call
// produces, bad requests must come back as typed errors, and at the end the
// daemon must still answer and shut down cleanly. Runs under ASan/UBSan and
// TSan in CI — a data race in the connection fan-out or the shared memo
// bank fails here.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "privacy/workflow_privacy.h"
#include "secureview/serialization.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "workflow/fig1_workflow.h"

namespace provview {
namespace {

constexpr int kNumAttrs = 5;
constexpr uint32_t kNumMasks = 1u << kNumAttrs;

// Ground truth the daemon must reproduce byte-for-byte: one direct batch
// over every subset of fig1's {a3..a7}, gamma 2. MakeFig1Workflow is
// deterministic, so this workflow is identical to the daemon's "fig1".
std::vector<CertifyEntry> DirectVerdicts(const Fig1Workflow& fig1,
                                         const int* attrs) {
  std::vector<WorkflowCertificationRequest> requests;
  for (uint32_t mask = 0; mask < kNumMasks; ++mask) {
    Bitset64 hidden(fig1.catalog->size());
    for (int b = 0; b < kNumAttrs; ++b) {
      if ((mask >> b) & 1u) hidden.Set(attrs[b]);
    }
    requests.push_back(WorkflowCertificationRequest{hidden, 2});
  }
  WorkflowBatchOptions opts;
  opts.num_threads = 1;
  const WorkflowBatchResult direct =
      CertifyWorkflowBatch(*fig1.workflow, requests, opts);
  EXPECT_TRUE(direct.status.ok());
  std::vector<CertifyEntry> expected(kNumMasks);
  for (uint32_t mask = 0; mask < kNumMasks; ++mask) {
    expected[mask].certified = direct.entries[mask].certificate.certified;
    expected[mask].module_gammas =
        direct.entries[mask].certificate.module_gammas;
    for (int m : direct.entries[mask].certificate.required_privatizations) {
      expected[mask].required_privatizations.push_back(
          static_cast<uint32_t>(m));
    }
  }
  return expected;
}

CertifyItem ItemForMask(uint32_t mask, const int* attrs) {
  CertifyItem item;
  item.gamma = 2;
  for (int b = 0; b < kNumAttrs; ++b) {
    if ((mask >> b) & 1u) {
      item.hidden_attrs.push_back(static_cast<uint32_t>(attrs[b]));
    }
  }
  return item;
}

// One fault-injection worker: its own connection, its own RNG stream, a
// randomized request mix. Reconnects whenever it deliberately burned the
// connection (bad framing closes it by design).
void FaultWorker(uint16_t port, uint64_t seed,
                 const std::vector<CertifyEntry>& expected, const int* attrs,
                 int iterations) {
  Rng rng(seed);
  PodsClient client;
  ASSERT_TRUE(client.Connect(port).ok());

  for (int i = 0; i < iterations; ++i) {
    switch (rng.NextBelow(8)) {
      case 0:   // ping
        EXPECT_TRUE(client.Ping().ok());
        break;
      case 1: {  // valid single certify, verdict must match direct engine
        const uint32_t mask = static_cast<uint32_t>(rng.NextBelow(kNumMasks));
        CertifyRequest req;
        req.workflow = "fig1";
        req.items.push_back(ItemForMask(mask, attrs));
        CertifyResponse resp;
        ASSERT_TRUE(client.Certify(req, /*batch=*/false, &resp).ok());
        ASSERT_EQ(resp.entries.size(), 1u);
        EXPECT_EQ(resp.entries[0].certified, expected[mask].certified);
        EXPECT_EQ(resp.entries[0].module_gammas,
                  expected[mask].module_gammas);
        EXPECT_EQ(resp.entries[0].required_privatizations,
                  expected[mask].required_privatizations);
        break;
      }
      case 2: {  // valid batch certify over random masks
        CertifyRequest req;
        req.workflow = "fig1";
        std::vector<uint32_t> masks;
        const int count = 1 + static_cast<int>(rng.NextBelow(4));
        for (int k = 0; k < count; ++k) {
          masks.push_back(static_cast<uint32_t>(rng.NextBelow(kNumMasks)));
          req.items.push_back(ItemForMask(masks.back(), attrs));
        }
        CertifyResponse resp;
        ASSERT_TRUE(client.Certify(req, /*batch=*/true, &resp).ok());
        ASSERT_EQ(resp.entries.size(), masks.size());
        for (size_t k = 0; k < masks.size(); ++k) {
          EXPECT_EQ(resp.entries[k].certified, expected[masks[k]].certified);
          EXPECT_EQ(resp.entries[k].module_gammas,
                    expected[masks[k]].module_gammas);
        }
        break;
      }
      case 3: {  // malformed certify body: typed error, connection lives
        const std::string garbage(1 + rng.NextBelow(64), '\xEE');
        std::string payload;
        const Status s = client.RoundTrip(
            BuildRequestFrame(MessageType::kCertify,
                              static_cast<uint32_t>(i), garbage),
            &payload);
        EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
        break;
      }
      case 4: {  // unknown workflow: NOT_FOUND, connection lives
        CertifyRequest req;
        req.workflow = "no-such-workflow";
        req.items.push_back(CertifyItem{1, {}});
        CertifyResponse resp;
        EXPECT_EQ(client.Certify(req, /*batch=*/false, &resp).code(),
                  StatusCode::kNotFound);
        break;
      }
      case 5: {  // deadline-doomed: OK or DEADLINE_EXCEEDED, never worse
        CertifyRequest req;
        req.workflow = "fig1";
        req.deadline_ms = 1;
        for (uint32_t mask = 0; mask < kNumMasks; ++mask) {
          req.items.push_back(ItemForMask(mask, attrs));
        }
        CertifyResponse resp;
        const Status s = client.Certify(req, /*batch=*/true, &resp);
        EXPECT_TRUE(s.ok() || s.code() == StatusCode::kDeadlineExceeded)
            << s.message();
        break;
      }
      case 6: {  // oversized body_len: error response, daemon hangs up
        FrameHeader h;
        h.type = static_cast<uint16_t>(MessageType::kCertifyBatch);
        h.body_len = kMaxBodyLen + 1 + static_cast<uint32_t>(rng.NextBelow(1000));
        std::string frame;
        EncodeFrameHeader(h, &frame);
        std::string payload;
        const Status s = client.RoundTrip(frame, &payload);
        EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
        client.Close();
        ASSERT_TRUE(client.Connect(port).ok());
        break;
      }
      default: {  // corrupted magic: error response, daemon hangs up
        std::string frame = BuildRequestFrame(MessageType::kPing,
                                              static_cast<uint32_t>(i));
        frame[rng.NextBelow(4)] ^= static_cast<char>(1u << rng.NextBelow(8));
        std::string payload;
        const Status s = client.RoundTrip(frame, &payload);
        EXPECT_FALSE(s.ok());
        client.Close();
        ASSERT_TRUE(client.Connect(port).ok());
        break;
      }
    }
  }
}

TEST(PodsdE2eTest, ConcurrentFaultInjection) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  const std::vector<CertifyEntry> expected = DirectVerdicts(fig1, attrs);

  constexpr int kWorkers = 6;  // acceptance floor is 4 concurrent conns
  constexpr int kIterations = 40;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back(FaultWorker, daemon.port(),
                         0x9E3779B97F4A7C15ull + w, std::cref(expected),
                         attrs, kIterations);
  }
  for (std::thread& t : workers) t.join();

  // The daemon took every punch and still answers.
  PodsClient survivor;
  ASSERT_TRUE(survivor.Connect(daemon.port()).ok());
  EXPECT_TRUE(survivor.Ping().ok());
  StatSnapshot stats;
  ASSERT_TRUE(survivor.Stat(&stats).ok());
  const auto counter = [&](std::string_view key) -> uint64_t {
    for (const auto& [k, v] : stats) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing stat " << key;
    return 0;
  };
  EXPECT_GT(counter("requests_total"), 0u);
  EXPECT_GT(counter("requests_ok"), 0u);
  EXPECT_GT(counter("invalid_requests"), 0u);
  EXPECT_GT(counter("rejected_frames"), 0u);
  EXPECT_GT(counter("memo_checker_calls") + counter("memo_cache_hits"), 0u);

  daemon.Stop();
}

TEST(PodsdE2eTest, StopSeversIdleConnectionsCleanly) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  auto daemon = std::make_unique<PodsDaemon>(&registry);
  ASSERT_TRUE(daemon->Start().ok());

  // Park several idle connections mid-stream, then shut down: Stop must
  // unblock their reads, join every thread, and return promptly.
  std::vector<std::unique_ptr<PodsClient>> idle;
  for (int i = 0; i < 4; ++i) {
    idle.push_back(std::make_unique<PodsClient>());
    ASSERT_TRUE(idle.back()->Connect(daemon->port()).ok());
    ASSERT_TRUE(idle.back()->Ping().ok());
  }
  daemon->Stop();

  // Severed: the next read on every parked connection fails instead of
  // hanging.
  for (auto& client : idle) {
    FrameHeader header;
    std::string body;
    EXPECT_FALSE(client->RecvResponse(&header, &body).ok());
  }

  // Stop is idempotent; destruction after Stop is clean.
  daemon->Stop();
  daemon.reset();
}

TEST(PodsdE2eTest, TaskGraphDaemonMatchesBarrierDaemon) {
  // Two daemons over the same builtin workflow, one with the shared
  // task-graph executor forced on (engine_threads=2 so it exists even on a
  // single-core host), one with it off: every certify response must be
  // identical, and both must match the direct engine.
  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  const std::vector<CertifyEntry> expected = DirectVerdicts(fig1, attrs);

  PodsDaemon::Options on_opts;
  on_opts.use_task_graph = true;
  on_opts.engine_threads = 2;
  PodsDaemon::Options off_opts;
  off_opts.use_task_graph = false;

  WorkflowRegistry on_registry, off_registry;
  on_registry.RegisterBuiltins();
  off_registry.RegisterBuiltins();
  PodsDaemon on_daemon(&on_registry, on_opts);
  PodsDaemon off_daemon(&off_registry, off_opts);
  ASSERT_TRUE(on_daemon.Start().ok());
  ASSERT_TRUE(off_daemon.Start().ok());

  PodsClient on_client, off_client;
  ASSERT_TRUE(on_client.Connect(on_daemon.port()).ok());
  ASSERT_TRUE(off_client.Connect(off_daemon.port()).ok());
  for (uint32_t mask = 0; mask < kNumMasks; ++mask) {
    CertifyRequest req;
    req.workflow = "fig1";
    req.items.push_back(ItemForMask(mask, attrs));
    CertifyResponse on_resp, off_resp;
    ASSERT_TRUE(on_client.Certify(req, /*batch=*/false, &on_resp).ok());
    ASSERT_TRUE(off_client.Certify(req, /*batch=*/false, &off_resp).ok());
    ASSERT_EQ(on_resp.entries.size(), 1u);
    ASSERT_EQ(off_resp.entries.size(), 1u);
    EXPECT_EQ(on_resp.entries[0].certified, expected[mask].certified);
    EXPECT_EQ(off_resp.entries[0].certified, expected[mask].certified);
    EXPECT_EQ(on_resp.entries[0].module_gammas, off_resp.entries[0].module_gammas);
    EXPECT_EQ(on_resp.entries[0].required_privatizations,
              off_resp.entries[0].required_privatizations);
  }

  on_daemon.Stop();
  off_daemon.Stop();
}

TEST(PodsdE2eTest, AdmissionGateRejectsWhenFull) {
  // max_pending=0 means the gate can never admit a certify (each request
  // costs items+1 units): the daemon must answer RESOURCE_EXHAUSTED with the
  // connection still alive, and pings must keep working — saturation is a
  // typed backpressure signal, not a dropped connection.
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon::Options opts;
  opts.use_task_graph = true;
  opts.engine_threads = 2;
  opts.max_pending = 0;
  PodsDaemon daemon(&registry, opts);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  CertifyRequest req;
  req.workflow = "fig1";
  req.items.push_back(ItemForMask(0b101, attrs));
  CertifyResponse resp;
  const Status s = client.Certify(req, /*batch=*/false, &resp);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.message();

  // The rejection did not burn the connection and the ticket (never issued)
  // did not wedge the gate bookkeeping.
  EXPECT_TRUE(client.Ping().ok());
  const Status again = client.Certify(req, /*batch=*/false, &resp);
  EXPECT_EQ(again.code(), StatusCode::kResourceExhausted);

  daemon.Stop();
}

TEST(PodsdE2eTest, MemoBankSharesVerdictsAcrossConnections) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  CertifyRequest req;
  req.workflow = "fig1";
  req.items.push_back(ItemForMask(0b10110, attrs));

  PodsClient first;
  ASSERT_TRUE(first.Connect(daemon.port()).ok());
  CertifyResponse cold;
  ASSERT_TRUE(first.Certify(req, /*batch=*/false, &cold).ok());
  EXPECT_GT(cold.checker_calls, 0u);

  // A DIFFERENT connection asking the same question answers from the
  // shared WorkflowCacheNamespace: zero fresh checker calls.
  PodsClient second;
  ASSERT_TRUE(second.Connect(daemon.port()).ok());
  CertifyResponse warm;
  ASSERT_TRUE(second.Certify(req, /*batch=*/false, &warm).ok());
  EXPECT_EQ(warm.checker_calls, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.entries[0].certified, cold.entries[0].certified);
  EXPECT_EQ(warm.entries[0].module_gammas, cold.entries[0].module_gammas);

  daemon.Stop();
}

TEST(PodsdE2eTest, BudgetedCacheServesConcurrentConnections) {
  // The daemon under a hard verdict-cache budget (podsd --cache-bytes):
  // concurrent connections hammer randomized hidden sets, racing insert
  // against eviction. Every verdict must match the direct engine, and the
  // measured cache bytes must settle under the budget — eviction only
  // forgets, memory never grows unbounded.
  VerdictCacheConfig config;
  config.byte_budget = 16384;
  config.num_shards = 2;
  WorkflowRegistry registry(config);
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  const std::vector<CertifyEntry> expected = DirectVerdicts(fig1, attrs);

  const int kClients = 4;
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x63616368u + static_cast<uint64_t>(t));
      PodsClient client;
      ASSERT_TRUE(client.Connect(daemon.port()).ok());
      for (int i = 0; i < 200; ++i) {
        const uint32_t mask = static_cast<uint32_t>(rng.NextBelow(kNumMasks));
        CertifyRequest req;
        req.workflow = "fig1";
        req.items.push_back(ItemForMask(mask, attrs));
        CertifyResponse resp;
        ASSERT_TRUE(client.Certify(req, /*batch=*/false, &resp).ok());
        ASSERT_EQ(resp.entries.size(), 1u);
        EXPECT_EQ(resp.entries[0].certified, expected[mask].certified);
        EXPECT_EQ(resp.entries[0].module_gammas,
                  expected[mask].module_gammas);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_LE(registry.verdict_cache()->bytes_in_use(), config.byte_budget);

  // STAT carries the versioned cache section after the historical keys, so
  // name-keyed parsers (podsctl) keep working and new tooling sees the
  // budget at work over the wire.
  PodsClient probe;
  ASSERT_TRUE(probe.Connect(daemon.port()).ok());
  StatSnapshot stats;
  ASSERT_TRUE(probe.Stat(&stats).ok());
  const auto counter = [&](std::string_view key) -> uint64_t {
    for (const auto& [k, v] : stats) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing stat " << key;
    return 0;
  };
  EXPECT_GT(counter("requests_total"), 0u);  // historical section intact
  EXPECT_EQ(counter("stat_version"), 3u);
  EXPECT_EQ(counter("verdict_cache_byte_budget"),
            static_cast<uint64_t>(config.byte_budget));
  EXPECT_LE(counter("verdict_cache_bytes"),
            static_cast<uint64_t>(config.byte_budget));
  EXPECT_GT(counter("verdict_cache_signature_hits") +
                counter("verdict_cache_projection_hits"),
            0u);

  daemon.Stop();
}

TEST(PodsdE2eTest, RegisteredWorkflowMatchesBuiltinVerdicts) {
  // The ISSUE acceptance bar for wire registration: serialize the builtin
  // fig1, REGISTER it under a new name over the wire, and certify every
  // hidden subset against BOTH names — all response fields must be
  // identical, and both must match the direct engine. A workflow that
  // traveled as bytes is indistinguishable from one compiled in.
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  const std::vector<CertifyEntry> expected = DirectVerdicts(fig1, attrs);

  std::string bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());

  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  RegisterResponse reg;
  ASSERT_TRUE(client.Register("fig1-wire", bytes, &reg).ok());
  EXPECT_EQ(reg.num_attrs,
            static_cast<uint32_t>(fig1.workflow->num_attrs()));
  EXPECT_EQ(reg.num_modules,
            static_cast<uint32_t>(fig1.workflow->num_modules()));
  EXPECT_EQ(reg.num_private_modules,
            fig1.workflow->PrivateModuleIndices().size());

  // Duplicate names are a typed rejection, not a silent replace.
  EXPECT_EQ(client.Register("fig1-wire", bytes).code(),
            StatusCode::kInvalidArgument);

  for (uint32_t mask = 0; mask < kNumMasks; ++mask) {
    CertifyRequest builtin_req, wire_req;
    builtin_req.workflow = "fig1";
    wire_req.workflow = "fig1-wire";
    builtin_req.items.push_back(ItemForMask(mask, attrs));
    wire_req.items.push_back(ItemForMask(mask, attrs));
    CertifyResponse builtin_resp, wire_resp;
    ASSERT_TRUE(
        client.Certify(builtin_req, /*batch=*/false, &builtin_resp).ok());
    ASSERT_TRUE(client.Certify(wire_req, /*batch=*/false, &wire_resp).ok());
    ASSERT_EQ(wire_resp.entries.size(), 1u);
    EXPECT_EQ(wire_resp.entries[0].certified, expected[mask].certified);
    EXPECT_EQ(wire_resp.entries[0].certified,
              builtin_resp.entries[0].certified);
    EXPECT_EQ(wire_resp.entries[0].module_gammas,
              builtin_resp.entries[0].module_gammas);
    EXPECT_EQ(wire_resp.entries[0].required_privatizations,
              builtin_resp.entries[0].required_privatizations);
  }

  // STAT sees the registration: builtins + the wire workflow.
  StatSnapshot stats;
  ASSERT_TRUE(client.Stat(&stats).ok());
  uint64_t registered = 0, register_reqs = 0;
  for (const auto& [k, v] : stats) {
    if (k == "workflows_registered") registered = v;
    if (k == "register_requests") register_reqs = v;
  }
  EXPECT_EQ(registered, registry.size());
  EXPECT_EQ(register_reqs, 2u);  // one accepted, one duplicate-rejected

  daemon.Stop();
}

TEST(PodsdE2eTest, UnregisterDropsWorkflowAndSurvivesInFlightUse) {
  WorkflowRegistry registry;
  registry.RegisterBuiltins();
  PodsDaemon daemon(&registry);
  ASSERT_TRUE(daemon.Start().ok());

  Fig1Workflow fig1 = MakeFig1Workflow();
  const int attrs[] = {fig1.a3, fig1.a4, fig1.a5, fig1.a6, fig1.a7};
  std::string bytes;
  ASSERT_TRUE(SerializeWorkflowBinary(*fig1.workflow, &bytes).ok());

  PodsClient client;
  ASSERT_TRUE(client.Connect(daemon.port()).ok());
  ASSERT_TRUE(client.Register("ephemeral", bytes).ok());

  CertifyRequest req;
  req.workflow = "ephemeral";
  req.items.push_back(ItemForMask(0b01011, attrs));
  CertifyResponse resp;
  ASSERT_TRUE(client.Certify(req, /*batch=*/false, &resp).ok());

  // Certifiers race UNREGISTER from another connection: each request either
  // completes against the entry it found (shared_ptr keeps it alive) or
  // answers NOT_FOUND — never anything worse.
  std::thread hammer([&] {
    PodsClient racer;
    ASSERT_TRUE(racer.Connect(daemon.port()).ok());
    for (int i = 0; i < 50; ++i) {
      CertifyResponse r;
      const Status s = racer.Certify(req, /*batch=*/false, &r);
      EXPECT_TRUE(s.ok() || s.code() == StatusCode::kNotFound)
          << s.message();
    }
  });
  PodsClient dropper;
  ASSERT_TRUE(dropper.Connect(daemon.port()).ok());
  EXPECT_TRUE(dropper.Unregister("ephemeral").ok());
  hammer.join();

  // Gone: certify and re-unregister both answer NOT_FOUND; re-register
  // under the same name works again.
  EXPECT_EQ(client.Certify(req, /*batch=*/false, &resp).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Unregister("ephemeral").code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Register("ephemeral", bytes).ok());

  daemon.Stop();
}

}  // namespace
}  // namespace provview
