// Equivalence suite for the pruned/sharded workflow possible-worlds engine:
// on randomized small workflows the optimized enumerator must return
// byte-identical num_function_choices, num_distinct_relations and out_sets
// to the retained naive joint odometer, with fixed (public) modules, under
// thread sharding, and the Γ short-circuit must agree with the full walk.
#include <gtest/gtest.h>

#include <limits>

#include "common/combinatorics.h"
#include "common/rng.h"
#include "generators/families.h"
#include "generators/random_workflow.h"
#include "module/module_library.h"
#include "privacy/possible_worlds.h"

namespace provview {
namespace {

RandomWorkflowOptions SmallOptions(int num_modules) {
  RandomWorkflowOptions options;
  options.num_modules = num_modules;
  options.min_inputs = 1;
  options.max_inputs = 2;
  options.min_outputs = 1;
  options.max_outputs = 1;
  options.all_boolean = true;
  return options;
}

// A random hidden subset of the workflow's used attributes.
Bitset64 RandomVisible(const Workflow& workflow, Rng* rng, double p_visible) {
  Bitset64 visible(workflow.catalog()->size());
  for (int a = 0; a < workflow.catalog()->size(); ++a) {
    if (rng->NextBernoulli(p_visible)) visible.Set(a);
  }
  return visible;
}

// The naive joint space ∏ |Range_i|^{|Dom_i|} over free modules, so tests
// can skip instances out of the reference implementation's reach.
int64_t NaiveJoint(const Workflow& workflow,
                   const std::vector<int>& fixed_modules) {
  std::vector<bool> fixed(static_cast<size_t>(workflow.num_modules()), false);
  for (int i : fixed_modules) fixed[static_cast<size_t>(i)] = true;
  int64_t joint = 1;
  for (int i = 0; i < workflow.num_modules(); ++i) {
    if (fixed[static_cast<size_t>(i)]) continue;
    const Module& m = workflow.module(i);
    joint = SaturatingMul(joint,
                          SaturatingPow(m.RangeSize(),
                                        static_cast<int>(m.DomainSize())));
  }
  return joint;
}

void ExpectIdentical(const WorkflowWorlds& naive, const WorkflowWorlds& fast,
                     uint64_t seed) {
  EXPECT_EQ(naive.num_function_choices, fast.num_function_choices)
      << "seed " << seed;
  EXPECT_EQ(naive.num_distinct_relations, fast.num_distinct_relations)
      << "seed " << seed;
  ASSERT_EQ(naive.out_sets.size(), fast.out_sets.size()) << "seed " << seed;
  for (size_t i = 0; i < naive.out_sets.size(); ++i) {
    EXPECT_EQ(naive.out_sets[i], fast.out_sets[i])
        << "seed " << seed << " module " << i;
    EXPECT_EQ(naive.MinOutSize(static_cast<int>(i)),
              fast.MinOutSize(static_cast<int>(i)))
        << "seed " << seed << " module " << i;
  }
}

TEST(WorkflowWorldsEquivalenceTest, RandomizedWorkflowsMatchNaive) {
  int checked = 0;
  for (uint64_t seed = 1; seed <= 40 && checked < 20; ++seed) {
    Rng rng(seed * 77 + 3);
    GeneratedWorkflow g =
        MakeRandomWorkflow(SmallOptions(seed % 2 == 0 ? 2 : 3), &rng);
    if (NaiveJoint(*g.workflow, {}) > (1 << 16)) continue;
    Bitset64 visible = RandomVisible(*g.workflow, &rng, 0.5);
    WorkflowWorlds naive =
        EnumerateWorkflowWorldsNaive(*g.workflow, visible, {});
    WorkflowWorlds fast = EnumerateWorkflowWorlds(*g.workflow, visible, {});
    ExpectIdentical(naive, fast, seed);
    EXPECT_LE(fast.pruned_candidates, fast.naive_candidates) << "seed " << seed;
    EXPECT_FALSE(fast.early_stopped);
    ++checked;
  }
  EXPECT_GE(checked, 10);  // the generator must yield enough small instances
}

TEST(WorkflowWorldsEquivalenceTest, FixedModulesMatchNaive) {
  int checked = 0;
  for (uint64_t seed = 100; seed <= 140 && checked < 12; ++seed) {
    Rng rng(seed * 131 + 7);
    GeneratedWorkflow g = MakeRandomWorkflow(SmallOptions(3), &rng);
    // Fix a random module (Definition 4's public-module constraint).
    const int fixed_index =
        static_cast<int>(rng.NextBelow(static_cast<uint64_t>(
            g.workflow->num_modules())));
    g.workflow->mutable_module(fixed_index)->set_public(true);
    if (NaiveJoint(*g.workflow, {fixed_index}) > (1 << 16)) continue;
    Bitset64 visible = RandomVisible(*g.workflow, &rng, 0.5);
    WorkflowWorlds naive = EnumerateWorkflowWorldsNaive(
        *g.workflow, visible, {fixed_index});
    WorkflowWorlds fast =
        EnumerateWorkflowWorlds(*g.workflow, visible, {fixed_index});
    ExpectIdentical(naive, fast, seed);
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

TEST(WorkflowWorldsEquivalenceTest, ParallelShardsMatchSequential) {
  for (uint64_t seed = 200; seed < 210; ++seed) {
    Rng rng(seed * 17 + 1);
    GeneratedWorkflow g = MakeRandomWorkflow(SmallOptions(2), &rng);
    if (NaiveJoint(*g.workflow, {}) > (1 << 16)) continue;
    Bitset64 visible = RandomVisible(*g.workflow, &rng, 0.5);
    WorkflowEnumerationOptions sequential;
    sequential.num_threads = 1;
    WorkflowEnumerationOptions parallel;
    parallel.num_threads = 4;
    parallel.min_parallel_candidates = 0;  // force the pool even when tiny
    WorkflowWorlds a =
        EnumerateWorkflowWorlds(*g.workflow, visible, {}, sequential);
    WorkflowWorlds b =
        EnumerateWorkflowWorlds(*g.workflow, visible, {}, parallel);
    ExpectIdentical(a, b, seed);
  }
}

TEST(WorkflowWorldsEquivalenceTest, SharedTablesMatchFreshTables) {
  Rng rng(42);
  GeneratedWorkflow g = MakeRandomWorkflow(SmallOptions(2), &rng);
  auto tables = BuildWorkflowTables(*g.workflow);
  WorkflowEnumerationOptions opts;
  for (uint64_t seed = 300; seed < 306; ++seed) {
    Rng vis_rng(seed);
    Bitset64 visible = RandomVisible(*g.workflow, &vis_rng, 0.5);
    WorkflowWorlds shared =
        EnumerateWorkflowWorlds(*tables, visible, {}, opts);
    WorkflowWorlds fresh = EnumerateWorkflowWorlds(*g.workflow, visible, {});
    ExpectIdentical(fresh, shared, seed);
  }
}

TEST(WorkflowWorldsEquivalenceTest, GammaShortCircuitAgreesWithFullWalk) {
  for (uint64_t seed = 400; seed < 412; ++seed) {
    Rng rng(seed * 29 + 11);
    GeneratedWorkflow g = MakeRandomWorkflow(SmallOptions(2), &rng);
    if (NaiveJoint(*g.workflow, {}) > (1 << 16)) continue;
    Bitset64 visible = RandomVisible(*g.workflow, &rng, 0.5);
    WorkflowWorlds full = EnumerateWorkflowWorlds(*g.workflow, visible, {});
    int64_t min_out = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < g.workflow->num_modules(); ++i) {
      min_out = std::min(min_out, full.MinOutSize(i));
    }
    for (int64_t gamma : {int64_t{1}, int64_t{2}, int64_t{3}}) {
      WorkflowEnumerationOptions opts;
      opts.gamma = gamma;
      opts.collect_distinct_relations = false;
      WorkflowWorlds early =
          EnumerateWorkflowWorlds(*g.workflow, visible, {}, opts);
      bool early_verdict = early.early_stopped;
      if (!early_verdict) {
        early_verdict = true;
        for (int i = 0; i < g.workflow->num_modules(); ++i) {
          early_verdict = early_verdict && early.MinOutSize(i) >= gamma;
        }
      }
      EXPECT_EQ(min_out >= gamma, early_verdict)
          << "seed " << seed << " gamma " << gamma;
    }
  }
}

// ---------------------------------------------------------------------
// The E-family instances (the bench workloads) pin down the exact shapes
// the speedup claims are made on.
// ---------------------------------------------------------------------

TEST(WorkflowWorldsEquivalenceTest, Prop2ChainMatchesNaive) {
  Prop2Chain chain = MakeProp2Chain(2);
  Bitset64 hidden = Bitset64::Of(6, {2});  // one intermediate bit
  Bitset64 visible = hidden.Complement();
  WorkflowWorlds naive =
      EnumerateWorkflowWorldsNaive(*chain.workflow, visible, {});
  WorkflowWorlds fast = EnumerateWorkflowWorlds(*chain.workflow, visible, {});
  ExpectIdentical(naive, fast, 0);
  // m1 is fed by initial inputs only, so its slots are pruned.
  EXPECT_LT(fast.pruned_candidates, fast.naive_candidates);
}

TEST(WorkflowWorldsEquivalenceTest, Example7FixedConstantPrunesToOriginal) {
  Rng rng(9);
  Example7Chain chain = MakeExample7Chain(2, &rng);
  // Hide the private bijection's inputs; keep the public constant fixed.
  Bitset64 hidden(chain.catalog->size());
  for (AttrId id : chain.workflow->module(chain.bijection_index).inputs()) {
    hidden.Set(id);
  }
  Bitset64 visible = hidden.Complement();
  WorkflowWorlds naive = EnumerateWorkflowWorldsNaive(
      *chain.workflow, visible, {chain.constant_index});
  WorkflowWorlds fast = EnumerateWorkflowWorlds(*chain.workflow, visible,
                                                {chain.constant_index});
  ExpectIdentical(naive, fast, 0);
  // The bijection inherits determined inputs through the fixed constant:
  // only one domain point is ever reached and its visible output is forced,
  // so the walk collapses to a single candidate.
  EXPECT_EQ(fast.pruned_candidates, 1);
  EXPECT_GT(fast.naive_candidates, fast.pruned_candidates);
}

TEST(WorkflowWorldsEquivalenceTest, Example7FreeChainsMatchNaive) {
  Rng rng(13);
  Example7Chain in_chain = MakeExample7Chain(2, &rng);
  Example7OutputChain out_chain = MakeExample7OutputChain(2, &rng);
  for (const Workflow* w :
       {in_chain.workflow.get(), out_chain.workflow.get()}) {
    // Hide the intermediate attributes; both modules free.
    Bitset64 hidden(w->catalog()->size());
    for (AttrId id : w->module(1).inputs()) hidden.Set(id);
    Bitset64 visible = hidden.Complement();
    WorkflowWorlds naive = EnumerateWorkflowWorldsNaive(*w, visible, {});
    WorkflowWorlds fast = EnumerateWorkflowWorlds(*w, visible, {});
    ExpectIdentical(naive, fast, 0);
  }
}

// ---------------------------------------------------------------------
// Deep (>=4-stage) fixtures: the feasible-set fixpoint engine must agree
// with both the naive reference and the determined-input engine
// (use_feasible_sets = false) on the shapes E1f makes its speedup claims on.
// ---------------------------------------------------------------------

namespace {

WorkflowWorlds EnumerateWithFixpoint(const Workflow& w, const Bitset64& visible,
                                     const std::vector<int>& fixed,
                                     bool use_fixpoint) {
  WorkflowEnumerationOptions opts;
  opts.max_candidates = int64_t{1} << 33;
  opts.use_feasible_sets = use_fixpoint;
  return EnumerateWorkflowWorlds(w, visible, fixed, opts);
}

}  // namespace

TEST(WorkflowWorldsEquivalenceTest, DeepChainMatchesNaiveEveryHiddenLayer) {
  // 4-stage one-bit chain (naive joint 4^4 = 256): hide each layer in turn
  // and compare naive vs fixpoint-on vs fixpoint-off.
  for (int hidden_layer = 1; hidden_layer <= 3; ++hidden_layer) {
    Rng rng(static_cast<uint64_t>(hidden_layer) * 19 + 2);
    OneOneChain chain = MakeOneOneChain(4, 1, &rng);
    Bitset64 hidden(chain.catalog->size());
    for (AttrId id : chain.layer_attrs[static_cast<size_t>(hidden_layer)]) {
      hidden.Set(id);
    }
    Bitset64 visible = hidden.Complement();
    WorkflowWorlds naive =
        EnumerateWorkflowWorldsNaive(*chain.workflow, visible, {});
    WorkflowWorlds on =
        EnumerateWithFixpoint(*chain.workflow, visible, {}, true);
    WorkflowWorlds off =
        EnumerateWithFixpoint(*chain.workflow, visible, {}, false);
    ExpectIdentical(naive, on, static_cast<uint64_t>(hidden_layer));
    ExpectIdentical(naive, off, static_cast<uint64_t>(hidden_layer));
    EXPECT_LE(on.pruned_candidates, off.pruned_candidates)
        << "layer " << hidden_layer;
  }
}

TEST(WorkflowWorldsEquivalenceTest, RandomizedDeepChainsOnOffNaive) {
  // Random visible subsets over random 4- and 5-stage one-bit chains.
  int naive_checked = 0;
  for (uint64_t seed = 500; seed < 540; ++seed) {
    Rng rng(seed * 37 + 5);
    OneOneChain chain = MakeOneOneChain(seed % 2 == 0 ? 4 : 5, 1, &rng);
    Bitset64 visible = RandomVisible(*chain.workflow, &rng, 0.5);
    WorkflowWorlds on =
        EnumerateWithFixpoint(*chain.workflow, visible, {}, true);
    WorkflowWorlds off =
        EnumerateWithFixpoint(*chain.workflow, visible, {}, false);
    ExpectIdentical(off, on, seed);
    if (NaiveJoint(*chain.workflow, {}) <= (1 << 16)) {
      WorkflowWorlds naive =
          EnumerateWorkflowWorldsNaive(*chain.workflow, visible, {});
      ExpectIdentical(naive, on, seed);
      ++naive_checked;
    }
  }
  EXPECT_GE(naive_checked, 10);
}

TEST(WorkflowWorldsEquivalenceTest, DiamondWithFixedSourceMatchesNaive) {
  // Diamond with the source public (naive joint 4 * 4 * 256 = 4096), sink
  // outputs hidden.
  Rng rng(77);
  DiamondWorkflow dia = MakeDiamondWorkflow(1, /*with_tail=*/false, &rng);
  dia.workflow->mutable_module(dia.source_index)->set_public(true);
  Bitset64 hidden(dia.catalog->size());
  for (AttrId id : dia.y) hidden.Set(id);
  Bitset64 visible = hidden.Complement();
  WorkflowWorlds naive = EnumerateWorkflowWorldsNaive(
      *dia.workflow, visible, {dia.source_index});
  WorkflowWorlds on = EnumerateWithFixpoint(*dia.workflow, visible,
                                            {dia.source_index}, true);
  WorkflowWorlds off = EnumerateWithFixpoint(*dia.workflow, visible,
                                             {dia.source_index}, false);
  ExpectIdentical(naive, on, 0);
  ExpectIdentical(naive, off, 0);
}

TEST(WorkflowWorldsEquivalenceTest, DiamondWithTailOnVsOff) {
  // The all-free E1f diamond (too large for the naive reference): the
  // fixpoint forces the source and both branches, prunes the sink, and
  // must agree with the determined-input engine exactly — including under
  // thread sharding and the Γ short-circuit verdict.
  Rng rng(78);
  DiamondWorkflow dia = MakeDiamondWorkflow(1, /*with_tail=*/true, &rng);
  Bitset64 hidden(dia.catalog->size());
  for (AttrId id : dia.y) hidden.Set(id);
  Bitset64 visible = hidden.Complement();
  WorkflowWorlds on = EnumerateWithFixpoint(*dia.workflow, visible, {}, true);
  WorkflowWorlds off =
      EnumerateWithFixpoint(*dia.workflow, visible, {}, false);
  ExpectIdentical(off, on, 0);
  EXPECT_LT(on.pruned_candidates, off.pruned_candidates);

  WorkflowEnumerationOptions parallel;
  parallel.max_candidates = int64_t{1} << 33;
  parallel.num_threads = 4;
  parallel.min_parallel_candidates = 0;
  WorkflowWorlds sharded =
      EnumerateWorkflowWorlds(*dia.workflow, visible, {}, parallel);
  ExpectIdentical(on, sharded, 0);

  int64_t min_out = std::numeric_limits<int64_t>::max();
  for (int i = 0; i < dia.workflow->num_modules(); ++i) {
    min_out = std::min(min_out, on.MinOutSize(i));
  }
  for (int64_t gamma : {int64_t{1}, int64_t{2}}) {
    WorkflowEnumerationOptions gopts;
    gopts.max_candidates = int64_t{1} << 33;
    gopts.gamma = gamma;
    gopts.collect_distinct_relations = false;
    WorkflowWorlds early =
        EnumerateWorkflowWorlds(*dia.workflow, visible, {}, gopts);
    bool verdict = early.early_stopped;
    if (!verdict) {
      verdict = true;
      for (int i = 0; i < dia.workflow->num_modules(); ++i) {
        verdict = verdict && early.MinOutSize(i) >= gamma;
      }
    }
    EXPECT_EQ(min_out >= gamma, verdict) << "gamma " << gamma;
  }
}

TEST(WorkflowWorldsEquivalenceTest, AllModulesFixedSingleWorld) {
  Prop2Chain chain = MakeProp2Chain(1);
  Bitset64 visible = Bitset64::Of(3, {0, 2});
  WorkflowWorlds naive =
      EnumerateWorkflowWorldsNaive(*chain.workflow, visible, {0, 1});
  WorkflowWorlds fast =
      EnumerateWorkflowWorlds(*chain.workflow, visible, {0, 1});
  ExpectIdentical(naive, fast, 0);
  EXPECT_EQ(fast.num_function_choices, 1);
  EXPECT_EQ(fast.num_distinct_relations, 1);
}

}  // namespace
}  // namespace provview
