#include <gtest/gtest.h>

#include <cmath>

#include "generators/families.h"
#include "generators/requirement_gen.h"
#include "secureview/feasibility.h"
#include "secureview/ilp_encoding.h"
#include "secureview/solvers.h"

namespace provview {
namespace {

SecureViewInstance TinyCardInstance() {
  SecureViewInstance inst;
  inst.kind = ConstraintKind::kCardinality;
  inst.num_attrs = 4;
  inst.attr_cost = {3.0, 1.0, 2.0, 10.0};
  SvModule m0;
  m0.name = "m0";
  m0.inputs = {0, 1};
  m0.outputs = {2};
  m0.card_options = {CardOption{1, 0}, CardOption{0, 1}};
  SvModule m1;
  m1.name = "m1";
  m1.inputs = {2};
  m1.outputs = {3};
  m1.card_options = {CardOption{1, 0}};
  inst.modules = {m0, m1};
  return inst;
}

TEST(ExactSolverTest, FindsSharedAttributeOptimum) {
  // Hiding attr 2 (cost 2) satisfies both m0 (option (0,1)) and m1
  // (option (1,0)); the per-module cheapest would pick attr 1 (cost 1)
  // for m0 plus attr 2 for m1, total 3.
  SecureViewInstance inst = TinyCardInstance();
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_NEAR(exact.cost, 2.0, 1e-7);
  EXPECT_TRUE(exact.solution.hidden.Test(2));
  EXPECT_TRUE(IsFeasible(inst, exact.solution));
}

TEST(ExactSolverTest, AgreesWithBruteForceOnTinyInstance) {
  SecureViewInstance inst = TinyCardInstance();
  SvResult bf = SolveBruteForce(inst);
  ASSERT_TRUE(bf.status.ok());
  EXPECT_NEAR(bf.cost, SolveExact(inst).cost, 1e-7);
}

TEST(GreedyPerModuleTest, PaysTheLocalViewPrice) {
  SecureViewInstance inst = TinyCardInstance();
  SvResult greedy = SolveGreedyPerModule(inst);
  ASSERT_TRUE(greedy.status.ok());
  EXPECT_TRUE(IsFeasible(inst, greedy.solution));
  EXPECT_NEAR(greedy.cost, 3.0, 1e-7);  // attr 1 + attr 2
}

TEST(LpRoundingTest, FeasibleAndBoundedByLpTimesLogFactor) {
  SecureViewInstance inst = TinyCardInstance();
  SvResult lp = SolveByLpRounding(inst);
  ASSERT_TRUE(lp.status.ok());
  EXPECT_TRUE(IsFeasible(inst, lp.solution));
  EXPECT_GE(lp.cost, lp.lower_bound - 1e-7);
  EXPECT_LE(lp.lower_bound, 2.0 + 1e-7);  // LP ≤ OPT
}

TEST(ThresholdRoundingTest, SetConstraintsWithinLmaxOfLp) {
  SecureViewInstance inst = MakeExample5Instance(6);
  SvResult rounded = SolveByThresholdRounding(inst);
  ASSERT_TRUE(rounded.status.ok());
  EXPECT_TRUE(IsFeasible(inst, rounded.solution));
  const double lmax = static_cast<double>(inst.MaxListLength());
  EXPECT_LE(rounded.cost, lmax * rounded.lower_bound + 1e-6);
}

TEST(Example5Test, GapBetweenGreedyAndOptimal) {
  // Example 5: union of standalone optima costs n + 1; OPT = 2 + ε.
  const int n = 8;
  const double eps = 0.1;
  SecureViewInstance inst = MakeExample5Instance(n, eps);
  SvResult greedy = SolveGreedyPerModule(inst);
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(greedy.status.ok());
  ASSERT_TRUE(exact.status.ok());
  EXPECT_NEAR(greedy.cost, n + 1.0, 1e-7);
  EXPECT_NEAR(exact.cost, 2.0 + eps, 1e-7);
}

TEST(Example5Test, CoverageGreedyAvoidsTheTrap) {
  // The global greedy shares a2 across modules and lands near OPT.
  SecureViewInstance inst = MakeExample5Instance(10);
  SvResult cov = SolveGreedyCoverage(inst);
  ASSERT_TRUE(cov.status.ok());
  EXPECT_TRUE(IsFeasible(inst, cov.solution));
  EXPECT_LE(cov.cost, 2.2 + 1e-7);
}

TEST(EncodingTest, LpRelaxationLowerBoundsIlp) {
  Rng rng(3);
  RandomInstanceOptions opt;
  opt.num_modules = 6;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  SvEncoding enc = EncodeSecureView(inst);
  LpSolution relax = SolveLp(enc.lp);
  ASSERT_TRUE(relax.status.ok());
  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  EXPECT_LE(relax.objective, exact.cost + 1e-6);
}

TEST(EncodingTest, DecodeThresholdControlsHiddenSet) {
  SecureViewInstance inst = TinyCardInstance();
  SvEncoding enc = EncodeSecureView(inst);
  std::vector<double> x(static_cast<size_t>(enc.lp.num_vars()), 0.0);
  x[static_cast<size_t>(enc.x_var[2])] = 0.6;
  SecureViewSolution sol = DecodeSolution(inst, enc, x, 0.5);
  EXPECT_EQ(sol.hidden, Bitset64::Of(4, {2}));
  SecureViewSolution sol2 = DecodeSolution(inst, enc, x, 0.7);
  EXPECT_TRUE(sol2.hidden.empty());
}

// ---------------------------------------------------------------------
// Property sweeps over random instances: every solver is feasible, the
// exact solver matches brute force, LP lower-bounds everything, and the
// Theorem-5/6/7 guarantees hold.
// ---------------------------------------------------------------------
struct SweepCase {
  int seed;
  ConstraintKind kind;
};

class SolverSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SolverSweepTest, AllSolversConsistent) {
  const SweepCase& sc = GetParam();
  Rng rng(static_cast<uint64_t>(sc.seed) * 7 + 123);
  RandomInstanceOptions opt;
  opt.kind = sc.kind;
  opt.num_modules = 5;
  opt.max_inputs = 2;
  opt.max_outputs = 1;
  opt.max_list_length = 2;
  opt.max_option_size = 2;
  opt.reuse_probability = 0.7;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);

  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  SvResult brute = SolveBruteForce(inst);
  ASSERT_TRUE(brute.status.ok());
  EXPECT_NEAR(exact.cost, brute.cost, 1e-6);

  SvResult greedy = SolveGreedyPerModule(inst);
  SvResult coverage = SolveGreedyCoverage(inst);
  RoundingOptions ro;
  ro.seed = static_cast<uint64_t>(sc.seed);
  SvResult rounding = SolveByLpRounding(inst, ro);
  ASSERT_TRUE(rounding.status.ok());

  for (const SvResult* r : {&greedy, &coverage, &rounding}) {
    EXPECT_TRUE(IsFeasible(inst, r->solution));
    EXPECT_GE(r->cost, exact.cost - 1e-6);
  }
  EXPECT_LE(rounding.lower_bound, exact.cost + 1e-6);

  // Theorem 7: greedy-per-module within (γ+1) · OPT.
  const double gamma_plus_1 = inst.DataSharingDegree() + 1.0;
  EXPECT_LE(greedy.cost, gamma_plus_1 * exact.cost + 1e-6);

  if (sc.kind == ConstraintKind::kSet) {
    SvResult thresh = SolveByThresholdRounding(inst);
    ASSERT_TRUE(thresh.status.ok());
    EXPECT_TRUE(IsFeasible(inst, thresh.solution));
    // Theorem 6: within ℓ_max of the LP bound (hence of OPT).
    EXPECT_LE(thresh.cost,
              inst.MaxListLength() * exact.cost + 1e-6);
  }
}

std::vector<SweepCase> MakeSweepCases() {
  std::vector<SweepCase> cases;
  for (int seed = 0; seed < 6; ++seed) {
    cases.push_back({seed, ConstraintKind::kCardinality});
    cases.push_back({seed, ConstraintKind::kSet});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverSweepTest,
                         ::testing::ValuesIn(MakeSweepCases()));

// With public modules in the mix, completed solutions must privatize
// exactly the touched publics and the exact solver still dominates.
class PublicSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PublicSweepTest, GeneralWorkflowSolversConsistent) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 5);
  RandomInstanceOptions opt;
  opt.kind = ConstraintKind::kCardinality;
  opt.num_modules = 5;
  opt.max_inputs = 2;
  opt.max_outputs = 1;
  opt.reuse_probability = 0.7;
  opt.public_fraction = 0.4;
  SecureViewInstance inst = MakeRandomInstance(opt, &rng);
  if (inst.PrivateModules().empty()) GTEST_SKIP();

  SvResult exact = SolveExact(inst);
  ASSERT_TRUE(exact.status.ok());
  SvResult brute = SolveBruteForce(inst);
  ASSERT_TRUE(brute.status.ok());
  EXPECT_NEAR(exact.cost, brute.cost, 1e-6);

  SvResult greedy = SolveGreedyPerModule(inst);
  EXPECT_TRUE(IsFeasible(inst, greedy.solution));
  EXPECT_GE(greedy.cost, exact.cost - 1e-6);

  RoundingOptions ro;
  SvResult rounding = SolveByLpRounding(inst, ro);
  ASSERT_TRUE(rounding.status.ok());
  EXPECT_TRUE(IsFeasible(inst, rounding.solution));
  EXPECT_GE(rounding.cost, exact.cost - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PublicSweepTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace provview
